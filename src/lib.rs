//! # Flux — a language for programming high-performance servers
//!
//! A from-scratch Rust reproduction of *Flux: A Language for Programming
//! High-Performance Servers* (Burns, Grimaldi, Kostadinov, Berger,
//! Corner — USENIX ATC 2006). This umbrella crate re-exports the whole
//! system:
//!
//! * [`core`] — the language: parser, type checker, deadlock-avoidance
//!   constraint analysis, Ball–Larus path numbering, code generators,
//!   and constraint-guided cluster placement (paper §8).
//! * [`runtime`] — the four runtimes (thread-per-flow, thread-pool,
//!   event-driven, staged), the lock manager, the path profiler and the
//!   §5.2 profiling-socket handler.
//! * [`sim`] — the discrete-event simulator (the paper's CSIM
//!   substitute), with optional per-session constraint modeling.
//! * [`net`], [`http`], [`image`], [`bittorrent`], [`game`] — the
//!   substrates; [`servers`] — the paper's four servers written in
//!   Flux; [`baselines`] — the hand-written comparators.
//!
//! The `fluxc` binary drives the compiler from the command line over
//! the `.flux` sources in `programs/`.
//!
//! ## Example
//!
//! ```
//! use flux::runtime::{FluxServer, NodeOutcome, NodeRegistry, RuntimeKind, SourceOutcome};
//! use std::sync::atomic::{AtomicU64, Ordering};
//! use std::sync::Arc;
//!
//! let program = flux::core::compile(
//!     "Gen () => (int n);
//!      Double (int n) => (int n);
//!      Print (int n) => ();
//!      Flow = Double -> Print;
//!      source Gen => Flow;",
//! )
//! .unwrap();
//!
//! let mut reg: NodeRegistry<u64> = NodeRegistry::new();
//! let produced = AtomicU64::new(0);
//! reg.source("Gen", move || match produced.fetch_add(1, Ordering::SeqCst) {
//!     0..=9 => SourceOutcome::New(1),
//!     _ => SourceOutcome::Shutdown,
//! });
//! reg.node("Double", |n: &mut u64| {
//!     *n *= 2;
//!     NodeOutcome::Ok
//! });
//! reg.node("Print", |_| NodeOutcome::Ok);
//!
//! let server = Arc::new(FluxServer::new(program, reg).unwrap());
//! flux::runtime::start(server.clone(), RuntimeKind::ThreadPool { workers: 2 }).join();
//! assert_eq!(server.stats.finished(), 10);
//! ```

pub use flux_baselines as baselines;
pub use flux_bittorrent as bittorrent;
pub use flux_core as core;
pub use flux_game as game;
pub use flux_http as http;
pub use flux_image as image;
pub use flux_net as net;
pub use flux_runtime as runtime;
pub use flux_servers as servers;
pub use flux_sim as sim;
