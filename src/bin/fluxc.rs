//! `fluxc` — the Flux compiler driver.
//!
//! The paper's compiler reads a Flux program, type-checks it, applies the
//! deadlock-avoidance pass, and hands the graph to a pluggable code
//! generator (§3.1); it can also emit a discrete-event simulator (§5.1)
//! and path-profiling metadata (§5.2). This binary exposes the same
//! pipeline from the command line:
//!
//! ```text
//! fluxc check  server.flux              type-check, report warnings
//! fluxc dot    server.flux              Graphviz DOT of the program graph
//! fluxc rust   server.flux              runnable Rust skeleton (stubs)
//! fluxc csim   server.flux              CSIM-style simulator source
//! fluxc paths  server.flux [--limit N]  Ball-Larus path table per flow
//! fluxc fused  server.flux              fused straight-line segments and
//!                                       their break reasons (--dump-fused
//!                                       is an alias)
//! fluxc sim    server.flux [--cpus N] [--duration S] [--service-ms M]
//!              [--interarrival-ms M] [--sessions N --session-aware]
//!                                       run the discrete-event simulator
//! fluxc place  server.flux [--machines K]
//!                                       constraint-guided cluster placement
//! ```
//!
//! Exit status: 0 on success, 1 on compile errors, 2 on usage errors.

use flux::core::codegen::{
    dot::DotGenerator, rust::RustGenerator, sim::SimGenerator, CodeGenerator,
};
use flux::core::model::ModelParams;
use flux::core::{place, round_robin, CompiledProgram, PlaceConfig};
use flux::sim::{FluxSimulation, SimConfig};
use std::process::ExitCode;

const USAGE: &str = "\
fluxc — the Flux compiler (USENIX ATC 2006, reproduced in Rust)

USAGE:
    fluxc <COMMAND> <FILE.flux> [OPTIONS]

COMMANDS:
    check    compile and type-check; print warnings and a program summary
    dot      emit a Graphviz DOT rendering of the program graph (Figure 7)
    rust     emit a runnable Rust skeleton with node stubs (the paper's
             generated stubs + Makefile)
    csim     emit CSIM-style discrete-event simulator source (Figure 5)
    paths    enumerate Ball-Larus paths for every flow (§5.2)
    fused    dump the fused straight-line segments per flow with the
             boundary reasons where fusion stops (alias: --dump-fused)
    sim      run the discrete-event simulator on a uniform performance
             model (§5.1)
    place    compute a constraint-guided cluster placement (§8) and
             compare it with a round-robin baseline

OPTIONS (sim):
    --cpus N               processors to model          [default: 1]
    --duration S           simulated seconds            [default: 30]
    --service-ms M         mean node service time       [default: 1]
    --interarrival-ms M    mean flow inter-arrival gap  [default: 10]
    --sessions N           active sessions              [default: 1]
    --session-aware        per-session locks for (session) constraints

OPTIONS (paths):
    --limit N              maximum paths to print per flow [default: 64]

OPTIONS (place):
    --machines K           cluster machines             [default: 2]
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(msg)) => {
            eprintln!("{msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
        Err(CliError::Io(path, e)) => {
            eprintln!("fluxc: cannot read `{path}`: {e}");
            ExitCode::from(2)
        }
        Err(CliError::Compile(errors)) => {
            eprintln!("{errors}");
            ExitCode::FAILURE
        }
    }
}

enum CliError {
    Usage(String),
    Io(String, std::io::Error),
    Compile(flux::core::CompileErrors),
}

/// Parsed `--key value` / `--flag` options.
struct Options {
    cpus: usize,
    duration_s: f64,
    service_ms: f64,
    interarrival_ms: f64,
    sessions: usize,
    session_aware: bool,
    machines: usize,
    limit: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            cpus: 1,
            duration_s: 30.0,
            service_ms: 1.0,
            interarrival_ms: 10.0,
            sessions: 1,
            session_aware: false,
            machines: 2,
            limit: 64,
        }
    }
}

fn parse_options(rest: &[String]) -> Result<Options, CliError> {
    let mut o = Options::default();
    let mut it = rest.iter();
    fn value<'a>(
        it: &mut impl Iterator<Item = &'a String>,
        flag: &str,
    ) -> Result<&'a String, CliError> {
        it.next()
            .ok_or_else(|| CliError::Usage(format!("`{flag}` requires a value")))
    }
    fn number<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, CliError> {
        s.parse()
            .map_err(|_| CliError::Usage(format!("`{flag}` got a malformed value `{s}`")))
    }
    while let Some(a) = it.next() {
        match a.as_str() {
            "--cpus" => o.cpus = number(value(&mut it, a)?, a)?,
            "--duration" => o.duration_s = number(value(&mut it, a)?, a)?,
            "--service-ms" => o.service_ms = number(value(&mut it, a)?, a)?,
            "--interarrival-ms" => o.interarrival_ms = number(value(&mut it, a)?, a)?,
            "--sessions" => o.sessions = number(value(&mut it, a)?, a)?,
            "--session-aware" => o.session_aware = true,
            "--machines" => o.machines = number(value(&mut it, a)?, a)?,
            "--limit" => o.limit = number(value(&mut it, a)?, a)?,
            other => return Err(CliError::Usage(format!("unknown option `{other}`"))),
        }
    }
    Ok(o)
}

fn load(path: &str) -> Result<(CompiledProgram, String), CliError> {
    let src = std::fs::read_to_string(path).map_err(|e| CliError::Io(path.to_string(), e))?;
    let program = flux::core::compile(&src).map_err(CliError::Compile)?;
    Ok((program, src))
}

fn run(args: &[String]) -> Result<(), CliError> {
    let (cmd, file) = match (args.first(), args.get(1)) {
        (Some(c), _) if c == "--help" || c == "-h" || c == "help" => {
            println!("{USAGE}");
            return Ok(());
        }
        (Some(c), Some(f)) => (c.as_str(), f.as_str()),
        _ => return Err(CliError::Usage("expected a command and a file".into())),
    };
    let opts = parse_options(&args[2..])?;
    let (program, source_text) = load(file)?;
    for w in &program.warnings {
        eprintln!("{w}");
    }
    match cmd {
        "check" => cmd_check(&program),
        "dot" => print!("{}", DotGenerator::default().generate(&program)),
        "rust" => {
            let gen = RustGenerator {
                source_text: Some(source_text),
                ..RustGenerator::default()
            };
            print!("{}", gen.generate(&program));
        }
        "csim" => print!("{}", SimGenerator.generate(&program)),
        "paths" => cmd_paths(&program, &opts),
        "fused" | "--dump-fused" => print!("{}", flux::core::fuse::render(&program)),
        "sim" => cmd_sim(&program, &opts),
        "place" => cmd_place(&program, &opts)?,
        other => return Err(CliError::Usage(format!("unknown command `{other}`"))),
    }
    Ok(())
}

fn cmd_check(program: &CompiledProgram) {
    let concrete = program
        .graph
        .nodes
        .iter()
        .filter(|n| n.is_concrete())
        .count();
    let abstract_ = program.graph.nodes.len() - concrete;
    println!(
        "ok: {} source flow(s), {concrete} concrete node(s), {abstract_} abstract node(s), \
         {} predicate type(s), {} warning(s)",
        program.flows.len(),
        program.graph.predicates.len(),
        program.warnings.len(),
    );
    for flow in &program.flows {
        let source = program.graph.name(flow.flat.source);
        println!(
            "  source {source}: {} vertices, {} paths",
            flow.flat.verts.len(),
            flow.paths.num_paths
        );
    }
    let impls = program.required_nodes();
    println!("  implement: {}", impls.join(", "));
    let preds = program.required_predicates();
    if !preds.is_empty() {
        println!("  predicates: {}", preds.join(", "));
    }
}

fn cmd_paths(program: &CompiledProgram, opts: &Options) {
    for flow in &program.flows {
        let source = program.graph.name(flow.flat.source);
        println!("flow from `{source}`: {} path(s)", flow.paths.num_paths);
        for p in flow.paths.enumerate(&flow.flat, &program.graph, opts.limit) {
            println!("  [{:>4}] {}", p.id, p.display(&program.graph, &flow.flat));
        }
        if flow.paths.num_paths > opts.limit as u64 {
            println!(
                "  ... {} more (raise --limit)",
                flow.paths.num_paths - opts.limit as u64
            );
        }
    }
}

fn cmd_sim(program: &CompiledProgram, opts: &Options) {
    let params = ModelParams::uniform(program, opts.service_ms / 1e3, opts.interarrival_ms / 1e3);
    let report = FluxSimulation::new(
        program,
        params,
        SimConfig {
            cpus: opts.cpus,
            duration_s: opts.duration_s,
            warmup_s: opts.duration_s / 10.0,
            session_aware: opts.session_aware,
            sessions: opts.sessions,
            ..SimConfig::default()
        },
    )
    .run();
    println!(
        "simulated {} CPU(s), {:.0}s, service {}ms, interarrival {}ms{}",
        opts.cpus,
        opts.duration_s,
        opts.service_ms,
        opts.interarrival_ms,
        if opts.session_aware {
            format!(", session-aware over {} sessions", opts.sessions)
        } else {
            String::new()
        }
    );
    println!(
        "  throughput {:.1} flows/s, errored {}, cpu {:.1}%",
        report.throughput,
        report.errored,
        100.0 * report.cpu_utilization
    );
    println!(
        "  latency mean {:.3} ms, p50 {:.3} ms, p95 {:.3} ms, p99 {:.3} ms",
        report.mean_latency_s * 1e3,
        report.p50_s * 1e3,
        report.p95_s * 1e3,
        report.p99_s * 1e3
    );
}

fn cmd_place(program: &CompiledProgram, opts: &Options) -> Result<(), CliError> {
    let params = ModelParams::uniform(program, opts.service_ms / 1e3, opts.interarrival_ms / 1e3);
    let cfg = PlaceConfig {
        machines: opts.machines,
        ..PlaceConfig::default()
    };
    let guided = place(program, &params, &cfg)
        .map_err(|e| CliError::Usage(format!("placement failed: {e}")))?;
    let rr = round_robin(program, &params, opts.machines)
        .map_err(|e| CliError::Usage(format!("placement failed: {e}")))?;
    print!("{}", guided.render(program));
    println!(
        "round-robin baseline: cut {:.1}/s ({:.1}%), remote locks {:.1}/s",
        rr.cut_rate,
        100.0 * rr.cut_fraction(),
        rr.remote_lock_rate
    );
    Ok(())
}
