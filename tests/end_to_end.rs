//! Cross-crate integration tests: each of the paper's servers compiled,
//! started and exercised through the umbrella `flux` crate, plus
//! runtime-independence and profiling checks spanning crates.

use flux::http::DocRoot;
use flux::net::MemNet;
use flux::runtime::RuntimeKind;
use flux::servers::{web::WebSpec, ServerBuilder};
use std::io::Write as _;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

/// All four paper programs compile and report the expected flow counts.
#[test]
fn all_four_servers_compile() {
    for (src, flows) in [
        (flux::servers::web::FLUX_SRC, 1),
        (flux::servers::image::FLUX_SRC, 1),
        (flux::servers::bt::FLUX_SRC, 4),
        (flux::servers::game::FLUX_SRC, 2),
    ] {
        let program = flux::core::compile(src).expect("paper program compiles");
        assert_eq!(program.flows.len(), flows);
    }
}

/// The web server serves the same bytes on all three runtimes
/// (runtime independence, §3).
#[test]
fn web_server_runtime_independent() {
    let mut docroot = DocRoot::new();
    docroot.insert("/whoami.html", "the same on every runtime");
    docroot.insert("/square.fxs", "<?fx echo $n * $n; ?>");
    for kind in [
        RuntimeKind::ThreadPerFlow,
        RuntimeKind::ThreadPool { workers: 3 },
        RuntimeKind::event_driven_sharded(1, 2),
        RuntimeKind::event_driven_sharded(4, 2),
    ] {
        let net = MemNet::new();
        let listener = net.listen("w").unwrap();
        let server = ServerBuilder::new(WebSpec::new(Box::new(listener), docroot.clone()))
            .runtime(kind)
            .spawn();
        let mut conn = net.connect("w").unwrap();
        write!(
            conn,
            "GET /whoami.html HTTP/1.1\r\nConnection: keep-alive\r\n\r\n"
        )
        .unwrap();
        let (s1, b1) = flux::http::read_response(&mut conn).unwrap();
        write!(
            conn,
            "GET /square.fxs?n=12 HTTP/1.1\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let (s2, b2) = flux::http::read_response(&mut conn).unwrap();
        assert_eq!(
            (s1, b1.as_slice()),
            (200, b"the same on every runtime".as_ref())
        );
        assert_eq!((s2, b2.as_slice()), (200, b"144".as_ref()));
        flux::servers::web::stop(server);
    }
}

/// Flux vs baseline byte-identical responses (the comparisons in
/// Figures 3/4 measure coordination, not behaviour).
#[test]
fn flux_and_knot_agree_on_responses() {
    let mut docroot = DocRoot::new();
    docroot.insert("/a.html", "alpha beta");
    docroot.insert("/calc.fxs", "<?fx echo $x + 1; ?>");
    let fetch = |net: &Arc<MemNet>, addr: &str, path: &str| -> (u16, Vec<u8>) {
        let mut conn = net.connect(addr).unwrap();
        write!(conn, "GET {path} HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        flux::http::read_response(&mut conn).unwrap()
    };

    let net = MemNet::new();
    let l1 = net.listen("flux").unwrap();
    let l2 = net.listen("knot").unwrap();
    let fx = ServerBuilder::new(WebSpec::new(Box::new(l1), docroot.clone()))
        .runtime(RuntimeKind::ThreadPool { workers: 2 })
        .spawn();
    let kn = flux::baselines::KnotServer::start(Box::new(l2), docroot, 2);
    for path in ["/a.html", "/calc.fxs?x=41", "/missing"] {
        let a = fetch(&net, "flux", path);
        let b = fetch(&net, "knot", path);
        assert_eq!(a.0, b.0, "{path} status");
        assert_eq!(a.1, b.1, "{path} body");
    }
    flux::servers::web::stop(fx);
    kn.stop();
}

/// A BitTorrent download through the full stack: tracker announce, Flux
/// seeder, protocol client — everything over the in-memory transport.
#[test]
fn bittorrent_full_stack() {
    let net = MemNet::new();
    let file = flux::bittorrent::synth_file(96 * 1024, 4);
    let meta = flux::bittorrent::Metainfo::from_file("mem:tracker", "f.bin", 32 * 1024, &file);

    let server = ServerBuilder::new(flux::servers::bt::BtConfig {
        listener: Box::new(net.listen("seeder").unwrap()),
        meta: meta.clone(),
        file: file.clone(),
        tracker_dial: None,
        peer_id: *b"-FX0001-integration1",
        addr: "mem:seeder".into(),
        tracker_period: Duration::from_secs(3600),
        choke_period: Duration::from_secs(3600),
        keepalive_period: Duration::from_secs(3600),
    })
    .runtime(RuntimeKind::event_driven_sharded(1, 4))
    .spawn();
    let got = flux::servers::bt::client::download(
        Box::new(net.connect("seeder").unwrap()),
        &meta,
        *b"-FX0001-integration2",
        Some(2),
    )
    .unwrap();
    assert_eq!(got, file);
    assert!(server.ctx.blocks_served.load(Ordering::Relaxed) >= 6);
    flux::servers::bt::stop(server);
}

/// The image server's cache constraint holds under concurrency: many
/// parallel clients, every response a valid JPEG, cache stats coherent.
#[test]
fn image_server_concurrent_cache_integrity() {
    let net = MemNet::new();
    let listener = net.listen("img").unwrap();
    let server = ServerBuilder::new(flux::servers::image::ImageConfig {
        source: flux::servers::image::ImageSource::Net(Box::new(listener)),
        compress: flux::servers::image::CompressMode::Real { quality: 60 },
        images: 3,
        image_size: 40,
        cache_bytes: 64 * 1024,
    })
    .runtime(RuntimeKind::ThreadPool { workers: 6 })
    .spawn();
    let mut joins = Vec::new();
    for t in 0..6 {
        let net = net.clone();
        joins.push(std::thread::spawn(move || {
            for i in 0..10 {
                let img = (t + i) % 3;
                let scale = (i % 8) + 1;
                let mut conn = net.connect("img").unwrap();
                write!(
                    conn,
                    "GET /img{img}-{scale}.jpg HTTP/1.1\r\nConnection: close\r\n\r\n"
                )
                .unwrap();
                let (status, body) = flux::http::read_response(&mut conn).unwrap();
                assert_eq!(status, 200);
                flux::image::jpeg_probe(&body).expect("valid JPEG under concurrency");
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    let cache = server.ctx.cache.lock();
    assert_eq!(
        cache.hits + cache.misses,
        60,
        "every request checked the cache"
    );
    drop(cache);
    flux::servers::image::stop(server);
}

/// Profiled web run feeds the simulator, which predicts a plausible
/// latency for the same load (the §5.1 workflow across crates).
#[test]
fn profile_to_simulation_pipeline() {
    use flux::sim::{FluxSimulation, SimConfig};
    let (program, reg, ctx) = flux::servers::image::build(flux::servers::image::ImageConfig {
        source: flux::servers::image::ImageSource::Synthetic {
            interarrival: Duration::from_millis(5),
            total: 150,
        },
        compress: flux::servers::image::CompressMode::TimedHold(Duration::from_millis(2)),
        images: 4,
        image_size: 32,
        cache_bytes: 6 * 1024,
    });
    let server = Arc::new(flux::runtime::FluxServer::with_profiling(program, reg).unwrap());
    let handle = flux::runtime::start(server.clone(), RuntimeKind::ThreadPool { workers: 1 });
    handle.join();
    assert_eq!(ctx.served.load(Ordering::Relaxed), 150);

    let params = server.profiler().unwrap().observed_params(server.program());
    assert!(params.flows[0].interarrival_mean_s > 0.003);
    let report = FluxSimulation::new(
        server.program(),
        params,
        SimConfig {
            cpus: 1,
            duration_s: 30.0,
            warmup_s: 2.0,
            exponential_service: false,
            poisson_arrivals: false,
            ..SimConfig::default()
        },
    )
    .run();
    assert!(report.completed > 1000, "{report:?}");
    // The real mean flow latency and the predicted one agree to within
    // 3x (generous: the test runs fast and cold).
    let observed = server.stats.latency.mean().as_secs_f64();
    let predicted = report.mean_latency_s;
    assert!(
        predicted < observed * 3.0 + 0.002 && observed < predicted * 3.0 + 0.002,
        "observed {observed}s vs predicted {predicted}s"
    );
}

/// Path profiling end to end: hot paths of a loaded web server include
/// the static-file path with sensible counts.
#[test]
fn hot_paths_of_web_server() {
    let mut docroot = DocRoot::new();
    docroot.insert("/x.html", "payload");
    let net = MemNet::new();
    let listener = net.listen("w").unwrap();
    let server = ServerBuilder::new(WebSpec::new(Box::new(listener), docroot))
        .runtime(RuntimeKind::ThreadPool { workers: 2 })
        .profile(true)
        .spawn();
    for _ in 0..20 {
        let mut conn = net.connect("w").unwrap();
        write!(conn, "GET /x.html HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        let _ = flux::http::read_response(&mut conn).unwrap();
    }
    // The client has every response (Content-Length framing) as soon as
    // `Write` enqueues it; wait for the final flow's `Complete` to land
    // in the profiler before reporting.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.handle.server().stats.finished() < 20 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    let fx = server.handle.server().clone();
    let report = fx
        .profiler()
        .unwrap()
        .report(fx.program(), 0, flux::runtime::HotOrder::ByCount);
    assert!(!report.is_empty());
    let top = &report[0];
    let path = top
        .info
        .display(&fx.program().graph, &fx.program().flows[0].flat);
    assert!(
        path.contains("ReadRequest") && path.contains("ReadFromDisk"),
        "hot path is the static-file path: {path}"
    );
    assert!(top.count >= 20);
    flux::servers::web::stop(server);
}
