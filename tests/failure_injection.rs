//! Failure injection across all three runtimes.
//!
//! The paper's error model (§2.4): "Flux expects nodes to follow the
//! standard UNIX convention of returning error codes. Whenever a node
//! returns a non-zero value, Flux checks if an error handler has been
//! declared for the node. If none exists, the current data flow is
//! simply terminated." These tests inject deterministic failures into
//! running servers and check that every flow is accounted for, handlers
//! run exactly as often as their nodes fail, constraint locks never leak
//! across error exits, and the path profiler attributes error paths
//! correctly.

use flux::core::EndKind;
use flux::runtime::{
    start, AdaptivePolicy, FluxServer, HotOrder, NodeOutcome, NodeRegistry, OverloadPolicy,
    RuntimeKind, ShardQueueKind, SourceOutcome,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

const ALL_RUNTIMES: [RuntimeKind; 4] = [
    RuntimeKind::ThreadPerFlow,
    RuntimeKind::ThreadPool { workers: 4 },
    RuntimeKind::EventDriven {
        shards: 1,
        io_workers: 2,
        adaptive: AdaptivePolicy::Static,
        queue: ShardQueueKind::Mutex,
        overload: OverloadPolicy::Unbounded,
    },
    RuntimeKind::Staged { stage_workers: 2 },
];

const PIPELINE: &str = "
    Gen () => (int n);
    Stage1 (int n) => (int n);
    Stage2 (int n) => (int n);
    Commit (int n) => ();
    Recover (int n) => ();
    Flow = Stage1 -> Stage2 -> Commit;
    source Gen => Flow;
    handle error Stage1 => Recover;
    atomic Stage2: {state};
";

struct Counters {
    recovered: AtomicU64,
    committed: AtomicU64,
}

/// Builds the pipeline registry. `fail1(n)` / `fail2(n)` decide whether
/// Stage1 / Stage2 fail for payload `n` — deterministic functions of the
/// payload so tests can assert exact counts.
fn registry(
    total: u64,
    fail1: fn(u64) -> bool,
    fail2: fn(u64) -> bool,
) -> (NodeRegistry<u64>, Arc<Counters>) {
    let counters = Arc::new(Counters {
        recovered: AtomicU64::new(0),
        committed: AtomicU64::new(0),
    });
    let mut reg: NodeRegistry<u64> = NodeRegistry::new();
    let produced = AtomicU64::new(0);
    reg.source("Gen", move || {
        let i = produced.fetch_add(1, Ordering::SeqCst);
        if i >= total {
            SourceOutcome::Shutdown
        } else {
            SourceOutcome::New(i)
        }
    });
    reg.node("Stage1", move |n: &mut u64| {
        if fail1(*n) {
            NodeOutcome::Err(5)
        } else {
            NodeOutcome::Ok
        }
    });
    reg.node("Stage2", move |n: &mut u64| {
        if fail2(*n) {
            NodeOutcome::Err(17)
        } else {
            NodeOutcome::Ok
        }
    });
    let c = counters.clone();
    reg.node("Commit", move |_| {
        c.committed.fetch_add(1, Ordering::SeqCst);
        NodeOutcome::Ok
    });
    let c = counters.clone();
    reg.node("Recover", move |_| {
        c.recovered.fetch_add(1, Ordering::SeqCst);
        NodeOutcome::Ok
    });
    (reg, counters)
}

fn wait_finished(server: &FluxServer<u64>, total: u64) {
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    while server.stats.finished() < total && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Handled failures: every third flow fails at Stage1; the handler runs
/// exactly once per failure and the outcome is `Handled`, on every
/// runtime.
#[test]
fn handled_failures_route_to_handler_exactly() {
    for kind in ALL_RUNTIMES {
        let total = 300u64;
        let program = flux::core::compile(PIPELINE).unwrap();
        let (reg, counters) = registry(total, |n| n % 3 == 0, |_| false);
        let server = Arc::new(FluxServer::new(program, reg).unwrap());
        let handle = start(server.clone(), kind);
        handle.join();
        wait_finished(&server, total);

        let failures = (0..total).filter(|n| n % 3 == 0).count() as u64;
        assert_eq!(
            counters.recovered.load(Ordering::SeqCst),
            failures,
            "{kind:?}: handler executions"
        );
        assert_eq!(
            counters.committed.load(Ordering::SeqCst),
            total - failures,
            "{kind:?}: commits"
        );
        assert_eq!(
            server.stats.handled.load(Ordering::Relaxed),
            failures,
            "{kind:?}"
        );
        assert_eq!(
            server.stats.completed.load(Ordering::Relaxed),
            total - failures,
            "{kind:?}"
        );
        assert_eq!(server.stats.errored.load(Ordering::Relaxed), 0, "{kind:?}");
    }
}

/// Unhandled failures inside a constrained node: the flow terminates, the
/// `state` lock is released, and every remaining flow still finishes —
/// a leaked lock would hang the join on every runtime.
#[test]
fn unhandled_failures_release_constraints() {
    for kind in ALL_RUNTIMES {
        let total = 300u64;
        let program = flux::core::compile(PIPELINE).unwrap();
        let (reg, counters) = registry(total, |_| false, |n| n % 5 == 0);
        let server = Arc::new(FluxServer::new(program, reg).unwrap());
        let handle = start(server.clone(), kind);
        handle.join();
        wait_finished(&server, total);

        let failures = (0..total).filter(|n| n % 5 == 0).count() as u64;
        assert_eq!(
            server.stats.errored.load(Ordering::Relaxed),
            failures,
            "{kind:?}"
        );
        assert_eq!(
            counters.committed.load(Ordering::SeqCst),
            total - failures,
            "{kind:?}"
        );
        assert_eq!(server.stats.finished(), total, "{kind:?}: no flow lost");
    }
}

/// A failing handler: flows whose handler also fails end `Errored`, the
/// rest of the failures end `Handled`, and the split is exact.
#[test]
fn failing_handler_chains_to_error_end() {
    const SRC: &str = "
        Gen () => (int n);
        Work (int n) => (int n);
        Done (int n) => ();
        Fixup (int n) => ();
        Flow = Work -> Done;
        source Gen => Flow;
        handle error Work => Fixup;
    ";
    let total = 200u64;
    let program = flux::core::compile(SRC).unwrap();
    let mut reg: NodeRegistry<u64> = NodeRegistry::new();
    let produced = AtomicU64::new(0);
    reg.source("Gen", move || {
        let i = produced.fetch_add(1, Ordering::SeqCst);
        if i >= total {
            SourceOutcome::Shutdown
        } else {
            SourceOutcome::New(i)
        }
    });
    // Work fails on even payloads; Fixup itself fails when n % 4 == 0.
    reg.node("Work", |n: &mut u64| {
        if (*n).is_multiple_of(2) {
            NodeOutcome::Err(1)
        } else {
            NodeOutcome::Ok
        }
    });
    reg.node("Fixup", |n: &mut u64| {
        if (*n).is_multiple_of(4) {
            NodeOutcome::Err(2)
        } else {
            NodeOutcome::Ok
        }
    });
    reg.node("Done", |_| NodeOutcome::Ok);
    let server = Arc::new(FluxServer::new(program, reg).unwrap());
    let handle = start(server.clone(), RuntimeKind::ThreadPool { workers: 4 });
    handle.join();
    wait_finished(&server, total);

    let work_fails = (0..total).filter(|n| n % 2 == 0).count() as u64;
    let chain_fails = (0..total).filter(|n| n % 4 == 0).count() as u64;
    assert_eq!(
        server.stats.completed.load(Ordering::Relaxed),
        total - work_fails
    );
    assert_eq!(
        server.stats.handled.load(Ordering::Relaxed),
        work_fails - chain_fails
    );
    assert_eq!(server.stats.errored.load(Ordering::Relaxed), chain_fails);
}

/// Any non-zero code is an error — the specific code does not matter
/// (the UNIX convention of §2.4).
#[test]
fn any_nonzero_code_is_an_error() {
    for code in [1, -1, 404, i32::MAX, i32::MIN] {
        let program = flux::core::compile(
            "Gen () => (int n); Work (int n) => (); F = Work; source Gen => F;",
        )
        .unwrap();
        let mut reg: NodeRegistry<u64> = NodeRegistry::new();
        let produced = AtomicU64::new(0);
        reg.source("Gen", move || {
            if produced.fetch_add(1, Ordering::SeqCst) >= 10 {
                SourceOutcome::Shutdown
            } else {
                SourceOutcome::New(0)
            }
        });
        reg.node("Work", move |_| NodeOutcome::from_code(code));
        let server = Arc::new(FluxServer::new(program, reg).unwrap());
        let handle = start(server.clone(), RuntimeKind::ThreadPool { workers: 2 });
        handle.join();
        wait_finished(&server, 10);
        assert_eq!(
            server.stats.errored.load(Ordering::Relaxed),
            10,
            "code {code}"
        );
    }
}

/// The path profiler attributes injected failures to the right paths:
/// the handled path and the success path counts match the injection
/// schedule exactly.
#[test]
fn profiler_counts_error_paths_exactly() {
    let total = 240u64;
    let program = flux::core::compile(PIPELINE).unwrap();
    let (reg, _counters) = registry(total, |n| n % 4 == 0, |_| false);
    let server = Arc::new(FluxServer::with_profiling(program, reg).unwrap());
    let handle = start(server.clone(), RuntimeKind::ThreadPool { workers: 4 });
    handle.join();
    wait_finished(&server, total);

    let failures = (0..total).filter(|n| n % 4 == 0).count() as u64;
    let profiler = server.profiler().expect("profiling enabled");
    let report = profiler.report(server.program(), 0, HotOrder::ByCount);
    let handled: u64 = report
        .iter()
        .filter(|h| matches!(h.info.outcome, EndKind::Handled { .. }))
        .map(|h| h.count)
        .sum();
    let completed: u64 = report
        .iter()
        .filter(|h| h.info.outcome == EndKind::Completed)
        .map(|h| h.count)
        .sum();
    assert_eq!(handled, failures);
    assert_eq!(completed, total - failures);
    // The handled path names the handler node.
    let handled_path = report
        .iter()
        .find(|h| matches!(h.info.outcome, EndKind::Handled { .. }))
        .unwrap();
    assert!(handled_path.info.nodes.contains(&"Recover".to_string()));
    // Observed parameters pick up the injected error probability (~25%).
    let params = profiler.observed_params(server.program());
    let flow = &server.program().flows[0];
    let (stage1_vid, _) = flow
        .flat
        .execs()
        .find(|&(_, nid)| server.program().graph.name(nid) == "Stage1")
        .unwrap();
    let p = params.flows[0].error_prob[&stage1_vid];
    assert!((p - 0.25).abs() < 0.01, "observed error prob {p}");
}

/// Sustained failure storms do not wedge the event runtime: a burst in
/// which *every* flow errors on a blocking node drains completely.
#[test]
fn event_runtime_survives_total_failure_of_blocking_node() {
    const SRC: &str = "
        Gen () => (int n);
        Io (int n) => (int n);
        Done (int n) => ();
        Flow = Io -> Done;
        source Gen => Flow;
        blocking Io;
        atomic Io: {conn};
    ";
    let total = 150u64;
    let program = flux::core::compile(SRC).unwrap();
    let mut reg: NodeRegistry<u64> = NodeRegistry::new();
    let produced = AtomicU64::new(0);
    reg.source("Gen", move || {
        let i = produced.fetch_add(1, Ordering::SeqCst);
        if i >= total {
            SourceOutcome::Shutdown
        } else {
            SourceOutcome::New(i)
        }
    });
    reg.node_blocking("Io", |_| {
        std::thread::sleep(Duration::from_micros(200));
        NodeOutcome::Err(111)
    });
    reg.node("Done", |_| NodeOutcome::Ok);
    let server = Arc::new(FluxServer::new(program, reg).unwrap());
    let handle = start(server.clone(), RuntimeKind::event_driven_sharded(1, 3));
    handle.join();
    wait_finished(&server, total);
    assert_eq!(server.stats.errored.load(Ordering::Relaxed), total);
    assert_eq!(server.stats.completed.load(Ordering::Relaxed), 0);
}
