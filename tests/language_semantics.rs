//! Integration tests pinning down the language semantics of paper §2
//! against the executable system: dispatch order, error-code
//! conventions, session-scoped constraints, and the implicit-loop
//! source model.

use flux::runtime::{start, FluxServer, NodeOutcome, NodeRegistry, RuntimeKind, SourceOutcome};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// "Predicate type dispatch is processed in order of the tests in the
/// Flux program" — the first matching variant wins even when later
/// ones also match.
#[test]
fn dispatch_tries_variants_in_declaration_order() {
    const SRC: &str = "
        Gen () => (int n);
        First (int n) => (int n);
        Second (int n) => (int n);
        Out (int n) => ();
        typedef p1 AlwaysTrue;
        typedef p2 AlsoTrue;
        source Gen => Flow;
        Flow = Route -> Out;
        Route:[p1] = First;
        Route:[p2] = Second;
    ";
    let program = flux::core::compile(SRC).unwrap();
    let hits = Arc::new(Mutex::new(Vec::new()));
    let mut reg: NodeRegistry<u64> = NodeRegistry::new();
    let produced = AtomicU64::new(0);
    reg.source("Gen", move || {
        if produced.fetch_add(1, Ordering::SeqCst) >= 5 {
            SourceOutcome::Shutdown
        } else {
            SourceOutcome::New(0)
        }
    });
    for n in ["First", "Second"] {
        let hits = hits.clone();
        reg.node(n, move |_: &mut u64| {
            hits.lock().push(n);
            NodeOutcome::Ok
        });
    }
    reg.node("Out", |_| NodeOutcome::Ok);
    reg.predicate("AlwaysTrue", |_: &u64| true);
    reg.predicate("AlsoTrue", |_: &u64| true);
    let server = Arc::new(FluxServer::new(program, reg).unwrap());
    start(server.clone(), RuntimeKind::ThreadPool { workers: 1 }).join();
    assert_eq!(hits.lock().as_slice(), ["First"; 5]);
}

/// "Whenever a node returns a non-zero value, Flux checks if an error
/// handler has been declared ... If none exists, the current data flow
/// is simply terminated."
#[test]
fn unhandled_error_terminates_silently() {
    const SRC: &str = "
        Gen () => (int n);
        Boom (int n) => (int n);
        Never (int n) => ();
        source Gen => Flow;
        Flow = Boom -> Never;
    ";
    let program = flux::core::compile(SRC).unwrap();
    let never = Arc::new(AtomicU64::new(0));
    let mut reg: NodeRegistry<u64> = NodeRegistry::new();
    let produced = AtomicU64::new(0);
    reg.source("Gen", move || {
        if produced.fetch_add(1, Ordering::SeqCst) >= 10 {
            SourceOutcome::Shutdown
        } else {
            SourceOutcome::New(0)
        }
    });
    reg.node("Boom", |_| NodeOutcome::Err(13));
    {
        let never = never.clone();
        reg.node("Never", move |_| {
            never.fetch_add(1, Ordering::SeqCst);
            NodeOutcome::Ok
        });
    }
    let server = Arc::new(FluxServer::new(program, reg).unwrap());
    start(server.clone(), RuntimeKind::ThreadPool { workers: 2 }).join();
    assert_eq!(never.load(Ordering::SeqCst), 0, "downstream never runs");
    assert_eq!(server.stats.errored.load(Ordering::SeqCst), 10);
    assert_eq!(server.stats.finished(), 10);
}

/// Session-scoped constraints (§2.5.1): flows in different sessions run
/// the constrained node concurrently; flows in the same session
/// serialize. We detect concurrency with an in-node gate that only
/// opens when two flows are inside simultaneously.
#[test]
fn session_constraints_scope_by_session() {
    const SRC: &str = "
        Gen () => (int n);
        Touch (int n) => (int n);
        Out (int n) => ();
        source Gen => Flow;
        Flow = Touch -> Out;
        atomic Touch: {state(session)};
    ";
    // Two sessions; gate requires both inside Touch at once.
    let program = flux::core::compile(SRC).unwrap();
    let inside = Arc::new(AtomicU64::new(0));
    let peak = Arc::new(AtomicU64::new(0));
    let mut reg: NodeRegistry<u64> = NodeRegistry::new();
    let produced = AtomicU64::new(0);
    reg.source("Gen", move || {
        let i = produced.fetch_add(1, Ordering::SeqCst);
        if i >= 16 {
            SourceOutcome::Shutdown
        } else {
            SourceOutcome::New(i)
        }
    });
    reg.session("Gen", |n: &u64| n % 2); // two sessions
    {
        let inside = inside.clone();
        let peak = peak.clone();
        reg.node("Touch", move |_| {
            let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(5));
            inside.fetch_sub(1, Ordering::SeqCst);
            NodeOutcome::Ok
        });
    }
    reg.node("Out", |_| NodeOutcome::Ok);
    let server = Arc::new(FluxServer::new(program, reg).unwrap());
    start(server.clone(), RuntimeKind::ThreadPool { workers: 8 }).join();
    // Two sessions -> at most (and, with 8 workers and a 5ms hold,
    // reliably) two flows inside at once.
    assert!(
        peak.load(Ordering::SeqCst) <= 2,
        "same-session flows must serialize: peak {}",
        peak.load(Ordering::SeqCst)
    );
    assert_eq!(
        peak.load(Ordering::SeqCst),
        2,
        "different sessions must overlap"
    );
}

/// Program-scoped writer constraints fully serialize regardless of
/// session ids (contrast with the session test above).
#[test]
fn program_constraints_ignore_sessions() {
    const SRC: &str = "
        Gen () => (int n);
        Touch (int n) => (int n);
        Out (int n) => ();
        source Gen => Flow;
        Flow = Touch -> Out;
        atomic Touch: {state};
    ";
    let program = flux::core::compile(SRC).unwrap();
    let inside = Arc::new(AtomicU64::new(0));
    let peak = Arc::new(AtomicU64::new(0));
    let mut reg: NodeRegistry<u64> = NodeRegistry::new();
    let produced = AtomicU64::new(0);
    reg.source("Gen", move || {
        let i = produced.fetch_add(1, Ordering::SeqCst);
        if i >= 12 {
            SourceOutcome::Shutdown
        } else {
            SourceOutcome::New(i)
        }
    });
    reg.session("Gen", |n: &u64| n % 4);
    {
        let inside = inside.clone();
        let peak = peak.clone();
        reg.node("Touch", move |_| {
            let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::yield_now();
            inside.fetch_sub(1, Ordering::SeqCst);
            NodeOutcome::Ok
        });
    }
    reg.node("Out", |_| NodeOutcome::Ok);
    let server = Arc::new(FluxServer::new(program, reg).unwrap());
    start(server.clone(), RuntimeKind::ThreadPool { workers: 8 }).join();
    assert_eq!(peak.load(Ordering::SeqCst), 1, "global writer serializes");
}

/// Reader constraints allow concurrent execution (§2.5): with 8 workers
/// and a sleeping node, readers overlap.
#[test]
fn reader_constraints_allow_concurrency() {
    const SRC: &str = "
        Gen () => (int n);
        Touch (int n) => (int n);
        Out (int n) => ();
        source Gen => Flow;
        Flow = Touch -> Out;
        atomic Touch: {state?};
    ";
    let program = flux::core::compile(SRC).unwrap();
    let inside = Arc::new(AtomicU64::new(0));
    let peak = Arc::new(AtomicU64::new(0));
    let mut reg: NodeRegistry<u64> = NodeRegistry::new();
    let produced = AtomicU64::new(0);
    reg.source("Gen", move || {
        if produced.fetch_add(1, Ordering::SeqCst) >= 16 {
            SourceOutcome::Shutdown
        } else {
            SourceOutcome::New(0)
        }
    });
    {
        let inside = inside.clone();
        let peak = peak.clone();
        reg.node("Touch", move |_| {
            let now = inside.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(3));
            inside.fetch_sub(1, Ordering::SeqCst);
            NodeOutcome::Ok
        });
    }
    reg.node("Out", |_| NodeOutcome::Ok);
    let server = Arc::new(FluxServer::new(program, reg).unwrap());
    start(server.clone(), RuntimeKind::ThreadPool { workers: 8 }).join();
    assert!(
        peak.load(Ordering::SeqCst) >= 3,
        "readers overlap: peak {}",
        peak.load(Ordering::SeqCst)
    );
}

/// Generated Rust skeletons compile conceptually: the stub text contains
/// a registry builder naming every node of the image server.
#[test]
fn rust_codegen_names_every_node() {
    use flux::core::codegen::{rust::RustGenerator, CodeGenerator};
    let program = flux::core::compile(flux::core::fixtures::IMAGE_SERVER).unwrap();
    let skeleton = RustGenerator::default().generate(&program);
    for node in program.required_nodes() {
        assert!(skeleton.contains(&node), "skeleton mentions {node}");
    }
    assert!(skeleton.contains("build_registry"));
}
