//! Integration tests for the `fluxc` compiler driver.
//!
//! Each test drives the real binary (via `CARGO_BIN_EXE_fluxc`) over the
//! checked-in programs in `programs/`, which are the exact Flux sources
//! the in-tree servers embed.

use std::path::Path;
use std::process::{Command, Output};

fn fluxc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_fluxc"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("fluxc runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn programs_directory_is_complete() {
    for f in [
        "programs/figure2_image_server.flux",
        "programs/image_server.flux",
        "programs/web_server.flux",
        "programs/bittorrent.flux",
        "programs/game_server.flux",
        "programs/pubsub.flux",
    ] {
        assert!(
            Path::new(env!("CARGO_MANIFEST_DIR")).join(f).exists(),
            "{f} missing"
        );
    }
}

#[test]
fn check_accepts_every_shipped_program() {
    for f in [
        "programs/figure2_image_server.flux",
        "programs/image_server.flux",
        "programs/web_server.flux",
        "programs/bittorrent.flux",
        "programs/game_server.flux",
        "programs/pubsub.flux",
    ] {
        let out = fluxc(&["check", f]);
        assert!(out.status.success(), "{f}: {}", stderr(&out));
        assert!(stdout(&out).starts_with("ok:"), "{f}: {}", stdout(&out));
    }
}

#[test]
fn check_reports_figure2_shape() {
    let out = fluxc(&["check", "programs/figure2_image_server.flux"]);
    let text = stdout(&out);
    assert!(text.contains("1 source flow(s)"));
    assert!(text.contains("13 paths"));
    assert!(text.contains("predicates: TestInCache"));
}

#[test]
fn compile_errors_exit_one_with_diagnostics() {
    let dir = std::env::temp_dir().join("fluxc-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.flux");
    std::fs::write(&bad, "F = A -> B; source S => F;").unwrap();
    let out = fluxc(&["check", bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let err = stderr(&out);
    assert!(err.contains("undefined node `A`"), "{err}");
    assert!(err.contains("undefined node `B`"), "{err}");
}

#[test]
fn missing_file_exits_two() {
    let out = fluxc(&["check", "no/such/file.flux"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("cannot read"));
}

#[test]
fn usage_errors_exit_two() {
    let out = fluxc(&["frobnicate", "programs/web_server.flux"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("unknown command"));
    let out = fluxc(&[]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn help_prints_usage() {
    let out = fluxc(&["--help"]);
    assert!(out.status.success());
    assert!(stdout(&out).contains("USAGE:"));
}

#[test]
fn dot_emits_graphviz() {
    let out = fluxc(&["dot", "programs/bittorrent.flux"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.starts_with("digraph"));
    assert!(text.contains("HandleMessage"));
    assert!(text.contains("->"));
}

#[test]
fn rust_emits_stub_skeleton() {
    let out = fluxc(&["rust", "programs/figure2_image_server.flux"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("fn main()"), "{text}");
    assert!(text.contains("Compress"));
    assert!(text.contains("TestInCache"));
}

#[test]
fn csim_emits_figure5_shape() {
    let out = fluxc(&["csim", "programs/figure2_image_server.flux"]);
    assert!(out.status.success());
    let text = stdout(&out);
    assert!(text.contains("processor->reserve()"));
    assert!(text.contains("hold(exponential("));
}

#[test]
fn paths_lists_hot_path_candidates() {
    let out = fluxc(&["paths", "programs/bittorrent.flux", "--limit", "2000"]);
    assert!(out.status.success());
    let text = stdout(&out);
    // The famous §5.2 no-work path exists in the enumeration.
    assert!(
        text.contains("Listen -> GetClients -> SelectSockets -> CheckSockets -> ERROR"),
        "{text}"
    );
    // All four sources enumerated.
    for src in ["Listen", "TrackerTimer", "ChokeTimer", "KeepAliveTimer"] {
        assert!(text.contains(&format!("flow from `{src}`")), "{src}");
    }
}

/// `fluxc fused` output is a compiler artifact other tooling (and the
/// quickstart) reads, so it is pinned against golden snapshots for
/// every shipped program. Regenerate with
/// `fluxc fused programs/<p>.flux > tests/golden/fused/<p>.txt` when a
/// fusion-pass change is intentional.
#[test]
fn fused_dump_matches_golden_snapshots() {
    for f in [
        "figure2_image_server",
        "image_server",
        "web_server",
        "bittorrent",
        "game_server",
        "pubsub",
    ] {
        let out = fluxc(&["fused", &format!("programs/{f}.flux")]);
        assert!(out.status.success(), "{f}: {}", stderr(&out));
        let golden = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("tests/golden/fused")
            .join(format!("{f}.txt"));
        let want = std::fs::read_to_string(&golden).expect("golden snapshot checked in");
        assert_eq!(stdout(&out), want, "fused dump drifted for {f}");
    }
}

#[test]
fn dump_fused_alias_works() {
    let out = fluxc(&["--dump-fused", "programs/web_server.flux"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("segment(s)"), "{text}");
    assert!(text.contains("[error arm]"), "{text}");
}

#[test]
fn sim_reports_throughput_and_latency() {
    let out = fluxc(&[
        "sim",
        "programs/figure2_image_server.flux",
        "--cpus",
        "2",
        "--duration",
        "5",
        "--service-ms",
        "1",
        "--interarrival-ms",
        "5",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("throughput"), "{text}");
    assert!(text.contains("latency mean"), "{text}");
}

#[test]
fn sim_session_aware_flag_accepted() {
    let dir = std::env::temp_dir().join("fluxc-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let prog = dir.join("session.flux");
    std::fs::write(
        &prog,
        "Gen () => (int v); Work (int v) => (); F = Work;
         source Gen => F; atomic Work: {chunks(session)};",
    )
    .unwrap();
    let run = |extra: &[&str]| {
        let mut args = vec![
            "sim",
            prog.to_str().unwrap(),
            "--cpus",
            "4",
            "--duration",
            "5",
            "--interarrival-ms",
            "2",
        ];
        args.extend_from_slice(extra);
        let out = fluxc(&args);
        assert!(out.status.success(), "{}", stderr(&out));
        stdout(&out)
    };
    let conservative = run(&[]);
    let aware = run(&["--session-aware", "--sessions", "8"]);
    assert!(!conservative.contains("session-aware"));
    assert!(aware.contains("session-aware over 8 sessions"), "{aware}");
}

#[test]
fn place_reports_guided_and_baseline() {
    let out = fluxc(&["place", "programs/bittorrent.flux", "--machines", "3"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("placement over 3 machines"));
    assert!(text.contains("remote-lock rate 0.0/s"));
    assert!(text.contains("round-robin baseline"));
}

#[test]
fn warnings_go_to_stderr_and_do_not_fail() {
    let dir = std::env::temp_dir().join("fluxc-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let hoist = dir.join("hoist.flux");
    std::fs::write(
        &hoist,
        "B (int v) => (int v); D (int v) => (int v);
         SrcA () => (int v); SrcC () => (int v);
         A = B; C = D;
         source SrcA => A; source SrcC => C;
         atomic A: {x}; atomic B: {y}; atomic C: {y}; atomic D: {x};",
    )
    .unwrap();
    let out = fluxc(&["check", hoist.to_str().unwrap()]);
    assert!(out.status.success());
    assert!(stderr(&out).contains("hoisted"), "{}", stderr(&out));
}
