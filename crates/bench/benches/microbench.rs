//! Criterion micro-benchmarks for the components behind every table and
//! figure: compiler passes, substrate codecs, the lock manager, flow
//! execution overhead, and the discrete-event engine.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn bench_compiler(c: &mut Criterion) {
    let mut g = c.benchmark_group("compiler");
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));
    for (name, src) in [
        ("image_server", flux_servers::image::FLUX_SRC),
        ("web_server", flux_servers::web::FLUX_SRC),
        ("bittorrent", flux_servers::bt::FLUX_SRC),
        ("game", flux_servers::game::FLUX_SRC),
    ] {
        g.bench_function(format!("compile/{name}"), |b| {
            b.iter(|| flux_core::compile(black_box(src)).unwrap())
        });
    }
    let program = flux_core::compile(flux_servers::bt::FLUX_SRC).unwrap();
    g.bench_function("ball_larus/bittorrent", |b| {
        b.iter(|| {
            for flow in &program.flows {
                black_box(flux_core::PathTable::build(&flow.flat).unwrap());
            }
        })
    });
    g.finish();
}

fn bench_substrates(c: &mut Criterion) {
    let mut g = c.benchmark_group("substrate");
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));

    let data = flux_bittorrent::synth_file(256 * 1024, 1);
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("sha1/256KiB", |b| {
        b.iter(|| flux_bittorrent::sha1(black_box(&data)))
    });

    let torrent = flux_bittorrent::Metainfo::from_file("t", "f", 32 * 1024, &data).to_torrent();
    g.throughput(Throughput::Bytes(torrent.len() as u64));
    g.bench_function("bencode/decode_torrent", |b| {
        b.iter(|| flux_bittorrent::Bencode::decode(black_box(&torrent)).unwrap())
    });

    let img = flux_image::Image::synthetic(128, 96, 2);
    g.throughput(Throughput::Bytes(img.rgb.len() as u64));
    g.bench_function("jpeg/encode_128x96_q75", |b| {
        b.iter(|| flux_image::jpeg_encode(black_box(&img), 75))
    });

    let req = b"GET /dir00001/class1_3.html?x=1 HTTP/1.1\r\nHost: bench\r\nConnection: keep-alive\r\nAccept: */*\r\n\r\n";
    g.throughput(Throughput::Bytes(req.len() as u64));
    g.bench_function("http/parse_request", |b| {
        b.iter(|| {
            let mut cur = std::io::Cursor::new(req.to_vec());
            flux_http::read_request(black_box(&mut cur)).unwrap()
        })
    });

    let script =
        "<?fx $t = 0; for ($i = 0; $i < 100; $i = $i + 1) { $t = $t + $i * $i; } echo $t; ?>";
    g.bench_function("fluxscript/loop100", |b| {
        let vars = std::collections::HashMap::new();
        b.iter(|| flux_http::fxs_render(black_box(script), &vars).unwrap())
    });
    g.finish();
}

fn bench_locks(c: &mut Criterion) {
    use flux_core::ConstraintMode;
    use flux_runtime::ReentrantRwLock;
    let mut g = c.benchmark_group("locks");
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));
    let lock = ReentrantRwLock::new();
    g.bench_function("uncontended_writer", |b| {
        b.iter(|| {
            lock.acquire(1, ConstraintMode::Writer);
            lock.release(1, ConstraintMode::Writer);
        })
    });
    g.bench_function("uncontended_reader", |b| {
        b.iter(|| {
            lock.acquire(1, ConstraintMode::Reader);
            lock.release(1, ConstraintMode::Reader);
        })
    });
    g.bench_function("reentrant_depth4", |b| {
        b.iter(|| {
            for _ in 0..4 {
                lock.acquire(1, ConstraintMode::Writer);
            }
            for _ in 0..4 {
                lock.release(1, ConstraintMode::Writer);
            }
        })
    });
    g.finish();
}

fn bench_flow_execution(c: &mut Criterion) {
    use flux_runtime::{FluxServer, NodeOutcome, NodeRegistry, SourceOutcome};
    let mut g = c.benchmark_group("flow");
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));

    // Per-flow coordination overhead: a 5-node pipeline of no-op nodes.
    const SRC: &str = "
        Gen () => (int x);
        A (int x) => (int x);
        B (int x) => (int x);
        C (int x) => (int x);
        D (int x) => (int x);
        E (int x) => ();
        source Gen => Flow;
        Flow = A -> B -> C -> D -> E;
        atomic C: {state};
    ";
    let build = |profile: bool| {
        let program = flux_core::compile(SRC).unwrap();
        let mut reg: NodeRegistry<u64> = NodeRegistry::new();
        reg.source("Gen", || SourceOutcome::New(0));
        for n in ["A", "B", "C", "D", "E"] {
            reg.node(n, |x: &mut u64| {
                *x = x.wrapping_add(1);
                NodeOutcome::Ok
            });
        }
        if profile {
            FluxServer::with_profiling(program, reg).unwrap()
        } else {
            FluxServer::new(program, reg).unwrap()
        }
    };
    let server = build(false);
    g.bench_function("five_node_flow", |b| {
        b.iter(|| {
            let cursor = server.new_cursor(0, &0);
            black_box(server.run_flow(cursor, 0));
        })
    });
    let profiled = build(true);
    g.bench_function("five_node_flow_profiled", |b| {
        b.iter(|| {
            let cursor = profiled.new_cursor(0, &0);
            black_box(profiled.run_flow(cursor, 0));
        })
    });
    g.finish();
}

fn bench_sim(c: &mut Criterion) {
    use flux_core::model::ModelParams;
    use flux_sim::{FluxSimulation, SimConfig};
    let mut g = c.benchmark_group("sim");
    g.measurement_time(Duration::from_secs(3));
    g.warm_up_time(Duration::from_millis(500));
    let program = flux_core::compile(flux_core::fixtures::IMAGE_SERVER).unwrap();
    let mut params = ModelParams::uniform(&program, 0.001, 0.004);
    params.set_dispatch_probs(&program, "Handler", &[0.7, 0.3]);
    g.bench_function("image_server_10s_sim", |b| {
        b.iter(|| {
            let report = FluxSimulation::new(
                &program,
                params.clone(),
                SimConfig {
                    cpus: 4,
                    duration_s: 10.0,
                    warmup_s: 1.0,
                    ..SimConfig::default()
                },
            )
            .run();
            black_box(report.completed)
        })
    });
    g.finish();
}

fn bench_net(c: &mut Criterion) {
    let mut g = c.benchmark_group("net");
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));
    g.throughput(Throughput::Bytes(64 * 1024));
    g.bench_function("mem_pipe_64KiB", |b| {
        use std::io::{Read as _, Write as _};
        let (mut a, mut bconn) = flux_net::MemConn::pair();
        let chunk = vec![7u8; 64 * 1024];
        let mut sink = vec![0u8; 64 * 1024];
        // Reader thread drains so writes never see backpressure.
        let counter = Arc::new(AtomicU64::new(0));
        let c2 = counter.clone();
        std::thread::spawn(move || loop {
            match bconn.read(&mut sink) {
                Ok(0) | Err(_) => return,
                Ok(n) => {
                    c2.fetch_add(n as u64, Ordering::Relaxed);
                }
            }
        });
        b.iter(|| {
            a.write_all(black_box(&chunk)).unwrap();
        });
    });
    g.finish();
}

fn bench_place(c: &mut Criterion) {
    use flux_core::model::ModelParams;
    let mut g = c.benchmark_group("place");
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(500));
    let program = flux_core::compile(flux_servers::bt::FLUX_SRC).unwrap();
    let params = ModelParams::uniform(&program, 0.001, 0.01);
    g.bench_function("traffic_matrix/bittorrent", |b| {
        b.iter(|| flux_core::TrafficMatrix::build(black_box(&program), black_box(&params)).unwrap())
    });
    for machines in [2usize, 8] {
        let cfg = flux_core::PlaceConfig {
            machines,
            ..Default::default()
        };
        g.bench_function(format!("guided/bittorrent_m{machines}"), |b| {
            b.iter(|| flux_core::place(black_box(&program), black_box(&params), &cfg).unwrap())
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_compiler,
    bench_substrates,
    bench_locks,
    bench_flow_execution,
    bench_sim,
    bench_net,
    bench_place
);
criterion_main!(benches);
