//! The pub/sub fan-out load generator: one publisher paced at a fixed
//! rate against N subscribers on one topic, measuring end-to-end
//! fan-out latency — publish write to `MSG` arrival at each
//! subscriber.
//!
//! The publisher embeds the send time (nanoseconds since a shared
//! in-process epoch) as the published value; the server's `MSG` line
//! echoes the value of the publish that triggered the aggregation
//! round (`<last>`), so every subscriber timestamps deliveries without
//! any side channel and without clock skew. Latencies therefore
//! include the whole pipeline: source parse, topic-pinned aggregation
//! on the home shard, the single payload encode, and N shared-buffer
//! submissions with their drains.

use flux_net::MemNet;
use std::io::{BufRead as _, BufReader, Write as _};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Aggregated measurements from one pub/sub fan-out run.
#[derive(Debug, Clone)]
pub struct PubSubLoadReport {
    pub subscribers: usize,
    pub publish_hz: f64,
    pub duration: Duration,
    /// Publishes sent during the measurement window.
    pub publishes: u64,
    /// `MSG` deliveries received across all subscribers during the
    /// measurement window.
    pub deliveries: u64,
    /// Malformed lines or I/O errors observed by subscribers.
    pub errors: u64,
    pub mean_latency: Duration,
    pub p50_latency: Duration,
    pub p95_latency: Duration,
    pub p99_latency: Duration,
}

impl PubSubLoadReport {
    /// Deliveries per second across all subscribers.
    pub fn deliveries_per_sec(&self) -> f64 {
        self.deliveries as f64 / self.duration.as_secs_f64()
    }
}

/// Runs one publisher at `publish_hz` against `subscribers` subscribers
/// of a single topic on the pub/sub server at `addr`, measuring for
/// `duration` after `warmup`.
///
/// The subscriber latency sample pool is capped at one million entries
/// (like the web load generator); at 1024 subscribers x hundreds of
/// publishes per second that cap can bite, so samples beyond it are
/// dropped — the percentiles still summarize an unbiased prefix of the
/// window.
pub fn run_pubsub_load(
    net: &Arc<MemNet>,
    addr: &str,
    subscribers: usize,
    publish_hz: f64,
    duration: Duration,
    warmup: Duration,
) -> PubSubLoadReport {
    const TOPIC: &str = "firehose";
    let epoch = Instant::now();
    let stop = Arc::new(AtomicBool::new(false));
    let measuring = Arc::new(AtomicBool::new(false));
    let deliveries = Arc::new(AtomicU64::new(0));
    let errors = Arc::new(AtomicU64::new(0));
    let latency_sum_ns = Arc::new(AtomicU64::new(0));
    let latencies: Arc<parking_lot::Mutex<Vec<u64>>> =
        Arc::new(parking_lot::Mutex::new(Vec::new()));
    let done = Arc::new(AtomicUsize::new(0));

    let mut joins = Vec::with_capacity(subscribers);
    for sid in 0..subscribers {
        let net = net.clone();
        let addr = addr.to_string();
        let stop = stop.clone();
        let measuring = measuring.clone();
        let deliveries = deliveries.clone();
        let errors = errors.clone();
        let latency_sum_ns = latency_sum_ns.clone();
        let latencies = latencies.clone();
        let done = done.clone();
        joins.push(
            std::thread::Builder::new()
                .name(format!("pubsubload-{sid}"))
                .spawn(move || {
                    let run = || -> std::io::Result<()> {
                        let mut conn = net.connect(&addr)?;
                        writeln!(conn, "SUB {TOPIC}")?;
                        let mut reader = BufReader::new(conn);
                        let mut line = String::new();
                        reader.read_line(&mut line)?; // +OK
                        while !stop.load(Ordering::Relaxed) {
                            line.clear();
                            if reader.read_line(&mut line)? == 0 {
                                break; // server closed
                            }
                            let now = epoch.elapsed().as_nanos() as u64;
                            if !measuring.load(Ordering::Relaxed) {
                                continue;
                            }
                            // MSG <topic> <seq> <count> <topk> <last>
                            let Some(sent) = line
                                .trim_end()
                                .rsplit(' ')
                                .next()
                                .and_then(|v| v.parse::<u64>().ok())
                            else {
                                errors.fetch_add(1, Ordering::Relaxed);
                                continue;
                            };
                            let dt = now.saturating_sub(sent);
                            deliveries.fetch_add(1, Ordering::Relaxed);
                            latency_sum_ns.fetch_add(dt, Ordering::Relaxed);
                            let mut l = latencies.lock();
                            if l.len() < 1_000_000 {
                                l.push(dt);
                            }
                        }
                        Ok(())
                    };
                    if run().is_err() {
                        errors.fetch_add(1, Ordering::Relaxed);
                    }
                    done.fetch_add(1, Ordering::Relaxed);
                })
                .expect("spawn subscriber"),
        );
    }

    // The paced publisher. It keeps publishing after `stop` until every
    // subscriber thread has exited: subscribers block in `read_line`,
    // so the shutdown signal only reaches them as one more `MSG`.
    let publisher = {
        let net = net.clone();
        let addr = addr.to_string();
        let stop = stop.clone();
        let measuring = measuring.clone();
        let done = done.clone();
        let publishes = Arc::new(AtomicU64::new(0));
        let p2 = publishes.clone();
        let interval = Duration::from_secs_f64(1.0 / publish_hz.max(1.0));
        let handle = std::thread::Builder::new()
            .name("pubsubload-pub".into())
            .spawn(move || {
                let mut conn = net.connect(&addr).expect("publisher connects");
                let mut next = Instant::now();
                let drain_deadline = loop {
                    let now = Instant::now();
                    if now < next {
                        std::thread::sleep(next - now);
                    }
                    next += interval;
                    let stamp = epoch.elapsed().as_nanos() as u64;
                    if writeln!(conn, "PUB {TOPIC} {stamp}").is_err() {
                        break Instant::now();
                    }
                    if measuring.load(Ordering::Relaxed) {
                        p2.fetch_add(1, Ordering::Relaxed);
                    }
                    if stop.load(Ordering::Relaxed) {
                        break Instant::now() + Duration::from_secs(5);
                    }
                };
                // Flush rounds so every blocked subscriber wakes, sees
                // `stop` and exits.
                while done.load(Ordering::Relaxed) < subscribers && Instant::now() < drain_deadline
                {
                    let stamp = epoch.elapsed().as_nanos() as u64;
                    if writeln!(conn, "PUB {TOPIC} {stamp}").is_err() {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
            })
            .expect("spawn publisher");
        (handle, publishes)
    };

    std::thread::sleep(warmup);
    measuring.store(true, Ordering::SeqCst);
    let t0 = Instant::now();
    std::thread::sleep(duration);
    measuring.store(false, Ordering::SeqCst);
    let measured = t0.elapsed();
    stop.store(true, Ordering::SeqCst);
    let (pub_handle, publishes) = publisher;
    let _ = pub_handle.join();
    for j in joins {
        let _ = j.join();
    }

    let delivered = deliveries.load(Ordering::Relaxed);
    let mut lat = latencies.lock().clone();
    PubSubLoadReport {
        subscribers,
        publish_hz,
        duration: measured,
        publishes: publishes.load(Ordering::Relaxed),
        deliveries: delivered,
        errors: errors.load(Ordering::Relaxed),
        mean_latency: Duration::from_nanos(
            latency_sum_ns
                .load(Ordering::Relaxed)
                .checked_div(delivered)
                .unwrap_or(0),
        ),
        p50_latency: crate::percentile_ns(&mut lat, 0.50),
        p95_latency: crate::percentile_ns(&mut lat, 0.95),
        p99_latency: crate::percentile_ns(&mut lat, 0.99),
    }
}
