//! Figure 4: BitTorrent peer under load — whole-file completions per
//! second, network goodput (Mb/s) and per-block latency versus client
//! count, comparing the Flux peer (three runtimes) with the
//! CTorrent-like threaded baseline.
//!
//! Workload per §4.3: clients continuously request random pieces of a
//! shared file from a seeder, disconnect when complete, and reconnect
//! (all peers unchoked; single seeder maximizes load). The in-memory
//! link is capacity-shaped so goodput *saturates* as in the paper's
//! middle panel — the crossover where every server plateaus at the link
//! rate while latency keeps climbing.
//!
//! Knobs: `FLUX_BENCH_SECS`, `FLUX_BENCH_FULL=1` (54 MB file as in the
//! paper; default 2 MB), `FLUX_BENCH_LINK_MBPS` (default 400).

use flux_baselines::CtServer;
use flux_bench::{env_or, f, ms, run_bt_load, Table};
use flux_bittorrent::{synth_file, Metainfo};
use flux_net::MemNet;
use flux_runtime::RuntimeKind;
use std::time::Duration;

fn main() {
    let secs: f64 = env_or("FLUX_BENCH_SECS", 2.0);
    let full: bool = env_or("FLUX_BENCH_FULL", 0u8) == 1;
    let file_len = if full { 54 << 20 } else { 2 << 20 };
    let link_mbps: f64 = env_or("FLUX_BENCH_LINK_MBPS", 400.0);
    let clients: Vec<usize> = if full {
        vec![2, 4, 8, 16, 32, 64, 128]
    } else {
        vec![2, 8, 24, 48]
    };
    let workers = env_or("FLUX_BENCH_WORKERS", 8usize);
    let duration = Duration::from_secs_f64(secs);
    let warmup = Duration::from_secs_f64((secs / 4.0).clamp(0.25, 5.0));

    eprintln!("# seeding a {file_len}-byte file; link {link_mbps} Mb/s");
    let file = synth_file(file_len, 42);
    let meta = Metainfo::from_file("mem:tracker", "bench.bin", 256 * 1024, &file);

    let mut rows: Vec<(String, usize, f64, f64, f64)> = Vec::new();
    for &n in &clients {
        for server in ["ctorrent", "flux-threadpool", "flux-event", "flux-thread"] {
            if server == "flux-thread" && n > 24 && !full {
                continue;
            }
            let net = MemNet::new();
            net.set_link_capacity(Some(link_mbps * 1e6 / 8.0));
            let listener = net.listen("seed").unwrap();
            let report;
            match server {
                "ctorrent" => {
                    let s = CtServer::start(Box::new(listener), meta.clone(), file.clone());
                    report = run_bt_load(&net, "seed", &meta, n, duration, warmup);
                    s.stop();
                }
                _ => {
                    let kind = match server {
                        "flux-threadpool" => RuntimeKind::ThreadPool { workers },
                        "flux-event" => RuntimeKind::event_driven_sharded(1, workers),
                        _ => RuntimeKind::ThreadPerFlow,
                    };
                    let s = flux_servers::ServerBuilder::new(flux_servers::bt::BtConfig {
                        listener: Box::new(listener),
                        meta: meta.clone(),
                        file: file.clone(),
                        tracker_dial: None,
                        peer_id: *b"-FX0001-benchseed001",
                        addr: "mem:seed".into(),
                        tracker_period: Duration::from_secs(3600),
                        choke_period: Duration::from_secs(3600),
                        keepalive_period: Duration::from_secs(3600),
                    })
                    .runtime(kind)
                    .spawn();
                    report = run_bt_load(&net, "seed", &meta, n, duration, warmup);
                    flux_servers::bt::stop(s);
                }
            }
            eprintln!(
                "# {server:>15} clients={n:<4} {:>7} compl/s {:>8} Mb/s block {} ms",
                f(report.completions_per_s()),
                f(report.mbps()),
                ms(report.mean_block_latency)
            );
            rows.push((
                server.to_string(),
                n,
                report.completions_per_s(),
                report.mbps(),
                report.mean_block_latency.as_secs_f64() * 1e3,
            ));
        }
    }

    let mut t1 = Table::new(
        "Figure 4 (a): completions per second vs clients",
        &["server", "clients", "completions_per_s"],
    );
    let mut t2 = Table::new(
        "Figure 4 (b): network goodput (Mb/s) vs clients — saturates at the link",
        &["server", "clients", "mbps"],
    );
    let mut t3 = Table::new(
        "Figure 4 (c): per-block latency (ms) vs clients",
        &["server", "clients", "block_ms"],
    );
    for (s, n, c, m, l) in &rows {
        t1.row(&[s.clone(), n.to_string(), f(*c)]);
        t2.row(&[s.clone(), n.to_string(), f(*m)]);
        t3.row(&[s.clone(), n.to_string(), f(*l)]);
    }
    print!("{}", t1.render());
    println!();
    print!("{}", t2.render());
    println!();
    print!("{}", t3.render());
    println!();
    println!("# CSV");
    println!("{}", t2.to_csv());
}
