//! Figure 7: the Flux program graph for the BitTorrent server, emitted
//! as Graphviz DOT (pipe into `dot -Tsvg` to render). Pass `--flat` for
//! the flattened execution graph with lock and end vertices.

use flux_core::codegen::{dot::DotGenerator, CodeGenerator};

fn main() {
    let flattened = std::env::args().any(|a| a == "--flat");
    let program =
        flux_core::compile(flux_servers::bt::FLUX_SRC).expect("BitTorrent program compiles");
    let gen = DotGenerator { flattened };
    print!("{}", gen.generate(&program));
    eprintln!(
        "# {} sources, {} nodes; paths per flow: {}",
        program.flows.len(),
        program.graph.nodes.len(),
        program
            .flows
            .iter()
            .map(|f| f.paths.num_paths.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
}
