//! Figure 3: web-server throughput (Mb/s) and mean latency versus
//! concurrent clients, comparing:
//!
//! * `flux-threadpool` — the Flux web server on the thread-pool runtime
//! * `flux-event`      — the Flux web server on the event-driven runtime
//!   (paper configuration: one dispatcher shard)
//! * `flux-event-s2`, `flux-event-s4` — the same server with 2 and 4
//!   dispatcher shards (session-affine routing + work stealing)
//! * `flux-staged`     — the Flux web server on the SEDA-style staged
//!   runtime (our §3.2.3 extension; compare with hand-written haboob)
//! * `flux-thread`     — the naive one-thread-per-flow runtime
//! * `knot`            — the hand-written threaded baseline (Capriccio's knot)
//! * `haboob`          — the mini-SEDA staged baseline (SEDA's Haboob)
//!
//! Workload per §4.2: SPECweb99-like static set (~32 MB, Zipf), five
//! keep-alive requests per connection, then reconnect. Expected shape:
//! knot ≈ flux-threadpool ≈ flux-event > haboob >> flux-thread at high
//! client counts, with the event runtime showing its small-client
//! latency "hiccup" from simulated async I/O.
//!
//! Environment knobs: `FLUX_BENCH_SECS` (seconds per point, default 2),
//! `FLUX_BENCH_FULL=1` (more client points, 32 MB set).

use flux_baselines::{KnotServer, SedaConfig, SedaServer};
use flux_bench::{env_or, f, ms, run_web_load, Table, WebSet};
use flux_net::MemNet;
use flux_runtime::RuntimeKind;
use std::sync::Arc;
use std::time::Duration;

struct Point {
    server: &'static str,
    clients: usize,
    mbps: f64,
    rps: f64,
    mean_ms: f64,
    p95_ms: f64,
}

fn main() {
    let secs: f64 = env_or("FLUX_BENCH_SECS", 2.0);
    let full: bool = env_or("FLUX_BENCH_FULL", 0u8) == 1;
    let set_bytes = if full { 32 << 20 } else { 4 << 20 };
    let clients: Vec<usize> = if full {
        vec![4, 8, 16, 32, 64, 128, 256, 512]
    } else {
        vec![4, 16, 64, 128]
    };
    let workers = env_or("FLUX_BENCH_WORKERS", 8usize);
    let duration = Duration::from_secs_f64(secs);
    let warmup = Duration::from_secs_f64((secs / 4.0).clamp(0.25, 5.0));

    eprintln!("# building {}-byte working set...", set_bytes);
    let set = Arc::new(WebSet::build(set_bytes));
    eprintln!(
        "# set: {} files, {} bytes; {} s/point, clients {:?}",
        set.len(),
        set.total_bytes(),
        secs,
        clients
    );

    let mut points: Vec<Point> = Vec::new();
    for &n in &clients {
        for server in [
            "knot",
            "haboob",
            "flux-threadpool",
            "flux-event",
            "flux-event-s2",
            "flux-event-s4",
            "flux-staged",
            "flux-thread",
        ] {
            // The naive runtime is painfully slow at high load; skip the
            // biggest points unless FULL, as the paper's graph also
            // truncates it.
            if server == "flux-thread" && n > 128 && !full {
                continue;
            }
            let net = MemNet::new();
            let listener = net.listen("web").unwrap();
            let report;
            match server {
                "knot" => {
                    let s = KnotServer::start(Box::new(listener), set.docroot.clone(), workers);
                    report = run_web_load(&net, "web", &set, n, duration, warmup);
                    s.stop();
                }
                "haboob" => {
                    let s = SedaServer::start(
                        Box::new(listener),
                        set.docroot.clone(),
                        SedaConfig {
                            parse_threads: workers / 4 + 1,
                            handle_threads: workers / 2 + 1,
                            send_threads: workers / 4 + 1,
                            queue_depth: 1024,
                        },
                    );
                    report = run_web_load(&net, "web", &set, n, duration, warmup);
                    s.stop();
                }
                _ => {
                    let kind = match server {
                        "flux-threadpool" => RuntimeKind::ThreadPool { workers },
                        // The shard sweep of the event runtime: the
                        // paper's single dispatcher versus 2- and 4-core
                        // sharded dispatch.
                        "flux-event" => RuntimeKind::event_driven_sharded(1, workers),
                        "flux-event-s2" => RuntimeKind::event_driven_sharded(2, workers),
                        "flux-event-s4" => RuntimeKind::event_driven_sharded(4, workers),
                        "flux-staged" => RuntimeKind::Staged {
                            stage_workers: workers / 4 + 1,
                        },
                        _ => RuntimeKind::ThreadPerFlow,
                    };
                    let s = flux_servers::ServerBuilder::new(flux_servers::web::WebSpec::new(
                        Box::new(listener),
                        set.docroot.clone(),
                    ))
                    .runtime(kind)
                    .spawn();
                    report = run_web_load(&net, "web", &set, n, duration, warmup);
                    flux_servers::web::stop(s);
                }
            }
            eprintln!(
                "# {server:>15} clients={n:<4} {:>8} req/s {:>8} Mb/s mean {} ms",
                f(report.rps()),
                f(report.mbps()),
                ms(report.mean_latency)
            );
            points.push(Point {
                server,
                clients: n,
                mbps: report.mbps(),
                rps: report.rps(),
                mean_ms: report.mean_latency.as_secs_f64() * 1e3,
                p95_ms: report.p95_latency.as_secs_f64() * 1e3,
            });
        }
    }

    let mut tput = Table::new(
        "Figure 3 (left): throughput (Mb/s) vs concurrent clients",
        &["server", "clients", "Mb/s", "req/s"],
    );
    let mut lat = Table::new(
        "Figure 3 (right): latency (ms) vs concurrent clients",
        &["server", "clients", "mean_ms", "p95_ms"],
    );
    for p in &points {
        tput.row(&[p.server.into(), p.clients.to_string(), f(p.mbps), f(p.rps)]);
        lat.row(&[
            p.server.into(),
            p.clients.to_string(),
            f(p.mean_ms),
            f(p.p95_ms),
        ]);
    }
    print!("{}", tput.render());
    println!();
    print!("{}", lat.render());
    println!();
    println!("# CSV");
    println!("{}", tput.to_csv());
}
