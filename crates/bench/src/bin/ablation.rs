//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **Constraint granularity** (§2.5.2's "granularity selection"):
//!    the same pipeline with (a) fine per-node constraints, (b) one
//!    coarse constraint on the whole abstract node, (c) a reader
//!    constraint — measured as flow throughput on the thread pool.
//!    Predicted *and* measured: this is exactly the trade-off the paper
//!    says the generated simulator helps explore before deployment.
//! 2. **Event-runtime I/O pool size**: throughput of a blocking-node
//!    workload as the helper pool grows.
//! 3. **Session-scoped constraints in the simulator** (paper §8 future
//!    work): the conservative treat-as-global prediction of §5.1 versus
//!    the session-aware extension, against the measured runtime (whose
//!    lock manager has always been session-scoped). The conservative
//!    simulator under-predicts session workloads; the extension tracks
//!    the measurement.
//! 4. **Constraint-guided cluster placement** (paper §8 future work):
//!    cross-machine hand-off traffic and distributed-lock rate of the
//!    constraint-guided partitioner versus a constraint-blind
//!    round-robin baseline, on the paper's image server and BitTorrent
//!    programs.
//! 7. **Poller backends**: the slow-reader web workload over real TCP,
//!    poll(2) versus epoll(7) versus io_uring (readiness mode, when the
//!    host kernel allows it) behind the same `Reactor`, swept over
//!    connection counts — the regime where poll's O(watched fds) per
//!    wakeup starts to tell, and where uring's batched one-syscall
//!    rounds cut epoll's per-re-arm `epoll_ctl`s. Writes
//!    `BENCH_poller_backends.json`.
//! 8. **Hot path**: old per-event delivery and per-response allocation
//!    versus the slab/batch/pool hot path (slot-indexed tables, one
//!    queue lock per readiness burst, recycled payload buffers), on the
//!    same slow-reader TCP web workload at {64, 256, 1024} connections.
//!    Writes `BENCH_hot_path.json` with host_cores and thread-pinning
//!    state alongside each point.
//! 9. **Adaptive shards**: static versus adaptive dispatcher sizing
//!    under a bursty open-loop shape (idle → spike → idle) on the
//!    SPECweb-like keep-alive workload. The adaptive controller must
//!    park shards during the idle phases (recorded as an active-shard
//!    trajectory) while costing ≤ ~5% throughput against the static
//!    baseline during the steady spike. Writes
//!    `BENCH_adaptive_shards.json`.
//! 10. **Shard queue kind**: the Mutex/Condvar shard queue versus the
//!     lock-free MPSC ring (bounded Vyukov slots + overflow sidecar),
//!     on the SPECweb-like MemNet keep-alive workload at shard counts
//!     {1, 4, 8}. Records rps/p95 per point for both kinds plus the
//!     ring's claim/overflow/steal counters, and the ring-vs-mutex
//!     throughput ratio at 4 shards as the headline. Writes
//!     `BENCH_shard_queue.json` (1-core hosts annotated per point: no
//!     parallel contention there, so the ring's CAS path shows only its
//!     constant-factor delta).
//! 11. **Stage fusion**: fused straight-line segments (one queue turn
//!     per chain) versus the per-vertex oracle on the MemNet web
//!     workload at {1, 4} shards. Writes `BENCH_fused_stages.json`.
//! 12. **Pub/sub fan-out**: end-to-end fan-out latency percentiles of
//!     the streaming pub/sub server — one paced publisher, N
//!     subscribers of one topic, every `MSG` encoded once and
//!     multicast as a refcounted shared payload — swept over
//!     subscriber counts {64, 256, 1024}, adaptive shard controller
//!     on. Writes `BENCH_pubsub_fanout.json` with server-side
//!     publish/delivery/coalesce counters next to each point.
//! 13. **Overload control**: the real-TCP web server under a C1M-shape
//!     connection load — ~100k mostly-idle held connections (clamped
//!     to the fd budget) plus an active keep-alive set driven by the
//!     **open-loop** generator ([`flux_bench::run_open_loop`]), with
//!     bounded shard queues, the accept governor and idle reaping all
//!     armed. A capacity probe ramps the offered rate, then a 2x
//!     overload phase must keep goodput near capacity, keep the p99 of
//!     *admitted* requests bounded, and shed the excess as counted,
//!     client-visible 503s — no silent drops. Writes
//!     `BENCH_overload.json` with the server-side conservation check
//!     (`offered == finished + shed`) and the memory envelope.
//!
//! Knobs: `FLUX_BENCH_SECS` (default 1.5 per point); `FLUX_BENCH_ONLY`
//! (comma-separated ablation numbers, e.g. `FLUX_BENCH_ONLY=7`, default
//! all); `FLUX_BENCH_QUICK=1` shrinks ablations 7/8/9/11/12/13 to one
//! small point per mode (seconds, not minutes — the CI smoke legs that
//! catch compile or panic regressions without a full sweep; quick JSON
//! artifacts carry `"quick": true`).

use flux_bench::{env_or, f, Table};
use flux_core::model::ModelParams;
use flux_runtime::{
    start, AdaptivePolicy, FluxServer, NodeOutcome, NodeRegistry, OverloadPolicy, RuntimeKind,
    SourceOutcome,
};
use flux_sim::{FluxSimulation, SimConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Three constraint layouts for the same 3-stage pipeline.
fn program(granularity: &str) -> String {
    let constraints = match granularity {
        "fine" => "atomic A: {s1}; atomic B: {s2}; atomic C: {s3};",
        "coarse" => "atomic Flow: {all};",
        "readers" => "atomic A: {s?}; atomic B: {s?}; atomic C: {s?};",
        _ => "",
    };
    format!(
        "Gen () => (int x);\n\
         A (int x) => (int x);\n\
         B (int x) => (int x);\n\
         C (int x) => (int x);\n\
         Out (int x) => ();\n\
         source Gen => Flow;\n\
         Flow = A -> B -> C -> Out;\n\
         {constraints}\n"
    )
}

fn run_granularity(granularity: &str, workers: usize, secs: f64) -> (f64, f64) {
    let src = program(granularity);
    let compiled = flux_core::compile(&src).expect("ablation program compiles");

    // Predicted throughput from the simulator (0.5 ms per node). Drive
    // arrivals at 90% of the unconstrained CPU capacity — like the
    // paper's load sweeps, the simulator is meaningful up to saturation;
    // sustained open-loop overload only grows the backlog.
    let mut params = ModelParams::uniform(&compiled, 0.0005, 0.0005);
    params.set_node_service(&compiled, "Out", 0.0);
    let capacity = workers as f64 / (3.0 * 0.0005);
    params.flows[0].interarrival_mean_s = 1.0 / (0.9 * capacity);
    let predicted = FluxSimulation::new(
        &compiled,
        params,
        SimConfig {
            cpus: workers,
            duration_s: 30.0,
            warmup_s: 3.0,
            exponential_service: false,
            poisson_arrivals: false,
            ..SimConfig::default()
        },
    )
    .run()
    .throughput;

    // Measured: nodes spin ~0.5 ms. A fixed flow count keeps the run
    // bounded (an open-loop source would flood the pool queue faster
    // than a small host drains it); throughput is count / drain time.
    let total = (secs * 1500.0) as u64;
    let produced = Arc::new(AtomicU64::new(0));
    let p2 = produced.clone();
    let mut reg: NodeRegistry<u64> = NodeRegistry::new();
    reg.source("Gen", move || {
        if p2.fetch_add(1, Ordering::Relaxed) >= total {
            return SourceOutcome::Shutdown;
        }
        SourceOutcome::New(0)
    });
    let spin = |_: &mut u64| {
        let t0 = std::time::Instant::now();
        while t0.elapsed() < Duration::from_micros(500) {
            std::hint::spin_loop();
        }
        NodeOutcome::Ok
    };
    for n in ["A", "B", "C"] {
        reg.node(n, spin);
    }
    reg.node("Out", |_| NodeOutcome::Ok);
    let server = Arc::new(FluxServer::new(compiled, reg).unwrap());
    let t0 = std::time::Instant::now();
    let handle = start(server.clone(), RuntimeKind::ThreadPool { workers });
    handle.join();
    let measured = server.stats.finished() as f64 / t0.elapsed().as_secs_f64();
    (predicted, measured)
}

fn run_io_pool(io_workers: usize, secs: f64) -> f64 {
    const SRC: &str = "
        Gen () => (int x);
        Io (int x) => (int x);
        Out (int x) => ();
        source Gen => Flow;
        Flow = Io -> Out;
        blocking Io;
    ";
    let compiled = flux_core::compile(SRC).unwrap();
    // Fixed flow count sized so every pool spends roughly `secs` draining
    // at its ideal rate (io_workers / 1 ms).
    let total = (secs * 1000.0) as u64 * io_workers as u64;
    let produced = Arc::new(AtomicU64::new(0));
    let p2 = produced.clone();
    let mut reg: NodeRegistry<u64> = NodeRegistry::new();
    reg.source("Gen", move || {
        if p2.fetch_add(1, Ordering::Relaxed) >= total {
            return SourceOutcome::Shutdown;
        }
        SourceOutcome::New(0)
    });
    reg.node_blocking("Io", |_| {
        std::thread::sleep(Duration::from_millis(1)); // 1 ms blocking call
        NodeOutcome::Ok
    });
    reg.node("Out", |_| NodeOutcome::Ok);
    let server = Arc::new(FluxServer::new(compiled, reg).unwrap());
    let t0 = std::time::Instant::now();
    let handle = start(
        server.clone(),
        RuntimeKind::event_driven_sharded(1, io_workers),
    );
    handle.join();
    // Dispatcher drains after sources stop.
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    let started = server.stats.started.load(Ordering::Relaxed);
    while server.stats.finished() < started && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    server.stats.finished() as f64 / t0.elapsed().as_secs_f64()
}

/// Ablation 5 (sharded event runtime): web-workload throughput as the
/// event dispatcher sweeps shard counts. One measured point per shard
/// count on the same SPECweb-like keep-alive workload as Figure 3.
fn run_event_shards(shards: usize, workers: usize, secs: f64) -> (flux_bench::LoadReport, u64) {
    use flux_bench::{run_web_load, WebSet};
    use flux_net::MemNet;

    let set = std::sync::Arc::new(WebSet::build(2 << 20));
    let net = MemNet::new();
    let listener = net.listen("web").unwrap();
    let server = flux_servers::ServerBuilder::new(flux_servers::web::WebSpec::new(
        Box::new(listener),
        set.docroot.clone(),
    ))
    .runtime(RuntimeKind::event_driven_sharded(shards, workers))
    .spawn();
    let report = run_web_load(
        &net,
        "web",
        &set,
        64,
        Duration::from_secs_f64(secs),
        Duration::from_secs_f64((secs / 4.0).clamp(0.25, 2.0)),
    );
    let steals = server.handle.server().stats.total_steals();
    flux_servers::web::stop(server);
    (report, steals)
}

/// Minimal JSON encoder for the shard-sweep record (no serde in the
/// offline build).
fn shards_json(rows: &[(usize, flux_bench::LoadReport, u64)]) -> String {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = format!(
        "{{\n  \"bench\": \"event_shards_web\",\n  \"host_cores\": {cores},\n  \"points\": [\n"
    );
    for (i, (shards, r, steals)) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"shards\": {}, \"rps\": {:.1}, \"mbps\": {:.2}, \
             \"mean_ms\": {:.3}, \"p95_ms\": {:.3}, \"steals\": {}}}{}\n",
            shards,
            r.rps(),
            r.mbps(),
            r.mean_latency.as_secs_f64() * 1e3,
            r.p95_latency.as_secs_f64() * 1e3,
            steals,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Ablation 6 (reactor write path): web-workload throughput with
/// slow-reader clients over real TCP, blocking-write versus
/// reactor-write `Write` node. The 8 MiB responses overrun the kernel's
/// socket buffers, so each one drains at the clients' throttled read
/// rate for hundreds of milliseconds; blocking writes park an I/O
/// worker per draining response, reactor writes leave the drain to the
/// poll thread's `POLLOUT` batch.
fn run_reactor_writes(
    mode: flux_servers::web::WriteMode,
    secs: f64,
) -> (flux_bench::LoadReport, u64, u64) {
    use flux_net::{Listener as _, TcpAcceptor};

    let mut docroot = flux_http::DocRoot::new();
    let body: Vec<u8> = (0..8 * 1024 * 1024).map(|i| (i % 253) as u8).collect();
    docroot.insert("/big.bin", body);
    let acceptor = TcpAcceptor::bind("127.0.0.1:0").expect("bind loopback");
    let addr = acceptor.local_addr();
    let server = flux_servers::ServerBuilder::new(
        flux_servers::web::WebSpec::new(Box::new(acceptor), docroot).write_mode(mode),
    )
    .runtime(RuntimeKind::event_driven_sharded(2, 4))
    .spawn();
    let report = flux_bench::run_slow_reader_tcp_load(
        &addr,
        "/big.bin",
        16,
        Duration::from_secs_f64(secs),
        32 * 1024,
        Duration::from_millis(1),
    );
    let counters = server
        .handle
        .server()
        .stats
        .net_counters()
        .expect("web server installs net counters");
    let (drained, would_block) = (counters.writes_drained(), counters.write_would_block());
    flux_servers::web::stop(server);
    (report, drained, would_block)
}

/// Minimal JSON encoder for the reactor-write record.
fn reactor_writes_json(rows: &[(&str, flux_bench::LoadReport, u64, u64)]) -> String {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = format!(
        "{{\n  \"bench\": \"reactor_writes_web_slow_readers\",\n  \"host_cores\": {cores},\n  \"points\": [\n"
    );
    for (i, (mode, r, drained, would_block)) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"rps\": {:.1}, \"mbps\": {:.2}, \
             \"mean_ms\": {:.3}, \"p95_ms\": {:.3}, \"writes_drained\": {}, \
             \"write_would_block\": {}}}{}\n",
            mode,
            r.rps(),
            r.mbps(),
            r.mean_latency.as_secs_f64() * 1e3,
            r.p95_latency.as_secs_f64() * 1e3,
            drained,
            would_block,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Ablation 7 (poller backends): the slow-reader web workload over real
/// TCP with `clients` concurrent throttled readers, on one readiness
/// backend. Every connection keeps a watch registered in the reactor
/// for most of its life (its response drains at the client's throttled
/// rate), so the watched-fd count tracks the client count — the regime
/// where poll(2)'s O(watched) wakeups diverge from epoll's O(ready).
/// Returns the load report and the backend actually used.
fn run_poller_backend(
    backend: flux_net::PollerBackend,
    clients: usize,
    secs: f64,
) -> (flux_bench::LoadReport, &'static str) {
    use flux_net::{Listener as _, TcpAcceptor};

    let mut docroot = flux_http::DocRoot::new();
    // 256 KiB responses: big enough to overrun socket buffers and park
    // a POLLOUT drain per connection, small enough that 1024 concurrent
    // drains stay within container memory.
    let body: Vec<u8> = (0..256 * 1024).map(|i| (i % 253) as u8).collect();
    docroot.insert("/chunk.bin", body);
    let acceptor = TcpAcceptor::bind("127.0.0.1:0").expect("bind loopback");
    let addr = acceptor.local_addr();
    let server = flux_servers::ServerBuilder::new(flux_servers::web::WebSpec::new(
        Box::new(acceptor),
        docroot,
    ))
    .runtime(RuntimeKind::event_driven_sharded(2, 4))
    .backend(backend)
    .spawn();
    let name = server.ctx.driver.poller_backend();
    let report = flux_bench::run_slow_reader_tcp_load(
        &addr,
        "/chunk.bin",
        clients,
        Duration::from_secs_f64(secs),
        16 * 1024,
        Duration::from_millis(1),
    );
    flux_servers::web::stop(server);
    (report, name)
}

/// Minimal JSON encoder for the poller-backend record. The
/// 1024-connection points saturate the load generator itself on small
/// hosts (1024 client threads against a 1–2 core container), so they
/// are annotated as bounds on the *harness*, not the server.
fn poller_backends_json(
    rows: &[(&'static str, usize, flux_bench::LoadReport)],
    quick: bool,
) -> String {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = format!(
        "{{\n  \"bench\": \"poller_backends_web_slow_readers\",\n  \"host_cores\": {cores},\n  \"quick\": {quick},\n  \"points\": [\n"
    );
    for (i, (backend, clients, r)) in rows.iter().enumerate() {
        let note = if *clients >= 1024 {
            ", \"note\": \"load-generator-bound: 1024 client threads saturate the bench host \
             before the server; compare backends at 64-256 connections\""
        } else {
            ""
        };
        out.push_str(&format!(
            "    {{\"backend\": \"{}\", \"clients\": {}, \"rps\": {:.1}, \"mbps\": {:.2}, \
             \"mean_ms\": {:.3}, \"p95_ms\": {:.3}{}}}{}\n",
            backend,
            clients,
            r.rps(),
            r.mbps(),
            r.mean_latency.as_secs_f64() * 1e3,
            r.p95_latency.as_secs_f64() * 1e3,
            note,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Ablation 8 (hot path): one mode of the old-vs-new sweep. `PerEvent`
/// is the pre-slab behaviour (one event per poll, a fresh allocation
/// per response and request head); `Batched` is the slab/batch/pool
/// hot path. Same slow-reader TCP web workload as ablation 7, epoll
/// backend (the Linux default) for both. Returns the load report plus
/// the batch counters and pinning state recorded during the run.
struct HotPathPoint {
    report: flux_bench::LoadReport,
    batches: u64,
    batch_events: u64,
    pinning: String,
    reactor_pinned: bool,
}

fn run_hot_path(mode: flux_servers::web::HotPath, clients: usize, secs: f64) -> HotPathPoint {
    use flux_net::{Listener as _, TcpAcceptor};
    use std::sync::atomic::Ordering;

    let mut docroot = flux_http::DocRoot::new();
    let body: Vec<u8> = (0..256 * 1024).map(|i| (i % 253) as u8).collect();
    docroot.insert("/chunk.bin", body);
    let acceptor = TcpAcceptor::bind("127.0.0.1:0").expect("bind loopback");
    let addr = acceptor.local_addr();
    let server = flux_servers::ServerBuilder::new(
        flux_servers::web::WebSpec::new(Box::new(acceptor), docroot).hot_path(mode),
    )
    .runtime(RuntimeKind::event_driven_sharded(2, 4))
    .spawn();
    let report = flux_bench::run_slow_reader_tcp_load(
        &addr,
        "/chunk.bin",
        clients,
        Duration::from_secs_f64(secs),
        16 * 1024,
        Duration::from_millis(1),
    );
    let stats = &server.handle.server().stats;
    let (mut batches, mut batch_events) = (0u64, 0u64);
    if let Some(shards) = stats.shard_stats() {
        for s in shards.iter() {
            batches += s.batches.load(Ordering::Relaxed);
            batch_events += s.batch_events.load(Ordering::Relaxed);
        }
    }
    let pinning = stats.pinning.describe();
    let reactor_pinned = server.ctx.driver.reactor_pinned();
    flux_servers::web::stop(server);
    HotPathPoint {
        report,
        batches,
        batch_events,
        pinning,
        reactor_pinned,
    }
}

/// Minimal JSON encoder for the hot-path record: host_cores and the
/// pinning state ride alongside every point, per the perf-record
/// protocol (1-core containers cannot show parallel speedup, only
/// lock/allocation removal).
fn hot_path_json(rows: &[(&'static str, usize, HotPathPoint)], quick: bool) -> String {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = format!(
        "{{\n  \"bench\": \"hot_path_web_slow_readers\",\n  \"host_cores\": {cores},\n  \"quick\": {quick},\n  \"points\": [\n"
    );
    for (i, (mode, clients, p)) in rows.iter().enumerate() {
        let mut notes: Vec<&str> = Vec::new();
        if cores == 1 {
            notes.push(
                "1-core host: no parallel speedup available; deltas reflect \
                 lock/hash/allocation removal only",
            );
        }
        if *clients >= 1024 {
            notes.push(
                "load-generator-bound: 1024 client threads saturate the bench host \
                 before the server; compare modes at 64-256 connections",
            );
        }
        let note = if notes.is_empty() {
            String::new()
        } else {
            format!(", \"note\": \"{}\"", notes.join("; "))
        };
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"clients\": {}, \"rps\": {:.1}, \"mbps\": {:.2}, \
             \"mean_ms\": {:.3}, \"p95_ms\": {:.3}, \"batches\": {}, \"batch_events\": {}, \
             \"host_cores\": {}, \"pinning\": \"{}\", \"reactor_pinned\": {}{}}}{}\n",
            mode,
            clients,
            p.report.rps(),
            p.report.mbps(),
            p.report.mean_latency.as_secs_f64() * 1e3,
            p.report.p95_latency.as_secs_f64() * 1e3,
            p.batches,
            p.batch_events,
            cores,
            p.pinning,
            p.reactor_pinned,
            note,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Ablation 9 (adaptive shards): one phase of the bursty shape — its
/// load report window plus the active-shard envelope observed while it
/// ran.
struct AdaptivePhaseRow {
    phase: &'static str,
    t0_ms: u64,
    t1_ms: u64,
    rps: f64,
    p95_ms: f64,
    active_min: u64,
    active_max: u64,
}

/// One mode (static or adaptive) driven through idle → spike → idle.
struct AdaptiveModePoint {
    mode: &'static str,
    phases: Vec<AdaptivePhaseRow>,
    /// `(ms since start, active shards)` samples across the whole run.
    trajectory: Vec<(u64, u64)>,
    parks: u64,
    wakes: u64,
}

/// Drives one server (4 dispatcher shards, MemNet web workload) through
/// the bursty open-loop shape: an idle phase served by a trickle client
/// (one request per ~100 ms — enough to measure parked-state latency,
/// quiet enough that the controller sees idleness), a steady spike of
/// 32 keep-alive clients, then idle again. A sampler thread records the
/// active-shard trajectory at 20 ms resolution throughout.
/// Dispatcher shards for ablation 9 — shared by `run_adaptive_mode`
/// and the JSON encoder so the record's `shards` field and the
/// parked-shard gate number can never drift from the measured setup.
const ADAPTIVE_SHARDS: usize = 4;

fn run_adaptive_mode(mode: &'static str, policy: AdaptivePolicy, secs: f64) -> AdaptiveModePoint {
    use flux_bench::{run_web_load, WebSet};
    use flux_net::MemNet;
    use std::sync::atomic::AtomicBool;
    use std::time::Instant;

    let set = Arc::new(WebSet::build(2 << 20));
    let net = MemNet::new();
    let listener = net.listen("web").unwrap();
    let server = flux_servers::ServerBuilder::new(flux_servers::web::WebSpec::new(
        Box::new(listener),
        set.docroot.clone(),
    ))
    .runtime(RuntimeKind::EventDriven {
        shards: ADAPTIVE_SHARDS,
        io_workers: 4,
        adaptive: policy,
        queue: flux_runtime::ShardQueueKind::Mutex,
        overload: OverloadPolicy::Unbounded,
    })
    .spawn();
    let flux_srv = server.handle.server().clone();

    let t_start = Instant::now();
    let stop = Arc::new(AtomicBool::new(false));
    let trajectory: Arc<parking_lot::Mutex<Vec<(u64, u64)>>> =
        Arc::new(parking_lot::Mutex::new(Vec::new()));
    let sampler = {
        let stop = stop.clone();
        let trajectory = trajectory.clone();
        let srv = flux_srv.clone();
        std::thread::Builder::new()
            .name("adaptive-sampler".into())
            .spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    trajectory.lock().push((
                        t_start.elapsed().as_millis() as u64,
                        srv.stats.adaptive.active_shards.load(Ordering::Relaxed),
                    ));
                    std::thread::sleep(Duration::from_millis(20));
                }
            })
            .expect("spawn sampler")
    };

    // Active-shard envelope over a time window, from the trajectory.
    let envelope = |t0_ms: u64, t1_ms: u64| -> (u64, u64) {
        let traj = trajectory.lock();
        let mut min = u64::MAX;
        let mut max = 0;
        for &(t, a) in traj.iter() {
            if t >= t0_ms && t <= t1_ms {
                min = min.min(a);
                max = max.max(a);
            }
        }
        if min == u64::MAX {
            let a = flux_srv
                .stats
                .adaptive
                .active_shards
                .load(Ordering::Relaxed);
            (a, a)
        } else {
            (min, max)
        }
    };

    // Idle phase: trickle requests, one per ~100 ms.
    let idle = |phase: &'static str| -> AdaptivePhaseRow {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(9);
        let t0 = t_start.elapsed().as_millis() as u64;
        let deadline = Instant::now() + Duration::from_secs_f64(secs);
        let mut lat_ns: Vec<u64> = Vec::new();
        let mut served = 0u64;
        while Instant::now() < deadline {
            let q0 = Instant::now();
            if let Ok(mut conn) = net.connect("web") {
                use std::io::Write as _;
                let path = set.sample(&mut rng).to_string();
                if write!(
                    conn,
                    "GET {path} HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n"
                )
                .is_ok()
                    && flux_http::read_response(&mut conn).is_ok()
                {
                    served += 1;
                    lat_ns.push(q0.elapsed().as_nanos() as u64);
                }
            }
            std::thread::sleep(Duration::from_millis(100));
        }
        let t1 = t_start.elapsed().as_millis() as u64;
        let (active_min, active_max) = envelope(t0, t1);
        AdaptivePhaseRow {
            phase,
            t0_ms: t0,
            t1_ms: t1,
            rps: served as f64 / secs,
            p95_ms: flux_bench::percentile_ns(&mut lat_ns, 0.95).as_secs_f64() * 1e3,
            active_min,
            active_max,
        }
    };

    let mut phases: Vec<AdaptivePhaseRow> = Vec::new();
    phases.push(idle("idle"));

    // Spike phase: the steady closed-loop load. The warmup absorbs the
    // controller's wake ramp, so the measured window compares
    // steady-state throughput (the ≤ 5% gate).
    {
        let warmup = Duration::from_secs_f64((secs / 4.0).clamp(0.25, 2.0));
        let spike_t0 = t_start.elapsed() + warmup;
        let report = run_web_load(&net, "web", &set, 32, Duration::from_secs_f64(secs), warmup);
        let t1 = t_start.elapsed().as_millis() as u64;
        let (active_min, active_max) = envelope(spike_t0.as_millis() as u64, t1);
        phases.push(AdaptivePhaseRow {
            phase: "spike",
            t0_ms: spike_t0.as_millis() as u64,
            t1_ms: t1,
            rps: report.rps(),
            p95_ms: report.p95_latency.as_secs_f64() * 1e3,
            active_min,
            active_max,
        });
    }

    phases.push(idle("idle2"));

    stop.store(true, Ordering::Relaxed);
    let _ = sampler.join();
    let parks = flux_srv.stats.adaptive.parks.load(Ordering::Relaxed);
    let wakes = flux_srv.stats.adaptive.wakes.load(Ordering::Relaxed);
    let trajectory = std::mem::take(&mut *trajectory.lock());
    flux_servers::web::stop(server);
    AdaptiveModePoint {
        mode,
        phases,
        trajectory,
        parks,
        wakes,
    }
}

/// Minimal JSON encoder for the adaptive-shards record: host_cores, the
/// per-phase rps/p95/active envelope for both modes, the full
/// active-shard trajectories, and the two headline numbers the CI gate
/// reads (spike-phase cost of adaptive vs static, parked shards during
/// idle).
fn adaptive_shards_json(points: &[AdaptiveModePoint], shards: usize, quick: bool) -> String {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let spike_rps = |mode: &str| {
        points
            .iter()
            .find(|p| p.mode == mode)
            .and_then(|p| p.phases.iter().find(|ph| ph.phase == "spike"))
            .map(|ph| ph.rps)
            .unwrap_or(0.0)
    };
    let idle_min_active = points
        .iter()
        .find(|p| p.mode == "adaptive")
        .map(|p| {
            p.phases
                .iter()
                .filter(|ph| ph.phase.starts_with("idle"))
                .map(|ph| ph.active_min)
                .min()
                .unwrap_or(shards as u64)
        })
        .unwrap_or(shards as u64);
    let static_rps = spike_rps("static");
    let pct = if static_rps > 0.0 {
        100.0 * spike_rps("adaptive") / static_rps
    } else {
        0.0
    };
    let mut out = format!(
        "{{\n  \"bench\": \"adaptive_shards_web_bursty\",\n  \"host_cores\": {cores},\n  \
         \"shards\": {shards},\n  \"quick\": {quick},\n  \
         \"adaptive_spike_rps_pct_of_static\": {pct:.1},\n  \
         \"adaptive_idle_parked_shards\": {},\n",
        shards as u64 - idle_min_active
    );
    if cores == 1 {
        out.push_str(
            "  \"note\": \"1-core host: parking can only remove scheduler pressure, not \
             reclaim cores; rerun on a multi-core runner (the multicore-bench CI job) for \
             the scaling record\",\n",
        );
    }
    out.push_str("  \"modes\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"parks\": {}, \"wakes\": {}, \"phases\": [\n",
            p.mode, p.parks, p.wakes
        ));
        for (j, ph) in p.phases.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"phase\": \"{}\", \"t0_ms\": {}, \"t1_ms\": {}, \"rps\": {:.1}, \
                 \"p95_ms\": {:.3}, \"active_min\": {}, \"active_max\": {}}}{}\n",
                ph.phase,
                ph.t0_ms,
                ph.t1_ms,
                ph.rps,
                ph.p95_ms,
                ph.active_min,
                ph.active_max,
                if j + 1 == p.phases.len() { "" } else { "," },
            ));
        }
        out.push_str("    ], \"active_trajectory\": [");
        for (j, (t, a)) in p.trajectory.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{t},{a}]"));
        }
        out.push_str(&format!(
            "]}}{}\n",
            if i + 1 == points.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Ablation 10 (shard queue kind): one measured point — queue kind ×
/// shard count on the SPECweb-like MemNet keep-alive workload (the
/// ablation-5 shape, so the shard-count sweep is comparable).
struct ShardQueuePoint {
    kind: &'static str,
    shards: usize,
    report: flux_bench::LoadReport,
    steals: u64,
    ring_claims: u64,
    overflowed: u64,
}

fn run_shard_queue(
    kind: flux_runtime::ShardQueueKind,
    name: &'static str,
    shards: usize,
    secs: f64,
) -> ShardQueuePoint {
    use flux_bench::{run_web_load, WebSet};
    use flux_net::MemNet;

    let set = std::sync::Arc::new(WebSet::build(2 << 20));
    let net = MemNet::new();
    let listener = net.listen("web").unwrap();
    let server = flux_servers::ServerBuilder::new(flux_servers::web::WebSpec::new(
        Box::new(listener),
        set.docroot.clone(),
    ))
    .runtime(RuntimeKind::event_driven_sharded(shards, 4).shard_queue(kind))
    .spawn();
    let report = run_web_load(
        &net,
        "web",
        &set,
        64,
        Duration::from_secs_f64(secs),
        Duration::from_secs_f64((secs / 4.0).clamp(0.25, 2.0)),
    );
    let stats = &server.handle.server().stats;
    let steals = stats.total_steals();
    let (mut ring_claims, mut overflowed) = (0u64, 0u64);
    if let Some(shard_stats) = stats.shard_stats() {
        for s in shard_stats.iter() {
            ring_claims += s.ring_claims.load(Ordering::Relaxed);
            overflowed += s.overflowed.load(Ordering::Relaxed);
        }
    }
    flux_servers::web::stop(server);
    ShardQueuePoint {
        kind: name,
        shards,
        report,
        steals,
        ring_claims,
        overflowed,
    }
}

/// Minimal JSON encoder for the shard-queue record: host_cores and the
/// ring-vs-mutex throughput ratio at 4 shards ride at the top, per the
/// perf-record protocol; every point carries rps/p95 plus the ring's
/// claim/overflow counters (zero for the mutex kind by construction).
fn shard_queue_json(points: &[ShardQueuePoint], quick: bool) -> String {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let rps_at = |kind: &str, shards: usize| {
        points
            .iter()
            .find(|p| p.kind == kind && p.shards == shards)
            .map(|p| p.report.rps())
    };
    let headline = match (rps_at("ring", 4), rps_at("mutex", 4)) {
        (Some(ring), Some(mutex)) if mutex > 0.0 => {
            format!(
                "  \"ring_vs_mutex_rps_at_4_shards\": {:.4},\n",
                ring / mutex
            )
        }
        _ => String::new(),
    };
    let mut out = format!(
        "{{\n  \"bench\": \"shard_queue_web\",\n  \"host_cores\": {cores},\n  \"quick\": {quick},\n{headline}  \"points\": [\n"
    );
    for (i, p) in points.iter().enumerate() {
        let note = if cores == 1 {
            ", \"note\": \"1-core host: dispatchers and producers time-share one core, so \
             there is no cross-core queue contention for the ring to win; the delta \
             reflects constant-factor costs only\""
        } else {
            ""
        };
        out.push_str(&format!(
            "    {{\"kind\": \"{}\", \"shards\": {}, \"rps\": {:.1}, \"mbps\": {:.2}, \
             \"mean_ms\": {:.3}, \"p95_ms\": {:.3}, \"steals\": {}, \"ring_claims\": {}, \
             \"overflowed\": {}{}}}{}\n",
            p.kind,
            p.shards,
            p.report.rps(),
            p.report.mbps(),
            p.report.mean_latency.as_secs_f64() * 1e3,
            p.report.p95_latency.as_secs_f64() * 1e3,
            p.steals,
            p.ring_claims,
            p.overflowed,
            note,
            if i + 1 == points.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

struct FusedPoint {
    mode: &'static str,
    shards: usize,
    report: flux_bench::LoadReport,
    fused_execs: u64,
}

/// One web-load measurement with the flow interpreter pinned to `mode`:
/// fused segments (one queue turn per straight-line chain) versus the
/// per-node oracle.
fn run_fused(
    mode: flux_runtime::FusionMode,
    name: &'static str,
    shards: usize,
    secs: f64,
) -> FusedPoint {
    use flux_bench::{run_web_load, WebSet};
    use flux_net::MemNet;

    let set = std::sync::Arc::new(WebSet::build(2 << 20));
    let net = MemNet::new();
    let listener = net.listen("web").unwrap();
    let server = flux_servers::ServerBuilder::new(flux_servers::web::WebSpec::new(
        Box::new(listener),
        set.docroot.clone(),
    ))
    .runtime(RuntimeKind::event_driven_sharded(shards, 4))
    .fusion(mode)
    .spawn();
    let report = run_web_load(
        &net,
        "web",
        &set,
        64,
        Duration::from_secs_f64(secs),
        Duration::from_secs_f64((secs / 4.0).clamp(0.25, 2.0)),
    );
    let fused_execs = server.handle.server().stats.total_fused_execs();
    flux_servers::web::stop(server);
    FusedPoint {
        mode: name,
        shards,
        report,
        fused_execs,
    }
}

/// JSON record for the stage-fusion sweep: host_cores and the
/// fused-vs-per-node throughput ratios at each shard count ride at the
/// top per the perf-record protocol.
fn fused_stages_json(points: &[FusedPoint], quick: bool) -> String {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let rps_at = |mode: &str, shards: usize| {
        points
            .iter()
            .find(|p| p.mode == mode && p.shards == shards)
            .map(|p| p.report.rps())
    };
    let mut headline = String::new();
    for shards in [1usize, 4] {
        if let (Some(fused), Some(per_node)) = (rps_at("fused", shards), rps_at("per_node", shards))
        {
            if per_node > 0.0 {
                headline.push_str(&format!(
                    "  \"fused_vs_per_node_rps_at_{shards}_shards\": {:.4},\n",
                    fused / per_node
                ));
            }
        }
    }
    let mut out = format!(
        "{{\n  \"bench\": \"fused_stages_web\",\n  \"host_cores\": {cores},\n  \"quick\": {quick},\n{headline}  \"points\": [\n"
    );
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"mode\": \"{}\", \"shards\": {}, \"rps\": {:.1}, \"mbps\": {:.2}, \
             \"mean_ms\": {:.3}, \"p95_ms\": {:.3}, \"fused_execs\": {}}}{}\n",
            p.mode,
            p.shards,
            p.report.rps(),
            p.report.mbps(),
            p.report.mean_latency.as_secs_f64() * 1e3,
            p.report.p95_latency.as_secs_f64() * 1e3,
            p.fused_execs,
            if i + 1 == points.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

struct PubSubPoint {
    report: flux_bench::PubSubLoadReport,
    /// Server-side publishes seen by the Aggregate node (whole run, not
    /// just the measurement window).
    srv_publishes: u64,
    srv_deliveries: u64,
    coalesced: u64,
    writes_shared: u64,
    evicted: u64,
    parks: u64,
    wakes: u64,
}

/// One pub/sub fan-out measurement: the streaming server under the
/// adaptive controller, one paced publisher, `subscribers` subscribers
/// of a single topic.
fn run_pubsub_fanout(subscribers: usize, publish_hz: f64, secs: f64) -> PubSubPoint {
    use flux_bench::run_pubsub_load;
    use flux_net::MemNet;

    let net = MemNet::new();
    let listener = net.listen("pubsub").unwrap();
    let server =
        flux_servers::ServerBuilder::new(flux_servers::pubsub::PubSubSpec::new(Box::new(listener)))
            .runtime(RuntimeKind::event_driven_adaptive(4, 4))
            .spawn();
    let report = run_pubsub_load(
        &net,
        "pubsub",
        subscribers,
        publish_hz,
        Duration::from_secs_f64(secs),
        Duration::from_secs_f64((secs / 4.0).clamp(0.25, 2.0)),
    );
    let stats = &server.handle.server().stats;
    let parks = stats.adaptive.parks.load(Ordering::Relaxed);
    let wakes = stats.adaptive.wakes.load(Ordering::Relaxed);
    let ctx = &server.ctx;
    let point = PubSubPoint {
        srv_publishes: ctx.fanout.publishes.load(Ordering::Relaxed),
        srv_deliveries: ctx.fanout.deliveries.load(Ordering::Relaxed),
        coalesced: ctx.fanout.coalesced_publishes.load(Ordering::Relaxed),
        writes_shared: ctx.driver.counters().writes_shared.load(Ordering::Relaxed),
        evicted: ctx
            .driver
            .counters()
            .slow_consumer_evicted
            .load(Ordering::Relaxed),
        parks,
        wakes,
        report,
    };
    flux_servers::pubsub::stop(server);
    point
}

/// JSON record for the pub/sub fan-out sweep: host_cores and the p99
/// at the widest fan-out ride at the top per the perf-record protocol.
fn pubsub_fanout_json(points: &[PubSubPoint], publish_hz: f64, quick: bool) -> String {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let widest = points.iter().max_by_key(|p| p.report.subscribers);
    let mut headline = String::new();
    if let Some(p) = widest {
        headline.push_str(&format!(
            "  \"fanout_p99_ms_at_{}_subscribers\": {:.3},\n",
            p.report.subscribers,
            p.report.p99_latency.as_secs_f64() * 1e3
        ));
    }
    let mut out = format!(
        "{{\n  \"bench\": \"pubsub_fanout\",\n  \"host_cores\": {cores},\n  \"quick\": {quick},\n  \"publish_hz\": {publish_hz},\n{headline}  \"points\": [\n"
    );
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"subscribers\": {}, \"publishes\": {}, \"deliveries\": {}, \
             \"deliveries_per_sec\": {:.1}, \"mean_ms\": {:.3}, \"p50_ms\": {:.3}, \
             \"p95_ms\": {:.3}, \"p99_ms\": {:.3}, \"errors\": {}, \
             \"srv_publishes\": {}, \"srv_deliveries\": {}, \"coalesced_publishes\": {}, \
             \"writes_shared\": {}, \"slow_consumer_evicted\": {}, \
             \"adaptive_parks\": {}, \"adaptive_wakes\": {}}}{}\n",
            p.report.subscribers,
            p.report.publishes,
            p.report.deliveries,
            p.report.deliveries_per_sec(),
            p.report.mean_latency.as_secs_f64() * 1e3,
            p.report.p50_latency.as_secs_f64() * 1e3,
            p.report.p95_latency.as_secs_f64() * 1e3,
            p.report.p99_latency.as_secs_f64() * 1e3,
            p.report.errors,
            p.srv_publishes,
            p.srv_deliveries,
            p.coalesced,
            p.writes_shared,
            p.evicted,
            p.parks,
            p.wakes,
            if i + 1 == points.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Predicted (conservative and session-aware) and measured throughput of
/// a pipeline whose middle node holds a `(session)` writer constraint,
/// with flows spread round-robin over `sessions` sessions.
fn run_sessions(sessions: usize, workers: usize, secs: f64) -> (f64, f64, f64) {
    const SRC: &str = "
        Gen () => (int sid);
        Work (int sid) => (int sid);
        Out (int sid) => ();
        Flow = Work -> Out;
        source Gen => Flow;
        atomic Work: {chunks(session)};
    ";
    let compiled = flux_core::compile(SRC).expect("session program compiles");

    let service = 0.0005;
    let predict = |session_aware: bool| {
        let mut params = ModelParams::uniform(&compiled, 0.0, 0.0);
        params.flows[0].interarrival_mean_s = service / workers as f64 / 2.0;
        params.set_node_service(&compiled, "Work", service);
        FluxSimulation::new(
            &compiled,
            params,
            SimConfig {
                cpus: workers,
                duration_s: 10.0,
                warmup_s: 1.0,
                exponential_service: false,
                poisson_arrivals: false,
                session_aware,
                sessions,
                ..SimConfig::default()
            },
        )
        .run()
        .throughput
    };
    let conservative = predict(false);
    let aware = predict(true);

    // Measured: payload is the session id, assigned round-robin over a
    // fixed flow count (bounded drain; see run_granularity).
    let total = (secs * 1500.0) as u64 * sessions.min(workers) as u64;
    let next = Arc::new(AtomicU64::new(0));
    let mut reg: NodeRegistry<u64> = NodeRegistry::new();
    reg.source("Gen", move || {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= total {
            return SourceOutcome::Shutdown;
        }
        SourceOutcome::New(i % sessions as u64)
    });
    reg.session("Gen", |sid: &u64| *sid);
    reg.node("Work", |_| {
        let t0 = std::time::Instant::now();
        while t0.elapsed() < Duration::from_micros(500) {
            std::hint::spin_loop();
        }
        NodeOutcome::Ok
    });
    reg.node("Out", |_| NodeOutcome::Ok);
    let server = Arc::new(FluxServer::new(compiled, reg).unwrap());
    let t0 = std::time::Instant::now();
    let handle = start(server.clone(), RuntimeKind::ThreadPool { workers });
    handle.join();
    let measured = server.stats.finished() as f64 / t0.elapsed().as_secs_f64();
    (conservative, aware, measured)
}

/// Ablation 13 (overload): one open-loop phase against the running web
/// server. The generator connects and drives only the *active* set;
/// the C1M-shape idle holders are kept alive separately by the caller
/// so they persist across the probe and measurement phases.
#[cfg(unix)]
fn run_overload_phase(
    addr: &str,
    active: usize,
    rate: f64,
    secs: f64,
    warm: f64,
) -> flux_bench::OpenLoopReport {
    flux_bench::run_open_loop(&flux_bench::OpenLoopConfig {
        addr: addr.to_string(),
        conns: active,
        active,
        rate,
        duration: Duration::from_secs_f64(secs),
        warmup: Duration::from_secs_f64(warm),
        path: "/index.html".to_string(),
        // A small arrival backlog models client patience: an arrival
        // that cannot be assigned promptly is abandoned (counted), so
        // admitted-request latency reflects the server, not an
        // unbounded client queue.
        queue_cap: (active / 4).max(32),
    })
}

/// Everything the overload record needs, gathered by the `should(13)`
/// block; serialized by [`overload_json`].
#[cfg(unix)]
struct OverloadRecord {
    quick: bool,
    fd_limit: usize,
    conns_requested: usize,
    conns_held_idle: usize,
    active: usize,
    queue_cap: usize,
    capacity_rps: f64,
    p50_cap_ms: f64,
    p99_cap_ms: f64,
    over: flux_bench::OpenLoopReport,
    p50_over_ms: f64,
    p99_over_ms: f64,
    server_offered: u64,
    server_finished: u64,
    server_shed: u64,
    conservation_ok: bool,
    accepts_admitted: u64,
    accepts_governed: u64,
    idle_reaped: u64,
    writes_deferred: u64,
    rss_after_hold_mb: f64,
    rss_end_mb: f64,
}

#[cfg(unix)]
fn overload_json(r: &OverloadRecord) -> String {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let goodput_ratio = if r.capacity_rps > 0.0 {
        r.over.goodput_rps() / r.capacity_rps
    } else {
        0.0
    };
    let p99_ratio = if r.p99_cap_ms > 0.0 {
        r.p99_over_ms / r.p99_cap_ms
    } else {
        0.0
    };
    format!(
        "{{\n  \"bench\": \"overload_web_open_loop\",\n  \"host_cores\": {cores},\n  \
         \"quick\": {},\n  \"fd_limit\": {},\n  \"conns_requested\": {},\n  \
         \"conns_held_idle\": {},\n  \"active_conns\": {},\n  \"queue_cap_per_shard\": {},\n  \
         \"note\": \"in-process client+server; on small hosts capacity is the pair's, \
         not the server's alone\",\n  \
         \"capacity_rps\": {:.1},\n  \"p50_at_capacity_ms\": {:.3},\n  \
         \"p99_at_capacity_ms\": {:.3},\n  \"overload\": {{\n    \
         \"offered_rps\": {:.1},\n    \"goodput_rps\": {:.1},\n    \
         \"goodput_ratio_vs_capacity\": {:.3},\n    \"p50_ms\": {:.3},\n    \
         \"p99_ms\": {:.3},\n    \"p99_ratio_vs_capacity\": {:.3},\n    \
         \"client_ok\": {},\n    \"client_rejected_503\": {},\n    \"client_errors\": {},\n    \
         \"client_abandoned\": {},\n    \"server_offered\": {},\n    \
         \"server_finished\": {},\n    \"server_shed\": {},\n    \
         \"conservation_ok\": {},\n    \"accepts_admitted\": {},\n    \
         \"accepts_governed\": {},\n    \"idle_reaped\": {},\n    \
         \"writes_deferred\": {}\n  }},\n  \"rss_after_hold_mb\": {:.1},\n  \
         \"rss_end_mb\": {:.1}\n}}\n",
        r.quick,
        r.fd_limit,
        r.conns_requested,
        r.conns_held_idle,
        r.active,
        r.queue_cap,
        r.capacity_rps,
        r.p50_cap_ms,
        r.p99_cap_ms,
        r.over.offered_rps(),
        r.over.goodput_rps(),
        goodput_ratio,
        r.p50_over_ms,
        r.p99_over_ms,
        p99_ratio,
        r.over.ok,
        r.over.rejected,
        r.over.errors,
        r.over.abandoned,
        r.server_offered,
        r.server_finished,
        r.server_shed,
        r.conservation_ok,
        r.accepts_admitted,
        r.accepts_governed,
        r.idle_reaped,
        r.writes_deferred,
        r.rss_after_hold_mb,
        r.rss_end_mb,
    )
}

fn main() {
    let secs: f64 = env_or("FLUX_BENCH_SECS", 1.5);
    let workers = env_or("FLUX_BENCH_WORKERS", 8usize);
    let only: String = std::env::var("FLUX_BENCH_ONLY").unwrap_or_default();
    let should = |n: u32| only.is_empty() || only.split(',').any(|s| s.trim() == n.to_string());

    if should(1) {
        let mut t = Table::new(
            "Ablation 1: constraint granularity (3-stage pipeline, 0.5 ms/node)",
            &["granularity", "predicted_flows_s", "measured_flows_s"],
        );
        for g in ["none", "fine", "coarse", "readers"] {
            let (p, m) = run_granularity(g, workers, secs);
            eprintln!("# {g:>8}: predicted {} measured {}", f(p), f(m));
            t.row(&[g.into(), f(p), f(m)]);
        }
        print!("{}", t.render());
        println!();
        println!("# coarse serializes the whole flow (worst); readers run fully parallel;");
        println!("# fine writer locks pipeline between stages. The simulator predicts the order.");
        println!();
    }

    if should(2) {
        let mut t2 = Table::new(
            "Ablation 2: event-runtime I/O pool size (1 ms blocking node)",
            &["io_workers", "flows_s"],
        );
        for io in [1usize, 2, 4, 8, 16] {
            let tput = run_io_pool(io, secs);
            eprintln!("# io_workers={io:<3} {} flows/s", f(tput));
            t2.row(&[io.to_string(), f(tput)]);
        }
        print!("{}", t2.render());
        println!();
        println!(
            "# throughput scales with the pool until the 1 ms blocking call stops dominating —"
        );
        println!(
            "# the paper's LD_PRELOAD shim had the same effective knob (outstanding async ops)."
        );
        println!();
    }

    if should(5) {
        let mut t5 = Table::new(
            "Ablation 5: sharded event runtime — web throughput vs dispatcher shards",
            &["shards", "req_s", "mbps", "mean_ms", "p95_ms", "steals"],
        );
        let mut shard_rows: Vec<(usize, flux_bench::LoadReport, u64)> = Vec::new();
        for shards in [1usize, 2, 4, 8] {
            let (report, steals) = run_event_shards(shards, workers, secs);
            eprintln!(
                "# shards={shards:<2} {} req/s {} Mb/s steals {steals}",
                f(report.rps()),
                f(report.mbps()),
            );
            t5.row(&[
                shards.to_string(),
                f(report.rps()),
                f(report.mbps()),
                format!("{:.3}", report.mean_latency.as_secs_f64() * 1e3),
                format!("{:.3}", report.p95_latency.as_secs_f64() * 1e3),
                steals.to_string(),
            ]);
            shard_rows.push((shards, report, steals));
        }
        print!("{}", t5.render());
        println!();
        println!(
            "# shards=1 is the paper's single dispatcher; extra shards use the remaining cores,"
        );
        println!(
            "# with session-affine routing and work stealing (see flux-runtime::runtimes docs)."
        );
        println!();
        let json = shards_json(&shard_rows);
        let json_path = "BENCH_event_shards.json";
        match std::fs::write(json_path, &json) {
            Ok(()) => eprintln!("# wrote {json_path}"),
            Err(e) => eprintln!("# could not write {json_path}: {e}"),
        }
    }

    if should(6) {
        let mut t6 = Table::new(
            "Ablation 6: reactor vs blocking writes — slow-reader web workload (TCP, 8 MiB file)",
            &[
                "write_mode",
                "req_s",
                "mbps",
                "mean_ms",
                "p95_ms",
                "writes_drained",
                "write_would_block",
            ],
        );
        let mut rw_rows: Vec<(&str, flux_bench::LoadReport, u64, u64)> = Vec::new();
        for (name, mode) in [
            ("blocking", flux_servers::web::WriteMode::Blocking),
            ("reactor", flux_servers::web::WriteMode::Reactor),
        ] {
            let (report, drained, would_block) = run_reactor_writes(mode, secs);
            eprintln!(
            "# write_mode={name:<9} {} req/s {} Mb/s drained {drained} would_block {would_block}",
            f(report.rps()),
            f(report.mbps()),
        );
            t6.row(&[
                name.into(),
                f(report.rps()),
                f(report.mbps()),
                format!("{:.3}", report.mean_latency.as_secs_f64() * 1e3),
                format!("{:.3}", report.p95_latency.as_secs_f64() * 1e3),
                drained.to_string(),
                would_block.to_string(),
            ]);
            rw_rows.push((name, report, drained, would_block));
        }
        print!("{}", t6.render());
        println!();
        println!("# blocking mode parks an I/O worker per draining response (the seed behaviour);");
        println!("# reactor mode leaves slow drains to the poll thread's POLLOUT batch, so the");
        println!("# I/O pool only ever services reads.");
        println!();
        let json = reactor_writes_json(&rw_rows);
        let json_path = "BENCH_reactor_writes.json";
        match std::fs::write(json_path, &json) {
            Ok(()) => eprintln!("# wrote {json_path}"),
            Err(e) => eprintln!("# could not write {json_path}: {e}"),
        }
    }

    let quick = std::env::var("FLUX_BENCH_QUICK").as_deref() == Ok("1");

    if should(7) {
        let (client_points7, secs7): (&[usize], f64) = if quick {
            (&[16], secs.min(0.3))
        } else {
            (&[64, 256, 1024], secs)
        };
        let mut t7 = Table::new(
            "Ablation 7: poller backends — slow-reader web workload (TCP, 256 KiB file)",
            &["backend", "clients", "req_s", "mbps", "mean_ms", "p95_ms"],
        );
        let mut backends7 = vec![
            flux_net::PollerBackend::Poll,
            flux_net::PollerBackend::Epoll,
        ];
        if flux_net::uring_available() {
            backends7.push(flux_net::PollerBackend::Uring);
        } else {
            eprintln!(
                "# notice: io_uring unavailable on this host — ablation 7 sweeps poll/epoll only"
            );
        }
        let mut pb_rows: Vec<(&'static str, usize, flux_bench::LoadReport)> = Vec::new();
        for &clients in client_points7 {
            for &backend in &backends7 {
                let (report, name) = run_poller_backend(backend, clients, secs7);
                eprintln!(
                    "# backend={name:<6} clients={clients:<5} {} req/s {} Mb/s mean {:.3} ms",
                    f(report.rps()),
                    f(report.mbps()),
                    report.mean_latency.as_secs_f64() * 1e3,
                );
                t7.row(&[
                    name.into(),
                    clients.to_string(),
                    f(report.rps()),
                    f(report.mbps()),
                    format!("{:.3}", report.mean_latency.as_secs_f64() * 1e3),
                    format!("{:.3}", report.p95_latency.as_secs_f64() * 1e3),
                ]);
                pb_rows.push((name, clients, report));
            }
        }
        print!("{}", t7.render());
        println!();
        println!(
            "# every connection holds a reactor watch while its throttled response drains, so"
        );
        println!(
            "# the watched-fd count tracks the client count: poll pays O(watched) per wakeup,"
        );
        println!("# epoll pays O(ready) — the gap opens as connections grow. uring batches every");
        println!("# arm/disarm of a round with the wait into one io_uring_enter, cutting the");
        println!("# K epoll_ctl re-arms a K-ready round costs epoll.");
        println!(
            "# NOTE: the 1024-connection points are load-generator-bound on small hosts (1024"
        );
        println!(
            "# client threads saturate the bench host before the server); compare backends at"
        );
        println!("# 64-256 connections. The JSON carries the same annotation per point.");
        println!();
        let json = poller_backends_json(&pb_rows, quick);
        // Quick smoke artifacts go to a separate (gitignored) name so a
        // local smoke run never dirties the checked-in full-sweep
        // record; the CI multicore job reads/uploads both shapes.
        let json_path = if quick {
            "BENCH_poller_backends.quick.json"
        } else {
            "BENCH_poller_backends.json"
        };
        match std::fs::write(json_path, &json) {
            Ok(()) => eprintln!("# wrote {json_path}"),
            Err(e) => eprintln!("# could not write {json_path}: {e}"),
        }
    }

    if should(8) {
        let (client_points, secs8): (&[usize], f64) = if quick {
            // The CI smoke leg: one small point per mode, seconds total.
            (&[16], secs.min(0.3))
        } else {
            (&[64, 256, 1024], secs)
        };
        let mut t8 = Table::new(
            "Ablation 8: hot path — per-event vs slab/batch/pool (TCP slow readers, 256 KiB file)",
            &[
                "mode",
                "clients",
                "req_s",
                "mbps",
                "mean_ms",
                "p95_ms",
                "batch_events",
                "pinning",
            ],
        );
        let mut hp_rows: Vec<(&'static str, usize, HotPathPoint)> = Vec::new();
        for &clients in client_points {
            for (name, mode) in [
                ("per_event", flux_servers::web::HotPath::PerEvent),
                ("batched", flux_servers::web::HotPath::Batched),
            ] {
                let p = run_hot_path(mode, clients, secs8);
                eprintln!(
                    "# mode={name:<9} clients={clients:<5} {} req/s {} Mb/s p95 {:.3} ms \
                     batch_events {} ({}; reactor_pinned {})",
                    f(p.report.rps()),
                    f(p.report.mbps()),
                    p.report.p95_latency.as_secs_f64() * 1e3,
                    p.batch_events,
                    p.pinning,
                    p.reactor_pinned,
                );
                t8.row(&[
                    name.into(),
                    clients.to_string(),
                    f(p.report.rps()),
                    f(p.report.mbps()),
                    format!("{:.3}", p.report.mean_latency.as_secs_f64() * 1e3),
                    format!("{:.3}", p.report.p95_latency.as_secs_f64() * 1e3),
                    p.batch_events.to_string(),
                    p.pinning.clone(),
                ]);
                hp_rows.push((name, clients, p));
            }
        }
        print!("{}", t8.render());
        println!();
        println!("# per_event re-creates the pre-slab steady state: one channel op, one shard");
        println!("# queue lock+notify and a fresh allocation per event/response. batched ships");
        println!("# each reactor round as one recycled vector, appends it to shard queues under");
        println!("# one lock, skips the notify when the shard is known-awake, and recycles");
        println!("# response/request buffers through bounded pools.");
        if std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            == 1
        {
            println!("# NOTE: 1-core host — no parallel speedup available; deltas reflect");
            println!("# lock/hash/allocation removal only (recorded per point in the JSON).");
        }
        println!();
        // Quick runs write the JSON too (tagged "quick": true, under a
        // separate gitignored name) so the multicore-bench CI job can
        // assert host_cores and upload the artifact without a smoke run
        // ever dirtying the checked-in full-sweep record.
        let json = hot_path_json(&hp_rows, quick);
        let json_path = if quick {
            "BENCH_hot_path.quick.json"
        } else {
            "BENCH_hot_path.json"
        };
        match std::fs::write(json_path, &json) {
            Ok(()) => eprintln!("# wrote {json_path}"),
            Err(e) => eprintln!("# could not write {json_path}: {e}"),
        }
    }

    if should(9) {
        // Short phases still cover >10 controller idle windows; quick
        // mode is the CI smoke/multicore shape.
        let secs9 = if quick { secs.min(0.8) } else { secs.max(1.5) };
        let mut t9 = Table::new(
            "Ablation 9: adaptive shards — static vs adaptive under idle/spike/idle (MemNet web)",
            &[
                "mode",
                "phase",
                "req_s",
                "p95_ms",
                "active_min",
                "active_max",
                "parks",
                "wakes",
            ],
        );
        let mut points: Vec<AdaptiveModePoint> = Vec::new();
        for (name, policy) in [
            ("static", AdaptivePolicy::Static),
            ("adaptive", AdaptivePolicy::adaptive()),
        ] {
            let p = run_adaptive_mode(name, policy, secs9);
            for ph in &p.phases {
                eprintln!(
                    "# mode={name:<9} phase={:<6} {} req/s p95 {:.3} ms active {}..{} \
                     (parks {}, wakes {})",
                    ph.phase,
                    f(ph.rps),
                    ph.p95_ms,
                    ph.active_min,
                    ph.active_max,
                    p.parks,
                    p.wakes,
                );
                t9.row(&[
                    name.into(),
                    ph.phase.into(),
                    f(ph.rps),
                    format!("{:.3}", ph.p95_ms),
                    ph.active_min.to_string(),
                    ph.active_max.to_string(),
                    p.parks.to_string(),
                    p.wakes.to_string(),
                ]);
            }
            points.push(p);
        }
        print!("{}", t9.render());
        println!();
        println!("# static keeps all 4 dispatchers hot through the idle phases; adaptive parks");
        println!("# down to min_shards while idle (active_min) and is woken back by the spike");
        println!("# within a controller tick. The spike rows are the ≤5%-cost comparison; the");
        println!("# JSON carries full active-shard trajectories and the two gate numbers.");
        println!();
        let json = adaptive_shards_json(&points, ADAPTIVE_SHARDS, quick);
        let json_path = if quick {
            "BENCH_adaptive_shards.quick.json"
        } else {
            "BENCH_adaptive_shards.json"
        };
        match std::fs::write(json_path, &json) {
            Ok(()) => eprintln!("# wrote {json_path}"),
            Err(e) => eprintln!("# could not write {json_path}: {e}"),
        }
    }

    if should(10) {
        // The env knob would override the builder's kind and collapse
        // the sweep to one side; the ablation owns the comparison.
        std::env::remove_var("FLUX_SHARD_QUEUE");
        let (shard_points, secs10): (&[usize], f64) = if quick {
            (&[4], secs.min(0.3))
        } else {
            (&[1, 4, 8], secs)
        };
        let mut t10 = Table::new(
            "Ablation 10: shard queue — Mutex/Condvar vs lock-free MPSC ring (MemNet web, 64 clients)",
            &[
                "kind",
                "shards",
                "req_s",
                "mbps",
                "mean_ms",
                "p95_ms",
                "steals",
                "ring_claims",
                "overflowed",
            ],
        );
        // Per-run scheduler noise on a small container is ±5%, larger
        // than the effect under measurement: full mode measures each
        // point three times and records the median run by rps.
        let reps = if quick { 1 } else { 3 };
        let mut sq_points: Vec<ShardQueuePoint> = Vec::new();
        for &shards in shard_points {
            for (name, kind) in [
                ("mutex", flux_runtime::ShardQueueKind::Mutex),
                ("ring", flux_runtime::ShardQueueKind::Ring),
            ] {
                let mut runs: Vec<ShardQueuePoint> = (0..reps)
                    .map(|_| run_shard_queue(kind, name, shards, secs10))
                    .collect();
                runs.sort_by(|a, b| a.report.rps().total_cmp(&b.report.rps()));
                let p = runs.remove(reps / 2);
                eprintln!(
                    "# kind={name:<5} shards={shards:<2} {} req/s {} Mb/s p95 {:.3} ms \
                     steals {} ring_claims {} overflowed {}",
                    f(p.report.rps()),
                    f(p.report.mbps()),
                    p.report.p95_latency.as_secs_f64() * 1e3,
                    p.steals,
                    p.ring_claims,
                    p.overflowed,
                );
                t10.row(&[
                    name.into(),
                    shards.to_string(),
                    f(p.report.rps()),
                    f(p.report.mbps()),
                    format!("{:.3}", p.report.mean_latency.as_secs_f64() * 1e3),
                    format!("{:.3}", p.report.p95_latency.as_secs_f64() * 1e3),
                    p.steals.to_string(),
                    p.ring_claims.to_string(),
                    p.overflowed.to_string(),
                ]);
                sq_points.push(p);
            }
        }
        print!("{}", t10.render());
        println!();
        println!("# mutex: every enqueue takes the shard's queue lock and may syscall-notify;");
        println!("# ring: producers batch-claim slots with one tail CAS per group, the dispatcher");
        println!("# batch-consumes published runs, and a full ring spills to a Mutex overflow");
        println!("# sidecar (counted above — no drops, no unbounded spin). The contended-enqueue");
        println!("# win needs real cross-core producers; see the per-point 1-core annotation.");
        if std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            == 1
        {
            println!("# NOTE: 1-core host — no cross-core queue contention; deltas reflect");
            println!("# constant-factor costs only (recorded per point in the JSON).");
        }
        println!();
        let json = shard_queue_json(&sq_points, quick);
        let json_path = if quick {
            "BENCH_shard_queue.quick.json"
        } else {
            "BENCH_shard_queue.json"
        };
        match std::fs::write(json_path, &json) {
            Ok(()) => eprintln!("# wrote {json_path}"),
            Err(e) => eprintln!("# could not write {json_path}: {e}"),
        }
    }

    if should(11) {
        // The env knobs would pin one interpreter (or distort the
        // fairness budget) for both sides; the ablation owns the sweep.
        std::env::remove_var("FLUX_FUSE");
        std::env::remove_var("FLUX_FUSE_BUDGET");
        let secs11 = if quick { secs.min(0.3) } else { secs };
        let mut t11 = Table::new(
            "Ablation 11: stage fusion — fused segments vs per-node queue turns (MemNet web, 64 clients)",
            &["mode", "shards", "req_s", "mbps", "mean_ms", "p95_ms", "fused_execs"],
        );
        // Median-of-3 by rps in full mode, same as ablation 10: the
        // effect is smaller than per-run scheduler noise on CI hosts.
        let reps = if quick { 1 } else { 3 };
        let mut fu_points: Vec<FusedPoint> = Vec::new();
        for shards in [1usize, 4] {
            for (name, mode) in [
                ("per_node", flux_runtime::FusionMode::Off),
                ("fused", flux_runtime::FusionMode::On),
            ] {
                let mut runs: Vec<FusedPoint> = (0..reps)
                    .map(|_| run_fused(mode, name, shards, secs11))
                    .collect();
                runs.sort_by(|a, b| a.report.rps().total_cmp(&b.report.rps()));
                let p = runs.remove(reps / 2);
                eprintln!(
                    "# mode={name:<8} shards={shards:<2} {} req/s {} Mb/s p95 {:.3} ms fused_execs {}",
                    f(p.report.rps()),
                    f(p.report.mbps()),
                    p.report.p95_latency.as_secs_f64() * 1e3,
                    p.fused_execs,
                );
                t11.row(&[
                    name.into(),
                    shards.to_string(),
                    f(p.report.rps()),
                    f(p.report.mbps()),
                    format!("{:.3}", p.report.mean_latency.as_secs_f64() * 1e3),
                    format!("{:.3}", p.report.p95_latency.as_secs_f64() * 1e3),
                    p.fused_execs.to_string(),
                ]);
                fu_points.push(p);
            }
        }
        print!("{}", t11.render());
        println!();
        println!("# per_node: every Exec vertex is its own queue turn (enqueue, wake, dequeue);");
        println!("# fused: maximal straight-line Exec/Release chains run in one turn, breaking");
        println!("# only at dispatch arms, error handlers, Acquires, blocking nodes and joins.");
        println!("# fused_execs counts node executions that rode inside fused segments.");
        println!();
        let json = fused_stages_json(&fu_points, quick);
        let json_path = if quick {
            "BENCH_fused_stages.quick.json"
        } else {
            "BENCH_fused_stages.json"
        };
        match std::fs::write(json_path, &json) {
            Ok(()) => eprintln!("# wrote {json_path}"),
            Err(e) => eprintln!("# could not write {json_path}: {e}"),
        }
    }

    if should(12) {
        const PUBLISH_HZ: f64 = 200.0;
        let secs12 = if quick { secs.min(0.3) } else { secs };
        let subscriber_counts: &[usize] = if quick { &[16] } else { &[64, 256, 1024] };
        let mut t12 = Table::new(
            "Ablation 12: pub/sub fan-out — delivery latency vs subscriber count (MemNet, 200 publishes/s, adaptive shards)",
            &["subs", "deliv_s", "p50_ms", "p95_ms", "p99_ms", "coalesced", "parks"],
        );
        // Median-of-3 by p99 in full mode: tail latency is the product
        // here, and single runs are at the mercy of scheduler noise.
        let reps = if quick { 1 } else { 3 };
        let mut ps_points: Vec<PubSubPoint> = Vec::new();
        for &subs in subscriber_counts {
            let mut runs: Vec<PubSubPoint> = (0..reps)
                .map(|_| run_pubsub_fanout(subs, PUBLISH_HZ, secs12))
                .collect();
            runs.sort_by(|a, b| {
                a.report
                    .p99_latency
                    .partial_cmp(&b.report.p99_latency)
                    .unwrap()
            });
            let p = runs.remove(reps / 2);
            eprintln!(
                "# subs={subs:<5} {} deliveries/s p50 {:.3} ms p99 {:.3} ms ({} publishes, {} coalesced)",
                f(p.report.deliveries_per_sec()),
                p.report.p50_latency.as_secs_f64() * 1e3,
                p.report.p99_latency.as_secs_f64() * 1e3,
                p.report.publishes,
                p.coalesced,
            );
            t12.row(&[
                subs.to_string(),
                f(p.report.deliveries_per_sec()),
                format!("{:.3}", p.report.p50_latency.as_secs_f64() * 1e3),
                format!("{:.3}", p.report.p95_latency.as_secs_f64() * 1e3),
                format!("{:.3}", p.report.p99_latency.as_secs_f64() * 1e3),
                p.coalesced.to_string(),
                p.parks.to_string(),
            ]);
            ps_points.push(p);
        }
        print!("{}", t12.render());
        println!();
        println!("# One publisher paces PUBs on a single topic; every subscriber receives each");
        println!("# MSG. The server encodes the aggregate once per round and multicasts it as a");
        println!("# refcounted shared payload, so the payload-copy count per publish is 1");
        println!("# regardless of fan-out (writes_shared counts only buffer handles cloned).");
        println!("# Latency is publish write to MSG arrival, timestamped in-process.");
        println!();
        let json = pubsub_fanout_json(&ps_points, PUBLISH_HZ, quick);
        let json_path = if quick {
            "BENCH_pubsub_fanout.quick.json"
        } else {
            "BENCH_pubsub_fanout.json"
        };
        match std::fs::write(json_path, &json) {
            Ok(()) => eprintln!("# wrote {json_path}"),
            Err(e) => eprintln!("# could not write {json_path}: {e}"),
        }
    }

    #[cfg(unix)]
    if should(13) {
        use flux_net::{Listener as _, TcpAcceptor};
        use std::sync::atomic::Ordering;

        let secs13 = if quick { 0.5 } else { secs.max(1.5) };
        let warm13 = if quick { 0.15 } else { 0.3 };
        let active = if quick { 64usize } else { 256 };
        let conns_requested: usize = if quick { 512 } else { 100_000 };
        let fd_limit = flux_bench::fd_limit();
        // Every loopback connection costs two fds in-process (client +
        // server end); reserve headroom for the active set, the
        // listener, the reactor and the docroot.
        let budget = fd_limit.saturating_sub(512) / 2;
        let hold_target = conns_requested.min(budget.saturating_sub(2 * active));
        const QUEUE_CAP: usize = 16;

        let mut docroot = flux_http::DocRoot::new();
        let body: Vec<u8> = (0..512).map(|i| (i % 251) as u8).collect();
        docroot.insert("/index.html", body);
        let acceptor = TcpAcceptor::bind("127.0.0.1:0").expect("bind loopback");
        // Shed-and-close makes clients reconnect in bursts; a deep
        // backlog keeps dropped-SYN retransmission stalls out of the
        // measurement (the std default of 128 overflows between
        // acceptor scheduling slices on a saturated 1-core host).
        acceptor.set_backlog(4096).expect("raise listen backlog");
        let addr = acceptor.local_addr();
        let server = flux_servers::ServerBuilder::new(
            flux_servers::web::WebSpec::new(Box::new(acceptor), docroot)
                .write_mode(flux_servers::web::WriteMode::Reactor),
        )
        .runtime(RuntimeKind::event_driven_sharded(2, 2))
        .overload(OverloadPolicy::bounded(QUEUE_CAP))
        .max_conns(hold_target + 2 * active + 256)
        .idle_timeout(Some(Duration::from_secs(60)))
        .spawn();
        let srv = server.handle.server().clone();

        // The C1M shape: held, mostly-idle connections. They cost the
        // server slab slots, fds and poller registrations but offer no
        // load — the point is that admission, shedding and reaping keep
        // working with the tables this big.
        let mut held: Vec<std::net::TcpStream> = Vec::with_capacity(hold_target);
        for _ in 0..hold_target {
            match std::net::TcpStream::connect(&addr) {
                Ok(s) => held.push(s),
                Err(_) => break,
            }
        }
        let rss_after_hold = flux_bench::rss_mb();
        eprintln!(
            "# holding {} idle connections (requested {conns_requested}, fd limit {fd_limit}), rss {rss_after_hold:.1} MiB",
            held.len(),
        );

        // Capacity probe: capacity is the highest offered rate the
        // server sustains *cleanly* — ≥95% of offered achieved with
        // <1% rejects — found by doubling to the knee, then bisecting
        // between the last clean and first shedding rate. (Peak
        // goodput under shedding overshoots: 503-and-close churn makes
        // it unsustainable, so it is the wrong overload baseline.)
        let probe_secs = if quick { 0.3 } else { 0.8 };
        let probe = |rate: f64| {
            let r = run_overload_phase(&addr, active, rate, probe_secs, warm13);
            let achieved = r.goodput_rps();
            let clean =
                achieved >= 0.95 * rate && (r.rejected as f64) < 0.01 * r.offered.max(1) as f64;
            eprintln!(
                "# probe: offered {} rps -> achieved {} rps, {} rejects{}",
                f(rate),
                f(achieved),
                r.rejected,
                if clean { "" } else { " (knee)" },
            );
            (achieved, clean)
        };
        let mut rate = if quick { 500.0 } else { 1_000.0 };
        let mut clean_rate = 0.0f64;
        let mut knee_rate = 0.0f64;
        let mut first_achieved = 0.0f64;
        loop {
            let (achieved, clean) = probe(rate);
            if first_achieved == 0.0 {
                first_achieved = achieved;
            }
            if clean {
                clean_rate = rate;
                rate *= 2.0;
                if rate >= 262_144.0 {
                    break;
                }
            } else {
                knee_rate = rate;
                break;
            }
        }
        if clean_rate > 0.0 && knee_rate > 0.0 {
            for _ in 0..3 {
                let mid = (clean_rate + knee_rate) / 2.0;
                let (_, clean) = probe(mid);
                if clean {
                    clean_rate = mid;
                } else {
                    knee_rate = mid;
                }
            }
        }
        let capacity = if clean_rate > 0.0 {
            clean_rate
        } else {
            first_achieved.max(1.0)
        };

        // At-capacity reference, then the 2x overload phase with
        // server-side counters snapshotted around it.
        let cap_run = run_overload_phase(&addr, active, capacity, secs13, warm13);
        let (p50_cap, p99_cap) = (cap_run.percentile(0.50), cap_run.percentile(0.99));
        let (shed0, fin0, off0) = (
            srv.stats.total_shed(),
            srv.stats.finished(),
            srv.stats.overload.offered.load(Ordering::Relaxed),
        );
        let over = run_overload_phase(&addr, active, 2.0 * capacity, secs13, warm13);
        let (p50_over, p99_over) = (over.percentile(0.50), over.percentile(0.99));
        let shed = srv.stats.total_shed() - shed0;
        let finished = srv.stats.finished() - fin0;
        let offered_srv = srv.stats.overload.offered.load(Ordering::Relaxed) - off0;
        let counters = srv
            .stats
            .net_counters()
            .expect("web server installs net counters");
        let rss_end = flux_bench::rss_mb();

        let mut t13 = Table::new(
            "Ablation 13: overload control — open-loop web load over held idle connections (TCP, bounded shard queues)",
            &["phase", "offered_rps", "goodput_rps", "p50_ms", "p99_ms", "503s", "abandoned"],
        );
        for (name, r, p50, p99) in [
            ("capacity", &cap_run, p50_cap, p99_cap),
            ("2x overload", &over, p50_over, p99_over),
        ] {
            t13.row(&[
                name.to_string(),
                f(r.offered_rps()),
                f(r.goodput_rps()),
                format!("{:.3}", p50.as_secs_f64() * 1e3),
                format!("{:.3}", p99.as_secs_f64() * 1e3),
                r.rejected.to_string(),
                r.abandoned.to_string(),
            ]);
        }
        print!("{}", t13.render());
        println!();
        println!("# Open-loop arrivals (the schedule does not wait for completions), latency");
        println!("# measured from *scheduled* arrival; only admitted (2xx) requests enter the");
        println!("# percentiles. At 2x capacity the bounded shard queues shed the excess at the");
        println!("# source boundary and the shed handler answers a prebuilt 503 — counted on");
        println!("# both sides, so offered == finished + shed on the server and every client");
        println!("# arrival lands in exactly one of ok/503/error/abandoned.");
        println!();
        eprintln!(
            "# overload phase: server offered {offered_srv} = finished {finished} + shed {shed}; \
             governed accepts {}, idle reaped {}, rss {rss_end:.1} MiB",
            counters.accepts_governed(),
            counters.idle_reaped(),
        );

        let conns_held_idle = held.len();
        drop(held);
        flux_servers::web::stop(server);
        // Conservation is checked on the cumulative totals *after*
        // shutdown — quiescent, so no event is in flight between the
        // offered and finished counters.
        let conservation_ok = srv.stats.overload.offered.load(Ordering::Relaxed)
            == srv.stats.finished() + srv.stats.total_shed();

        let record = OverloadRecord {
            quick,
            fd_limit,
            conns_requested,
            conns_held_idle,
            active,
            queue_cap: QUEUE_CAP,
            capacity_rps: capacity,
            p50_cap_ms: p50_cap.as_secs_f64() * 1e3,
            p99_cap_ms: p99_cap.as_secs_f64() * 1e3,
            p50_over_ms: p50_over.as_secs_f64() * 1e3,
            p99_over_ms: p99_over.as_secs_f64() * 1e3,
            over,
            server_offered: offered_srv,
            server_finished: finished,
            server_shed: shed,
            conservation_ok,
            accepts_admitted: counters.accepts_admitted(),
            accepts_governed: counters.accepts_governed(),
            idle_reaped: counters.idle_reaped(),
            writes_deferred: counters.writes_deferred(),
            rss_after_hold_mb: rss_after_hold,
            rss_end_mb: rss_end,
        };
        let json = overload_json(&record);
        let json_path = if quick {
            "BENCH_overload.quick.json"
        } else {
            "BENCH_overload.json"
        };
        match std::fs::write(json_path, &json) {
            Ok(()) => eprintln!("# wrote {json_path}"),
            Err(e) => eprintln!("# could not write {json_path}: {e}"),
        }
    }

    if should(3) {
        let mut t3 = Table::new(
        "Ablation 3: session-scoped constraints — conservative vs session-aware simulator (flows/s)",
        &[
            "sessions",
            "predicted_conservative",
            "predicted_session_aware",
            "measured",
        ],
    );
        for sessions in [1usize, 2, 4, 8, 16] {
            let (cons, aware, meas) = run_sessions(sessions, workers, secs);
            eprintln!(
                "# sessions={sessions:<3} conservative {} aware {} measured {}",
                f(cons),
                f(aware),
                f(meas)
            );
            t3.row(&[sessions.to_string(), f(cons), f(aware), f(meas)]);
        }
        print!("{}", t3.render());
        println!();
        println!(
            "# the conservative prediction (paper §5.1) stays pinned at one-session throughput;"
        );
        println!(
            "# the session-aware extension (paper §8) tracks the measured scaling across sessions."
        );
        println!();
    }

    if should(4) {
        let mut t4 = Table::new(
            "Ablation 4: constraint-guided cluster placement vs round-robin",
            &[
                "program",
                "machines",
                "guided_cut_pct",
                "guided_remote_locks_s",
                "rr_cut_pct",
                "rr_remote_locks_s",
            ],
        );
        let programs: [(&str, &str, &[f64]); 2] = [
            ("image", flux_core::fixtures::IMAGE_SERVER, &[0.86, 0.14]),
            (
                "bittorrent",
                flux_servers::bt::FLUX_SRC,
                &[0.55, 0.15, 0.08, 0.05, 0.05, 0.04, 0.03, 0.03, 0.01, 0.01],
            ),
        ];
        for (name, src, probs) in programs {
            let compiled = flux_core::compile(src).expect("placement program compiles");
            let mut params = ModelParams::uniform(&compiled, 0.001, 0.01);
            let dispatch = if name == "image" {
                "Handler"
            } else {
                "HandleMessage"
            };
            params.set_dispatch_probs(&compiled, dispatch, probs);
            for machines in [2usize, 4] {
                let cfg = flux_core::PlaceConfig {
                    machines,
                    ..Default::default()
                };
                let guided = flux_core::place(&compiled, &params, &cfg).unwrap();
                let rr = flux_core::round_robin(&compiled, &params, machines).unwrap();
                eprintln!(
                "# {name:>10} machines={machines}: guided cut {:.1}% remote {:.1}/s | rr cut {:.1}% remote {:.1}/s",
                100.0 * guided.cut_fraction(),
                guided.remote_lock_rate,
                100.0 * rr.cut_fraction(),
                rr.remote_lock_rate,
            );
                t4.row(&[
                    name.into(),
                    machines.to_string(),
                    format!("{:.1}", 100.0 * guided.cut_fraction()),
                    f(guided.remote_lock_rate),
                    format!("{:.1}", 100.0 * rr.cut_fraction()),
                    f(rr.remote_lock_rate),
                ]);
            }
        }
        print!("{}", t4.render());
        println!();
        println!(
        "# constraints identify shared state (paper §8): colocating their footprints keeps every"
    );
        println!("# lock machine-local and cuts cross-machine hand-offs by an order of magnitude.");
    }
}
