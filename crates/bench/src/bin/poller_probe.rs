//! Prints the readiness backend that `PollerBackend::default()` (i.e.
//! the `FLUX_POLLER` env var plus the platform default and fallback
//! chain) resolves to on this host — one word on stdout: `poll`,
//! `epoll`, `uring`, or `none` (non-unix).
//!
//! CI's poller-backend matrix runs this as a setup step so a leg can
//! *assert* the backend it is about to measure: a runner whose kernel
//! or seccomp profile refuses io_uring skips the uring leg with a
//! notice instead of silently re-testing epoll under a uring label.

fn main() {
    #[cfg(unix)]
    {
        let backend = flux_net::create_poller(flux_net::PollerBackend::default());
        println!("{}", backend.name());
    }
    #[cfg(not(unix))]
    println!("none");
}
