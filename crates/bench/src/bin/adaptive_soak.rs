//! Bounded soak for the adaptive shard controller: park/wake churn
//! under TCP connection churn, with hard invariants — run under *both*
//! shard-queue kinds (Mutex and Ring).
//!
//! The CI `adaptive-soak` job runs this in release for ~30 s per queue
//! kind (`FLUX_SOAK_SECS` caps each run, the same bounded-run idea as
//! `FLUX_BENCH_QUICK`). The controller is tuned to thrash — 500 µs
//! ticks, parks after 2 idle ticks, wakes at depth 1 — and the load
//! alternates short idle gaps (every one long enough to park) with
//! bursts of fresh TCP connections (every one a wake + accept + slab
//! insert + reactor register/deregister cycle). Any lost event, wrong
//! response, stranded queue or unbalanced park/wake book fails the
//! process with a non-zero exit, so controller races fail CI fast
//! instead of shipping. The same hard invariants apply to both kinds:
//! the ring's lock-free park/wake handshake must keep exactly the books
//! the mutex path keeps.
//!
//! Setting `FLUX_SHARD_QUEUE` narrows the sweep to that one kind (the
//! env overrides the builder knob anyway, so sweeping under it would
//! just run the same kind twice).
//!
//! ```sh
//! FLUX_SOAK_SECS=30 cargo run --release -p flux-bench --bin adaptive_soak
//! ```

use flux_bench::env_or;
use flux_net::{Listener as _, TcpAcceptor, TcpConn};
use flux_runtime::{AdaptiveConfig, AdaptivePolicy, OverloadPolicy, RuntimeKind, ShardQueueKind};
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SHARDS: usize = 4;

fn main() {
    let secs: f64 = env_or("FLUX_SOAK_SECS", 30.0);
    let kinds = match ShardQueueKind::from_env() {
        Some(kind) => vec![kind],
        None => vec![ShardQueueKind::Mutex, ShardQueueKind::Ring],
    };
    for kind in kinds {
        println!("=== adaptive soak: shard queue {kind:?} ===");
        run_soak(kind, secs);
    }
}

fn run_soak(kind: ShardQueueKind, secs: f64) {
    let mut docroot = flux_http::DocRoot::new();
    docroot.insert("/soak.html", "adaptive soak page");
    docroot.insert("/echo.fxs", "<?fx echo \"n=\" . $n; ?>");
    let acceptor = TcpAcceptor::bind("127.0.0.1:0").expect("bind loopback");
    let addr = acceptor.local_addr();
    let server = flux_servers::ServerBuilder::new(flux_servers::web::WebSpec::new(
        Box::new(acceptor),
        docroot,
    ))
    .runtime(RuntimeKind::EventDriven {
        shards: SHARDS,
        io_workers: 4,
        adaptive: AdaptivePolicy::Adaptive(AdaptiveConfig {
            min_shards: 1,
            sample_every: Duration::from_micros(500),
            park_after: 2,
            park_below: 0,
            wake_depth: 1,
        }),
        queue: kind,
        overload: OverloadPolicy::Unbounded,
    })
    .spawn();

    let sent = Arc::new(AtomicU64::new(0));
    let ok = Arc::new(AtomicU64::new(0));
    let transient = Arc::new(AtomicU64::new(0));
    let deadline = Instant::now() + Duration::from_secs_f64(secs);
    let mut cycles = 0u64;
    while Instant::now() < deadline {
        // Burst: 8 client threads, each churning fresh connections
        // (connect → one request → close), so every cycle exercises
        // accept, slab insert, reactor register/deregister and the
        // wake path at once.
        let mut joins = Vec::new();
        for t in 0..8u64 {
            let sent = sent.clone();
            let ok = ok.clone();
            let transient = transient.clone();
            let addr = addr.clone();
            joins.push(std::thread::spawn(move || {
                for i in 0..5u64 {
                    let Ok(mut conn) = TcpConn::connect(&addr) else {
                        // A transient connect failure under deliberate
                        // churn is not a lost response — count it
                        // separately; the final check bounds the rate,
                        // so a server that stops accepting still fails.
                        sent.fetch_add(1, Ordering::SeqCst);
                        transient.fetch_add(1, Ordering::SeqCst);
                        return;
                    };
                    let dynamic = (t + i).is_multiple_of(2);
                    let path = if dynamic {
                        format!("/echo.fxs?n={i}")
                    } else {
                        "/soak.html".to_string()
                    };
                    sent.fetch_add(1, Ordering::SeqCst);
                    if write!(
                        conn,
                        "GET {path} HTTP/1.1\r\nHost: soak\r\nConnection: close\r\n\r\n"
                    )
                    .is_err()
                    {
                        transient.fetch_add(1, Ordering::SeqCst);
                        continue;
                    }
                    let Ok((status, body)) = flux_http::read_response(&mut conn) else {
                        transient.fetch_add(1, Ordering::SeqCst);
                        continue;
                    };
                    let text = String::from_utf8_lossy(&body);
                    assert_eq!(status, 200, "{path} -> {status}: {text}");
                    if dynamic {
                        assert_eq!(text, format!("n={i}"), "{path} body corrupted");
                    } else {
                        assert_eq!(text, "adaptive soak page", "{path} body corrupted");
                    }
                    ok.fetch_add(1, Ordering::SeqCst);
                }
            }));
        }
        for j in joins {
            j.join().expect("soak client panicked");
        }
        // Idle gap: long enough (≥ 2 controller ticks + margin) that
        // the controller parks, so the next burst exercises the wake
        // handshake again. Vary the gap so parks land at different
        // points of the connection-churn cycle.
        std::thread::sleep(Duration::from_millis(5 + (cycles % 8) * 10));
        cycles += 1;
    }

    // Stop first: joining the runtime (controller included) makes the
    // park/wake books a consistent snapshot instead of racing a live
    // controller tick between the two counter loads.
    let flux_srv = server.handle.server().clone();
    let requests = server.ctx.requests.load(Ordering::SeqCst);
    flux_servers::web::stop(server);
    let stats = &flux_srv.stats;
    let ast = &stats.adaptive;
    let parks = ast.parks.load(Ordering::SeqCst);
    let wakes = ast.wakes.load(Ordering::SeqCst);
    let active = ast.active_shards.load(Ordering::SeqCst);
    let sent = sent.load(Ordering::SeqCst);
    let ok = ok.load(Ordering::SeqCst);
    let transient = transient.load(Ordering::SeqCst);
    println!(
        "soak [{kind:?}]: {cycles} cycles, {sent} requests ({ok} ok, {transient} transient), {}",
        ast.describe()
    );

    // Hard invariants — any failure is a controller race escaping.
    // Every request is accounted for as either a verified-correct
    // response or a counted transient socket-level failure, and
    // transients must stay rare (< 1%): a runtime that drops or
    // corrupts events panics in the client threads above, a server
    // that stops accepting blows the rate bound.
    assert!(
        sent > 0 && ok + transient == sent,
        "[{kind:?}] lost responses: {ok}+{transient}/{sent}"
    );
    assert!(
        transient * 100 <= sent,
        "[{kind:?}] transient failure rate over 1%: {transient}/{sent}"
    );
    assert!(
        parks > 0 && wakes > 0,
        "[{kind:?}] controller never churned (parks {parks}, wakes {wakes}) — tuning broken"
    );
    // wakes <= parks always (a shard must park before it can wake), so
    // this order cannot underflow even under overflow checks.
    assert_eq!(
        SHARDS as u64 + wakes - parks,
        active,
        "[{kind:?}] park/wake books don't balance"
    );
    let shard_stats = stats.shard_stats().expect("sharded runtime ran");
    assert!(
        requests >= ok,
        "[{kind:?}] server counted {requests} < {ok} client oks"
    );
    println!("soak [{kind:?}] passed: {parks} parks / {wakes} wakes over {cycles} cycles");
    // Post-stop: nothing stranded on any shard queue, parked or not.
    for (i, st) in shard_stats.iter().enumerate() {
        assert_eq!(
            st.depth.load(Ordering::SeqCst),
            0,
            "[{kind:?}] shard {i} ended with queued events"
        );
    }
}
