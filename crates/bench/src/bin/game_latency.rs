//! §4.4's game-server result: heartbeat stability versus player count.
//! The paper "found no appreciable differences between a traditional
//! implementation of the gameserver and the various Flux versions" —
//! all hold the 10 Hz tick as players grow. This binary prints the
//! observed broadcast rate and worst inter-arrival gap per server per
//! player count.
//!
//! Knobs: `FLUX_BENCH_SECS` (default 2), `FLUX_BENCH_FULL=1` (more
//! player counts).

use flux_baselines::HandGameServer;
use flux_bench::{env_or, f, ms, run_game_load, Table};
use flux_net::MemNet;
use flux_runtime::RuntimeKind;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let secs: f64 = env_or("FLUX_BENCH_SECS", 2.0);
    let full: bool = env_or("FLUX_BENCH_FULL", 0u8) == 1;
    let players: Vec<usize> = if full {
        vec![4, 16, 64, 128, 256]
    } else {
        vec![4, 16, 64]
    };
    let tick = Duration::from_millis(100); // 10 Hz, as in the paper
    let duration = Duration::from_secs_f64(secs.max(1.5));

    let mut t = Table::new(
        "Game server: heartbeat stability vs players (10 Hz tick)",
        &[
            "server",
            "players",
            "rate_hz",
            "mean_gap_ms",
            "max_gap_ms",
            "moves",
        ],
    );
    for &n in &players {
        for server in ["hand-written", "flux-threadpool", "flux-event"] {
            let net = MemNet::new();
            let sock = Arc::new(net.bind_datagram("game").unwrap());
            let report;
            match server {
                "hand-written" => {
                    let s = HandGameServer::start(sock, tick, 7);
                    report = run_game_load(&net, "game", n, 10.0, duration);
                    s.stop();
                }
                _ => {
                    let kind = match server {
                        "flux-threadpool" => RuntimeKind::ThreadPool { workers: 4 },
                        _ => RuntimeKind::event_driven_sharded(1, 2),
                    };
                    let s = flux_servers::ServerBuilder::new(flux_servers::game::GameConfig {
                        socket: sock,
                        tick,
                        seed: 7,
                    })
                    .runtime(kind)
                    .spawn();
                    report = run_game_load(&net, "game", n, 10.0, duration);
                    flux_servers::game::stop(s);
                }
            }
            eprintln!(
                "# {server:>15} players={n:<4} {:>6} Hz worst gap {} ms",
                f(report.rate_hz()),
                ms(report.max_interarrival)
            );
            t.row(&[
                server.into(),
                n.to_string(),
                f(report.rate_hz()),
                ms(report.mean_interarrival),
                ms(report.max_interarrival),
                report.moves_sent.to_string(),
            ]);
        }
    }
    print!("{}", t.render());
    println!();
    println!("# Paper: no appreciable difference between Flux and the traditional server;");
    println!("# the rate column should sit near 10 Hz for every row.");
}
