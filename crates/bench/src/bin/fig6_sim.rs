//! Figure 6: simulator-predicted versus observed image-server latency
//! for varying processor counts and offered load (paper §5.1).
//!
//! Method, exactly as the paper's: (1) run the real Flux image server
//! on one "CPU" with path profiling enabled and collect per-node
//! service times, branch probabilities and arrival statistics; (2) feed
//! those observations into the generated discrete-event simulator and
//! predict mean response time for k processors under each load; (3) run
//! the real server with a k-worker thread pool (workers stand in for
//! CPUs — `Compress` is a calibrated timed hold, see DESIGN.md §4) and
//! compare.
//!
//! Knobs: `FLUX_BENCH_SECS` (seconds per observed point, default 2),
//! `FLUX_BENCH_FULL=1` (adds 16 CPUs and more load points),
//! `FLUX_BENCH_SERVICE_MS` (Compress hold, default 20 ms).

use flux_bench::{env_or, f, Table};
use flux_core::model::ModelParams;
use flux_runtime::RuntimeKind;
use flux_servers::image::{build, CompressMode, ImageConfig, ImageSource};
use flux_sim::{FluxSimulation, SimConfig};
use std::sync::Arc;
use std::time::Duration;

/// Cache sized to hold 12 of the 40 (image, scale) keys, keeping a
/// steady-state miss rate so `Compress` stays on the critical path.
const CACHE_BYTES: usize = 12 * 1024 + 512;

fn image_config(interarrival: Duration, total: u64, service: Duration) -> ImageConfig {
    ImageConfig {
        source: ImageSource::Synthetic {
            interarrival,
            total,
        },
        compress: CompressMode::TimedHold(service),
        images: 5,
        image_size: 32,
        cache_bytes: CACHE_BYTES,
    }
}

/// Runs the real server and reports (mean latency s, throughput /s).
fn observe(cpus: usize, rate: f64, secs: f64, service: Duration) -> (f64, f64) {
    let total = (rate * secs).ceil() as u64;
    let interarrival = Duration::from_secs_f64(1.0 / rate);
    let flux_servers::image::ImageServer { handle, ctx } =
        flux_servers::ServerBuilder::new(image_config(interarrival, total, service))
            .runtime(RuntimeKind::ThreadPool { workers: cpus })
            .spawn();
    let fx = handle.server().clone();
    let t0 = std::time::Instant::now();
    handle.join();
    let elapsed = t0.elapsed().as_secs_f64();
    let served = ctx.served.load(std::sync::atomic::Ordering::Relaxed);
    let mean = fx.stats.latency.mean().as_secs_f64();
    (mean, served as f64 / elapsed)
}

fn main() {
    let secs: f64 = env_or("FLUX_BENCH_SECS", 2.0);
    let full: bool = env_or("FLUX_BENCH_FULL", 0u8) == 1;
    let service_ms: f64 = env_or("FLUX_BENCH_SERVICE_MS", 20.0);
    let service = Duration::from_secs_f64(service_ms / 1e3);
    let cpu_counts: Vec<usize> = if full {
        vec![1, 2, 4, 8, 16]
    } else {
        vec![1, 2, 4, 8]
    };
    let load_fracs: Vec<f64> = if full {
        vec![0.2, 0.4, 0.6, 0.8, 0.95]
    } else {
        vec![0.3, 0.6, 0.9]
    };

    // ---- Step 1: profile a single-CPU run at light load. ------------
    eprintln!("# profiling a 1-CPU run to parameterize the simulator...");
    let calib_rate = 0.25 / service.as_secs_f64(); // ~25% utilization
    let total = (calib_rate * secs.max(2.0) * 2.0).ceil() as u64;
    let (program, reg, _ctx) = build(image_config(
        Duration::from_secs_f64(1.0 / calib_rate),
        total,
        service,
    ));
    let server = Arc::new(
        flux_runtime::FluxServer::with_profiling(program, reg).expect("registry satisfies program"),
    );
    let handle = flux_runtime::start(server.clone(), RuntimeKind::ThreadPool { workers: 1 });
    handle.join();
    let profiler = server.profiler().expect("profiling enabled");
    let observed = profiler.observed_params(server.program());
    let hit_prob = observed.flows[0]
        .arm_probs
        .values()
        .next()
        .map(|v| v[0])
        .unwrap_or(0.0);
    eprintln!(
        "# calibrated: cache-hit probability {:.2}, Compress service {:.1} ms",
        hit_prob,
        observed.flows[0]
            .service_mean_s
            .values()
            .cloned()
            .fold(0.0, f64::max)
            * 1e3
    );

    // The per-flow capacity: effective service = miss_rate * hold.
    let miss = 1.0 - hit_prob;
    let per_cpu_capacity = 1.0 / (miss * service.as_secs_f64());

    // ---- Steps 2 and 3: predict and observe each (cpus, load). ------
    let mut t = Table::new(
        "Figure 6: predicted (simulator) vs observed mean response time (ms)",
        &[
            "cpus",
            "load_req_s",
            "predicted_ms",
            "observed_ms",
            "pred_tput",
            "obs_tput",
        ],
    );
    let mut worst_ratio = 1.0f64;
    for &cpus in &cpu_counts {
        for &frac in &load_fracs {
            let rate = frac * per_cpu_capacity * cpus as f64;
            // Predict.
            let mut params: ModelParams = observed.clone();
            params.flows[0].interarrival_mean_s = 1.0 / rate;
            let sim = FluxSimulation::new(
                server.program(),
                params,
                SimConfig {
                    cpus,
                    duration_s: 120.0,
                    warmup_s: 10.0,
                    seed: 0xF16,
                    exponential_service: false, // timed holds are constant
                    poisson_arrivals: false,    // open-loop fixed rate
                    ..SimConfig::default()
                },
            );
            let predicted = sim.run();
            // Observe.
            let (obs_latency, obs_tput) = observe(cpus, rate, secs, service);
            let p_ms = predicted.mean_latency_s * 1e3;
            let o_ms = obs_latency * 1e3;
            if o_ms > 0.0 && p_ms > 0.0 {
                let ratio = (p_ms / o_ms).max(o_ms / p_ms);
                worst_ratio = worst_ratio.max(ratio);
            }
            eprintln!(
                "# cpus={cpus:<3} rate={:<7} predicted {:>8} ms observed {:>8} ms",
                f(rate),
                f(p_ms),
                f(o_ms)
            );
            t.row(&[
                cpus.to_string(),
                f(rate),
                f(p_ms),
                f(o_ms),
                f(predicted.throughput),
                f(obs_tput),
            ]);
        }
    }
    print!("{}", t.render());
    println!();
    println!(
        "# worst predicted/observed latency ratio: {:.2}x (paper: 'predicted results and \
         actual results match closely')",
        worst_ratio
    );
    println!("# CSV");
    println!("{}", t.to_csv());
}
