//! §5.2: Ball–Larus path profiling of the BitTorrent peer under load.
//!
//! The paper profiles the peer at 25, 50 and 100 clients and reports
//! the hot paths: the file-transfer path (`Listen -> GetClients ->
//! SelectSockets -> CheckSockets -> Message -> ReadMessage ->
//! HandleMessage -> Request -> MessageDone`, 0.295 ms mean, 313,994
//! executions) and the most-frequent no-work path (`... ->
//! CheckSockets -> ERROR`, 0.016 ms, 780,510 executions, 13% of
//! execution time). This binary reproduces the same report from a
//! profiled run: expect the no-work path to dominate counts and the
//! transfer path to dominate per-execution cost.
//!
//! Knobs: `FLUX_BENCH_SECS` (default 2 per load), `FLUX_BENCH_FULL=1`.

use flux_bench::{env_or, f, run_bt_load, Table};
use flux_bittorrent::{synth_file, Metainfo};
use flux_net::MemNet;
use flux_runtime::{HotOrder, RuntimeKind};
use std::time::Duration;

fn main() {
    let secs: f64 = env_or("FLUX_BENCH_SECS", 2.0);
    let full: bool = env_or("FLUX_BENCH_FULL", 0u8) == 1;
    let loads: Vec<usize> = if full {
        vec![25, 50, 100]
    } else {
        vec![25, 50]
    };
    let file_len = if full { 8 << 20 } else { 1 << 20 };
    let duration = Duration::from_secs_f64(secs);
    let warmup = Duration::from_secs_f64((secs / 4.0).clamp(0.25, 2.0));

    let file = synth_file(file_len, 9);
    let meta = Metainfo::from_file("mem:tracker", "bench.bin", 128 * 1024, &file);

    for &clients in &loads {
        let net = MemNet::new();
        let listener = net.listen("seed").unwrap();
        let server = flux_servers::ServerBuilder::new(flux_servers::bt::BtConfig {
            listener: Box::new(listener),
            meta: meta.clone(),
            file: file.clone(),
            tracker_dial: None,
            peer_id: *b"-FX0001-profseed0001",
            addr: "mem:seed".into(),
            tracker_period: Duration::from_secs(3600),
            choke_period: Duration::from_secs(3600),
            keepalive_period: Duration::from_secs(3600),
        })
        .runtime(RuntimeKind::ThreadPool { workers: 8 })
        .profile(true)
        .spawn();
        let _load = run_bt_load(&net, "seed", &meta, clients, duration, warmup);

        let fx = server.handle.server().clone();
        let program = fx.program();
        let profiler = fx.profiler().expect("profiling enabled");
        // Flow 0 is the Listen source.
        let by_count = profiler.report(program, 0, HotOrder::ByCount);
        let by_mean = profiler.report(program, 0, HotOrder::ByMeanTime);

        let mut t = Table::new(
            &format!("Hot paths of the Flux BitTorrent peer, {clients} clients"),
            &["count", "mean_ms", "share_%", "path"],
        );
        for h in by_count.iter().take(8) {
            let flow = &program.flows[0];
            t.row(&[
                h.count.to_string(),
                f(h.mean_ms()),
                f(h.share_of(&by_count) * 100.0),
                h.info.display(&program.graph, &flow.flat),
            ]);
        }
        print!("{}", t.render());
        println!();
        if let (Some(a), Some(b)) = (by_mean.first(), by_count.first()) {
            let flow = &program.flows[0];
            println!(
                "# most expensive per execution: {} ({} ms)",
                a.info.display(&program.graph, &flow.flat),
                f(a.mean_ms())
            );
            println!(
                "# most frequent: {} ({} times)",
                b.info.display(&program.graph, &flow.flat),
                b.count
            );
        }
        println!();
        flux_servers::bt::stop(server);
    }
    println!(
        "# Paper's §5.2: transfer path 0.295 ms mean (313,994x); no-work path 0.016 ms \
         (780,510x, 13% of execution time)."
    );
}
