//! Table 1: the servers implemented in Flux, their style, and lines of
//! Flux code (the paper also reports the C/C++ node-implementation
//! line counts; we report the Rust equivalents).

use flux_bench::Table;

fn flux_lines(src: &str) -> usize {
    src.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//"))
        .count()
}

fn rust_lines(paths: &[&str]) -> usize {
    paths
        .iter()
        .filter_map(|p| std::fs::read_to_string(p).ok())
        .map(|s| {
            s.lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with("//") && !l.starts_with("//!"))
                .count()
        })
        .sum()
}

fn main() {
    let mut t = Table::new(
        "Table 1: Servers implemented using Flux",
        &[
            "Server",
            "Style",
            "Lines of Flux code",
            "Lines of Rust node code",
        ],
    );
    let web_flux = flux_lines(flux_servers::web::FLUX_SRC);
    let image_flux = flux_lines(flux_servers::image::FLUX_SRC);
    let bt_flux = flux_lines(flux_servers::bt::FLUX_SRC);
    let game_flux = flux_lines(flux_servers::game::FLUX_SRC);

    // Node-implementation sizes: the server binding modules (the
    // substrates stand in for the paper's "+ PHP" / "+ libjpeg").
    let base = env!("CARGO_MANIFEST_DIR");
    let p = |s: &str| format!("{base}/../servers/src/{s}");
    let web_rust = rust_lines(&[&p("web.rs")]);
    let image_rust = rust_lines(&[&p("image.rs")]);
    let bt_rust = rust_lines(&[&p("bt.rs")]);
    let game_rust = rust_lines(&[&p("game.rs")]);

    t.row(&[
        "Web server".into(),
        "request-response".into(),
        web_flux.to_string(),
        format!("{web_rust} (+ flux-http)"),
    ]);
    t.row(&[
        "Image server".into(),
        "request-response".into(),
        image_flux.to_string(),
        format!("{image_rust} (+ flux-image)"),
    ]);
    t.row(&[
        "BitTorrent".into(),
        "peer-to-peer".into(),
        bt_flux.to_string(),
        format!("{bt_rust} (+ flux-bittorrent)"),
    ]);
    t.row(&[
        "Game server".into(),
        "heartbeat client-server".into(),
        game_flux.to_string(),
        format!("{game_rust} (+ flux-game)"),
    ]);
    print!("{}", t.render());
    println!();
    println!(
        "Paper's Table 1 for comparison: web 36 Flux / 386 C (+PHP), image 23 / 551 (+libjpeg),"
    );
    println!("BitTorrent 84 / 878, game 54 / 257.");
}
