//! A Zipf-distributed sampler over ranks `0..n` (the SPECweb99 static
//! file mix selects files by a Zipf distribution, paper §4.2).

use rand::Rng;

/// Samples ranks with probability proportional to `1 / (rank+1)^alpha`
/// via a precomputed CDF (O(log n) per sample).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler for `n` ranks with exponent `alpha` (classic
    /// SPECweb/web-caching studies use alpha near 1).
    pub fn new(n: usize, alpha: f64) -> Zipf {
        assert!(n > 0, "Zipf needs at least one rank");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Draws one rank.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability of rank `k`.
    pub fn prob(&self, k: usize) -> f64 {
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Never empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn probabilities_sum_to_one() {
        let z = Zipf::new(100, 1.0);
        let total: f64 = (0..100).map(|k| z.prob(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rank_zero_is_most_popular() {
        let z = Zipf::new(50, 1.0);
        assert!(z.prob(0) > z.prob(1));
        assert!(z.prob(1) > z.prob(10));
        assert!(z.prob(10) > z.prob(49));
    }

    #[test]
    fn empirical_matches_theoretical() {
        let z = Zipf::new(20, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let mut counts = [0u64; 20];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for k in [0, 1, 5, 19] {
            let emp = counts[k] as f64 / n as f64;
            let theory = z.prob(k);
            assert!(
                (emp - theory).abs() < 0.01,
                "rank {k}: empirical {emp} vs theory {theory}"
            );
        }
    }

    #[test]
    fn alpha_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        for k in 0..10 {
            assert!((z.prob(k) - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn single_rank() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(z.sample(&mut rng), 0);
    }
}
