//! The game-server load generator (paper §4.4): N players sending moves
//! at 10 Hz over UDP. "Throughput is not a consideration ... The
//! primary concern is the latency of the server as the number of
//! clients increases" — so the report measures broadcast inter-arrival
//! stability and the age of received snapshots.

use flux_game::{decode_snapshot, ClientMsg, Move};
use flux_net::{Datagram, MemNet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Aggregated measurements from a game load run.
#[derive(Debug, Clone)]
pub struct GameLoadReport {
    pub players: usize,
    pub duration: Duration,
    /// Snapshots received across all players.
    pub snapshots: u64,
    /// Mean inter-arrival between consecutive snapshots per player.
    pub mean_interarrival: Duration,
    /// Worst observed inter-arrival (missed-heartbeat detector).
    pub max_interarrival: Duration,
    /// Moves sent.
    pub moves_sent: u64,
}

impl GameLoadReport {
    /// Observed broadcast rate in Hz (should track the 10 Hz tick).
    pub fn rate_hz(&self) -> f64 {
        if self.mean_interarrival.is_zero() {
            0.0
        } else {
            1.0 / self.mean_interarrival.as_secs_f64()
        }
    }
}

/// Runs `players` simulated players against the game server at `addr`
/// for `duration`. Each player joins, then moves at `move_hz`.
pub fn run_game_load(
    net: &Arc<MemNet>,
    addr: &str,
    players: usize,
    move_hz: f64,
    duration: Duration,
) -> GameLoadReport {
    let stop = Arc::new(AtomicBool::new(false));
    let snapshots = Arc::new(AtomicU64::new(0));
    let inter_ns = Arc::new(AtomicU64::new(0));
    let inter_count = Arc::new(AtomicU64::new(0));
    let max_inter_ns = Arc::new(AtomicU64::new(0));
    let moves_sent = Arc::new(AtomicU64::new(0));

    let mut joins = Vec::with_capacity(players);
    for pid in 0..players {
        let net = net.clone();
        let addr = addr.to_string();
        let stop = stop.clone();
        let snapshots = snapshots.clone();
        let inter_ns = inter_ns.clone();
        let inter_count = inter_count.clone();
        let max_inter_ns = max_inter_ns.clone();
        let moves_sent = moves_sent.clone();
        joins.push(
            std::thread::Builder::new()
                .name(format!("gameload-{pid}"))
                .spawn(move || {
                    let sock = match net.bind_datagram(&format!("player-{pid}")) {
                        Ok(s) => s,
                        Err(_) => return,
                    };
                    let player = pid as u32 + 1;
                    let _ = sock.send_to(&ClientMsg::Join { player }.encode(), &addr);
                    let mut rng = StdRng::seed_from_u64(pid as u64);
                    let move_period = Duration::from_secs_f64(1.0 / move_hz.max(0.1));
                    let mut next_move = Instant::now();
                    let mut last_snap: Option<Instant> = None;
                    let mut buf = [0u8; 64 * 1024];
                    while !stop.load(Ordering::Relaxed) {
                        if Instant::now() >= next_move {
                            let m = ClientMsg::Move(Move {
                                player,
                                dx: rng.gen_range(-25..=25),
                                dy: rng.gen_range(-25..=25),
                            });
                            let _ = sock.send_to(&m.encode(), &addr);
                            moves_sent.fetch_add(1, Ordering::Relaxed);
                            next_move += move_period;
                        }
                        if let Ok(Some((n, _))) =
                            sock.recv_from(&mut buf, Some(Duration::from_millis(10)))
                        {
                            if decode_snapshot(&buf[..n]).is_some() {
                                let now = Instant::now();
                                snapshots.fetch_add(1, Ordering::Relaxed);
                                if let Some(prev) = last_snap {
                                    let dt = now.duration_since(prev).as_nanos() as u64;
                                    inter_ns.fetch_add(dt, Ordering::Relaxed);
                                    inter_count.fetch_add(1, Ordering::Relaxed);
                                    max_inter_ns.fetch_max(dt, Ordering::Relaxed);
                                }
                                last_snap = Some(now);
                            }
                        }
                    }
                    let _ = sock.send_to(&ClientMsg::Leave { player }.encode(), &addr);
                })
                .expect("spawn game player"),
        );
    }

    let t0 = Instant::now();
    std::thread::sleep(duration);
    stop.store(true, Ordering::SeqCst);
    for j in joins {
        let _ = j.join();
    }
    let measured = t0.elapsed();
    let n = inter_count.load(Ordering::Relaxed);
    GameLoadReport {
        players,
        duration: measured,
        snapshots: snapshots.load(Ordering::Relaxed),
        mean_interarrival: Duration::from_nanos(
            inter_ns.load(Ordering::Relaxed).checked_div(n).unwrap_or(0),
        ),
        max_interarrival: Duration::from_nanos(max_inter_ns.load(Ordering::Relaxed)),
        moves_sent: moves_sent.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_the_hand_written_server() {
        let net = MemNet::new();
        let sock = Arc::new(net.bind_datagram("game").unwrap());
        let server = flux_baselines::HandGameServer::start(sock, Duration::from_millis(20), 1);
        let report = run_game_load(&net, "game", 3, 10.0, Duration::from_millis(600));
        assert!(report.snapshots > 0, "{report:?}");
        assert!(report.moves_sent > 0);
        // 20ms tick = 50 Hz. Loose bounds: a loaded CI host can stretch
        // ticks considerably, and the semantic claim here is only that
        // snapshots arrive at roughly the heartbeat rate.
        let hz = report.rate_hz();
        assert!(hz > 10.0 && hz < 120.0, "rate {hz} Hz, {report:?}");
        server.stop();
    }
}
