//! The BitTorrent load generator (paper §4.3): "simulates a series of
//! clients continuously sending requests for randomly distributed
//! pieces of a test file to a BitTorrent peer with a complete copy.
//! When a peer finishes downloading a piece, it immediately requests
//! another random piece from those still missing. Once a client has
//! obtained the entire file, it disconnects" — and, in our harness,
//! reconnects as a fresh client so load is sustained, with keep-alives
//! interleaved as chatty peers do.

use flux_bittorrent::{BlockResult, Handshake, Message, Metainfo, PieceAssembler, BLOCK_SIZE};
use flux_net::MemNet;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Aggregated measurements from a BitTorrent load run.
#[derive(Debug, Clone)]
pub struct BtLoadReport {
    pub clients: usize,
    pub duration: Duration,
    /// Complete file downloads finished in the window.
    pub completions: u64,
    /// Blocks received in the window.
    pub blocks: u64,
    /// Payload bytes received in the window.
    pub bytes_down: u64,
    /// Mean per-block latency (request -> piece).
    pub mean_block_latency: Duration,
    pub errors: u64,
}

impl BtLoadReport {
    /// Network goodput in megabits per second.
    pub fn mbps(&self) -> f64 {
        (self.bytes_down as f64 * 8.0) / self.duration.as_secs_f64() / 1e6
    }

    /// Whole-file completions per second.
    pub fn completions_per_s(&self) -> f64 {
        self.completions as f64 / self.duration.as_secs_f64()
    }
}

/// Runs `clients` concurrent downloaders against the seeder at `addr`.
pub fn run_bt_load(
    net: &Arc<MemNet>,
    addr: &str,
    meta: &Metainfo,
    clients: usize,
    duration: Duration,
    warmup: Duration,
) -> BtLoadReport {
    let stop = Arc::new(AtomicBool::new(false));
    let measuring = Arc::new(AtomicBool::new(false));
    let completions = Arc::new(AtomicU64::new(0));
    let blocks = Arc::new(AtomicU64::new(0));
    let bytes_down = Arc::new(AtomicU64::new(0));
    let latency_ns = Arc::new(AtomicU64::new(0));
    let errors = Arc::new(AtomicU64::new(0));

    let mut joins = Vec::with_capacity(clients);
    for cid in 0..clients {
        let net = net.clone();
        let addr = addr.to_string();
        let meta = meta.clone();
        let stop = stop.clone();
        let measuring = measuring.clone();
        let completions = completions.clone();
        let blocks = blocks.clone();
        let bytes_down = bytes_down.clone();
        let latency_ns = latency_ns.clone();
        let errors = errors.clone();
        joins.push(
            std::thread::Builder::new()
                .name(format!("btload-{cid}"))
                .spawn(move || {
                    let mut rng = StdRng::seed_from_u64(cid as u64 + 1000);
                    while !stop.load(Ordering::Relaxed) {
                        match download_once(
                            &net,
                            &addr,
                            &meta,
                            cid,
                            &mut rng,
                            &stop,
                            &measuring,
                            &blocks,
                            &bytes_down,
                            &latency_ns,
                        ) {
                            Ok(true) => {
                                if measuring.load(Ordering::Relaxed) {
                                    completions.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            Ok(false) => {} // stopped mid-download
                            Err(_) => {
                                errors.fetch_add(1, Ordering::Relaxed);
                                std::thread::sleep(Duration::from_millis(5));
                            }
                        }
                    }
                })
                .expect("spawn bt client"),
        );
    }

    std::thread::sleep(warmup);
    measuring.store(true, Ordering::SeqCst);
    let t0 = Instant::now();
    std::thread::sleep(duration);
    measuring.store(false, Ordering::SeqCst);
    let measured = t0.elapsed();
    stop.store(true, Ordering::SeqCst);
    for j in joins {
        let _ = j.join();
    }

    let b = blocks.load(Ordering::Relaxed);
    BtLoadReport {
        clients,
        duration: measured,
        completions: completions.load(Ordering::Relaxed),
        blocks: b,
        bytes_down: bytes_down.load(Ordering::Relaxed),
        mean_block_latency: Duration::from_nanos(
            latency_ns
                .load(Ordering::Relaxed)
                .checked_div(b)
                .unwrap_or(0),
        ),
        errors: errors.load(Ordering::Relaxed),
    }
}

#[allow(clippy::too_many_arguments)]
fn download_once(
    net: &Arc<MemNet>,
    addr: &str,
    meta: &Metainfo,
    cid: usize,
    rng: &mut StdRng,
    stop: &AtomicBool,
    measuring: &AtomicBool,
    blocks: &AtomicU64,
    bytes_down: &AtomicU64,
    latency_ns: &AtomicU64,
) -> std::io::Result<bool> {
    let mut conn = net.connect(addr)?;
    let mut peer_id = *b"-FXL001-client000000";
    peer_id[14..20].copy_from_slice(format!("{cid:06}").as_bytes());
    conn.write_all(
        &Handshake {
            info_hash: meta.info_hash,
            peer_id,
        }
        .encode(),
    )?;
    let _hs = Handshake::read_from(&mut conn)?;
    let first = Message::read_from(&mut conn)?;
    if !matches!(first, Message::Bitfield(_)) {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "expected bitfield",
        ));
    }
    let mut asm = PieceAssembler::new(meta.clone());
    // Random piece order (the protocol's load balancing).
    let mut order: Vec<u32> = (0..meta.num_pieces() as u32).collect();
    order.shuffle(rng);
    let mut msg_count = 0u64;
    for piece in order {
        let size = meta.piece_size(piece as usize) as u32;
        let mut begin = 0;
        while begin < size {
            if stop.load(Ordering::Relaxed) {
                return Ok(false);
            }
            let length = BLOCK_SIZE.min(size - begin);
            // Interleave keep-alives (chatty-peer behaviour; these drive
            // the paper's most-frequent "no work" path on the server).
            if msg_count.is_multiple_of(2) {
                Message::KeepAlive.write_to(&mut conn)?;
            }
            msg_count += 1;
            let t0 = Instant::now();
            Message::Request {
                index: piece,
                begin,
                length,
            }
            .write_to(&mut conn)?;
            loop {
                match Message::read_from(&mut conn)? {
                    Message::Piece {
                        index,
                        begin: b0,
                        data,
                    } => {
                        let dt = t0.elapsed().as_nanos() as u64;
                        if measuring.load(Ordering::Relaxed) {
                            blocks.fetch_add(1, Ordering::Relaxed);
                            bytes_down.fetch_add(data.len() as u64, Ordering::Relaxed);
                            latency_ns.fetch_add(dt, Ordering::Relaxed);
                        }
                        match asm.add_block(index, b0, &data) {
                            BlockResult::HashMismatch | BlockResult::Rejected => {
                                return Err(std::io::Error::new(
                                    std::io::ErrorKind::InvalidData,
                                    "bad block",
                                ));
                            }
                            _ => {}
                        }
                        break;
                    }
                    Message::KeepAlive | Message::Have { .. } => continue,
                    _other => continue,
                }
            }
            begin += length;
        }
    }
    Ok(asm.complete())
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_bittorrent::synth_file;

    #[test]
    fn drives_the_ctorrent_baseline() {
        let file = synth_file(128 * 1024, 5);
        let meta = Metainfo::from_file("t", "f", 32 * 1024, &file);
        let net = MemNet::new();
        let listener = net.listen("seed").unwrap();
        let server = flux_baselines::CtServer::start(Box::new(listener), meta.clone(), file);
        let report = run_bt_load(
            &net,
            "seed",
            &meta,
            3,
            Duration::from_millis(400),
            Duration::from_millis(100),
        );
        assert!(report.blocks > 0, "{report:?}");
        assert!(report.completions > 0, "{report:?}");
        assert_eq!(report.errors, 0, "{report:?}");
        server.stop();
    }
}
