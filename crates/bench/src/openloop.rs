//! Open-loop TCP load generator for the overload ablation.
//!
//! Closed-loop clients (like [`crate::run_web_load`]) slow down when
//! the server does, so they can never push a server past saturation —
//! exactly the regime overload control exists for. This generator is
//! **open-loop**: request arrivals fire on a fixed schedule whether or
//! not earlier requests completed, so a server at 2x capacity really
//! sees 2x capacity, and latency is measured from the *scheduled*
//! arrival (queueing at the client counts against the server, the
//! standard open-loop convention).
//!
//! It is also a connection-scale harness: one thread holds `conns`
//! TCP connections (mostly idle — the C1M shape), of which `active`
//! cycle keep-alive requests, multiplexed over the same epoll-backed
//! [`flux_net::Poller`] the server's reactor uses. Nothing here spawns
//! a thread per connection, so the held-connection count is bounded by
//! fds, not threads.

#![cfg(unix)]

use crate::percentile_ns;
use flux_net::{create_poller, Interest, PollerBackend, PollerEvent};
use std::collections::VecDeque;
use std::io::{ErrorKind, Read as _, Write as _};
use std::net::TcpStream;
use std::os::fd::{AsRawFd, RawFd};
use std::time::{Duration, Instant};

/// Configuration for one open-loop run.
#[derive(Debug, Clone)]
pub struct OpenLoopConfig {
    /// Server address, e.g. `127.0.0.1:4242`.
    pub addr: String,
    /// Connections to hold open (idle ones included).
    pub conns: usize,
    /// How many of `conns` actively cycle requests.
    pub active: usize,
    /// Offered arrival rate, requests/second, across the active set.
    pub rate: f64,
    /// Measurement window.
    pub duration: Duration,
    /// Warm-up before measurement starts.
    pub warmup: Duration,
    /// Request path (keep-alive GETs).
    pub path: String,
    /// Client-side arrival-backlog bound: past it new arrivals are
    /// counted as `abandoned` instead of queueing without bound.
    pub queue_cap: usize,
}

/// What one open-loop run measured.
#[derive(Debug, Clone)]
pub struct OpenLoopReport {
    pub conns_requested: usize,
    /// Connections actually held (clamped to the fd budget).
    pub conns_held: usize,
    /// Arrivals fired during the measurement window.
    pub offered: u64,
    /// 2xx responses (admitted and served).
    pub ok: u64,
    /// 503s — the server's shed path, observed end to end.
    pub rejected: u64,
    /// Resets, unexpected EOFs, malformed responses.
    pub errors: u64,
    /// Arrivals dropped at the client queue cap (open-loop overrun).
    pub abandoned: u64,
    pub duration: Duration,
    /// Per-request latency (ns) of **admitted** requests only, from
    /// scheduled arrival to response completion.
    pub latencies_ns: Vec<u64>,
}

impl OpenLoopReport {
    /// Served (2xx) responses per second — the goodput.
    pub fn goodput_rps(&self) -> f64 {
        self.ok as f64 / self.duration.as_secs_f64()
    }

    /// Offered arrivals per second.
    pub fn offered_rps(&self) -> f64 {
        self.offered as f64 / self.duration.as_secs_f64()
    }

    /// Latency quantile (`0..=1`) of admitted requests.
    pub fn percentile(&self, q: f64) -> Duration {
        let mut lat = self.latencies_ns.clone();
        percentile_ns(&mut lat, q)
    }
}

/// Per-connection protocol state. One outstanding request per
/// connection (HTTP/1.1 keep-alive without pipelining).
struct Client {
    stream: TcpStream,
    fd: RawFd,
    busy: bool,
    /// Unsent request bytes (short writes against a full socket).
    out: Vec<u8>,
    /// Response accumulation.
    inbuf: Vec<u8>,
    /// Once headers parse: (status, total response bytes expected
    /// — head + content-length, close?).
    head: Option<(u16, usize, bool)>,
    /// Scheduled arrival time of the in-flight request.
    t_arrival: Instant,
}

impl Client {
    /// Bounded connect: under overload the server sheds by closing, so
    /// clients reconnect in bursts that can overflow the listen
    /// backlog; a dropped SYN must cost a bounded timeout here, not a
    /// full kernel retransmission cycle stalling the event loop.
    fn connect(addr: &std::net::SocketAddr) -> std::io::Result<Client> {
        let stream = TcpStream::connect_timeout(addr, Duration::from_millis(250))?;
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        let fd = stream.as_raw_fd();
        Ok(Client {
            stream,
            fd,
            busy: false,
            out: Vec::new(),
            inbuf: Vec::new(),
            head: None,
            t_arrival: Instant::now(),
        })
    }
}

/// Parses a response head out of `buf`, returning
/// `(status, header_len, content_length, close)` once the blank line
/// has arrived.
fn parse_head(buf: &[u8]) -> Option<(u16, usize, usize, bool)> {
    let head_end = buf.windows(4).position(|w| w == b"\r\n\r\n")? + 4;
    let head = std::str::from_utf8(&buf[..head_end]).ok()?;
    let mut lines = head.split("\r\n");
    let status: u16 = lines.next()?.split_whitespace().nth(1)?.parse().ok()?;
    let mut content_length = 0usize;
    let mut close = false;
    for line in lines {
        let Some((k, v)) = line.split_once(':') else {
            continue;
        };
        let k = k.trim().to_ascii_lowercase();
        let v = v.trim();
        if k == "content-length" {
            content_length = v.parse().ok()?;
        } else if k == "connection" {
            close = v.eq_ignore_ascii_case("close");
        }
    }
    Some((status, head_end, content_length, close))
}

/// The soft fd limit, from `/proc/self/limits` (fallback 1024).
pub fn fd_limit() -> usize {
    let Ok(limits) = std::fs::read_to_string("/proc/self/limits") else {
        return 1024;
    };
    limits
        .lines()
        .find(|l| l.starts_with("Max open files"))
        .and_then(|l| l.split_whitespace().nth(3))
        .and_then(|v| v.parse().ok())
        .unwrap_or(1024)
}

/// Resident set size in MiB, from `/proc/self/status` (0.0 if absent).
/// In-process benches cover client and server together.
pub fn rss_mb() -> f64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0.0;
    };
    status
        .lines()
        .find(|l| l.starts_with("VmRSS"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|kb| kb.parse::<f64>().ok())
        .map_or(0.0, |kb| kb / 1024.0)
}

/// Runs one open-loop load phase. Single-threaded: a connect sweep,
/// then an epoll loop interleaving the arrival schedule with response
/// processing until `warmup + duration` elapses.
pub fn run_open_loop(cfg: &OpenLoopConfig) -> OpenLoopReport {
    // Hold `conns` connections, clamped to the fd budget: every
    // loopback connection costs two fds in-process (client + server
    // end), plus headroom for the server's listener/reactor/docroot.
    let budget = (fd_limit().saturating_sub(256)) * 9 / 20;
    let held = cfg.conns.min(budget.max(16));
    let active = cfg.active.min(held).max(1);

    let addr: std::net::SocketAddr = cfg.addr.parse().expect("open-loop addr must be ip:port");
    let mut clients: Vec<Client> = Vec::with_capacity(held);
    for _ in 0..held {
        match Client::connect(&addr) {
            Ok(c) => clients.push(c),
            Err(_) => break,
        }
    }
    let held = clients.len();
    let active = active.min(held);

    let mut poller = create_poller(PollerBackend::default());
    // Idle holders are never registered: they exist to occupy server
    // slots and memory. Only the active prefix is polled.
    let mut idle: VecDeque<usize> = (0..active).collect();

    let interval = Duration::from_secs_f64(1.0 / cfg.rate.max(1.0));
    let t_start = Instant::now();
    let t_measure = t_start + cfg.warmup;
    let t_end = t_measure + cfg.duration;
    let mut next_arrival = t_start;
    let mut backlog: VecDeque<Instant> = VecDeque::new();

    let (mut offered, mut ok, mut rejected, mut errors, mut abandoned) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    let mut latencies: Vec<u64> = Vec::new();
    let mut events: Vec<PollerEvent> = Vec::new();
    let request = format!(
        "GET {} HTTP/1.1\r\nHost: bench\r\nConnection: keep-alive\r\n\r\n",
        cfg.path
    )
    .into_bytes();

    loop {
        let now = Instant::now();
        if now >= t_end {
            break;
        }
        let measuring = now >= t_measure;

        // Fire due arrivals onto the backlog (open loop: the schedule
        // does not wait for completions).
        while next_arrival <= now {
            if backlog.len() >= cfg.queue_cap {
                if measuring {
                    abandoned += 1;
                    offered += 1;
                }
            } else {
                backlog.push_back(next_arrival);
                if measuring {
                    offered += 1;
                }
            }
            next_arrival += interval;
        }

        // Assign backlog to idle connections.
        while let (Some(&arrival), Some(&ci)) = (backlog.front(), idle.front()) {
            let _ = backlog.pop_front();
            let _ = idle.pop_front();
            let c = &mut clients[ci];
            c.busy = true;
            c.t_arrival = arrival;
            c.inbuf.clear();
            c.head = None;
            c.out.clear();
            let mut interest = Interest::READ;
            match c.stream.write(&request) {
                Ok(n) if n == request.len() => {}
                Ok(n) => {
                    c.out.extend_from_slice(&request[n..]);
                    interest.write = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    c.out.extend_from_slice(&request);
                    interest.write = true;
                }
                Err(_) => {
                    if measuring {
                        errors += 1;
                    }
                    reconnect(c, &addr, &mut idle, ci, poller.as_mut());
                    continue;
                }
            }
            let _ = poller.modify(c.fd, interest);
        }

        // Wait for readiness, bounded by the next scheduled arrival.
        let wait = next_arrival
            .saturating_duration_since(Instant::now())
            .min(Duration::from_millis(2));
        let _ = poller.wait(&mut events, wait);
        // PollerEvent is Copy; `events` keeps its capacity across
        // rounds and is free again once this pass ends.
        for &ev in &events {
            let Some(ci) = clients.iter().position(|c| c.fd == ev.fd) else {
                continue;
            };
            let measuring = Instant::now() >= t_measure;
            let c = &mut clients[ci];
            if !c.busy {
                continue;
            }
            let mut dead = false;
            if ev.writable && !c.out.is_empty() {
                let out = std::mem::take(&mut c.out);
                match c.stream.write(&out) {
                    Ok(n) => c.out.extend_from_slice(&out[n..]),
                    Err(e) if e.kind() == ErrorKind::WouldBlock => c.out = out,
                    Err(_) => dead = true,
                }
            }
            if ev.readable && !dead {
                let mut chunk = [0u8; 4096];
                loop {
                    match c.stream.read(&mut chunk) {
                        Ok(0) => {
                            dead = true;
                            break;
                        }
                        Ok(n) => c.inbuf.extend_from_slice(&chunk[..n]),
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(_) => {
                            dead = true;
                            break;
                        }
                    }
                }
            }
            if c.head.is_none() {
                if let Some((status, head_len, len, close)) = parse_head(&c.inbuf) {
                    c.head = Some((status, head_len + len, close));
                }
            }
            if let Some((status, expected, close)) = c.head {
                if c.inbuf.len() >= expected {
                    // Response complete.
                    if measuring {
                        if status < 400 {
                            ok += 1;
                            latencies.push(c.t_arrival.elapsed().as_nanos() as u64);
                        } else if status == 503 {
                            rejected += 1;
                        } else {
                            errors += 1;
                        }
                    }
                    c.busy = false;
                    c.inbuf.clear();
                    c.head = None;
                    if close || dead {
                        reconnect(c, &addr, &mut idle, ci, poller.as_mut());
                    } else {
                        let _ = poller.delete(c.fd);
                        idle.push_back(ci);
                    }
                    continue;
                }
            }
            if dead {
                if measuring {
                    errors += 1;
                }
                reconnect(c, &addr, &mut idle, ci, poller.as_mut());
            } else if c.busy {
                let mut interest = Interest::READ;
                interest.write = !c.out.is_empty();
                let _ = poller.modify(c.fd, interest);
            }
        }
    }

    OpenLoopReport {
        conns_requested: cfg.conns,
        conns_held: held,
        offered,
        ok,
        rejected,
        errors,
        abandoned,
        duration: cfg.duration,
        latencies_ns: latencies,
    }
}

/// Replaces a broken/closed connection and returns its slot to the
/// idle pool (a failed reconnect leaves the old socket in place; the
/// next assignment will fail fast and retry).
fn reconnect(
    c: &mut Client,
    addr: &std::net::SocketAddr,
    idle: &mut VecDeque<usize>,
    ci: usize,
    poller: &mut dyn flux_net::Poller,
) {
    let _ = poller.delete(c.fd);
    if let Ok(fresh) = Client::connect(addr) {
        *c = fresh;
    } else {
        c.busy = false;
        c.inbuf.clear();
        c.head = None;
        c.out.clear();
    }
    c.busy = false;
    idle.push_back(ci);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_parser_handles_keepalive_and_close() {
        let buf = b"HTTP/1.1 200 OK\r\nContent-Length: 4\r\n\r\ntiny";
        let (status, head_len, len, close) = parse_head(buf).unwrap();
        assert_eq!((status, len, close), (200, 4, false));
        assert_eq!(head_len + len, buf.len());
        let buf =
            b"HTTP/1.1 503 Service Unavailable\r\nConnection: close\r\nContent-Length: 0\r\n\r\n";
        let (status, _, len, close) = parse_head(buf).unwrap();
        assert_eq!((status, len, close), (503, 0, true));
        assert_eq!(parse_head(b"HTTP/1.1 200 OK\r\nContent-"), None);
    }

    #[test]
    fn fd_budget_and_rss_are_readable() {
        assert!(fd_limit() >= 256);
        assert!(rss_mb() > 0.0);
    }
}
