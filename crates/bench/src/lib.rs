//! # flux-bench — workload generators and the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation:
//!
//! | binary | reproduces |
//! |--------|------------|
//! | `table1_loc` | Table 1 (servers and lines of code) |
//! | `fig3_web` | Figure 3 (web-server throughput and latency vs clients) |
//! | `fig4_bt` | Figure 4 (BitTorrent completions, goodput, latency vs clients) |
//! | `game_latency` | §4.4 (heartbeat stability vs players) |
//! | `fig6_sim` | Figure 6 (simulator-predicted vs observed image server) |
//! | `path_profile` | §5.2 (BitTorrent hot paths under 25/50/100 clients) |
//! | `fig7_graph` | Figure 7 (the BitTorrent program graph, as DOT) |
//! | `ablation` | extensions: constraint granularity and runtime sweeps |
//!
//! Run times scale with `FLUX_BENCH_SECS` / `FLUX_BENCH_FULL=1`.

pub mod btload;
pub mod gameload;
#[cfg(unix)]
pub mod openloop;
pub mod pubsubload;
pub mod report;
pub mod webload;
pub mod webset;
pub mod zipf;

pub use btload::{run_bt_load, BtLoadReport};
pub use gameload::{run_game_load, GameLoadReport};
#[cfg(unix)]
pub use openloop::{fd_limit, rss_mb, run_open_loop, OpenLoopConfig, OpenLoopReport};
pub use pubsubload::{run_pubsub_load, PubSubLoadReport};
pub use report::{env_or, f, ms, Table};
pub use webload::{percentile_ns, run_slow_reader_tcp_load, run_web_load, LoadReport};
pub use webset::WebSet;
pub use zipf::Zipf;
