//! The web load generator (paper §4.2): "Each simulated client sends
//! five requests over a single HTTP/1.1 TCP connection using
//! keep-alives. When one file is retrieved, the next file is
//! immediately requested. After the five files are retrieved, the
//! client disconnects and reconnects over a new TCP connection. The
//! files requested by each simulated client follow the static portion
//! of the SPECweb benchmark and each file is selected using the Zipf
//! distribution."

use crate::webset::WebSet;
use flux_http::read_response;
use flux_net::MemNet;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Aggregated measurements from one load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    pub clients: usize,
    pub duration: Duration,
    pub requests: u64,
    pub errors: u64,
    pub bytes_in: u64,
    /// Mean per-request latency.
    pub mean_latency: Duration,
    /// p95 per-request latency.
    pub p95_latency: Duration,
}

impl LoadReport {
    /// Application-level goodput in megabits per second.
    pub fn mbps(&self) -> f64 {
        (self.bytes_in as f64 * 8.0) / self.duration.as_secs_f64() / 1e6
    }

    /// Requests per second.
    pub fn rps(&self) -> f64 {
        self.requests as f64 / self.duration.as_secs_f64()
    }
}

/// Runs `clients` concurrent SPECweb-style clients against `addr` on
/// `net` for `duration`. Latencies are sampled per request.
pub fn run_web_load(
    net: &Arc<MemNet>,
    addr: &str,
    set: &Arc<WebSet>,
    clients: usize,
    duration: Duration,
    warmup: Duration,
) -> LoadReport {
    let stop = Arc::new(AtomicBool::new(false));
    let requests = Arc::new(AtomicU64::new(0));
    let errors = Arc::new(AtomicU64::new(0));
    let bytes_in = Arc::new(AtomicU64::new(0));
    let latency_ns = Arc::new(AtomicU64::new(0));
    let latencies: Arc<parking_lot::Mutex<Vec<u64>>> =
        Arc::new(parking_lot::Mutex::new(Vec::new()));
    let measuring = Arc::new(AtomicBool::new(false));

    let mut joins = Vec::with_capacity(clients);
    for cid in 0..clients {
        let net = net.clone();
        let addr = addr.to_string();
        let set = set.clone();
        let stop = stop.clone();
        let requests = requests.clone();
        let errors = errors.clone();
        let bytes_in = bytes_in.clone();
        let latency_ns = latency_ns.clone();
        let latencies = latencies.clone();
        let measuring = measuring.clone();
        joins.push(
            std::thread::Builder::new()
                .name(format!("webload-{cid}"))
                .spawn(move || {
                    let mut rng = StdRng::seed_from_u64(cid as u64 + 1);
                    'reconnect: while !stop.load(Ordering::Relaxed) {
                        let Ok(mut conn) = net.connect(&addr) else {
                            errors.fetch_add(1, Ordering::Relaxed);
                            std::thread::sleep(Duration::from_millis(5));
                            continue;
                        };
                        // Five keep-alive requests, then reconnect.
                        for i in 0..5 {
                            if stop.load(Ordering::Relaxed) {
                                return;
                            }
                            let path = set.sample(&mut rng).to_string();
                            let connection = if i == 4 { "close" } else { "keep-alive" };
                            let t0 = Instant::now();
                            if write!(
                                conn,
                                "GET {path} HTTP/1.1\r\nHost: bench\r\nConnection: {connection}\r\n\r\n"
                            )
                            .is_err()
                            {
                                errors.fetch_add(1, Ordering::Relaxed);
                                continue 'reconnect;
                            }
                            match read_response(&mut conn) {
                                Ok((status, body)) => {
                                    let dt = t0.elapsed().as_nanos() as u64;
                                    if measuring.load(Ordering::Relaxed) {
                                        requests.fetch_add(1, Ordering::Relaxed);
                                        bytes_in
                                            .fetch_add(body.len() as u64, Ordering::Relaxed);
                                        latency_ns.fetch_add(dt, Ordering::Relaxed);
                                        let mut l = latencies.lock();
                                        if l.len() < 1_000_000 {
                                            l.push(dt);
                                        }
                                        if status >= 400 {
                                            errors.fetch_add(1, Ordering::Relaxed);
                                        }
                                    }
                                }
                                Err(_) => {
                                    errors.fetch_add(1, Ordering::Relaxed);
                                    continue 'reconnect;
                                }
                            }
                        }
                    }
                })
                .expect("spawn load client"),
        );
    }

    std::thread::sleep(warmup);
    measuring.store(true, Ordering::SeqCst);
    let t0 = Instant::now();
    std::thread::sleep(duration);
    measuring.store(false, Ordering::SeqCst);
    let measured = t0.elapsed();
    stop.store(true, Ordering::SeqCst);
    for j in joins {
        let _ = j.join();
    }

    let reqs = requests.load(Ordering::Relaxed);
    let mut lat = latencies.lock().clone();
    let p95 = percentile_ns(&mut lat, 0.95);
    LoadReport {
        clients,
        duration: measured,
        requests: reqs,
        errors: errors.load(Ordering::Relaxed),
        bytes_in: bytes_in.load(Ordering::Relaxed),
        mean_latency: Duration::from_nanos(
            latency_ns
                .load(Ordering::Relaxed)
                .checked_div(reqs)
                .unwrap_or(0),
        ),
        p95_latency: p95,
    }
}

/// Runs `clients` slow-reader clients against a **TCP** web server at
/// `addr` for `duration`: each client requests `path` on a fresh
/// connection, then reads the response in `chunk`-byte slices with
/// `read_delay` between slices. A response larger than the kernel's
/// socket buffers therefore keeps the server's write path busy for the
/// whole drain — the workload that distinguishes reactor writes
/// (`POLLOUT` drains, I/O pool untouched) from blocking writes (one
/// parked I/O worker per draining response).
pub fn run_slow_reader_tcp_load(
    addr: &str,
    path: &str,
    clients: usize,
    duration: Duration,
    chunk: usize,
    read_delay: Duration,
) -> LoadReport {
    let stop = Arc::new(AtomicBool::new(false));
    let requests = Arc::new(AtomicU64::new(0));
    let errors = Arc::new(AtomicU64::new(0));
    let bytes_in = Arc::new(AtomicU64::new(0));
    let latency_ns = Arc::new(AtomicU64::new(0));
    let latencies: Arc<parking_lot::Mutex<Vec<u64>>> =
        Arc::new(parking_lot::Mutex::new(Vec::new()));

    let mut joins = Vec::with_capacity(clients);
    for cid in 0..clients {
        let addr = addr.to_string();
        let path = path.to_string();
        let stop = stop.clone();
        let requests = requests.clone();
        let errors = errors.clone();
        let bytes_in = bytes_in.clone();
        let latency_ns = latency_ns.clone();
        let latencies = latencies.clone();
        joins.push(
            std::thread::Builder::new()
                .name(format!("slowload-{cid}"))
                .spawn(move || {
                    use std::io::Read as _;
                    while !stop.load(Ordering::Relaxed) {
                        let Ok(mut conn) = flux_net::TcpConn::connect(&addr) else {
                            errors.fetch_add(1, Ordering::Relaxed);
                            std::thread::sleep(Duration::from_millis(5));
                            continue;
                        };
                        let t0 = Instant::now();
                        if write!(
                            conn,
                            "GET {path} HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n"
                        )
                        .is_err()
                        {
                            errors.fetch_add(1, Ordering::Relaxed);
                            continue;
                        }
                        // Slow drain: bounded reads with think time. The
                        // connection closes after one response, so read
                        // to EOF.
                        let mut buf = vec![0u8; chunk];
                        let mut got = 0u64;
                        let ok = loop {
                            match conn.read(&mut buf) {
                                Ok(0) => break true,
                                Ok(n) => {
                                    got += n as u64;
                                    std::thread::sleep(read_delay);
                                }
                                Err(_) => break false,
                            }
                        };
                        if !ok {
                            errors.fetch_add(1, Ordering::Relaxed);
                            continue;
                        }
                        let dt = t0.elapsed().as_nanos() as u64;
                        requests.fetch_add(1, Ordering::Relaxed);
                        bytes_in.fetch_add(got, Ordering::Relaxed);
                        latency_ns.fetch_add(dt, Ordering::Relaxed);
                        let mut l = latencies.lock();
                        if l.len() < 100_000 {
                            l.push(dt);
                        }
                    }
                })
                .expect("spawn slow-reader client"),
        );
    }

    let t0 = Instant::now();
    std::thread::sleep(duration);
    stop.store(true, Ordering::SeqCst);
    for j in joins {
        let _ = j.join();
    }
    let measured = t0.elapsed();

    let reqs = requests.load(Ordering::Relaxed);
    let mut lat = latencies.lock().clone();
    let p95 = percentile_ns(&mut lat, 0.95);
    LoadReport {
        clients,
        duration: measured,
        requests: reqs,
        errors: errors.load(Ordering::Relaxed),
        bytes_in: bytes_in.load(Ordering::Relaxed),
        mean_latency: Duration::from_nanos(
            latency_ns
                .load(Ordering::Relaxed)
                .checked_div(reqs)
                .unwrap_or(0),
        ),
        p95_latency: p95,
    }
}

/// Sorts `lat_ns` and returns the `q`-quantile (`0..=1`) as a
/// `Duration`, using the floor of `(len - 1) * q` — the one percentile
/// definition every bench report shares, so p95 columns computed by
/// different harnesses (closed-loop load reports, ablation 9's trickle
/// probes) are comparable.
pub fn percentile_ns(lat_ns: &mut [u64], q: f64) -> Duration {
    if lat_ns.is_empty() {
        return Duration::ZERO;
    }
    lat_ns.sort_unstable();
    let idx = ((lat_ns.len() - 1) as f64 * q) as usize;
    Duration::from_nanos(lat_ns[idx])
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_http::DocRoot;

    #[test]
    fn load_generator_drives_a_server() {
        let _ = DocRoot::new(); // substrate sanity
        let set = Arc::new(WebSet::build(256 * 1024));
        let net = MemNet::new();
        let listener = net.listen("w").unwrap();
        let server = flux_baselines::KnotServer::start(Box::new(listener), set.docroot.clone(), 4);
        let report = run_web_load(
            &net,
            "w",
            &set,
            4,
            Duration::from_millis(300),
            Duration::from_millis(50),
        );
        assert!(report.requests > 0, "{report:?}");
        assert_eq!(report.errors, 0, "{report:?}");
        assert!(report.mbps() > 0.0);
        assert!(report.mean_latency > Duration::ZERO);
        server.stop();
    }
}
