//! The SPECweb99-like static working set (paper §4.2): a document tree
//! of roughly 32 MB whose files are requested with Zipf-distributed
//! popularity, small files most popular — "this benchmark primarily
//! stresses CPU performance" because the whole set fits in RAM.
//!
//! SPECweb99's static mix draws files from four classes (sub-KB to
//! ~1 MB); we reproduce the class structure: 4 classes x 9 files per
//! directory, sizes 102 B .. 921.6 KB, across enough directories to
//! reach the target set size.

use crate::zipf::Zipf;
use flux_http::DocRoot;
use rand::Rng;

/// SPECweb99 class sizes in bytes (class 0..=3, file 0..=8 within a
/// class scales linearly).
fn file_size(class: usize, idx: usize) -> usize {
    let base = match class {
        0 => 102,     // 0.1 KB .. 0.9 KB
        1 => 1_024,   // 1 KB .. 9 KB
        2 => 10_240,  // 10 KB .. 90 KB
        _ => 102_400, // 100 KB .. 900 KB
    };
    base * (idx + 1)
}

/// SPECweb99 class frequencies: class 1 (1-9 KB) dominates.
const CLASS_WEIGHT: [f64; 4] = [0.35, 0.50, 0.14, 0.01];

/// A generated working set plus its request sampler.
pub struct WebSet {
    pub docroot: DocRoot,
    /// Flat list of request paths, indexed by the popularity sampler.
    paths: Vec<String>,
    zipf: Zipf,
}

impl WebSet {
    /// Builds a working set of roughly `target_bytes` (the paper's is
    /// ~32 MB) plus a couple of FluxScript pages for dynamic-load tests.
    pub fn build(target_bytes: usize) -> WebSet {
        let mut docroot = DocRoot::new();
        let mut paths = Vec::new();
        let mut total = 0usize;
        let mut dir = 0usize;
        'outer: loop {
            for class in 0..4 {
                for idx in 0..9 {
                    let size = file_size(class, idx);
                    let path = format!("/dir{dir:05}/class{class}_{idx}.html");
                    let body = synth_page(&path, size);
                    total += body.len();
                    docroot.insert(&path, body);
                    paths.push(path);
                    if total >= target_bytes {
                        break 'outer;
                    }
                }
            }
            dir += 1;
        }
        // Order paths so that popular ranks are spread over classes the
        // way SPECweb skews them: weight-stratified shuffle by class.
        paths.sort_by_key(|p| {
            let class: usize = p
                .rsplit_once("class")
                .and_then(|(_, c)| c[..1].parse().ok())
                .unwrap_or(0);
            // Lower key = more popular rank region.
            let w = (CLASS_WEIGHT[class] * 1000.0) as i64;
            (-w, p.clone())
        });
        docroot.insert(
            "/dynamic.fxs",
            "<?fx $t = 0; for ($i = 0; $i < $n; $i = $i + 1) { $t = $t + $i * $i; } echo $t; ?>",
        );
        let zipf = Zipf::new(paths.len(), 1.0);
        WebSet {
            docroot,
            paths,
            zipf,
        }
    }

    /// Samples a request path by popularity.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> &str {
        &self.paths[self.zipf.sample(rng)]
    }

    /// Number of static files.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// Never empty.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Total bytes in the set.
    pub fn total_bytes(&self) -> usize {
        self.docroot.total_bytes()
    }
}

/// Deterministic page content of exactly `size` bytes.
fn synth_page(path: &str, size: usize) -> Vec<u8> {
    let mut body = format!("<html><!-- {path} -->").into_bytes();
    let filler = b"Lorem ipsum dolor sit amet, consectetur adipiscing elit. ";
    while body.len() < size.saturating_sub(7) {
        let take = filler.len().min(size.saturating_sub(7) - body.len());
        body.extend_from_slice(&filler[..take]);
    }
    body.extend_from_slice(b"</html>");
    body.truncate(size.max(14));
    body
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn set_reaches_target_size() {
        let set = WebSet::build(2 * 1024 * 1024);
        assert!(set.total_bytes() >= 2 * 1024 * 1024);
        assert!(set.total_bytes() < 4 * 1024 * 1024, "not wildly over");
        assert!(set.len() > 30);
    }

    #[test]
    fn sampled_paths_resolve() {
        let set = WebSet::build(1024 * 1024);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let p = set.sample(&mut rng).to_string();
            assert!(set.docroot.get(&p).is_some(), "sampled path {p} exists");
        }
    }

    #[test]
    fn popular_files_are_small_classes() {
        let set = WebSet::build(4 * 1024 * 1024);
        let mut rng = StdRng::seed_from_u64(9);
        let mut bytes = 0usize;
        let n = 2000;
        for _ in 0..n {
            let p = set.sample(&mut rng).to_string();
            bytes += set.docroot.get(&p).map(|b| b.len()).unwrap_or(0);
        }
        let mean = bytes / n;
        // The weighted mix must skew far below the largest class size.
        assert!(mean < 100_000, "mean sampled size {mean} bytes");
    }

    #[test]
    fn dynamic_page_present() {
        let set = WebSet::build(512 * 1024);
        assert!(set.docroot.get("/dynamic.fxs").is_some());
    }
}
