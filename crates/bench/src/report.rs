//! Plain-text table rendering for experiment output: every experiment
//! binary prints the same rows/series the paper's tables and figures
//! report, and optionally appends CSV for plotting.

use std::fmt::Write as _;

/// A simple aligned-column table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds one row (stringify everything up front).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity");
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Renders as CSV (for plotting).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.headers.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }
}

/// Formats a float with sensible precision for tables.
pub fn f(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

/// Formats a duration in milliseconds.
pub fn ms(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

/// Reads an environment knob with a default (experiment scaling).
pub fn env_or<T: std::str::FromStr>(name: &str, default: T) -> T {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["clients", "mbps"]);
        t.row(&["4".into(), "123.40".into()]);
        t.row(&["512".into(), "9.87".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("clients"));
        assert!(s.lines().count() >= 5);
        let csv = t.to_csv();
        assert!(csv.starts_with("clients,mbps\n"));
        assert!(csv.contains("512,9.87"));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(1234.6), "1235");
        assert_eq!(f(12.345), "12.35");
        assert_eq!(f(0.01234), "0.0123");
    }

    #[test]
    fn env_knob_default() {
        assert_eq!(env_or("FLUX_BENCH_NOT_SET_XYZ", 42u32), 42);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        Table::new("t", &["a", "b"]).row(&["only-one".into()]);
    }
}
