//! SHA-1, from scratch (FIPS 180-1), for BitTorrent piece verification
//! and info-hashes. SHA-1 is cryptographically broken for collision
//! resistance, but it is what the BitTorrent protocol specifies.

/// A 20-byte SHA-1 digest.
pub type Digest = [u8; 20];

/// Computes the SHA-1 digest of `data` in one shot.
pub fn sha1(data: &[u8]) -> Digest {
    let mut h = Sha1::new();
    h.update(data);
    h.finish()
}

/// Incremental SHA-1.
#[derive(Debug, Clone)]
pub struct Sha1 {
    state: [u32; 5],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha1 {
    pub fn new() -> Self {
        Sha1 {
            state: [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0],
            buf: [0; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len += data.len() as u64;
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
            if data.is_empty() {
                // Nothing left; the partial buffer must be preserved.
                return;
            }
        }
        while data.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&data[..64]);
            self.compress(&block);
            data = &data[64..];
        }
        self.buf[..data.len()].copy_from_slice(data);
        self.buf_len = data.len();
    }

    /// Finalizes and returns the digest.
    pub fn finish(mut self) -> Digest {
        let bit_len = self.total_len * 8;
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Length is appended manually (not via update, which would count
        // it into total_len).
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);
        let mut out = [0u8; 20];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.state;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | (!b & d), 0x5A827999u32),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

/// Hex rendering for digests (tracker URLs, logs).
pub fn to_hex(d: &Digest) -> String {
    let mut s = String::with_capacity(40);
    for b in d {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(data: &[u8]) -> String {
        to_hex(&sha1(data))
    }

    /// FIPS 180-1 and RFC 3174 test vectors.
    #[test]
    fn standard_vectors() {
        assert_eq!(hex(b""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
        assert_eq!(hex(b"abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
        assert_eq!(
            hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
        assert_eq!(
            hex(b"The quick brown fox jumps over the lazy dog"),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            to_hex(&h.finish()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let oneshot = sha1(&data);
        for chunk_size in [1, 7, 63, 64, 65, 1000] {
            let mut h = Sha1::new();
            for c in data.chunks(chunk_size) {
                h.update(c);
            }
            assert_eq!(h.finish(), oneshot, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn boundary_lengths() {
        // Message lengths around the padding boundary (55/56/64 bytes).
        for len in 50..70 {
            let data = vec![0xabu8; len];
            let d1 = sha1(&data);
            let mut h = Sha1::new();
            h.update(&data[..len / 2]);
            h.update(&data[len / 2..]);
            assert_eq!(h.finish(), d1, "length {len}");
        }
    }
}
