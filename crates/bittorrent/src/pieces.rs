//! Piece bookkeeping: bitfields, the seeder's piece store and the
//! leecher's piece assembler with SHA-1 verification (the `VerifyPiece`
//! / `CompletePiece` nodes of Figure 7).

use crate::metainfo::Metainfo;
use crate::sha1::sha1;

/// A packed piece-presence bitfield (BEP 3 bit order: piece 0 is the
/// high bit of byte 0).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitfield {
    bits: Vec<u8>,
    len: usize,
}

impl Bitfield {
    /// All-zero bitfield for `len` pieces.
    pub fn new(len: usize) -> Bitfield {
        Bitfield {
            bits: vec![0; len.div_ceil(8)],
            len,
        }
    }

    /// All-one bitfield (a seeder).
    pub fn full(len: usize) -> Bitfield {
        let mut b = Bitfield::new(len);
        for i in 0..len {
            b.set(i);
        }
        b
    }

    /// Parses a wire bitfield for `len` pieces.
    pub fn from_bytes(bytes: &[u8], len: usize) -> Option<Bitfield> {
        if bytes.len() != len.div_ceil(8) {
            return None;
        }
        // Spare bits must be zero.
        let spare = bytes.len() * 8 - len;
        if spare > 0 {
            let last = bytes[bytes.len() - 1];
            if last & ((1u16.wrapping_shl(spare as u32) - 1) as u8) != 0 {
                return None;
            }
        }
        Some(Bitfield {
            bits: bytes.to_vec(),
            len,
        })
    }

    /// The wire representation.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bits
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.bits[i / 8] & (0x80 >> (i % 8)) != 0
    }

    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.bits[i / 8] |= 0x80 >> (i % 8);
    }

    /// Number of pieces present.
    pub fn count(&self) -> usize {
        self.bits.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// True when every piece is present.
    pub fn complete(&self) -> bool {
        self.count() == self.len
    }

    /// Indices set in `other` but not in `self` (pieces worth requesting).
    pub fn missing_from(&self, other: &Bitfield) -> Vec<usize> {
        (0..self.len)
            .filter(|&i| !self.get(i) && other.get(i))
            .collect()
    }
}

/// A seeder's complete file, serving block reads.
#[derive(Debug, Clone)]
pub struct PieceStore {
    meta: Metainfo,
    data: Vec<u8>,
}

impl PieceStore {
    /// Wraps a complete file, verifying it against the metainfo.
    pub fn new(meta: Metainfo, data: Vec<u8>) -> Result<PieceStore, String> {
        if data.len() != meta.total_len {
            return Err(format!(
                "file is {} bytes, metainfo says {}",
                data.len(),
                meta.total_len
            ));
        }
        for (i, chunk) in data.chunks(meta.piece_len).enumerate() {
            if sha1(chunk) != meta.piece_hashes[i] {
                return Err(format!("piece {i} hash mismatch"));
            }
        }
        Ok(PieceStore { meta, data })
    }

    pub fn metainfo(&self) -> &Metainfo {
        &self.meta
    }

    /// Reads a block, validating bounds.
    pub fn read_block(&self, index: u32, begin: u32, length: u32) -> Option<&[u8]> {
        let index = index as usize;
        if index >= self.meta.num_pieces() {
            return None;
        }
        let piece_size = self.meta.piece_size(index);
        let (begin, length) = (begin as usize, length as usize);
        if begin + length > piece_size || length == 0 {
            return None;
        }
        let start = index * self.meta.piece_len + begin;
        self.data.get(start..start + length)
    }

    /// The seeder's full bitfield.
    pub fn bitfield(&self) -> Bitfield {
        Bitfield::full(self.meta.num_pieces())
    }
}

/// A leecher assembling pieces from blocks.
#[derive(Debug)]
pub struct PieceAssembler {
    meta: Metainfo,
    have: Bitfield,
    /// In-progress pieces: per piece, the buffer and a fill mask of
    /// received byte ranges (block granularity tracked as byte count).
    partial: std::collections::HashMap<u32, PartialPiece>,
    data: Vec<u8>,
}

#[derive(Debug)]
struct PartialPiece {
    buf: Vec<u8>,
    received: Vec<bool>,
}

/// Result of feeding a block into the assembler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockResult {
    /// Block stored; the piece is still incomplete.
    Accepted,
    /// The block completed its piece and the SHA-1 matched.
    PieceComplete,
    /// The block completed its piece but the hash failed; the piece was
    /// discarded and must be re-requested.
    HashMismatch,
    /// The block was out of bounds or duplicated.
    Rejected,
}

/// The standard request block size (16 KiB).
pub const BLOCK_SIZE: u32 = 16 * 1024;

impl PieceAssembler {
    pub fn new(meta: Metainfo) -> PieceAssembler {
        let n = meta.num_pieces();
        let total = meta.total_len;
        PieceAssembler {
            meta,
            have: Bitfield::new(n),
            partial: std::collections::HashMap::new(),
            data: vec![0; total],
        }
    }

    pub fn have(&self) -> &Bitfield {
        &self.have
    }

    pub fn complete(&self) -> bool {
        self.have.complete()
    }

    /// The block requests needed for piece `index`, in order.
    pub fn blocks_for(&self, index: u32) -> Vec<(u32, u32)> {
        let size = self.meta.piece_size(index as usize) as u32;
        let mut out = Vec::new();
        let mut begin = 0;
        while begin < size {
            out.push((begin, BLOCK_SIZE.min(size - begin)));
            begin += BLOCK_SIZE;
        }
        out
    }

    /// Feeds one received block.
    pub fn add_block(&mut self, index: u32, begin: u32, block: &[u8]) -> BlockResult {
        let idx = index as usize;
        if idx >= self.meta.num_pieces() || self.have.get(idx) {
            return BlockResult::Rejected;
        }
        let piece_size = self.meta.piece_size(idx);
        let begin = begin as usize;
        if begin + block.len() > piece_size || block.is_empty() {
            return BlockResult::Rejected;
        }
        let entry = self.partial.entry(index).or_insert_with(|| PartialPiece {
            buf: vec![0; piece_size],
            received: vec![false; piece_size],
        });
        if entry.received[begin] {
            return BlockResult::Rejected; // duplicate block start
        }
        entry.buf[begin..begin + block.len()].copy_from_slice(block);
        for r in &mut entry.received[begin..begin + block.len()] {
            *r = true;
        }
        if !entry.received.iter().all(|&r| r) {
            return BlockResult::Accepted;
        }
        let done = self.partial.remove(&index).expect("entry exists");
        if sha1(&done.buf) != self.meta.piece_hashes[idx] {
            return BlockResult::HashMismatch;
        }
        let start = idx * self.meta.piece_len;
        self.data[start..start + piece_size].copy_from_slice(&done.buf);
        self.have.set(idx);
        BlockResult::PieceComplete
    }

    /// The assembled file (valid once `complete()`).
    pub fn into_data(self) -> Vec<u8> {
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metainfo::synth_file;

    fn meta_and_file(len: usize, piece_len: usize) -> (Metainfo, Vec<u8>) {
        let data = synth_file(len, 77);
        let meta = Metainfo::from_file("t", "f", piece_len, &data);
        (meta, data)
    }

    #[test]
    fn bitfield_ops() {
        let mut b = Bitfield::new(10);
        assert_eq!(b.as_bytes().len(), 2);
        b.set(0);
        b.set(9);
        assert!(b.get(0) && b.get(9) && !b.get(5));
        assert_eq!(b.count(), 2);
        assert_eq!(b.as_bytes(), &[0b1000_0000, 0b0100_0000]);
        let full = Bitfield::full(10);
        assert!(full.complete());
        assert_eq!(b.missing_from(&full), vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn bitfield_wire_validation() {
        assert!(Bitfield::from_bytes(&[0xff, 0xc0], 10).is_some());
        assert!(
            Bitfield::from_bytes(&[0xff, 0xe0], 10).is_none(),
            "spare bit set"
        );
        assert!(Bitfield::from_bytes(&[0xff], 10).is_none(), "wrong length");
    }

    #[test]
    fn store_serves_blocks() {
        let (meta, data) = meta_and_file(100_000, 32768);
        let store = PieceStore::new(meta, data.clone()).unwrap();
        let b = store.read_block(0, 0, 100).unwrap();
        assert_eq!(b, &data[..100]);
        let last_piece = store.metainfo().num_pieces() as u32 - 1;
        let last_size = store.metainfo().piece_size(last_piece as usize) as u32;
        assert!(store.read_block(last_piece, 0, last_size).is_some());
        assert!(store.read_block(last_piece, 0, last_size + 1).is_none());
        assert!(store.read_block(99, 0, 1).is_none());
        assert!(store.read_block(0, 0, 0).is_none());
    }

    #[test]
    fn store_rejects_corrupt_file() {
        let (meta, mut data) = meta_and_file(50_000, 16384);
        data[100] ^= 0xff;
        assert!(PieceStore::new(meta, data).is_err());
    }

    #[test]
    fn assembler_end_to_end() {
        let (meta, data) = meta_and_file(100_000, 32768);
        let store = PieceStore::new(meta.clone(), data.clone()).unwrap();
        let mut asm = PieceAssembler::new(meta.clone());
        for piece in 0..meta.num_pieces() as u32 {
            let blocks = asm.blocks_for(piece);
            for (i, &(begin, len)) in blocks.iter().enumerate() {
                let block = store.read_block(piece, begin, len).unwrap();
                let result = asm.add_block(piece, begin, block);
                if i + 1 == blocks.len() {
                    assert_eq!(result, BlockResult::PieceComplete);
                } else {
                    assert_eq!(result, BlockResult::Accepted);
                }
            }
        }
        assert!(asm.complete());
        assert_eq!(asm.into_data(), data);
    }

    #[test]
    fn corrupted_block_detected() {
        let (meta, _) = meta_and_file(40_000, 32768);
        let mut asm = PieceAssembler::new(meta.clone());
        let blocks = asm.blocks_for(0);
        for (i, &(begin, len)) in blocks.iter().enumerate() {
            let junk = vec![0xEE; len as usize];
            let result = asm.add_block(0, begin, &junk);
            if i + 1 == blocks.len() {
                assert_eq!(result, BlockResult::HashMismatch);
            }
        }
        assert!(!asm.have().get(0), "piece discarded after mismatch");
        // Can re-request: fresh blocks accepted again.
        assert_eq!(asm.add_block(0, 0, &[1; 100]), BlockResult::Accepted);
    }

    #[test]
    fn duplicate_and_oob_blocks_rejected() {
        let (meta, data) = meta_and_file(40_000, 32768);
        let mut asm = PieceAssembler::new(meta);
        assert_eq!(asm.add_block(0, 0, &data[..100]), BlockResult::Accepted);
        assert_eq!(asm.add_block(0, 0, &data[..100]), BlockResult::Rejected);
        assert_eq!(asm.add_block(5, 0, &data[..100]), BlockResult::Rejected);
        assert_eq!(
            asm.add_block(0, 32768 - 50, &data[..100]),
            BlockResult::Rejected
        );
    }
}
