//! # flux-bittorrent — BitTorrent substrate for the Flux peer
//!
//! Everything the paper's BitTorrent peer (§4.3, Figure 7) sits on,
//! built from scratch: bencode, SHA-1, single-file metainfo, the peer
//! wire protocol (handshake + all BEP 3 messages), piece bookkeeping
//! with hash verification, and an HTTP tracker (client and server).

pub mod bencode;
pub mod metainfo;
pub mod net_io;
pub mod pieces;
pub mod sha1;
pub mod tracker;
pub mod wire;

pub use bencode::{Bencode, BencodeError};
pub use metainfo::{synth_file, Metainfo};
pub use pieces::{Bitfield, BlockResult, PieceAssembler, PieceStore, BLOCK_SIZE};
pub use sha1::{sha1, Digest, Sha1};
pub use tracker::{announce, Announce, PeerInfo, Tracker, TrackerResponse};
pub use wire::{Handshake, Message};
