//! A minimal HTTP tracker (client and server) over `flux-net`.
//!
//! The Figure 7 Flux program checks in with a tracker
//! (`CheckinWithTracker -> SendRequestToTracker -> GetTrackerResponse`);
//! this module supplies both ends: a client that announces and parses
//! the bencoded peer list, and a tracker server for hermetic tests and
//! benchmarks. Peer addresses are transport strings (mem or TCP).

use crate::bencode::Bencode;
use crate::sha1::Digest;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{self, Read, Write};

use std::sync::Arc;

/// One announce request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Announce {
    pub info_hash: Digest,
    pub peer_id: [u8; 20],
    /// The address other peers should connect to.
    pub addr: String,
    /// Bytes left to download (0 = seeder).
    pub left: u64,
}

/// A tracker's view of one peer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerInfo {
    pub peer_id: [u8; 20],
    pub addr: String,
}

/// The tracker's response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrackerResponse {
    pub interval_s: u32,
    pub peers: Vec<PeerInfo>,
}

fn hex_escape(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("%{b:02x}")).collect()
}

fn hex_unescape(s: &str) -> Option<Vec<u8>> {
    let bytes = s.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            if i + 2 >= bytes.len() {
                return None;
            }
            let h = (bytes[i + 1] as char).to_digit(16)?;
            let l = (bytes[i + 2] as char).to_digit(16)?;
            out.push((h * 16 + l) as u8);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    Some(out)
}

/// Sends an announce over an open connection and parses the response.
pub fn announce<C: Read + Write + ?Sized>(
    conn: &mut C,
    req: &Announce,
) -> io::Result<TrackerResponse> {
    let query = format!(
        "/announce?info_hash={}&peer_id={}&addr={}&left={}",
        hex_escape(&req.info_hash),
        hex_escape(&req.peer_id),
        req.addr,
        req.left
    );
    let http = format!("GET {query} HTTP/1.1\r\nHost: tracker\r\nConnection: close\r\n\r\n");
    conn.write_all(http.as_bytes())?;
    // Read the whole response (Connection: close).
    let mut buf = Vec::new();
    conn.read_to_end(&mut buf)?;
    let body_at = buf
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no response body"))?;
    parse_response(&buf[body_at + 4..])
}

fn parse_response(body: &[u8]) -> io::Result<TrackerResponse> {
    let doc = Bencode::decode(body)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    if let Some(fail) = doc.get("failure reason").and_then(|v| v.as_str()) {
        return Err(io::Error::other(fail.to_string()));
    }
    let interval_s = doc.get("interval").and_then(|v| v.as_int()).unwrap_or(1800) as u32;
    let mut peers = Vec::new();
    if let Some(list) = doc.get("peers").and_then(|v| v.as_list()) {
        for p in list {
            let id = p.get("peer id").and_then(|v| v.as_bytes());
            let addr = p.get("addr").and_then(|v| v.as_str());
            if let (Some(id), Some(addr)) = (id, addr) {
                if id.len() == 20 {
                    let mut peer_id = [0u8; 20];
                    peer_id.copy_from_slice(id);
                    peers.push(PeerInfo {
                        peer_id,
                        addr: addr.to_string(),
                    });
                }
            }
        }
    }
    Ok(TrackerResponse { interval_s, peers })
}

/// The tracker server's swarm state.
#[derive(Default)]
pub struct Tracker {
    swarms: Mutex<HashMap<Digest, Vec<PeerInfo>>>,
}

impl Tracker {
    pub fn new() -> Arc<Tracker> {
        Arc::new(Tracker::default())
    }

    /// Registers the announce and returns the current peer list
    /// (excluding the announcer).
    pub fn handle_announce(&self, req: &Announce) -> TrackerResponse {
        let mut swarms = self.swarms.lock();
        let peers = swarms.entry(req.info_hash).or_default();
        if !peers.iter().any(|p| p.peer_id == req.peer_id) {
            peers.push(PeerInfo {
                peer_id: req.peer_id,
                addr: req.addr.clone(),
            });
        }
        TrackerResponse {
            interval_s: 60,
            peers: peers
                .iter()
                .filter(|p| p.peer_id != req.peer_id)
                .cloned()
                .collect(),
        }
    }

    /// Parses an announce HTTP request line.
    pub fn parse_announce(request_target: &str) -> Option<Announce> {
        let (path, query) = request_target.split_once('?')?;
        if path != "/announce" {
            return None;
        }
        let mut info_hash = None;
        let mut peer_id = None;
        let mut addr = None;
        let mut left = 0u64;
        for kv in query.split('&') {
            let (k, v) = kv.split_once('=')?;
            match k {
                "info_hash" => {
                    let raw = hex_unescape(v)?;
                    if raw.len() != 20 {
                        return None;
                    }
                    let mut d = [0u8; 20];
                    d.copy_from_slice(&raw);
                    info_hash = Some(d);
                }
                "peer_id" => {
                    let raw = hex_unescape(v)?;
                    if raw.len() != 20 {
                        return None;
                    }
                    let mut d = [0u8; 20];
                    d.copy_from_slice(&raw);
                    peer_id = Some(d);
                }
                "addr" => addr = Some(v.to_string()),
                "left" => left = v.parse().ok()?,
                _ => {}
            }
        }
        Some(Announce {
            info_hash: info_hash?,
            peer_id: peer_id?,
            addr: addr?,
            left,
        })
    }

    /// Serves one tracker connection: reads the request line, answers,
    /// closes.
    pub fn serve_conn<C: Read + Write + ?Sized>(&self, conn: &mut C) -> io::Result<()> {
        let mut buf = Vec::new();
        let mut byte = [0u8; 1];
        while !buf.ends_with(b"\r\n\r\n") {
            match conn.read(&mut byte) {
                Ok(0) => break,
                Ok(_) => buf.push(byte[0]),
                Err(e) => return Err(e),
            }
            if buf.len() > 8192 {
                break;
            }
        }
        let text = String::from_utf8_lossy(&buf);
        let target = text
            .lines()
            .next()
            .and_then(|l| l.split_whitespace().nth(1))
            .unwrap_or("/");
        let body = match Self::parse_announce(target) {
            Some(req) => {
                let resp = self.handle_announce(&req);
                encode_response(&resp)
            }
            None => Bencode::dict([("failure reason", Bencode::str("bad announce"))]).encode(),
        };
        let head = format!(
            "HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        );
        conn.write_all(head.as_bytes())?;
        conn.write_all(&body)?;
        Ok(())
    }
}

fn encode_response(resp: &TrackerResponse) -> Vec<u8> {
    Bencode::dict([
        ("interval", Bencode::Int(resp.interval_s as i64)),
        (
            "peers",
            Bencode::List(
                resp.peers
                    .iter()
                    .map(|p| {
                        Bencode::dict([
                            ("addr", Bencode::str(&p.addr)),
                            ("peer id", Bencode::Bytes(p.peer_id.to_vec())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
    .encode()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn announce_round_trip_through_parser() {
        let req = Announce {
            info_hash: [0x1f; 20],
            peer_id: *b"-FX0001-000000000001",
            addr: "mem:peer1".into(),
            left: 54_000_000,
        };
        let target = format!(
            "/announce?info_hash={}&peer_id={}&addr={}&left={}",
            hex_escape(&req.info_hash),
            hex_escape(&req.peer_id),
            req.addr,
            req.left
        );
        let parsed = Tracker::parse_announce(&target).unwrap();
        assert_eq!(parsed, req);
    }

    #[test]
    fn tracker_excludes_announcer_and_dedups() {
        let tracker = Tracker::new();
        let mk = |id: u8, addr: &str| Announce {
            info_hash: [9; 20],
            peer_id: [id; 20],
            addr: addr.into(),
            left: 0,
        };
        let r1 = tracker.handle_announce(&mk(1, "a"));
        assert!(r1.peers.is_empty());
        let r2 = tracker.handle_announce(&mk(2, "b"));
        assert_eq!(r2.peers.len(), 1);
        assert_eq!(r2.peers[0].addr, "a");
        // Re-announce does not duplicate.
        let r1b = tracker.handle_announce(&mk(1, "a"));
        assert_eq!(r1b.peers.len(), 1);
    }

    #[test]
    fn different_swarms_isolated() {
        let tracker = Tracker::new();
        let mk = |hash: u8, id: u8| Announce {
            info_hash: [hash; 20],
            peer_id: [id; 20],
            addr: format!("p{id}"),
            left: 0,
        };
        tracker.handle_announce(&mk(1, 1));
        let r = tracker.handle_announce(&mk(2, 2));
        assert!(r.peers.is_empty(), "other swarm invisible");
    }

    #[test]
    fn response_encode_parse() {
        let resp = TrackerResponse {
            interval_s: 60,
            peers: vec![PeerInfo {
                peer_id: [7; 20],
                addr: "mem:x".into(),
            }],
        };
        let enc = encode_response(&resp);
        let back = parse_response(&enc).unwrap();
        assert_eq!(resp, back);
    }

    #[test]
    fn end_to_end_over_mem_conn() {
        let tracker = Tracker::new();
        let (mut client, mut server) = flux_net::MemConn::pair();
        let t = tracker.clone();
        let h = std::thread::spawn(move || {
            t.serve_conn(&mut server).unwrap();
        });
        let req = Announce {
            info_hash: [3; 20],
            peer_id: [1; 20],
            addr: "mem:me".into(),
            left: 100,
        };
        let resp = announce(&mut client, &req).unwrap();
        assert_eq!(resp.interval_s, 60);
        assert!(resp.peers.is_empty());
        h.join().unwrap();
    }

    #[test]
    fn bad_announce_gets_failure() {
        let tracker = Tracker::new();
        let (mut client, mut server) = flux_net::MemConn::pair();
        let t = tracker.clone();
        let h = std::thread::spawn(move || {
            let _ = t.serve_conn(&mut server);
        });
        client
            .write_all(b"GET /announce?junk=1 HTTP/1.1\r\n\r\n")
            .unwrap();
        let mut buf = Vec::new();
        client.read_to_end(&mut buf).unwrap();
        assert!(String::from_utf8_lossy(&buf).contains("failure reason"));
        h.join().unwrap();
    }
}
