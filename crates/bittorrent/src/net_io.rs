//! A small object-safe `Read + Write` combination trait so tracker and
//! peer code can take any byte stream (`MemConn`, `TcpConn`, cursors in
//! tests) without being generic over two traits.

use std::io::{Read, Write};

/// Anything readable and writable.
pub trait ReadWrite: Read + Write {}

impl<T: Read + Write + ?Sized> ReadWrite for T {}
