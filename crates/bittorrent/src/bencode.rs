//! Bencode encoding and decoding (the BitTorrent metainfo and tracker
//! wire format): integers `i42e`, byte strings `4:spam`, lists
//! `l...e`, and dictionaries `d...e` with lexicographically sorted keys.

use std::collections::BTreeMap;
use std::fmt;

/// A bencoded value. Dictionary keys are byte strings; `BTreeMap` keeps
/// them sorted as the canonical encoding requires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Bencode {
    Int(i64),
    Bytes(Vec<u8>),
    List(Vec<Bencode>),
    Dict(BTreeMap<Vec<u8>, Bencode>),
}

/// Decode failure with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BencodeError {
    pub at: usize,
    pub msg: String,
}

impl fmt::Display for BencodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bencode error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for BencodeError {}

impl Bencode {
    /// Builds a dictionary from pairs.
    pub fn dict(pairs: impl IntoIterator<Item = (&'static str, Bencode)>) -> Bencode {
        Bencode::Dict(
            pairs
                .into_iter()
                .map(|(k, v)| (k.as_bytes().to_vec(), v))
                .collect(),
        )
    }

    /// Builds a byte string from text.
    pub fn str(s: &str) -> Bencode {
        Bencode::Bytes(s.as_bytes().to_vec())
    }

    /// Dictionary lookup by string key.
    pub fn get(&self, key: &str) -> Option<&Bencode> {
        match self {
            Bencode::Dict(d) => d.get(key.as_bytes()),
            _ => None,
        }
    }

    /// Integer accessor.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Bencode::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// Byte-string accessor.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Bencode::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// UTF-8 string accessor.
    pub fn as_str(&self) -> Option<&str> {
        self.as_bytes().and_then(|b| std::str::from_utf8(b).ok())
    }

    /// List accessor.
    pub fn as_list(&self) -> Option<&[Bencode]> {
        match self {
            Bencode::List(l) => Some(l),
            _ => None,
        }
    }

    /// Serializes to the canonical byte form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Bencode::Int(n) => {
                out.push(b'i');
                out.extend_from_slice(n.to_string().as_bytes());
                out.push(b'e');
            }
            Bencode::Bytes(b) => {
                out.extend_from_slice(b.len().to_string().as_bytes());
                out.push(b':');
                out.extend_from_slice(b);
            }
            Bencode::List(items) => {
                out.push(b'l');
                for item in items {
                    item.encode_into(out);
                }
                out.push(b'e');
            }
            Bencode::Dict(map) => {
                out.push(b'd');
                for (k, v) in map {
                    out.extend_from_slice(k.len().to_string().as_bytes());
                    out.push(b':');
                    out.extend_from_slice(k);
                    v.encode_into(out);
                }
                out.push(b'e');
            }
        }
    }

    /// Parses one complete value; trailing bytes are an error.
    pub fn decode(data: &[u8]) -> Result<Bencode, BencodeError> {
        let (v, used) = Self::decode_prefix(data)?;
        if used != data.len() {
            return Err(BencodeError {
                at: used,
                msg: format!("{} trailing byte(s)", data.len() - used),
            });
        }
        Ok(v)
    }

    /// Parses one value from the front of `data`, returning it and the
    /// bytes consumed (tracker responses may be embedded in streams).
    pub fn decode_prefix(data: &[u8]) -> Result<(Bencode, usize), BencodeError> {
        let mut pos = 0;
        let v = parse(data, &mut pos)?;
        Ok((v, pos))
    }
}

fn fail<T>(at: usize, msg: impl Into<String>) -> Result<T, BencodeError> {
    Err(BencodeError {
        at,
        msg: msg.into(),
    })
}

fn parse(data: &[u8], pos: &mut usize) -> Result<Bencode, BencodeError> {
    match data.get(*pos) {
        None => fail(*pos, "unexpected end of input"),
        Some(b'i') => {
            *pos += 1;
            let start = *pos;
            while data.get(*pos).is_some_and(|&b| b != b'e') {
                *pos += 1;
            }
            if data.get(*pos) != Some(&b'e') {
                return fail(start, "unterminated integer");
            }
            let text = std::str::from_utf8(&data[start..*pos]).map_err(|_| BencodeError {
                at: start,
                msg: "non-ascii integer".into(),
            })?;
            if text.is_empty()
                || text == "-"
                || (text.starts_with('0') && text.len() > 1)
                || (text.starts_with("-0"))
            {
                return fail(start, format!("invalid integer `{text}`"));
            }
            let n: i64 = text.parse().map_err(|_| BencodeError {
                at: start,
                msg: format!("integer `{text}` out of range"),
            })?;
            *pos += 1;
            Ok(Bencode::Int(n))
        }
        Some(b'l') => {
            *pos += 1;
            let mut items = Vec::new();
            loop {
                if data.get(*pos) == Some(&b'e') {
                    *pos += 1;
                    return Ok(Bencode::List(items));
                }
                items.push(parse(data, pos)?);
            }
        }
        Some(b'd') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            let mut last_key: Option<Vec<u8>> = None;
            loop {
                if data.get(*pos) == Some(&b'e') {
                    *pos += 1;
                    return Ok(Bencode::Dict(map));
                }
                let key_at = *pos;
                let key = match parse(data, pos)? {
                    Bencode::Bytes(b) => b,
                    _ => return fail(key_at, "dictionary key must be a byte string"),
                };
                if let Some(prev) = &last_key {
                    if key <= *prev {
                        return fail(key_at, "dictionary keys out of order");
                    }
                }
                let value = parse(data, pos)?;
                last_key = Some(key.clone());
                map.insert(key, value);
            }
        }
        Some(b) if b.is_ascii_digit() => {
            let start = *pos;
            while data.get(*pos).is_some_and(|b| b.is_ascii_digit()) {
                *pos += 1;
            }
            if data.get(*pos) != Some(&b':') {
                return fail(start, "string length without `:`");
            }
            let len: usize = std::str::from_utf8(&data[start..*pos])
                .ok()
                .and_then(|s| s.parse().ok())
                .ok_or(BencodeError {
                    at: start,
                    msg: "bad string length".into(),
                })?;
            *pos += 1;
            let end = pos
                .checked_add(len)
                .filter(|&e| e <= data.len())
                .ok_or(BencodeError {
                    at: *pos,
                    msg: format!("string of {len} bytes overruns input"),
                })?;
            let bytes = data[*pos..end].to_vec();
            *pos = end;
            Ok(Bencode::Bytes(bytes))
        }
        Some(&b) => fail(*pos, format!("unexpected byte {b:#x}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Bencode) {
        let enc = v.encode();
        assert_eq!(&Bencode::decode(&enc).unwrap(), v);
    }

    #[test]
    fn integers() {
        assert_eq!(Bencode::decode(b"i42e").unwrap(), Bencode::Int(42));
        assert_eq!(Bencode::decode(b"i-7e").unwrap(), Bencode::Int(-7));
        assert_eq!(Bencode::decode(b"i0e").unwrap(), Bencode::Int(0));
        assert_eq!(Bencode::Int(42).encode(), b"i42e");
        round_trip(&Bencode::Int(i64::MAX));
        round_trip(&Bencode::Int(i64::MIN));
    }

    #[test]
    fn invalid_integers_rejected() {
        assert!(Bencode::decode(b"ie").is_err());
        assert!(Bencode::decode(b"i-e").is_err());
        assert!(Bencode::decode(b"i007e").is_err());
        assert!(Bencode::decode(b"i-0e").is_err());
        assert!(Bencode::decode(b"i12").is_err());
    }

    #[test]
    fn strings() {
        assert_eq!(Bencode::decode(b"4:spam").unwrap(), Bencode::str("spam"));
        assert_eq!(Bencode::decode(b"0:").unwrap(), Bencode::str(""));
        assert!(Bencode::decode(b"5:spam").is_err());
        assert!(Bencode::decode(b"4spam").is_err());
        round_trip(&Bencode::Bytes(vec![0, 255, 128]));
    }

    #[test]
    fn lists_and_dicts() {
        let v = Bencode::decode(b"l4:spami42ee").unwrap();
        assert_eq!(
            v,
            Bencode::List(vec![Bencode::str("spam"), Bencode::Int(42)])
        );
        let d = Bencode::decode(b"d3:bar4:spam3:fooi42ee").unwrap();
        assert_eq!(d.get("bar").unwrap().as_str(), Some("spam"));
        assert_eq!(d.get("foo").unwrap().as_int(), Some(42));
        round_trip(&d);
    }

    #[test]
    fn dict_keys_must_be_sorted() {
        assert!(Bencode::decode(b"d3:foo0:3:bar0:e").is_err());
        assert!(Bencode::decode(b"d3:foo0:3:foo0:e").is_err(), "duplicates");
    }

    #[test]
    fn dict_encode_sorts_keys() {
        let d = Bencode::dict([("zebra", Bencode::Int(1)), ("apple", Bencode::Int(2))]);
        assert_eq!(d.encode(), b"d5:applei2e5:zebrai1ee");
    }

    #[test]
    fn nested_structures() {
        let v = Bencode::dict([
            (
                "files",
                Bencode::List(vec![Bencode::dict([
                    ("length", Bencode::Int(1024)),
                    ("path", Bencode::List(vec![Bencode::str("a.txt")])),
                ])]),
            ),
            ("name", Bencode::str("test")),
        ]);
        round_trip(&v);
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(Bencode::decode(b"i1ejunk").is_err());
        let (v, used) = Bencode::decode_prefix(b"i1ejunk").unwrap();
        assert_eq!(v, Bencode::Int(1));
        assert_eq!(used, 3);
    }

    #[test]
    fn unterminated_containers_rejected() {
        assert!(Bencode::decode(b"l4:spam").is_err());
        assert!(Bencode::decode(b"d3:foo").is_err());
    }
}
