//! Torrent metainfo (single-file .torrent documents) and synthetic
//! test-file generation for the benchmark (the paper uses a 54 MB file;
//! ours is parameterized).

use crate::bencode::Bencode;
use crate::sha1::{sha1, Digest};

/// Parsed single-file metainfo.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Metainfo {
    pub announce: String,
    pub name: String,
    pub piece_len: usize,
    pub total_len: usize,
    /// SHA-1 digest of each piece, in order.
    pub piece_hashes: Vec<Digest>,
    /// SHA-1 of the bencoded `info` dictionary.
    pub info_hash: Digest,
}

impl Metainfo {
    /// Number of pieces.
    pub fn num_pieces(&self) -> usize {
        self.piece_hashes.len()
    }

    /// Length of piece `idx` (the final piece may be short).
    pub fn piece_size(&self, idx: usize) -> usize {
        let start = idx * self.piece_len;
        self.piece_len.min(self.total_len - start)
    }

    /// Builds metainfo for a complete in-memory file.
    pub fn from_file(announce: &str, name: &str, piece_len: usize, data: &[u8]) -> Metainfo {
        assert!(piece_len > 0, "piece length must be positive");
        let piece_hashes: Vec<Digest> = data.chunks(piece_len).map(sha1).collect();
        let info = Self::info_dict(name, piece_len, data.len(), &piece_hashes);
        Metainfo {
            announce: announce.to_string(),
            name: name.to_string(),
            piece_len,
            total_len: data.len(),
            info_hash: sha1(&info.encode()),
            piece_hashes,
        }
    }

    fn info_dict(name: &str, piece_len: usize, total_len: usize, hashes: &[Digest]) -> Bencode {
        let mut pieces = Vec::with_capacity(hashes.len() * 20);
        for h in hashes {
            pieces.extend_from_slice(h);
        }
        Bencode::dict([
            ("length", Bencode::Int(total_len as i64)),
            ("name", Bencode::str(name)),
            ("piece length", Bencode::Int(piece_len as i64)),
            ("pieces", Bencode::Bytes(pieces)),
        ])
    }

    /// Serializes to a `.torrent` document.
    pub fn to_torrent(&self) -> Vec<u8> {
        Bencode::dict([
            ("announce", Bencode::str(&self.announce)),
            (
                "info",
                Self::info_dict(
                    &self.name,
                    self.piece_len,
                    self.total_len,
                    &self.piece_hashes,
                ),
            ),
        ])
        .encode()
    }

    /// Parses a `.torrent` document.
    pub fn from_torrent(data: &[u8]) -> Result<Metainfo, String> {
        let doc = Bencode::decode(data).map_err(|e| e.to_string())?;
        let announce = doc
            .get("announce")
            .and_then(|v| v.as_str())
            .ok_or("missing announce")?
            .to_string();
        let info = doc.get("info").ok_or("missing info")?;
        let name = info
            .get("name")
            .and_then(|v| v.as_str())
            .ok_or("missing name")?
            .to_string();
        let piece_len = info
            .get("piece length")
            .and_then(|v| v.as_int())
            .filter(|&n| n > 0)
            .ok_or("missing piece length")? as usize;
        let total_len = info
            .get("length")
            .and_then(|v| v.as_int())
            .filter(|&n| n >= 0)
            .ok_or("missing length")? as usize;
        let pieces = info
            .get("pieces")
            .and_then(|v| v.as_bytes())
            .ok_or("missing pieces")?;
        if pieces.len() % 20 != 0 {
            return Err("pieces not a multiple of 20 bytes".into());
        }
        let expect = total_len.div_ceil(piece_len);
        if pieces.len() / 20 != expect {
            return Err(format!(
                "expected {expect} piece hashes, found {}",
                pieces.len() / 20
            ));
        }
        let piece_hashes = pieces
            .chunks_exact(20)
            .map(|c| {
                let mut d = [0u8; 20];
                d.copy_from_slice(c);
                d
            })
            .collect();
        let info_hash = sha1(&info.encode());
        Ok(Metainfo {
            announce,
            name,
            piece_len,
            total_len,
            piece_hashes,
            info_hash,
        })
    }
}

/// Deterministic pseudo-random file content for benchmarks (xorshift64
/// keyed by `seed`), so every peer can independently regenerate and
/// verify the "shared file" without real disk I/O.
pub fn synth_file(len: usize, seed: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    while out.len() < len {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        out.extend_from_slice(&x.to_le_bytes());
    }
    out.truncate(len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metainfo_round_trip() {
        let data = synth_file(300_000, 42);
        let m = Metainfo::from_file("mem:tracker", "test.bin", 65536, &data);
        assert_eq!(m.num_pieces(), 5);
        assert_eq!(m.piece_size(0), 65536);
        assert_eq!(m.piece_size(4), 300_000 - 4 * 65536);
        let doc = m.to_torrent();
        let back = Metainfo::from_torrent(&doc).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn info_hash_stable_across_round_trip() {
        let data = synth_file(100_000, 1);
        let m = Metainfo::from_file("t", "f", 32768, &data);
        let back = Metainfo::from_torrent(&m.to_torrent()).unwrap();
        assert_eq!(m.info_hash, back.info_hash);
    }

    #[test]
    fn piece_hashes_match_content() {
        let data = synth_file(70_000, 9);
        let m = Metainfo::from_file("t", "f", 32768, &data);
        for (i, chunk) in data.chunks(32768).enumerate() {
            assert_eq!(m.piece_hashes[i], crate::sha1::sha1(chunk));
        }
    }

    #[test]
    fn rejects_malformed() {
        assert!(Metainfo::from_torrent(b"garbage").is_err());
        assert!(Metainfo::from_torrent(b"de").is_err());
        // Wrong number of piece hashes.
        let bad = Bencode::dict([
            ("announce", Bencode::str("t")),
            (
                "info",
                Bencode::dict([
                    ("length", Bencode::Int(100)),
                    ("name", Bencode::str("f")),
                    ("piece length", Bencode::Int(50)),
                    ("pieces", Bencode::Bytes(vec![0; 20])),
                ]),
            ),
        ])
        .encode();
        assert!(Metainfo::from_torrent(&bad).is_err());
    }

    #[test]
    fn synth_file_deterministic() {
        assert_eq!(synth_file(1000, 5), synth_file(1000, 5));
        assert_ne!(synth_file(1000, 5), synth_file(1000, 6));
        assert_eq!(synth_file(0, 1).len(), 0);
        assert_eq!(synth_file(13, 1).len(), 13);
    }
}
