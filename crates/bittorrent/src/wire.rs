//! The BitTorrent peer wire protocol: handshake and length-prefixed
//! messages (BEP 3). These are the `Handshake`, `Bitfield`, `Choke`,
//! `Unchoke`, `Have`, `Request`, `Piece`, `Cancel` ... nodes of the
//! paper's Figure 7 program graph.

use crate::sha1::Digest;
use std::io::{self, Read, Write};

/// The fixed protocol string.
pub const PROTOCOL: &[u8; 19] = b"BitTorrent protocol";

/// A peer handshake.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Handshake {
    pub info_hash: Digest,
    pub peer_id: [u8; 20],
}

impl Handshake {
    /// Serializes the 68-byte handshake.
    pub fn encode(&self) -> [u8; 68] {
        let mut out = [0u8; 68];
        out[0] = 19;
        out[1..20].copy_from_slice(PROTOCOL);
        // 8 reserved bytes stay zero.
        out[28..48].copy_from_slice(&self.info_hash);
        out[48..68].copy_from_slice(&self.peer_id);
        out
    }

    /// Reads and validates a handshake.
    pub fn read_from(r: &mut dyn Read) -> io::Result<Handshake> {
        let mut buf = [0u8; 68];
        r.read_exact(&mut buf)?;
        if buf[0] != 19 || &buf[1..20] != PROTOCOL {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a BitTorrent handshake",
            ));
        }
        let mut info_hash = [0u8; 20];
        info_hash.copy_from_slice(&buf[28..48]);
        let mut peer_id = [0u8; 20];
        peer_id.copy_from_slice(&buf[48..68]);
        Ok(Handshake { info_hash, peer_id })
    }
}

/// A peer wire message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    KeepAlive,
    Choke,
    Unchoke,
    Interested,
    NotInterested,
    Have {
        index: u32,
    },
    Bitfield(Vec<u8>),
    Request {
        index: u32,
        begin: u32,
        length: u32,
    },
    Piece {
        index: u32,
        begin: u32,
        data: Vec<u8>,
    },
    Cancel {
        index: u32,
        begin: u32,
        length: u32,
    },
}

/// Sanity bound: no legitimate message exceeds a piece plus framing.
const MAX_MESSAGE: usize = 4 * 1024 * 1024;

impl Message {
    /// The message's kind, for profiling and dispatch (mirrors the
    /// predicate types of the paper's Figure 7 graph).
    pub fn kind(&self) -> &'static str {
        match self {
            Message::KeepAlive => "keepalive",
            Message::Choke => "choke",
            Message::Unchoke => "unchoke",
            Message::Interested => "interested",
            Message::NotInterested => "uninterested",
            Message::Have { .. } => "have",
            Message::Bitfield(_) => "bitfield",
            Message::Request { .. } => "request",
            Message::Piece { .. } => "piece",
            Message::Cancel { .. } => "cancel",
        }
    }

    /// Serializes with the 4-byte length prefix.
    pub fn encode(&self) -> Vec<u8> {
        fn framed(id: u8, payload: &[u8]) -> Vec<u8> {
            let mut out = Vec::with_capacity(5 + payload.len());
            out.extend_from_slice(&(1 + payload.len() as u32).to_be_bytes());
            out.push(id);
            out.extend_from_slice(payload);
            out
        }
        match self {
            Message::KeepAlive => 0u32.to_be_bytes().to_vec(),
            Message::Choke => framed(0, &[]),
            Message::Unchoke => framed(1, &[]),
            Message::Interested => framed(2, &[]),
            Message::NotInterested => framed(3, &[]),
            Message::Have { index } => framed(4, &index.to_be_bytes()),
            Message::Bitfield(bits) => framed(5, bits),
            Message::Request {
                index,
                begin,
                length,
            } => {
                let mut p = Vec::with_capacity(12);
                p.extend_from_slice(&index.to_be_bytes());
                p.extend_from_slice(&begin.to_be_bytes());
                p.extend_from_slice(&length.to_be_bytes());
                framed(6, &p)
            }
            Message::Piece { index, begin, data } => {
                let mut p = Vec::with_capacity(8 + data.len());
                p.extend_from_slice(&index.to_be_bytes());
                p.extend_from_slice(&begin.to_be_bytes());
                p.extend_from_slice(data);
                framed(7, &p)
            }
            Message::Cancel {
                index,
                begin,
                length,
            } => {
                let mut p = Vec::with_capacity(12);
                p.extend_from_slice(&index.to_be_bytes());
                p.extend_from_slice(&begin.to_be_bytes());
                p.extend_from_slice(&length.to_be_bytes());
                framed(8, &p)
            }
        }
    }

    /// Frames a `piece` reply straight into `out` (appended) without
    /// building an owned [`Message::Piece`] first — the seeder's hot
    /// path serializes into a pooled buffer, so serving a block
    /// performs no allocation and no intermediate copy of the block
    /// data.
    pub fn encode_piece_into(index: u32, begin: u32, data: &[u8], out: &mut Vec<u8>) {
        out.reserve(13 + data.len());
        out.extend_from_slice(&(9 + data.len() as u32).to_be_bytes());
        out.push(7);
        out.extend_from_slice(&index.to_be_bytes());
        out.extend_from_slice(&begin.to_be_bytes());
        out.extend_from_slice(data);
    }

    /// Reads one message (blocking).
    pub fn read_from(r: &mut dyn Read) -> io::Result<Message> {
        let mut len_buf = [0u8; 4];
        r.read_exact(&mut len_buf)?;
        let len = u32::from_be_bytes(len_buf) as usize;
        if len == 0 {
            return Ok(Message::KeepAlive);
        }
        if len > MAX_MESSAGE {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("message of {len} bytes exceeds limit"),
            ));
        }
        let mut body = vec![0u8; len];
        r.read_exact(&mut body)?;
        Self::parse(&body)
    }

    fn parse(body: &[u8]) -> io::Result<Message> {
        let bad = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
        let u32_at = |i: usize| -> io::Result<u32> {
            body.get(i..i + 4)
                .map(|b| u32::from_be_bytes(b.try_into().expect("4 bytes")))
                .ok_or_else(|| bad("truncated field"))
        };
        match body[0] {
            0 => Ok(Message::Choke),
            1 => Ok(Message::Unchoke),
            2 => Ok(Message::Interested),
            3 => Ok(Message::NotInterested),
            4 => Ok(Message::Have { index: u32_at(1)? }),
            5 => Ok(Message::Bitfield(body[1..].to_vec())),
            6 => Ok(Message::Request {
                index: u32_at(1)?,
                begin: u32_at(5)?,
                length: u32_at(9)?,
            }),
            7 => {
                if body.len() < 9 {
                    return Err(bad("piece message too short"));
                }
                Ok(Message::Piece {
                    index: u32_at(1)?,
                    begin: u32_at(5)?,
                    data: body[9..].to_vec(),
                })
            }
            8 => Ok(Message::Cancel {
                index: u32_at(1)?,
                begin: u32_at(5)?,
                length: u32_at(9)?,
            }),
            other => Err(bad(&format!("unknown message id {other}"))),
        }
    }

    /// Writes the framed message.
    pub fn write_to(&self, w: &mut dyn Write) -> io::Result<()> {
        w.write_all(&self.encode())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn round_trip(m: Message) {
        let enc = m.encode();
        let mut cur = Cursor::new(enc);
        let back = Message::read_from(&mut cur).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn all_messages_round_trip() {
        round_trip(Message::KeepAlive);
        round_trip(Message::Choke);
        round_trip(Message::Unchoke);
        round_trip(Message::Interested);
        round_trip(Message::NotInterested);
        round_trip(Message::Have { index: 1234 });
        round_trip(Message::Bitfield(vec![0b1010_0001, 0xff]));
        round_trip(Message::Request {
            index: 1,
            begin: 16384,
            length: 16384,
        });
        round_trip(Message::Piece {
            index: 9,
            begin: 0,
            data: vec![7; 16384],
        });
        round_trip(Message::Cancel {
            index: 1,
            begin: 2,
            length: 3,
        });
    }

    /// The pooled-buffer fast path frames identically to the owned
    /// `Message::Piece` encoding (and appends, preserving a prefix).
    #[test]
    fn encode_piece_into_matches_owned_encoding() {
        let data = vec![42u8; 16384];
        let owned = Message::Piece {
            index: 3,
            begin: 32768,
            data: data.clone(),
        }
        .encode();
        let mut buf = b"prefix".to_vec();
        Message::encode_piece_into(3, 32768, &data, &mut buf);
        assert_eq!(&buf[..6], b"prefix");
        assert_eq!(&buf[6..], owned.as_slice());
    }

    #[test]
    fn handshake_round_trip() {
        let hs = Handshake {
            info_hash: [0xAB; 20],
            peer_id: *b"-FX0001-abcdefghijkl",
        };
        let enc = hs.encode();
        assert_eq!(enc.len(), 68);
        let mut cur = Cursor::new(enc.to_vec());
        let back = Handshake::read_from(&mut cur).unwrap();
        assert_eq!(hs, back);
    }

    #[test]
    fn bad_handshake_rejected() {
        let mut cur = Cursor::new(vec![19u8; 68]);
        assert!(Handshake::read_from(&mut cur).is_err());
    }

    #[test]
    fn oversized_message_rejected() {
        let mut frame = (64 * 1024 * 1024u32).to_be_bytes().to_vec();
        frame.push(7);
        let mut cur = Cursor::new(frame);
        assert!(Message::read_from(&mut cur).is_err());
    }

    #[test]
    fn unknown_id_rejected() {
        let mut frame = 1u32.to_be_bytes().to_vec();
        frame.push(99);
        let mut cur = Cursor::new(frame);
        assert!(Message::read_from(&mut cur).is_err());
    }

    #[test]
    fn kind_labels() {
        assert_eq!(Message::KeepAlive.kind(), "keepalive");
        assert_eq!(
            Message::Request {
                index: 0,
                begin: 0,
                length: 0
            }
            .kind(),
            "request"
        );
    }
}
