//! Property-based tests for the BitTorrent substrate: bencode and wire
//! round-trips over arbitrary values, SHA-1 incremental consistency,
//! and piece assembly from shuffled blocks.

use flux_bittorrent::{
    sha1, Bencode, BlockResult, Message, Metainfo, PieceAssembler, PieceStore, Sha1,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Arbitrary bencode values (bounded depth).
fn bencode_strat() -> impl Strategy<Value = Bencode> {
    let leaf = prop_oneof![
        any::<i64>().prop_map(Bencode::Int),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(Bencode::Bytes),
    ];
    leaf.prop_recursive(3, 64, 8, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..6).prop_map(Bencode::List),
            proptest::collection::btree_map(
                proptest::collection::vec(any::<u8>(), 0..12),
                inner,
                0..6
            )
            .prop_map(|m: BTreeMap<Vec<u8>, Bencode>| Bencode::Dict(m)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bencode_round_trips(v in bencode_strat()) {
        let enc = v.encode();
        let back = Bencode::decode(&enc).expect("canonical encoding decodes");
        prop_assert_eq!(v, back);
    }

    #[test]
    fn bencode_decoder_total(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Bencode::decode(&data); // must never panic
    }

    #[test]
    fn sha1_incremental_any_split(
        data in proptest::collection::vec(any::<u8>(), 0..512),
        split in any::<prop::sample::Index>(),
    ) {
        let k = split.index(data.len() + 1);
        let mut h = Sha1::new();
        h.update(&data[..k]);
        h.update(&data[k..]);
        prop_assert_eq!(h.finish(), sha1(&data));
    }

    #[test]
    fn wire_messages_round_trip(
        id in 0u8..9,
        a in any::<u32>(),
        b in any::<u32>(),
        payload in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let msg = match id {
            0 => Message::Choke,
            1 => Message::Unchoke,
            2 => Message::Interested,
            3 => Message::NotInterested,
            4 => Message::Have { index: a },
            5 => Message::Bitfield(payload.clone()),
            6 => Message::Request { index: a, begin: b, length: b % 65536 },
            7 => Message::Piece { index: a, begin: b, data: payload.clone() },
            _ => Message::Cancel { index: a, begin: b, length: b % 65536 },
        };
        let mut cur = std::io::Cursor::new(msg.encode());
        let back = Message::read_from(&mut cur).expect("round trip");
        prop_assert_eq!(msg, back);
    }

    /// Assembling a file from blocks delivered piece-by-piece in any
    /// piece order reproduces the original bytes.
    #[test]
    fn assembler_order_independent(
        len in 1usize..200_000,
        piece_len_kb in 1usize..5,
        seed in any::<u64>(),
    ) {
        let piece_len = piece_len_kb * 16 * 1024;
        let data = flux_bittorrent::synth_file(len, seed);
        let meta = Metainfo::from_file("t", "f", piece_len, &data);
        let store = PieceStore::new(meta.clone(), data.clone()).unwrap();
        let mut asm = PieceAssembler::new(meta.clone());
        // Reverse piece order (any permutation must work; reverse is the
        // adversarial one for sequential-assumption bugs).
        for piece in (0..meta.num_pieces() as u32).rev() {
            for (begin, blen) in asm.blocks_for(piece) {
                let block = store.read_block(piece, begin, blen).unwrap();
                let r = asm.add_block(piece, begin, block);
                prop_assert!(r != BlockResult::Rejected && r != BlockResult::HashMismatch);
            }
        }
        prop_assert!(asm.complete());
        prop_assert_eq!(asm.into_data(), data);
    }
}
