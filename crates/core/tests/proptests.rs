//! Property-based tests for the Flux compiler: generated programs must
//! lex/parse deterministically, Ball–Larus ids must be unique and
//! compact, and constraint analysis must terminate in canonical order.

use flux_core::{compile, ConstraintMode, EndKind};
use proptest::prelude::*;

/// Generates a syntactically valid node name.
fn name_strat() -> impl Strategy<Value = String> {
    "[A-Z][a-zA-Z0-9]{0,6}".prop_map(|s| format!("N{s}"))
}

/// Generates a random but well-typed linear-pipeline Flux program:
/// `source Gen => Flow; Flow = A -> B -> ...` where every node maps
/// `(int x)` to `(int x)`, with random constraints sprinkled on.
fn pipeline_strat() -> impl Strategy<Value = String> {
    (
        proptest::collection::vec(name_strat(), 1..8),
        proptest::collection::vec(("[a-c]", 0..3usize), 0..6),
    )
        .prop_map(|(mut names, constraints)| {
            names.sort();
            names.dedup();
            let mut src = String::from("Gen () => (int x);\nSink (int x) => ();\n");
            for n in &names {
                src.push_str(&format!("{n} (int x) => (int x);\n"));
            }
            src.push_str("source Gen => Flow;\nFlow = ");
            for n in &names {
                src.push_str(n);
                src.push_str(" -> ");
            }
            src.push_str("Sink;\n");
            for (lock, idx) in &constraints {
                if let Some(n) = names.get(idx % names.len().max(1)) {
                    src.push_str(&format!("atomic {n}: {{{lock}}};\n"));
                }
            }
            src
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every generated pipeline compiles, and its path ids are exactly
    /// the integers [0, num_paths) with unique node sequences.
    #[test]
    fn pipeline_paths_unique_and_compact(src in pipeline_strat()) {
        let program = compile(&src).expect("generated pipeline compiles");
        let flow = &program.flows[0];
        let n = flow.paths.num_paths;
        // A linear pipeline of k execs has k+1 paths (each error exit
        // plus completion).
        let execs = flow.flat.execs().count() as u64;
        prop_assert_eq!(n, execs + 1);
        let mut seen = std::collections::HashSet::new();
        for id in 0..n {
            let info = flow.paths.path_info(&flow.flat, &program.graph, id)
                .expect("id in range regenerates");
            let fresh = seen.insert(format!("{:?}{:?}", info.nodes, info.outcome));
            prop_assert!(fresh);
        }
        prop_assert!(flow.paths.path_info(&flow.flat, &program.graph, n).is_none());
    }

    /// Compilation is deterministic: same source, same graph and paths.
    #[test]
    fn compilation_deterministic(src in pipeline_strat()) {
        let a = compile(&src).expect("compiles");
        let b = compile(&src).expect("compiles");
        prop_assert_eq!(a.graph, b.graph);
        prop_assert_eq!(a.flows.len(), b.flows.len());
        for (fa, fb) in a.flows.iter().zip(&b.flows) {
            prop_assert_eq!(&fa.flat, &fb.flat);
            prop_assert_eq!(&fa.paths, &fb.paths);
        }
    }

    /// After constraint analysis, every node's list is sorted and every
    /// transitive acquisition order along the (linear) flow respects the
    /// canonical order for *nested* scopes. Pipelines have no nesting,
    /// so per-node sortedness is the full invariant.
    #[test]
    fn constraints_sorted_after_analysis(src in pipeline_strat()) {
        let program = compile(&src).expect("compiles");
        for node in &program.graph.nodes {
            let names: Vec<&str> = node.constraints.iter().map(|c| c.name.as_str()).collect();
            let mut sorted = names.clone();
            sorted.sort_unstable();
            prop_assert_eq!(names, sorted);
        }
    }

    /// Lexer round-trip: lexing arbitrary token-ish text never panics.
    #[test]
    fn lexer_total(s in "[ -~\n\t]{0,200}") {
        let _ = flux_core::lexer::Lexer::new(&s).tokenize();
    }

    /// Parser is total over arbitrary input: errors, never panics.
    #[test]
    fn parser_total(s in "[ -~\n\t]{0,200}") {
        let _ = flux_core::parser::parse(&s);
    }
}

// Nested constraint programs: random two-level nesting must always end
// canonical (the §3.1.1 algorithm terminates and fixes the order).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn nested_constraints_end_canonical(
        outer_lock in "[a-e]",
        inner_lock in "[a-e]",
        with_mid in any::<bool>(),
    ) {
        let mid = if with_mid { "Mid = Inner;\n" } else { "" };
        let mid_name = if with_mid { "Mid" } else { "Inner" };
        let src = format!(
            "Leaf (int v) => (int v);\n\
             Inner = Leaf;\n\
             {mid}\
             Outer = {mid_name};\n\
             S () => (int v);\n\
             source S => Outer;\n\
             atomic Outer: {{{outer_lock}}};\n\
             atomic Leaf: {{{inner_lock}}};\n"
        );
        let program = compile(&src).expect("compiles");
        // Invariant: walking the nesting, the acquisition sequence is
        // non-decreasing once reentrancy is accounted for.
        let (oid, outer) = program.graph.node("Outer").unwrap();
        let mut held: Vec<String> = Vec::new();
        let mut stack = vec![oid];
        let mut ok = true;
        while let Some(id) = stack.pop() {
            for c in &program.graph.nodes[id].constraints {
                if held.contains(&c.name) {
                    continue;
                }
                if held.iter().any(|h| h.as_str() > c.name.as_str()) {
                    ok = false;
                }
                held.push(c.name.clone());
            }
            for v in program.graph.variants(id) {
                for &child in &v.body {
                    stack.push(child);
                }
            }
        }
        prop_assert!(ok, "non-canonical order survived analysis: {:?}", outer.constraints);
    }
}

// Cluster placement (paper §8): random chain programs with random
// constraint assignments must satisfy the placement invariants.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn placement_invariants_hold(
        // Constraint pool index per node: 0 = unconstrained, 1..=3 pick a
        // shared name from {ca, cb, cc}.
        constraint_picks in proptest::collection::vec(0usize..4, 2..10),
        machines in 1usize..5,
        interarrival_ms in 1u32..50,
    ) {
        let n = constraint_picks.len();
        let mut src = String::from("Gen () => (int v);\n");
        for i in 0..n {
            src.push_str(&format!("N{i} (int v) => (int v);\n"));
        }
        src.push_str("Sink (int v) => ();\n");
        let chain: Vec<String> = (0..n).map(|i| format!("N{i}")).collect();
        src.push_str(&format!("F = {} -> Sink;\n", chain.join(" -> ")));
        src.push_str("source Gen => F;\n");
        let pool = ["ca", "cb", "cc"];
        for (i, &pick) in constraint_picks.iter().enumerate() {
            if pick > 0 {
                src.push_str(&format!("atomic N{i}: {{{}}};\n", pool[pick - 1]));
            }
        }
        let program = compile(&src).expect("generated program compiles");
        let params = flux_core::model::ModelParams::uniform(
            &program,
            0.001,
            interarrival_ms as f64 / 1000.0,
        );
        let cfg = flux_core::PlaceConfig { machines, ..Default::default() };
        let pl = flux_core::place(&program, &params, &cfg).expect("placement succeeds");

        // Every placeable node is assigned to a valid machine.
        for name in std::iter::once("Gen".to_string())
            .chain(chain.iter().cloned())
            .chain(std::iter::once("Sink".to_string()))
        {
            let m = pl.machine_of(&program, &name);
            prop_assert!(m.is_some(), "{name} unplaced");
            prop_assert!(m.unwrap() < machines);
        }
        // Constraint sharers are colocated; the guided placement never
        // pays distributed locks.
        for (i, &pi) in constraint_picks.iter().enumerate() {
            if pi == 0 { continue; }
            for (j, &pj) in constraint_picks.iter().enumerate().skip(i + 1) {
                if pj == pi {
                    prop_assert_eq!(
                        pl.machine_of(&program, &format!("N{i}")),
                        pl.machine_of(&program, &format!("N{j}")),
                        "nodes sharing {} split", pool[pi - 1]
                    );
                }
            }
        }
        prop_assert!(pl.remote_lock_rate == 0.0);
        // Metric sanity.
        prop_assert!(pl.cut_rate >= 0.0 && pl.cut_rate <= pl.total_rate + 1e-9);
        prop_assert!(pl.loads.iter().all(|&l| l >= 0.0));
        prop_assert_eq!(pl.loads.len(), machines);
        if machines == 1 {
            prop_assert!(pl.cut_rate == 0.0);
        }
        // The round-robin baseline is never better on remote locks.
        let rr = flux_core::round_robin(&program, &params, machines).unwrap();
        prop_assert!(rr.remote_lock_rate >= 0.0);
        // Determinism.
        let again = flux_core::place(&program, &params, &cfg).unwrap();
        prop_assert_eq!(&pl.assignment, &again.assignment);
    }
}

/// Randomized end-to-end: run random pipelines on the runtime and check
/// flow accounting (moved here to reuse the generator).
#[test]
fn error_paths_and_outcomes_consistent() {
    let src = "Gen () => (int x); A (int x) => (int x); B (int x) => (int x); \
               Sink (int x) => (); source Gen => Flow; Flow = A -> B -> Sink;";
    let program = compile(src).unwrap();
    let flow = &program.flows[0];
    let all = flow.paths.enumerate(&flow.flat, &program.graph, 100);
    let completed = all
        .iter()
        .filter(|p| p.outcome == EndKind::Completed)
        .count();
    assert_eq!(completed, 1, "exactly one success path in a pipeline");
    assert_eq!(all.len(), 4, "A-err, B-err, Sink-err, success");
    let _ = ConstraintMode::Reader;
}
