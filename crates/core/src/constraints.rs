//! Deadlock-avoidance constraint analysis (paper §3.1.1).
//!
//! The compiler imposes a canonical (alphabetical) ordering on atomicity
//! constraints. Per-node constraint lists are kept sorted, so a single
//! node always acquires in order. Nesting — abstract nodes holding
//! constraints across their bodies — can still acquire out of order, so
//! for each abstract node with constraints we compute the transitive
//! constraint list in execution order (a depth-first traversal of the
//! program graph under the node). If the list is out of order, the first
//! constraint acquired non-canonically is added to the *parent* of the
//! node that requires it, forcing earlier acquisition; this repeats until
//! no out-of-order list remains. A second pass promotes the first
//! acquisition of any lock acquired both as a reader and a writer to a
//! writer. Every hoist and promotion produces a warning, because early
//! acquisition can reduce concurrency.

use crate::ast::{ConstraintMode, ConstraintRef, ConstraintScope};
use crate::error::{CompileError, CompileErrors, ErrorKind, Warning};
use crate::graph::{NodeId, NodeKind, ProgramGraph};
use std::collections::HashMap;

/// One acquisition site in a transitive constraint list.
#[derive(Debug, Clone)]
struct Acq {
    name: String,
    mode: ConstraintMode,
    /// Node whose declaration produces this acquisition.
    node: NodeId,
    /// Direct parent abstract node in the traversal (`None` at the root).
    parent: Option<NodeId>,
    /// True when the name was already acquired earlier in the list
    /// (reentrant re-acquisition; never a violation).
    reentrant: bool,
}

/// Computes the transitive constraint list for `root` in execution order.
///
/// The traversal respects execution structure: a node's own (sorted)
/// constraints come first, then each variant body in declaration order,
/// then the node's error handler, which runs under the same enclosing
/// scopes. Reentrant occurrences are kept but flagged.
fn constraint_list(graph: &ProgramGraph, root: NodeId) -> Vec<Acq> {
    let mut list: Vec<Acq> = Vec::new();

    fn walk(graph: &ProgramGraph, id: NodeId, parent: Option<NodeId>, list: &mut Vec<Acq>) {
        for c in &graph.nodes[id].constraints {
            let reentrant = list.iter().any(|a| a.name == c.name);
            list.push(Acq {
                name: c.name.clone(),
                mode: c.mode,
                node: id,
                parent,
                reentrant,
            });
        }
        if let NodeKind::Abstract { variants } = &graph.nodes[id].kind {
            for v in variants {
                for &child in &v.body {
                    walk(graph, child, Some(id), list);
                }
            }
        }
        if let Some(h) = graph.nodes[id].error_handler {
            walk(graph, h, parent.or(Some(id)), list);
        }
    }

    walk(graph, root, None, &mut list);
    list
}

/// Returns the first non-reentrant acquisition that is out of canonical
/// order (some earlier acquisition has a greater name).
fn first_violation(list: &[Acq]) -> Option<&Acq> {
    let mut max_so_far: Option<&str> = None;
    for acq in list {
        if acq.reentrant {
            continue;
        }
        if let Some(max) = max_so_far {
            if acq.name.as_str() < max {
                return Some(acq);
            }
        }
        max_so_far = Some(match max_so_far {
            Some(m) if m > acq.name.as_str() => m,
            _ => acq.name.as_str(),
        });
    }
    None
}

/// Nodes whose transitive lists must stay canonical: every abstract node
/// that carries constraints, plus every source-flow target (so whole
/// flows are covered even when the top node itself is unconstrained).
fn roots(graph: &ProgramGraph) -> Vec<NodeId> {
    let mut out: Vec<NodeId> = Vec::new();
    for (id, node) in graph.nodes.iter().enumerate() {
        if !node.is_concrete() && !node.constraints.is_empty() {
            out.push(id);
        }
    }
    for s in &graph.sources {
        if !out.contains(&s.target) {
            out.push(s.target);
        }
    }
    out
}

/// Runs the full analysis, mutating the graph's per-node constraint lists
/// in place (hoists and promotions) and returning the warnings generated.
///
/// Also rejects programs that use one constraint name with two different
/// scopes, which would make the lock identity ambiguous.
pub fn analyze(graph: &mut ProgramGraph) -> Result<Vec<Warning>, CompileErrors> {
    let mut errors = CompileErrors::default();
    let mut warnings = Vec::new();

    // Scope consistency: a name is either program-wide or per-session
    // everywhere it appears.
    let mut scopes: HashMap<String, (ConstraintScope, NodeId)> = HashMap::new();
    for (id, node) in graph.nodes.iter().enumerate() {
        for c in &node.constraints {
            match scopes.get(&c.name) {
                None => {
                    scopes.insert(c.name.clone(), (c.scope, id));
                }
                Some(&(scope, first)) if scope != c.scope => {
                    errors.push(CompileError::new(
                        ErrorKind::Other(format!(
                            "constraint `{}` is declared {} at `{}` but {} at `{}`",
                            c.name,
                            scope_str(scope),
                            graph.nodes[first].name,
                            scope_str(c.scope),
                            node.name,
                        )),
                        node.span,
                    ));
                }
                Some(_) => {}
            }
        }
    }
    if !errors.is_empty() {
        return Err(errors);
    }

    // Hoisting fixpoint. Bounded by (#nodes x #constraint-names): every
    // iteration adds a constraint to a node that lacks it.
    let max_iters = graph.nodes.len() * scopes.len().max(1) + 1;
    let mut iters = 0;
    loop {
        let mut changed = false;
        for root in roots(graph) {
            let list = constraint_list(graph, root);
            if let Some(v) = first_violation(&list) {
                // Hoist to the parent of the node that requires the
                // constraint; at the root there is no parent, but the
                // root's own list is sorted so the requiring node is
                // always a strict descendant.
                let target = v.parent.unwrap_or(root);
                let hoisted = ConstraintRef {
                    name: v.name.clone(),
                    mode: v.mode,
                    scope: scopes[&v.name].0,
                };
                let tnode = &mut graph.nodes[target];
                if !tnode.constraints.iter().any(|c| c.name == hoisted.name) {
                    warnings.push(Warning::ConstraintHoisted {
                        constraint: v.name.clone(),
                        from: graph.nodes[v.node].name.clone(),
                        to: graph.nodes[target].name.clone(),
                    });
                    let tnode = &mut graph.nodes[target];
                    tnode.constraints.push(hoisted);
                    tnode.constraints.sort_by(|a, b| a.name.cmp(&b.name));
                    changed = true;
                    break;
                }
            }
        }
        if !changed {
            break;
        }
        iters += 1;
        if iters > max_iters {
            errors.push(CompileError::new(
                ErrorKind::Other(
                    "constraint hoisting did not converge (internal limit exceeded)".into(),
                ),
                crate::span::Span::DUMMY,
            ));
            return Err(errors);
        }
    }

    // Reader/writer promotion: within any list, a lock acquired both ways
    // gets its first acquisition promoted to writer.
    loop {
        let mut promoted: Option<(NodeId, String)> = None;
        'outer: for root in roots(graph) {
            let list = constraint_list(graph, root);
            let mut modes: HashMap<&str, (ConstraintMode, &Acq)> = HashMap::new();
            for acq in &list {
                match modes.get(acq.name.as_str()) {
                    None => {
                        modes.insert(&acq.name, (acq.mode, acq));
                    }
                    Some(&(first_mode, first_acq)) => {
                        if acq.mode != first_mode && first_mode == ConstraintMode::Reader {
                            promoted = Some((first_acq.node, first_acq.name.clone()));
                            break 'outer;
                        }
                    }
                }
            }
        }
        match promoted {
            None => break,
            Some((node, name)) => {
                let n = &mut graph.nodes[node];
                for c in &mut n.constraints {
                    if c.name == name {
                        c.mode = ConstraintMode::Writer;
                    }
                }
                warnings.push(Warning::ReaderPromoted {
                    constraint: name,
                    node: graph.nodes[node].name.clone(),
                });
            }
        }
    }

    Ok(warnings)
}

fn scope_str(s: ConstraintScope) -> &'static str {
    match s {
        ConstraintScope::Program => "program-wide",
        ConstraintScope::Session => "session-scoped",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn analyzed(src: &str) -> (ProgramGraph, Vec<Warning>) {
        let (mut g, _) = ProgramGraph::build(&parse(src).unwrap()).unwrap();
        let w = analyze(&mut g).unwrap();
        (g, w)
    }

    fn names(g: &ProgramGraph, node: &str) -> Vec<String> {
        let (_, n) = g.node(node).unwrap();
        n.constraints.iter().map(|c| c.name.clone()).collect()
    }

    /// The exact example from §3.1.1: C must end up with `{x, y}`.
    #[test]
    fn paper_example() {
        let (g, w) = analyzed(crate::fixtures::DEADLOCK_EXAMPLE);
        assert_eq!(names(&g, "A"), vec!["x"]);
        assert_eq!(names(&g, "B"), vec!["y"]);
        assert_eq!(names(&g, "C"), vec!["x", "y"]);
        assert_eq!(names(&g, "D"), vec!["x"]);
        assert!(w.iter().any(|w| matches!(
            w,
            Warning::ConstraintHoisted { constraint, from, to }
                if constraint == "x" && from == "D" && to == "C"
        )));
    }

    #[test]
    fn in_order_nesting_untouched() {
        let (g, w) = analyzed(
            "B (int v) => (int v); A = B; S () => (int v); source S => A; \
             atomic A: {a}; atomic B: {b};",
        );
        assert_eq!(names(&g, "A"), vec!["a"]);
        assert_eq!(names(&g, "B"), vec!["b"]);
        assert!(w.is_empty());
    }

    #[test]
    fn deep_nesting_hoists_up_chain() {
        // Outer:{z} holds across Mid, Mid across Inner:{a}: `a` must climb
        // to Mid and then be in order (a < z fails at Mid level, so `a`
        // climbs again to Outer).
        let (g, _) = analyzed(
            "Leaf (int v) => (int v); Inner = Leaf; Mid = Inner; Outer = Mid; \
             S () => (int v); source S => Outer; \
             atomic Outer: {z}; atomic Inner: {a};",
        );
        // Fixpoint: a hoisted from Inner to Mid, then from Mid to Outer.
        assert_eq!(names(&g, "Outer"), vec!["a", "z"]);
        assert!(names(&g, "Mid").contains(&"a".to_string()));
    }

    #[test]
    fn sequence_under_held_lock_is_sorted() {
        // Top holds t; body acquires y then x out of order; x hoists.
        let (g, w) = analyzed(
            "M (int v) => (int v); N (int v) => (int v); Top = M -> N; \
             S () => (int v); source S => Top; \
             atomic Top: {t}; atomic M: {y}; atomic N: {x};",
        );
        assert!(names(&g, "Top").contains(&"x".to_string()));
        assert!(!w.is_empty());
    }

    #[test]
    fn reader_promoted_to_writer() {
        let (g, w) = analyzed(
            "B (int v) => (int v); A = B; S () => (int v); source S => A; \
             atomic A: {x?}; atomic B: {x!};",
        );
        let (_, a) = g.node("A").unwrap();
        assert_eq!(a.constraints[0].mode, ConstraintMode::Writer);
        assert!(w
            .iter()
            .any(|w| matches!(w, Warning::ReaderPromoted { .. })));
    }

    #[test]
    fn writer_then_reader_not_promoted() {
        let (g, w) = analyzed(
            "B (int v) => (int v); A = B; S () => (int v); source S => A; \
             atomic A: {x!}; atomic B: {x?};",
        );
        let (_, a) = g.node("A").unwrap();
        assert_eq!(a.constraints[0].mode, ConstraintMode::Writer);
        assert!(!w
            .iter()
            .any(|w| matches!(w, Warning::ReaderPromoted { .. })));
    }

    #[test]
    fn conflicting_scopes_rejected() {
        let (mut g, _) = ProgramGraph::build(
            &parse(
                "A (int v) => (int v); B (int v) => (int v); F = A -> B; \
                 S () => (int v); source S => F; \
                 atomic A: {x}; atomic B: {x(session)};",
            )
            .unwrap(),
        )
        .unwrap();
        let err = analyze(&mut g).unwrap_err();
        assert!(err
            .0
            .iter()
            .any(|e| matches!(&e.kind, ErrorKind::Other(m) if m.contains("x"))));
    }

    #[test]
    fn handler_constraints_participate() {
        // Handler H:{a} runs under F:{z}; a < z so it must hoist.
        let (g, _) = analyzed(
            "A (int v) => (int v); H (int v) => (); F = A; \
             S () => (int v); source S => F; handle error A => H; \
             atomic F: {z}; atomic H: {a};",
        );
        assert!(names(&g, "F").contains(&"a".to_string()));
    }

    #[test]
    fn reentrant_reacquisition_is_not_a_violation() {
        let (g, w) = analyzed(
            "B (int v) => (int v); A = B; S () => (int v); source S => A; \
             atomic A: {x, y}; atomic B: {x};",
        );
        assert_eq!(names(&g, "A"), vec!["x", "y"]);
        assert!(w.is_empty());
    }

    #[test]
    fn analysis_is_idempotent() {
        let (mut g, _) =
            ProgramGraph::build(&parse(crate::fixtures::DEADLOCK_EXAMPLE).unwrap()).unwrap();
        analyze(&mut g).unwrap();
        let snapshot = g.clone();
        let w2 = analyze(&mut g).unwrap();
        assert_eq!(g, snapshot);
        assert!(w2.is_empty());
    }
}
