//! Flattened execution graphs.
//!
//! Compilation expands each source flow into an acyclic vertex graph in
//! which every possible runtime step is explicit: lock acquisition and
//! release for atomicity scopes, concrete-node execution with success and
//! error edges, predicate dispatch with one arm per variant, and
//! distinguished end vertices for every way a flow can terminate. The
//! runtimes execute this graph directly, the Ball–Larus pass numbers its
//! paths, and the discrete-event simulator replays it against a
//! performance model — one IR, three consumers.

use crate::error::{CompileError, ErrorKind};
use crate::graph::{NodeId, NodeKind, ProgramGraph};
use std::collections::HashMap;

/// Index of a vertex in [`FlatProgram::verts`].
pub type VertexId = usize;

/// How a flow ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EndKind {
    /// The flow ran to the end of its data flow.
    Completed,
    /// `node` returned an error and no handler was declared.
    Errored { node: NodeId },
    /// `node` returned an error and `handler` ran to completion.
    Handled { node: NodeId, handler: NodeId },
    /// A dispatch at `node` matched no variant.
    NoMatch { node: NodeId },
}

/// One arm of a dispatch vertex: the variant index in the abstract node's
/// declaration order and the entry vertex of that variant's body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DispatchArm {
    pub variant: usize,
    pub entry: VertexId,
}

/// A single step of a flattened flow.
#[derive(Debug, Clone, PartialEq)]
pub enum FlatVertex {
    /// Acquire `node`'s constraint list (already canonically sorted) under
    /// two-phase locking, then continue.
    Acquire { node: NodeId, next: VertexId },
    /// Release `node`'s constraint list in reverse order, then continue.
    Release { node: NodeId, next: VertexId },
    /// Run the concrete node. Successor 0 is `on_ok`, successor 1 is
    /// `on_err` (taken when the node returns a non-zero error code).
    Exec {
        node: NodeId,
        on_ok: VertexId,
        on_err: VertexId,
    },
    /// Evaluate dispatch patterns in declaration order; the first matching
    /// arm is taken, `on_nomatch` if none match.
    Dispatch {
        node: NodeId,
        arms: Vec<DispatchArm>,
        on_nomatch: VertexId,
    },
    /// Flow termination.
    End { outcome: EndKind },
}

impl FlatVertex {
    /// Ordered successors; the ordinal is the edge index used by path
    /// profiling.
    pub fn successors(&self) -> Vec<VertexId> {
        match self {
            FlatVertex::Acquire { next, .. } | FlatVertex::Release { next, .. } => vec![*next],
            FlatVertex::Exec { on_ok, on_err, .. } => vec![*on_ok, *on_err],
            FlatVertex::Dispatch {
                arms, on_nomatch, ..
            } => {
                let mut s: Vec<VertexId> = arms.iter().map(|a| a.entry).collect();
                s.push(*on_nomatch);
                s
            }
            FlatVertex::End { .. } => Vec::new(),
        }
    }
}

/// The flattened graph for one `source` declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatProgram {
    /// The source node that originates flows (executed by the runtime's
    /// source loop; not part of the vertex graph, but reported as the
    /// first element of every path, as in the paper's §5.2 listings).
    pub source: NodeId,
    /// The node each flow is handed to.
    pub target: NodeId,
    /// Entry vertex of the flow.
    pub entry: VertexId,
    pub verts: Vec<FlatVertex>,
}

impl FlatProgram {
    /// Flattens the flow starting at `spec.target`.
    pub fn build(
        graph: &ProgramGraph,
        spec: crate::graph::SourceSpec,
    ) -> Result<FlatProgram, CompileError> {
        let mut f = Flattener {
            graph,
            verts: Vec::new(),
            completed: None,
            err_ends: HashMap::new(),
            handler_entries: HashMap::new(),
        };
        let end = f.completed_end();
        let entry = f.flatten_node(spec.target, end, &mut Vec::new())?;
        Ok(FlatProgram {
            source: spec.source,
            target: spec.target,
            entry,
            verts: f.verts,
        })
    }

    /// Iterates over all `Exec` vertices.
    pub fn execs(&self) -> impl Iterator<Item = (VertexId, NodeId)> + '_ {
        self.verts.iter().enumerate().filter_map(|(i, v)| match v {
            FlatVertex::Exec { node, .. } => Some((i, *node)),
            _ => None,
        })
    }
}

struct Flattener<'g> {
    graph: &'g ProgramGraph,
    verts: Vec<FlatVertex>,
    completed: Option<VertexId>,
    err_ends: HashMap<NodeId, VertexId>,
    handler_entries: HashMap<NodeId, VertexId>,
}

impl<'g> Flattener<'g> {
    fn push(&mut self, v: FlatVertex) -> VertexId {
        self.verts.push(v);
        self.verts.len() - 1
    }

    fn completed_end(&mut self) -> VertexId {
        if let Some(v) = self.completed {
            return v;
        }
        let v = self.push(FlatVertex::End {
            outcome: EndKind::Completed,
        });
        self.completed = Some(v);
        v
    }

    /// The error continuation for `node`: its handler chain if one is
    /// declared, otherwise a terminal error end. The runtime releases all
    /// held locks before following this edge (the flow is terminating and
    /// two-phase locking has nothing left to protect).
    fn error_exit(
        &mut self,
        node: NodeId,
        chain: &mut Vec<NodeId>,
    ) -> Result<VertexId, CompileError> {
        match self.graph.nodes[node].error_handler {
            None => {
                if let Some(&v) = self.err_ends.get(&node) {
                    return Ok(v);
                }
                let v = self.push(FlatVertex::End {
                    outcome: EndKind::Errored { node },
                });
                self.err_ends.insert(node, v);
                Ok(v)
            }
            Some(handler) => {
                if chain.contains(&handler) {
                    let mut cycle: Vec<String> = chain
                        .iter()
                        .map(|&n| self.graph.name(n).to_string())
                        .collect();
                    cycle.push(self.graph.name(handler).to_string());
                    return Err(CompileError::new(
                        ErrorKind::RecursiveNode {
                            name: self.graph.name(handler).to_string(),
                            cycle,
                        },
                        self.graph.nodes[handler].span,
                    ));
                }
                if let Some(&v) = self.handler_entries.get(&node) {
                    return Ok(v);
                }
                chain.push(handler);
                let handled_end = self.push(FlatVertex::End {
                    outcome: EndKind::Handled { node, handler },
                });
                let handler_err = self.error_exit(handler, chain)?;
                let exec = self.push(FlatVertex::Exec {
                    node: handler,
                    on_ok: handled_end,
                    on_err: handler_err,
                });
                let entry = if self.graph.nodes[handler].constraints.is_empty() {
                    exec
                } else {
                    // The Release after a handler is folded into the
                    // release-all at flow end; acquiring is still explicit
                    // so lock contention on handlers is modeled.
                    self.push(FlatVertex::Acquire {
                        node: handler,
                        next: exec,
                    })
                };
                chain.pop();
                self.handler_entries.insert(node, entry);
                Ok(entry)
            }
        }
    }

    fn flatten_seq(
        &mut self,
        body: &[NodeId],
        cont: VertexId,
        chain: &mut Vec<NodeId>,
    ) -> Result<VertexId, CompileError> {
        let mut cont = cont;
        for &child in body.iter().rev() {
            cont = self.flatten_node(child, cont, chain)?;
        }
        Ok(cont)
    }

    fn flatten_node(
        &mut self,
        id: NodeId,
        cont: VertexId,
        chain: &mut Vec<NodeId>,
    ) -> Result<VertexId, CompileError> {
        let has_locks = !self.graph.nodes[id].constraints.is_empty();
        let kind = self.graph.nodes[id].kind.clone();
        match &kind {
            NodeKind::Concrete { .. } => {
                let after = if has_locks {
                    self.push(FlatVertex::Release {
                        node: id,
                        next: cont,
                    })
                } else {
                    cont
                };
                let on_err = self.error_exit(id, chain)?;
                let exec = self.push(FlatVertex::Exec {
                    node: id,
                    on_ok: after,
                    on_err,
                });
                Ok(if has_locks {
                    self.push(FlatVertex::Acquire {
                        node: id,
                        next: exec,
                    })
                } else {
                    exec
                })
            }
            NodeKind::Abstract { variants } => {
                let after = if has_locks {
                    self.push(FlatVertex::Release {
                        node: id,
                        next: cont,
                    })
                } else {
                    cont
                };
                let body_entry = if variants.len() == 1 && variants[0].is_catch_all() {
                    self.flatten_seq(&variants[0].body, after, chain)?
                } else {
                    let mut arms = Vec::with_capacity(variants.len());
                    for (i, v) in variants.iter().enumerate() {
                        let entry = self.flatten_seq(&v.body, after, chain)?;
                        arms.push(DispatchArm { variant: i, entry });
                    }
                    let on_nomatch = self.push(FlatVertex::End {
                        outcome: EndKind::NoMatch { node: id },
                    });
                    self.push(FlatVertex::Dispatch {
                        node: id,
                        arms,
                        on_nomatch,
                    })
                };
                Ok(if has_locks {
                    self.push(FlatVertex::Acquire {
                        node: id,
                        next: body_entry,
                    })
                } else {
                    body_entry
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn flat(src: &str) -> (ProgramGraph, Vec<FlatProgram>) {
        let (mut g, _) = ProgramGraph::build(&parse(src).unwrap()).unwrap();
        crate::constraints::analyze(&mut g).unwrap();
        let flats = g
            .sources
            .clone()
            .into_iter()
            .map(|s| FlatProgram::build(&g, s).unwrap())
            .collect();
        (g, flats)
    }

    #[test]
    fn image_server_flattens() {
        let (g, flats) = flat(crate::fixtures::IMAGE_SERVER);
        assert_eq!(flats.len(), 1);
        let f = &flats[0];
        assert_eq!(g.name(f.source), "Listen");
        // Exec vertices: ReadRequest, CheckCache, Write, Complete,
        // ReadInFromDisk, Compress, StoreInCache, FourOhFour.
        let mut names: Vec<&str> = f.execs().map(|(_, n)| g.name(n)).collect();
        names.sort_unstable();
        assert_eq!(
            names,
            vec![
                "CheckCache",
                "Complete",
                "Compress",
                "FourOhFour",
                "ReadInFromDisk",
                "ReadRequest",
                "StoreInCache",
                "Write",
            ]
        );
        // One dispatch (Handler), with two arms.
        let dispatches: Vec<_> = f
            .verts
            .iter()
            .filter_map(|v| match v {
                FlatVertex::Dispatch { node, arms, .. } => Some((g.name(*node), arms.len())),
                _ => None,
            })
            .collect();
        assert_eq!(dispatches, vec![("Handler", 2)]);
        // CheckCache, StoreInCache, Complete each have Acquire+Release.
        let acquires = f
            .verts
            .iter()
            .filter(|v| matches!(v, FlatVertex::Acquire { .. }))
            .count();
        let releases = f
            .verts
            .iter()
            .filter(|v| matches!(v, FlatVertex::Release { .. }))
            .count();
        assert_eq!(acquires, 3);
        assert_eq!(releases, 3);
    }

    #[test]
    fn all_edges_point_to_earlier_vertices() {
        let (_, flats) = flat(crate::fixtures::IMAGE_SERVER);
        for f in &flats {
            for (i, v) in f.verts.iter().enumerate() {
                for s in v.successors() {
                    assert!(s < i, "edge {i} -> {s} breaks reverse-topological ids");
                }
            }
        }
    }

    #[test]
    fn error_edges_reach_handler() {
        let (g, flats) = flat(crate::fixtures::IMAGE_SERVER);
        let f = &flats[0];
        let (rifd, _) = g.node("ReadInFromDisk").unwrap();
        let (fof, _) = g.node("FourOhFour").unwrap();
        // The exec of ReadInFromDisk must error into an exec of FourOhFour.
        let mut found = false;
        for v in &f.verts {
            if let FlatVertex::Exec { node, on_err, .. } = v {
                if *node == rifd {
                    // Follow to the handler's exec (possibly via Acquire).
                    let mut cur = *on_err;
                    loop {
                        match &f.verts[cur] {
                            FlatVertex::Acquire { next, .. } => cur = *next,
                            FlatVertex::Exec { node, .. } => {
                                assert_eq!(*node, fof);
                                found = true;
                                break;
                            }
                            other => panic!("unexpected error chain vertex {other:?}"),
                        }
                    }
                }
            }
        }
        assert!(found);
    }

    #[test]
    fn unhandled_error_terminates() {
        let (g, flats) = flat(crate::fixtures::MINI_PIPELINE);
        let f = &flats[0];
        let (close, _) = g.node("Close").unwrap();
        for v in &f.verts {
            if let FlatVertex::Exec { node, on_err, .. } = v {
                if *node == close {
                    assert!(matches!(
                        f.verts[*on_err],
                        FlatVertex::End {
                            outcome: EndKind::Errored { node }
                        } if node == close
                    ));
                }
            }
        }
    }

    #[test]
    fn handler_cycle_rejected() {
        let src = "A (int x) => (); B (int x) => (); \
                   handle error A => B; handle error B => A; \
                   S () => (int x); source S => A;";
        let (g, _) = ProgramGraph::build(&parse(src).unwrap()).unwrap();
        let err = FlatProgram::build(&g, g.sources[0]).unwrap_err();
        assert!(matches!(err.kind, ErrorKind::RecursiveNode { .. }));
    }

    #[test]
    fn shared_handler_memoized() {
        // Two nodes with the same handler reuse one handler chain per node
        // (outcome labels differ per erroring node, so entries per node).
        let (_, flats) = flat(crate::fixtures::MINI_PIPELINE);
        let f = &flats[0];
        let handled: Vec<_> = f
            .verts
            .iter()
            .filter(|v| {
                matches!(
                    v,
                    FlatVertex::End {
                        outcome: EndKind::Handled { .. }
                    }
                )
            })
            .collect();
        assert_eq!(handled.len(), 1, "Parse is the only handled node");
    }
}
