//! Stage fusion (compiler pass, after flattening).
//!
//! The flattened graph makes every runtime step explicit, and the event
//! runtime pays one queue turn per `Exec` vertex — a 5-node straight-line
//! pipeline costs 5 shard-queue round-trips per request. This pass groups
//! maximal straight-line chains of `Exec`/`Release` vertices into
//! [`FusedSegment`]s the runtime executes as one unit, keeping a segment
//! boundary only where the paper's semantics require the scheduler to be
//! able to observe (or re-route) the flow:
//!
//! - **dispatch**: predicate dispatch picks an arm at runtime, so every
//!   arm entry (and the dispatch vertex itself) starts a new segment;
//! - **error arms**: `on_err` targets must stay addressable so a mid-chain
//!   `NodeOutcome::Err` can land exactly on its handler chain;
//! - **constraints**: an `Acquire` can `WouldBlock` and be re-queued on
//!   the flow's home shard (session affinity), so the cursor must be able
//!   to rest exactly on the `Acquire` vertex — it is never fused, and the
//!   vertex after it starts a new segment (the post-acquire re-entry
//!   point);
//! - **blocking nodes**: nodes declared `blocking` (or registered
//!   `node_blocking`) are off-loaded to the I/O pool one at a time;
//! - **joins**: a vertex with two or more predecessors (a post-dispatch
//!   continuation, a memoized handler entry) can be entered from outside
//!   any one chain, so it heads its own segment.
//!
//! Within a segment every interior member has exactly one predecessor —
//! the previous member — so execution can only enter a segment at its
//! head, and the runtime can run the whole chain without re-checking
//! where it is. Path profiling is unaffected: fused execution takes the
//! same Ball–Larus edges in the same order as the unfused walk.

use crate::flat::{FlatProgram, FlatVertex, VertexId};
use crate::graph::{NodeId, ProgramGraph};

/// Why an edge crosses a segment boundary (used by the dot renderer and
/// the `--dump-fused` listing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakReason {
    /// The edge reaches a flow-end vertex.
    End,
    /// The edge reaches a dispatch vertex (arm chosen at runtime).
    Dispatch,
    /// The edge leaves a dispatch vertex (an arm entry).
    DispatchArm,
    /// The edge is (or its target is also reachable by) an `on_err` edge.
    ErrorArm,
    /// The edge enters or leaves an `Acquire` (constraint boundary and
    /// `WouldBlock` re-route point).
    Acquire,
    /// The edge enters or leaves a blocking node execution (I/O pool
    /// off-load boundary).
    Blocking,
    /// The target has two or more predecessors (shared continuation).
    Join,
}

impl std::fmt::Display for BreakReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BreakReason::End => "end",
            BreakReason::Dispatch => "dispatch",
            BreakReason::DispatchArm => "dispatch arm",
            BreakReason::ErrorArm => "error arm",
            BreakReason::Acquire => "acquire",
            BreakReason::Blocking => "blocking",
            BreakReason::Join => "join",
        })
    }
}

/// One maximal straight-line chain of `Exec`/`Release` vertices, in
/// execution order (each member's ok/next edge points to the next).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusedSegment {
    /// Member vertices in chain order; `verts[0]` is the segment head
    /// (the only member reachable from outside the segment).
    pub verts: Vec<VertexId>,
    /// How many members are `Exec` vertices (node executions); the rest
    /// are `Release` bookkeeping.
    pub execs: usize,
}

/// The fusion of one flattened flow: a partition of its fusable vertices
/// into segments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FusedFlow {
    /// Segments ordered by head vertex id, descending — roughly source
    /// order, since flat ids are reverse-topological.
    pub segments: Vec<FusedSegment>,
    /// Per-vertex segment index (`None` for Acquire/Dispatch/End and
    /// blocking Exec vertices, which are never fused).
    pub seg_of: Vec<Option<usize>>,
    /// Per-vertex predecessor counts over the flat graph.
    preds: Vec<usize>,
    /// Per-vertex "blocking Exec" flags as seen by this build (declared
    /// `blocking` plus whatever extra predicate the caller supplied).
    blocking: Vec<bool>,
}

impl FusedFlow {
    /// Fuses `flat` using only compile-time knowledge (the `blocking`
    /// declarations in the program text).
    pub fn build(flat: &FlatProgram, graph: &ProgramGraph) -> FusedFlow {
        Self::build_with(flat, graph, |_| false)
    }

    /// Fuses `flat`, additionally treating any node for which
    /// `extra_blocking` returns true as blocking. The runtime passes its
    /// registry's `node_blocking` knowledge here, which the compiler
    /// cannot see.
    pub fn build_with(
        flat: &FlatProgram,
        graph: &ProgramGraph,
        extra_blocking: impl Fn(NodeId) -> bool,
    ) -> FusedFlow {
        let n = flat.verts.len();
        let blocking: Vec<bool> = flat
            .verts
            .iter()
            .map(|v| match v {
                FlatVertex::Exec { node, .. } => {
                    graph.nodes[*node].blocking || extra_blocking(*node)
                }
                _ => false,
            })
            .collect();
        let fusable = |i: VertexId| {
            !blocking[i]
                && matches!(
                    flat.verts[i],
                    FlatVertex::Exec { .. } | FlatVertex::Release { .. }
                )
        };

        let mut preds = vec![0usize; n];
        let mut err_target = vec![false; n];
        let mut single_pred = vec![usize::MAX; n];
        for (i, v) in flat.verts.iter().enumerate() {
            for (k, &s) in v.successors().iter().enumerate() {
                preds[s] += 1;
                single_pred[s] = i;
                if matches!(v, FlatVertex::Exec { .. }) && k == 1 {
                    err_target[s] = true;
                }
            }
        }

        // A fusable vertex heads its own segment unless its unique
        // predecessor is a fusable vertex whose ok/next edge reaches it.
        let is_head = |i: VertexId| {
            i == flat.entry || preds[i] != 1 || err_target[i] || !fusable(single_pred[i])
        };
        // The edge a chain continues through: Exec's on_ok, Release's next.
        let chain_succ = |i: VertexId| match &flat.verts[i] {
            FlatVertex::Exec { on_ok, .. } => Some(*on_ok),
            FlatVertex::Release { next, .. } => Some(*next),
            _ => None,
        };

        let mut seg_of: Vec<Option<usize>> = vec![None; n];
        let mut segments = Vec::new();
        for head in (0..n).rev() {
            if !fusable(head) || !is_head(head) || seg_of[head].is_some() {
                continue;
            }
            let idx = segments.len();
            let mut verts = Vec::new();
            let mut execs = 0usize;
            let mut cur = head;
            loop {
                seg_of[cur] = Some(idx);
                verts.push(cur);
                if matches!(flat.verts[cur], FlatVertex::Exec { .. }) {
                    execs += 1;
                }
                match chain_succ(cur) {
                    Some(next) if fusable(next) && !is_head(next) => cur = next,
                    _ => break,
                }
            }
            segments.push(FusedSegment { verts, execs });
        }
        debug_assert!(
            (0..n).all(|i| fusable(i) == seg_of[i].is_some()),
            "every fusable vertex belongs to exactly one segment"
        );
        FusedFlow {
            segments,
            seg_of,
            preds,
            blocking,
        }
    }

    /// The largest number of node executions in any one segment (the
    /// default dispatcher step budget), or 0 for a flow with no
    /// executable vertices.
    pub fn max_execs(&self) -> usize {
        self.segments.iter().map(|s| s.execs).max().unwrap_or(0)
    }

    /// Why the edge `u --k--> v` crosses a segment boundary, or `None`
    /// when both endpoints are members of the same segment (a fused
    /// interior edge).
    pub fn break_reason(
        &self,
        flat: &FlatProgram,
        u: VertexId,
        k: usize,
        v: VertexId,
    ) -> Option<BreakReason> {
        if let (Some(a), Some(b)) = (self.seg_of[u], self.seg_of[v]) {
            if a == b {
                return None;
            }
        }
        Some(match (&flat.verts[u], &flat.verts[v]) {
            (_, FlatVertex::End { .. }) => BreakReason::End,
            (_, FlatVertex::Dispatch { .. }) => BreakReason::Dispatch,
            (_, FlatVertex::Acquire { .. }) => BreakReason::Acquire,
            (FlatVertex::Exec { .. }, _) if k == 1 => BreakReason::ErrorArm,
            (FlatVertex::Dispatch { .. }, _) => BreakReason::DispatchArm,
            (FlatVertex::Acquire { .. }, _) => BreakReason::Acquire,
            _ if self.blocking[u] || self.blocking[v] => BreakReason::Blocking,
            _ if self.preds[v] >= 2 => BreakReason::Join,
            // Target of someone else's error edge (single-predecessor
            // case is fused; reachable only when u itself is the error
            // source, covered above — keep a stable answer regardless).
            _ => BreakReason::Join,
        })
    }
}

/// A short human-readable label for a flat vertex (shared by the fused
/// dump and the dot renderer).
pub fn vertex_label(graph: &ProgramGraph, flat: &FlatProgram, v: VertexId) -> String {
    match &flat.verts[v] {
        FlatVertex::Acquire { node, .. } => format!("acquire({})", graph.name(*node)),
        FlatVertex::Release { node, .. } => format!("release({})", graph.name(*node)),
        FlatVertex::Exec { node, .. } => graph.name(*node).to_string(),
        FlatVertex::Dispatch { node, .. } => format!("dispatch({})", graph.name(*node)),
        FlatVertex::End { outcome } => match outcome {
            crate::flat::EndKind::Completed => "end(completed)".into(),
            crate::flat::EndKind::Errored { node } => {
                format!("end(errored {})", graph.name(*node))
            }
            crate::flat::EndKind::Handled { node, handler } => format!(
                "end(handled {} -> {})",
                graph.name(*node),
                graph.name(*handler)
            ),
            crate::flat::EndKind::NoMatch { node } => {
                format!("end(nomatch {})", graph.name(*node))
            }
        },
    }
}

/// Renders the fused-segment structure of every flow as deterministic
/// text (the `fluxc --dump-fused` output).
pub fn render(p: &crate::compile::CompiledProgram) -> String {
    let mut out = String::new();
    for flow in &p.flows {
        let g = &p.graph;
        let flat = &flow.flat;
        let fused = &flow.fused;
        let fused_verts: usize = fused.segments.iter().map(|s| s.verts.len()).sum();
        out.push_str(&format!(
            "flow {} (source {}): {} segment(s) over {} fused vertice(s), max {} exec(s)/segment\n",
            g.name(flat.target),
            g.name(flat.source),
            fused.segments.len(),
            fused_verts,
            fused.max_execs(),
        ));
        for (i, seg) in fused.segments.iter().enumerate() {
            let chain: Vec<String> = seg
                .verts
                .iter()
                .map(|&v| format!("v{v}:{}", vertex_label(g, flat, v)))
                .collect();
            out.push_str(&format!("  seg {i}: {}\n", chain.join(" -> ")));
        }
        let mut breaks = Vec::new();
        for u in (0..flat.verts.len()).rev() {
            for (k, &v) in flat.verts[u].successors().iter().enumerate() {
                if let Some(reason) = fused.break_reason(flat, u, k, v) {
                    breaks.push(format!(
                        "    v{u}:{} -> v{v}:{} [{reason}]\n",
                        vertex_label(g, flat, u),
                        vertex_label(g, flat, v),
                    ));
                }
            }
        }
        if !breaks.is_empty() {
            out.push_str("  boundaries:\n");
            for b in breaks {
                out.push_str(&b);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    fn exec_names<'g>(g: &'g ProgramGraph, flat: &FlatProgram, seg: &FusedSegment) -> Vec<&'g str> {
        seg.verts
            .iter()
            .filter_map(|&v| match flat.verts[v] {
                FlatVertex::Exec { node, .. } => Some(g.name(node)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn image_server_segments() {
        let p = compile(crate::fixtures::IMAGE_SERVER).unwrap();
        let flow = &p.flows[0];
        let (g, flat, fused) = (&p.graph, &flow.flat, &flow.fused);
        // ReadRequest | CheckCache+release | RIFD->Compress | FourOhFour
        // | StoreInCache+release | Write | Complete+release.
        assert_eq!(fused.segments.len(), 7);
        let chains: Vec<Vec<&str>> = fused
            .segments
            .iter()
            .map(|s| exec_names(g, flat, s))
            .collect();
        assert!(chains.contains(&vec!["ReadInFromDisk", "Compress"]));
        assert_eq!(fused.max_execs(), 2);
        // The miss arm fuses the handler-protected RIFD with Compress but
        // breaks before the Acquire of StoreInCache's {cache} constraint.
        let rifd_seg = fused
            .segments
            .iter()
            .find(|s| exec_names(g, flat, s) == ["ReadInFromDisk", "Compress"])
            .unwrap();
        let last = *rifd_seg.verts.last().unwrap();
        let FlatVertex::Exec { on_ok, .. } = flat.verts[last] else {
            panic!("chain ends at Compress exec");
        };
        assert!(matches!(flat.verts[on_ok], FlatVertex::Acquire { .. }));
        assert_eq!(
            fused.break_reason(flat, last, 0, on_ok),
            Some(BreakReason::Acquire)
        );
    }

    #[test]
    fn mini_pipeline_fuses_catch_all_arm() {
        let p = compile(crate::fixtures::MINI_PIPELINE).unwrap();
        let flow = &p.flows[0];
        let (g, flat, fused) = (&p.graph, &flow.flat, &flow.fused);
        // Parse | Oops | Respond (valid arm) | Respond->Retry | Close.
        assert_eq!(fused.segments.len(), 5);
        let chains: Vec<Vec<&str>> = fused
            .segments
            .iter()
            .map(|s| exec_names(g, flat, s))
            .collect();
        assert!(chains.contains(&vec!["Respond", "Retry"]));
        // Close is the shared continuation of both arms: a join head.
        let close_seg = fused
            .segments
            .iter()
            .find(|s| exec_names(g, flat, s) == ["Close"])
            .unwrap();
        let close = close_seg.verts[0];
        assert!(fused.preds[close] >= 2);
    }

    #[test]
    fn blocking_nodes_never_fuse() {
        let src = "Gen () => (int x); A (int x) => (int x); Io (int x) => (int x);\
                   B (int x) => (); source Gen => F; F = A -> Io -> B; blocking Io;";
        let p = compile(src).unwrap();
        let flow = &p.flows[0];
        let fused = &flow.fused;
        for seg in &fused.segments {
            for &v in &seg.verts {
                assert!(!fused.blocking[v], "blocking vertex fused: v{v}");
            }
        }
        // Io splits the 3-node chain into three singleton segments (A's
        // successor is blocking; B follows a blocking node).
        assert_eq!(fused.segments.len(), 2, "A and B fuse alone; Io is out");
        assert!(fused.segments.iter().all(|s| s.execs == 1));
    }

    #[test]
    fn runtime_blocking_predicate_splits_chains() {
        let src = "Gen () => (int x); A (int x) => (int x); B (int x) => (int x);\
                   C (int x) => (); source Gen => F; F = A -> B -> C;";
        let p = compile(src).unwrap();
        let flow = &p.flows[0];
        // Compile-time: one 3-exec segment.
        assert_eq!(flow.fused.segments.len(), 1);
        assert_eq!(flow.fused.max_execs(), 3);
        // Registry later marks B blocking: the chain splits around it.
        let (bid, _) = p.graph.node("B").unwrap();
        let fused = FusedFlow::build_with(&flow.flat, &p.graph, |n| n == bid);
        assert_eq!(fused.segments.len(), 2);
        assert_eq!(fused.max_execs(), 1);
    }

    #[test]
    fn interior_members_have_one_predecessor() {
        for src in [
            crate::fixtures::IMAGE_SERVER,
            crate::fixtures::MINI_PIPELINE,
            crate::fixtures::DEADLOCK_EXAMPLE,
        ] {
            let p = compile(src).unwrap();
            for flow in &p.flows {
                let fused = &flow.fused;
                for seg in &fused.segments {
                    for &v in &seg.verts[1..] {
                        assert_eq!(
                            fused.preds[v], 1,
                            "interior member v{v} must be unreachable from outside its chain"
                        );
                    }
                    // Chain edges connect consecutive members.
                    for w in seg.verts.windows(2) {
                        let succ = match &flow.flat.verts[w[0]] {
                            FlatVertex::Exec { on_ok, .. } => *on_ok,
                            FlatVertex::Release { next, .. } => *next,
                            other => panic!("non-fusable member {other:?}"),
                        };
                        assert_eq!(succ, w[1]);
                    }
                }
            }
        }
    }

    #[test]
    fn error_arm_targets_head_segments() {
        let p = compile(crate::fixtures::MINI_PIPELINE).unwrap();
        let flow = &p.flows[0];
        let (flat, fused) = (&flow.flat, &flow.fused);
        for (u, v) in flat.verts.iter().enumerate() {
            if let FlatVertex::Exec { on_err, .. } = v {
                if let Some(si) = fused.seg_of[*on_err] {
                    assert_eq!(
                        fused.segments[si].verts[0], *on_err,
                        "an on_err target must head its segment"
                    );
                    assert_eq!(
                        fused.break_reason(flat, u, 1, *on_err),
                        Some(BreakReason::ErrorArm)
                    );
                }
            }
        }
    }

    #[test]
    fn render_is_deterministic_and_labeled() {
        let p = compile(crate::fixtures::IMAGE_SERVER).unwrap();
        let a = render(&p);
        let b = render(&compile(crate::fixtures::IMAGE_SERVER).unwrap());
        assert_eq!(a, b);
        assert!(a.contains("flow Image (source Listen)"), "{a}");
        assert!(a.contains("ReadInFromDisk -> v"), "{a}");
        assert!(a.contains("[dispatch]"), "{a}");
        assert!(a.contains("[error arm]"), "{a}");
        assert!(a.contains("[acquire]"), "{a}");
    }
}
