//! Performance-model parameters shared by the path profiler (which
//! observes them on a running server) and the discrete-event simulator
//! (which replays them; paper §5.1).
//!
//! "The simulator can either use observed parameters from a running
//! system (per-node execution times, source node inter-arrival times,
//! and observed branching probabilities), or the Flux programmer can
//! supply estimates for these parameters."

use std::collections::HashMap;

/// Parameters for one flattened flow, keyed by vertex id.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlowParams {
    /// Mean inter-arrival time of new flows from this source, in seconds.
    pub interarrival_mean_s: f64,
    /// Mean service (CPU) time per `Exec` vertex, in seconds.
    pub service_mean_s: HashMap<usize, f64>,
    /// Probability that an `Exec` vertex takes its error edge.
    pub error_prob: HashMap<usize, f64>,
    /// For each `Dispatch` vertex, the probability of each arm (same
    /// order as the arms; should sum to <= 1, remainder = no-match).
    pub arm_probs: HashMap<usize, Vec<f64>>,
}

/// Parameters for every flow of a program, in flow declaration order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ModelParams {
    pub flows: Vec<FlowParams>,
}

impl ModelParams {
    /// Convenience: uniform parameters for quick estimates — every node
    /// takes `service_s`, never errors, all dispatch arms equally likely.
    pub fn uniform(
        program: &crate::compile::CompiledProgram,
        service_s: f64,
        interarrival_s: f64,
    ) -> Self {
        let flows = program
            .flows
            .iter()
            .map(|flow| {
                let mut fp = FlowParams {
                    interarrival_mean_s: interarrival_s,
                    ..FlowParams::default()
                };
                for (vid, vert) in flow.flat.verts.iter().enumerate() {
                    match vert {
                        crate::flat::FlatVertex::Exec { .. } => {
                            fp.service_mean_s.insert(vid, service_s);
                            fp.error_prob.insert(vid, 0.0);
                        }
                        crate::flat::FlatVertex::Dispatch { arms, .. } => {
                            let p = 1.0 / arms.len() as f64;
                            fp.arm_probs.insert(vid, vec![p; arms.len()]);
                        }
                        _ => {}
                    }
                }
                fp
            })
            .collect();
        ModelParams { flows }
    }

    /// Overrides the mean service time of every `Exec` vertex running the
    /// named node, across all flows. Returns how many vertices matched.
    pub fn set_node_service(
        &mut self,
        program: &crate::compile::CompiledProgram,
        node: &str,
        service_s: f64,
    ) -> usize {
        let mut n = 0;
        for (flow, fp) in program.flows.iter().zip(self.flows.iter_mut()) {
            for (vid, nid) in flow.flat.execs() {
                if program.graph.name(nid) == node {
                    fp.service_mean_s.insert(vid, service_s);
                    n += 1;
                }
            }
        }
        n
    }

    /// Overrides the arm probabilities of the dispatch at the named
    /// abstract node, across all flows. Returns how many matched.
    pub fn set_dispatch_probs(
        &mut self,
        program: &crate::compile::CompiledProgram,
        node: &str,
        probs: &[f64],
    ) -> usize {
        let mut n = 0;
        for (flow, fp) in program.flows.iter().zip(self.flows.iter_mut()) {
            for (vid, vert) in flow.flat.verts.iter().enumerate() {
                if let crate::flat::FlatVertex::Dispatch {
                    node: nid, arms, ..
                } = vert
                {
                    if program.graph.name(*nid) == node && arms.len() == probs.len() {
                        fp.arm_probs.insert(vid, probs.to_vec());
                        n += 1;
                    }
                }
            }
        }
        n
    }

    /// Overrides the error probability of every `Exec` vertex running the
    /// named node. Returns how many matched.
    pub fn set_error_prob(
        &mut self,
        program: &crate::compile::CompiledProgram,
        node: &str,
        prob: f64,
    ) -> usize {
        let mut n = 0;
        for (flow, fp) in program.flows.iter().zip(self.flows.iter_mut()) {
            for (vid, nid) in flow.flat.execs() {
                if program.graph.name(nid) == node {
                    fp.error_prob.insert(vid, prob);
                    n += 1;
                }
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_covers_all_exec_and_dispatch_vertices() {
        let p = crate::compile(crate::fixtures::IMAGE_SERVER).unwrap();
        let m = ModelParams::uniform(&p, 0.001, 0.01);
        let flow = &p.flows[0];
        let execs = flow.flat.execs().count();
        assert_eq!(m.flows[0].service_mean_s.len(), execs);
        assert_eq!(m.flows[0].arm_probs.len(), 1);
        assert_eq!(m.flows[0].arm_probs.values().next().unwrap().len(), 2);
    }

    #[test]
    fn set_node_service_targets_by_name() {
        let p = crate::compile(crate::fixtures::IMAGE_SERVER).unwrap();
        let mut m = ModelParams::uniform(&p, 0.001, 0.01);
        let hits = m.set_node_service(&p, "Compress", 0.5);
        assert_eq!(hits, 1);
        let (vid, _) = p.flows[0]
            .flat
            .execs()
            .find(|&(_, nid)| p.graph.name(nid) == "Compress")
            .unwrap();
        assert_eq!(m.flows[0].service_mean_s[&vid], 0.5);
    }

    #[test]
    fn set_dispatch_probs_validates_arity() {
        let p = crate::compile(crate::fixtures::IMAGE_SERVER).unwrap();
        let mut m = ModelParams::uniform(&p, 0.001, 0.01);
        assert_eq!(m.set_dispatch_probs(&p, "Handler", &[0.8, 0.2]), 1);
        assert_eq!(
            m.set_dispatch_probs(&p, "Handler", &[0.5]),
            0,
            "wrong arity"
        );
    }
}
