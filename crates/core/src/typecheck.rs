//! Type checking (compiler pass 2, paper §3.1).
//!
//! The second pass decorates every node with input/output types, infers
//! signatures for abstract nodes from their bodies, and verifies that the
//! output types of each node match the inputs of the nodes they connect to.
//! Types are positional: parameter names do not participate.

use crate::ast::{ConstraintScope, Param, PatElem};
use crate::error::{CompileError, CompileErrors, ErrorKind};
use crate::graph::{NodeId, NodeKind, ProgramGraph};
use std::collections::HashMap;

/// The inferred positional type signature of a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeTypes {
    pub inputs: Vec<String>,
    pub outputs: Vec<String>,
}

/// The result of type checking: a signature for every node (concrete
/// signatures are copied; abstract ones inferred).
#[derive(Debug, Clone, PartialEq)]
pub struct TypeTable {
    pub types: Vec<NodeTypes>,
}

impl TypeTable {
    /// The signature of node `id`.
    pub fn of(&self, id: NodeId) -> &NodeTypes {
        &self.types[id]
    }
}

fn tys(params: &[Param]) -> Vec<String> {
    params.iter().map(|p| p.ty.clone()).collect()
}

/// Runs the full type check over a linked graph.
pub fn check(graph: &ProgramGraph) -> Result<TypeTable, CompileErrors> {
    let mut errors = CompileErrors::default();
    let mut memo: HashMap<NodeId, NodeTypes> = HashMap::new();

    // Infer every node (concrete nodes are immediate; abstract nodes
    // recurse into their bodies; the graph is already known acyclic).
    for id in 0..graph.nodes.len() {
        if let Err(e) = infer(graph, id, &mut memo) {
            errors.push(e);
        }
    }

    if !errors.is_empty() {
        return Err(errors);
    }

    // Source rules: the source node takes no inputs, and its outputs must
    // match the target's inputs exactly.
    for spec in &graph.sources {
        let src = &memo[&spec.source];
        if !src.inputs.is_empty() {
            errors.push(CompileError::new(
                ErrorKind::SourceHasInputs {
                    name: graph.name(spec.source).to_string(),
                },
                graph.nodes[spec.source].span,
            ));
        }
        let tgt = &memo[&spec.target];
        if src.outputs != tgt.inputs {
            errors.push(CompileError::new(
                ErrorKind::TypeMismatch {
                    from: graph.name(spec.source).to_string(),
                    to: graph.name(spec.target).to_string(),
                    expected: tgt.inputs.clone(),
                    found: src.outputs.clone(),
                },
                graph.nodes[spec.target].span,
            ));
        }
    }

    // Error-handler rule: the handler consumes what the failing node was
    // given (its inputs), since the node produced no valid output.
    for (id, node) in graph.nodes.iter().enumerate() {
        if let Some(h) = node.error_handler {
            let node_in = &memo[&id].inputs;
            let handler_in = &memo[&h].inputs;
            if node_in != handler_in {
                errors.push(CompileError::new(
                    ErrorKind::TypeMismatch {
                        from: node.name.clone(),
                        to: graph.name(h).to_string(),
                        expected: handler_in.clone(),
                        found: node_in.clone(),
                    },
                    node.span,
                ));
            }
        }
    }

    // Session-scoped constraints require the node to live under some
    // source (checked structurally elsewhere); nothing further to verify
    // here, but pattern arity is checked during inference.
    let _ = ConstraintScope::Session;

    if errors.is_empty() {
        let types = (0..graph.nodes.len())
            .map(|id| memo.remove(&id).expect("every node inferred"))
            .collect();
        Ok(TypeTable { types })
    } else {
        Err(errors)
    }
}

fn infer(
    graph: &ProgramGraph,
    id: NodeId,
    memo: &mut HashMap<NodeId, NodeTypes>,
) -> Result<(), CompileError> {
    if memo.contains_key(&id) {
        return Ok(());
    }
    let node = &graph.nodes[id];
    match &node.kind {
        NodeKind::Concrete { inputs, outputs } => {
            memo.insert(
                id,
                NodeTypes {
                    inputs: tys(inputs),
                    outputs: tys(outputs),
                },
            );
            Ok(())
        }
        NodeKind::Abstract { variants } => {
            let mut sig: Option<NodeTypes> = None;
            for variant in variants {
                // Infer children first (acyclicity guarantees termination).
                for &child in &variant.body {
                    infer(graph, child, memo)?;
                }
                // Chain the body: out(i) must equal in(i+1).
                for pair in variant.body.windows(2) {
                    let (a, b) = (pair[0], pair[1]);
                    let out = memo[&a].outputs.clone();
                    let inp = memo[&b].inputs.clone();
                    if out != inp {
                        return Err(CompileError::new(
                            ErrorKind::TypeMismatch {
                                from: graph.name(a).to_string(),
                                to: graph.name(b).to_string(),
                                expected: inp,
                                found: out,
                            },
                            variant.span,
                        ));
                    }
                }
                let this = match (variant.body.first(), variant.body.last()) {
                    (Some(&first), Some(&last)) => NodeTypes {
                        inputs: memo[&first].inputs.clone(),
                        outputs: memo[&last].outputs.clone(),
                    },
                    // Empty body: pass-through. Inputs/outputs are fixed by
                    // the sibling variants (or by context if this is the
                    // only variant, which we reject as uninferable unless a
                    // sibling pins it down).
                    _ => match &sig {
                        Some(s) => {
                            if s.inputs != s.outputs {
                                return Err(CompileError::new(
                                    ErrorKind::InvalidPassthrough {
                                        node: node.name.clone(),
                                    },
                                    variant.span,
                                ));
                            }
                            s.clone()
                        }
                        None => {
                            // Defer: scan the remaining variants for a
                            // non-empty one to pin the signature.
                            let mut pinned = None;
                            for v2 in variants {
                                if let (Some(&f), Some(&l)) = (v2.body.first(), v2.body.last()) {
                                    infer(graph, f, memo)?;
                                    infer(graph, l, memo)?;
                                    pinned = Some(NodeTypes {
                                        inputs: memo[&f].inputs.clone(),
                                        outputs: memo[&l].outputs.clone(),
                                    });
                                    break;
                                }
                            }
                            match pinned {
                                Some(s) if s.inputs == s.outputs => s,
                                Some(_) => {
                                    return Err(CompileError::new(
                                        ErrorKind::InvalidPassthrough {
                                            node: node.name.clone(),
                                        },
                                        variant.span,
                                    ));
                                }
                                None => {
                                    return Err(CompileError::new(
                                        ErrorKind::Other(format!(
                                            "cannot infer types for `{}`: every variant is empty",
                                            node.name
                                        )),
                                        variant.span,
                                    ));
                                }
                            }
                        }
                    },
                };
                // Pattern arity must match the (inferred) input arity.
                if let Some(pat) = &variant.pattern {
                    if pat.len() != this.inputs.len() {
                        return Err(CompileError::new(
                            ErrorKind::PatternArity {
                                node: node.name.clone(),
                                expected: this.inputs.len(),
                                found: pat.len(),
                            },
                            variant.span,
                        ));
                    }
                    // Predicate elements are already resolved against the
                    // typedef table during graph construction.
                    for el in pat {
                        let _ = matches!(el, PatElem::Pred(_));
                    }
                }
                match &sig {
                    None => sig = Some(this),
                    Some(s) => {
                        if s != &this {
                            return Err(CompileError::new(
                                ErrorKind::VariantMismatch {
                                    node: node.name.clone(),
                                    detail: format!(
                                        "one variant is ({}) => ({}), another is ({}) => ({})",
                                        s.inputs.join(", "),
                                        s.outputs.join(", "),
                                        this.inputs.join(", "),
                                        this.outputs.join(", ")
                                    ),
                                },
                                variant.span,
                            ));
                        }
                    }
                }
            }
            let sig = sig.expect("graph pass guarantees at least one variant");
            memo.insert(id, sig);
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ProgramGraph;
    use crate::parser::parse;

    fn check_src(src: &str) -> Result<(ProgramGraph, TypeTable), CompileErrors> {
        let (g, _) = ProgramGraph::build(&parse(src).unwrap())?;
        let t = check(&g)?;
        Ok((g, t))
    }

    #[test]
    fn figure2_typechecks() {
        let (g, t) = check_src(crate::fixtures::IMAGE_SERVER).unwrap();
        let (img, _) = g.node("Image").unwrap();
        assert_eq!(t.of(img).inputs, vec!["int"]);
        assert!(t.of(img).outputs.is_empty());
        let (h, _) = g.node("Handler").unwrap();
        assert_eq!(t.of(h).inputs, vec!["int", "bool", "image_tag*"]);
        assert_eq!(t.of(h).outputs, vec!["int", "bool", "image_tag*"]);
    }

    #[test]
    fn mini_pipeline_typechecks() {
        let (g, t) = check_src(crate::fixtures::MINI_PIPELINE).unwrap();
        let (r, _) = g.node("Route").unwrap();
        assert_eq!(t.of(r).inputs, vec!["int", "bool"]);
        assert_eq!(t.of(r).outputs, vec!["int"]);
    }

    #[test]
    fn chain_mismatch_rejected() {
        let err =
            check_src("A () => (int x); B (bool y) => (); F = A -> B; S () => (); source S => F;")
                .unwrap_err();
        assert!(err.0.iter().any(
            |e| matches!(&e.kind, ErrorKind::TypeMismatch { from, to, .. }
                if from == "A" && to == "B")
        ));
    }

    #[test]
    fn source_output_must_match_target_input() {
        let err = check_src("S () => (int x); B (bool y) => (); source S => B;").unwrap_err();
        assert!(err
            .0
            .iter()
            .any(|e| matches!(&e.kind, ErrorKind::TypeMismatch { .. })));
    }

    #[test]
    fn source_with_inputs_rejected() {
        let err = check_src("S (int x) => (int x); source S => S;").unwrap_err();
        assert!(err
            .0
            .iter()
            .any(|e| matches!(&e.kind, ErrorKind::SourceHasInputs { .. })));
    }

    #[test]
    fn pattern_arity_checked() {
        let err = check_src(
            "typedef p F; A (int x) => (int x); H:[p, p] = A; S () => (int x); source S => H;",
        )
        .unwrap_err();
        assert!(err.0.iter().any(|e| matches!(
            &e.kind,
            ErrorKind::PatternArity {
                expected: 1,
                found: 2,
                ..
            }
        )));
    }

    #[test]
    fn variant_signature_mismatch() {
        let err = check_src(
            "typedef p F; A (int x) => (int x); B (int x) => (bool y); \
             H:[p] = A; H:[_] = B; S () => (int x); source S => H;",
        )
        .unwrap_err();
        assert!(err
            .0
            .iter()
            .any(|e| matches!(&e.kind, ErrorKind::VariantMismatch { .. })));
    }

    #[test]
    fn passthrough_requires_matching_in_out() {
        // A maps int -> bool, so an empty sibling variant is illegal.
        let err = check_src(
            "typedef p F; A (int x) => (bool y); H:[p] = ; H:[_] = A; \
             S () => (int x); source S => H;",
        )
        .unwrap_err();
        assert!(err
            .0
            .iter()
            .any(|e| matches!(&e.kind, ErrorKind::InvalidPassthrough { .. })));
    }

    #[test]
    fn all_empty_variants_uninferable() {
        let err = check_src("typedef p F; H:[p] = ; H:[_] = ;").unwrap_err();
        assert!(err.0.iter().any(|e| matches!(&e.kind, ErrorKind::Other(_))));
    }

    #[test]
    fn handler_input_must_match_node_input() {
        let err = check_src(
            "A (int x) => (int x); H (bool b) => (); handle error A => H; \
             S () => (int x); source S => A;",
        )
        .unwrap_err();
        assert!(err
            .0
            .iter()
            .any(|e| matches!(&e.kind, ErrorKind::TypeMismatch { .. })));
    }

    #[test]
    fn nested_abstract_inference() {
        let (g, t) = check_src(
            "A (int x) => (bool y); B (bool y) => (); Inner = A; Outer = Inner -> B; \
             S () => (int x); source S => Outer;",
        )
        .unwrap();
        let (o, _) = g.node("Outer").unwrap();
        assert_eq!(t.of(o).inputs, vec!["int"]);
        assert!(t.of(o).outputs.is_empty());
    }
}
