//! Abstract syntax tree for Flux programs (paper §2).

use crate::span::Span;
use std::fmt;

/// A complete parsed Flux program: an ordered list of declarations.
///
/// Order matters in two places: dispatch variants are tried in declaration
/// order (§2.3), and diagnostics refer back to declaration sites.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    pub items: Vec<Item>,
}

/// One top-level declaration.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// `Name (in...) => (out...);` — a concrete node's type signature.
    NodeSig(NodeSig),
    /// `source Listen => Image;`
    Source(SourceDecl),
    /// `Name = A -> B -> C;` or `Name:[_, hit] = A -> B;` or `Name:[_,_] = ;`
    Abstract(AbstractDef),
    /// `typedef hit TestInCache;` — binds predicate type `hit` to the
    /// user-supplied boolean function `TestInCache`.
    Typedef(TypedefDecl),
    /// `handle error ReadInFromDisk => FourOhFour;`
    ErrorHandler(HandlerDecl),
    /// `atomic CheckCache:{cache};`
    Atomic(AtomicDecl),
    /// `blocking ReadInFromDisk;` — extension (see DESIGN.md §4): the node
    /// performs blocking calls and must be off-loaded by the event runtime.
    Blocking(BlockingDecl),
}

impl Item {
    /// The source span of the whole declaration.
    pub fn span(&self) -> Span {
        match self {
            Item::NodeSig(x) => x.span,
            Item::Source(x) => x.span,
            Item::Abstract(x) => x.span,
            Item::Typedef(x) => x.span,
            Item::ErrorHandler(x) => x.span,
            Item::Atomic(x) => x.span,
            Item::Blocking(x) => x.span,
        }
    }
}

/// A typed parameter in a node signature, e.g. `image_tag *request`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Normalized type text: words joined by spaces, `*` appended without
    /// spaces (`image_tag*`, `unsigned int`).
    pub ty: String,
    /// The parameter name (for documentation and stub generation only; type
    /// checking uses positions and types, as in the paper).
    pub name: String,
}

impl fmt::Display for Param {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.ty, self.name)
    }
}

/// `Name (inputs) => (outputs);`
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSig {
    pub name: String,
    pub inputs: Vec<Param>,
    pub outputs: Vec<Param>,
    pub span: Span,
}

/// `source Listen => Image;`
#[derive(Debug, Clone, PartialEq)]
pub struct SourceDecl {
    /// The source node (must be a concrete node with no inputs).
    pub source: String,
    /// The node each new flow is handed to.
    pub target: String,
    pub span: Span,
}

/// One element of a dispatch pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatElem {
    /// `_` — matches anything.
    Wildcard,
    /// A predicate type name bound by a `typedef`; the bound boolean
    /// function is applied to the argument in this position.
    Pred(String),
}

impl fmt::Display for PatElem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatElem::Wildcard => f.write_str("_"),
            PatElem::Pred(p) => f.write_str(p),
        }
    }
}

/// One abstract-node definition. Multiple definitions with the same name
/// and distinct patterns form the node's dispatch variants, tried in order.
#[derive(Debug, Clone, PartialEq)]
pub struct AbstractDef {
    pub name: String,
    /// `None` for an unconditional definition (`Image = ...`).
    pub pattern: Option<Vec<PatElem>>,
    /// The `->`-separated body; empty means pass-through (`Handler:[..] = ;`).
    pub body: Vec<String>,
    pub span: Span,
}

/// `typedef hit TestInCache;`
#[derive(Debug, Clone, PartialEq)]
pub struct TypedefDecl {
    /// The predicate type name used in patterns (`hit`).
    pub ty_name: String,
    /// The boolean function the runtime must supply (`TestInCache`).
    pub func: String,
    pub span: Span,
}

/// `handle error Node => Handler;`
#[derive(Debug, Clone, PartialEq)]
pub struct HandlerDecl {
    pub node: String,
    pub handler: String,
    pub span: Span,
}

/// Reader or writer mode of an atomicity constraint (§2.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ConstraintMode {
    /// `name?` — multiple readers may hold the constraint together.
    Reader,
    /// `name` or `name!` — exclusive (the default).
    Writer,
}

/// Program-wide or per-session scope of a constraint (§2.5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstraintScope {
    /// One lock for the whole server (the default).
    Program,
    /// One lock per session, keyed by the user-supplied session-id function
    /// applied to the source node's output.
    Session,
}

/// A single named constraint with its mode and scope, e.g. `cache?`,
/// `state(session)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ConstraintRef {
    pub name: String,
    pub mode: ConstraintMode,
    pub scope: ConstraintScope,
}

impl fmt::Display for ConstraintRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)?;
        match self.mode {
            ConstraintMode::Reader => f.write_str("?")?,
            ConstraintMode::Writer => {}
        }
        if self.scope == ConstraintScope::Session {
            f.write_str("(session)")?;
        }
        Ok(())
    }
}

/// `atomic Node:{c1, c2?};`
#[derive(Debug, Clone, PartialEq)]
pub struct AtomicDecl {
    pub node: String,
    pub constraints: Vec<ConstraintRef>,
    pub span: Span,
}

/// `blocking Node;` (extension).
#[derive(Debug, Clone, PartialEq)]
pub struct BlockingDecl {
    pub node: String,
    pub span: Span,
}

impl Program {
    /// Iterates over all concrete-node signatures.
    pub fn node_sigs(&self) -> impl Iterator<Item = &NodeSig> {
        self.items.iter().filter_map(|i| match i {
            Item::NodeSig(s) => Some(s),
            _ => None,
        })
    }

    /// Iterates over all abstract definitions (variants included).
    pub fn abstract_defs(&self) -> impl Iterator<Item = &AbstractDef> {
        self.items.iter().filter_map(|i| match i {
            Item::Abstract(a) => Some(a),
            _ => None,
        })
    }

    /// Iterates over all source declarations.
    pub fn sources(&self) -> impl Iterator<Item = &SourceDecl> {
        self.items.iter().filter_map(|i| match i {
            Item::Source(s) => Some(s),
            _ => None,
        })
    }
}
