//! Constraint-guided cluster placement (paper §8).
//!
//! The paper's future work: "we are also planning to extend Flux to
//! operate on clusters. Because concurrency constraints identify nodes
//! that share state, we plan to use these constraints to guide the
//! placement of nodes across a cluster to minimize communication." This
//! module implements that extension over the compiled program graph:
//!
//! 1. **Traffic model.** Expected visit rates for every flat-graph vertex
//!    are derived from the same [`ModelParams`] the simulator replays
//!    (arrival rates, dispatch probabilities, error probabilities), and
//!    reduced to a concrete-node communication graph: `rate(A → B)` is
//!    the expected number of payload hand-offs per second from node `A`
//!    directly to node `B`.
//! 2. **Colocation.** Nodes that share an atomicity constraint share
//!    state, so they are merged into indivisible *colocation groups*
//!    (union-find over constraint names; a constraint on an abstract node
//!    covers every concrete node executed inside its scope). Placing a
//!    group on one machine makes its constraint a machine-local lock; a
//!    placement that split the group would need a distributed lock per
//!    acquisition.
//! 3. **Partitioning.** Groups are assigned to machines greedily in
//!    descending load order, maximizing affinity (traffic toward nodes
//!    already on the machine) subject to a load-balance cap, then refined
//!    by deterministic local search that moves groups only when the move
//!    strictly reduces cross-machine traffic without breaking balance.
//!
//! The [`round_robin`] baseline ignores constraints entirely; comparing
//! its [`Placement::remote_lock_rate`] and [`Placement::cut_rate`]
//! against the guided placement is the experiment the paper's proposal
//! implies (see `flux-bench`'s ablation binary).

use crate::compile::CompiledProgram;
use crate::flat::{FlatProgram, FlatVertex};
use crate::graph::{NodeId, NodeKind};
use crate::model::{FlowParams, ModelParams};
use std::collections::HashMap;

/// Placement knobs.
#[derive(Debug, Clone)]
pub struct PlaceConfig {
    /// Number of cluster machines (must be at least 1).
    pub machines: usize,
    /// Allowed CPU-load overshoot per machine relative to the perfectly
    /// balanced share (0.2 = up to 20% above average). The cap is
    /// soft-relaxed when a single colocation group exceeds it.
    pub balance_tolerance: f64,
    /// Maximum local-search refinement passes.
    pub local_search_passes: usize,
}

impl Default for PlaceConfig {
    fn default() -> Self {
        PlaceConfig {
            machines: 2,
            balance_tolerance: 0.2,
            local_search_passes: 8,
        }
    }
}

/// Why a placement could not be computed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlaceError {
    /// `machines` was zero.
    NoMachines,
    /// The parameter set has fewer flows than the program.
    ParamsMismatch { expected: usize, got: usize },
}

impl std::fmt::Display for PlaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlaceError::NoMachines => write!(f, "placement requires at least one machine"),
            PlaceError::ParamsMismatch { expected, got } => write!(
                f,
                "model parameters cover {got} flows but the program has {expected}"
            ),
        }
    }
}

impl std::error::Error for PlaceError {}

/// A computed node-to-machine assignment with its quality metrics.
#[derive(Debug, Clone)]
pub struct Placement {
    /// Number of machines the placement targets.
    pub machines: usize,
    /// Machine index for every placed node (sources and reachable
    /// concrete nodes).
    pub assignment: HashMap<NodeId, usize>,
    /// The indivisible colocation groups (singletons included), each
    /// sorted by node id; the vector itself is sorted by first member.
    pub groups: Vec<Vec<NodeId>>,
    /// Expected CPU demand per machine (CPU-seconds per second).
    pub loads: Vec<f64>,
    /// Payload hand-offs per second that cross machines.
    pub cut_rate: f64,
    /// Total payload hand-offs per second (cut ∪ local).
    pub total_rate: f64,
    /// Constraint acquisitions per second that would need a distributed
    /// lock because the constraint's colocation group spans machines.
    /// Zero by construction for constraint-guided placements.
    pub remote_lock_rate: f64,
}

impl Placement {
    /// The machine a node was placed on, by name.
    pub fn machine_of(&self, program: &CompiledProgram, name: &str) -> Option<usize> {
        let (id, _) = program.graph.node(name)?;
        self.assignment.get(&id).copied()
    }

    /// Fraction of hand-off traffic that crosses machines, in `[0, 1]`.
    pub fn cut_fraction(&self) -> f64 {
        if self.total_rate <= 0.0 {
            0.0
        } else {
            self.cut_rate / self.total_rate
        }
    }

    /// Renders a human-readable placement report.
    pub fn render(&self, program: &CompiledProgram) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "placement over {} machines: {:.1} hand-offs/s cut of {:.1} total ({:.1}%), \
             remote-lock rate {:.1}/s",
            self.machines,
            self.cut_rate,
            self.total_rate,
            100.0 * self.cut_fraction(),
            self.remote_lock_rate,
        );
        for m in 0..self.machines {
            let mut names: Vec<&str> = self
                .assignment
                .iter()
                .filter(|&(_, &mm)| mm == m)
                .map(|(&id, _)| program.graph.name(id))
                .collect();
            names.sort_unstable();
            let _ = writeln!(
                out,
                "  machine {m}: load {:.3} cpu/s — {}",
                self.loads[m],
                names.join(", ")
            );
        }
        out
    }
}

/// The weighted node-to-node communication graph of a compiled program.
///
/// Built from the same observed-or-estimated parameters the simulator
/// uses; exposed publicly so tools (the `fluxc` CLI, benches) can report
/// traffic without recomputing placements.
#[derive(Debug, Clone, Default)]
pub struct TrafficMatrix {
    /// `rates[(a, b)]` is the hand-offs per second from node `a` directly
    /// to node `b` (both concrete or source nodes).
    pub rates: HashMap<(NodeId, NodeId), f64>,
    /// Expected CPU demand per node (visit rate × mean service time).
    pub cpu_load: HashMap<NodeId, f64>,
    /// Expected constraint acquisitions per second, per constraint name.
    pub lock_rates: HashMap<String, f64>,
}

impl TrafficMatrix {
    /// Total hand-off rate across all edges.
    pub fn total_rate(&self) -> f64 {
        self.rates.values().sum()
    }

    /// Builds the matrix for `program` under `params`.
    ///
    /// Flows whose `interarrival_mean_s` is not positive contribute at a
    /// nominal rate of one flow per second, so purely structural
    /// placements (no observations yet) still weight every path.
    pub fn build(program: &CompiledProgram, params: &ModelParams) -> Result<Self, PlaceError> {
        if params.flows.len() != program.flows.len() {
            return Err(PlaceError::ParamsMismatch {
                expected: program.flows.len(),
                got: params.flows.len(),
            });
        }
        let mut tm = TrafficMatrix::default();
        for (flow, fp) in program.flows.iter().zip(&params.flows) {
            let arrival_rate = if fp.interarrival_mean_s > 0.0 {
                1.0 / fp.interarrival_mean_s
            } else {
                1.0
            };
            let rates = vertex_rates(&flow.flat, fp, arrival_rate);
            // Next-exec distribution from every vertex, memoized; vertex
            // ids are reverse-topological so ascending order sees
            // successors first.
            let reach = reach_table(&flow.flat, fp);
            // Source -> first executed node(s).
            for &(node, p) in &reach[flow.flat.entry] {
                add_rate(&mut tm.rates, flow.flat.source, node, arrival_rate * p);
            }
            for (vid, vert) in flow.flat.verts.iter().enumerate() {
                let r = rates[vid];
                if r <= 0.0 {
                    continue;
                }
                match vert {
                    FlatVertex::Exec {
                        node,
                        on_ok,
                        on_err,
                    } => {
                        let e = fp.error_prob.get(&vid).copied().unwrap_or(0.0);
                        for (succ, p_branch) in [(*on_ok, 1.0 - e), (*on_err, e)] {
                            if p_branch <= 0.0 {
                                continue;
                            }
                            for &(next, p) in &reach[succ] {
                                add_rate(&mut tm.rates, *node, next, r * p_branch * p);
                            }
                        }
                        let service = fp.service_mean_s.get(&vid).copied().unwrap_or(0.0);
                        *tm.cpu_load.entry(*node).or_insert(0.0) += r * service;
                    }
                    FlatVertex::Acquire { node, .. } => {
                        for c in &program.graph.nodes[*node].constraints {
                            *tm.lock_rates.entry(c.name.clone()).or_insert(0.0) += r;
                        }
                    }
                    _ => {}
                }
            }
        }
        Ok(tm)
    }
}

fn add_rate(rates: &mut HashMap<(NodeId, NodeId), f64>, a: NodeId, b: NodeId, r: f64) {
    if r > 0.0 {
        *rates.entry((a, b)).or_insert(0.0) += r;
    }
}

/// Expected visits per second for every vertex of `flat`, by forward
/// mass propagation from the entry at `arrival_rate`.
fn vertex_rates(flat: &FlatProgram, fp: &FlowParams, arrival_rate: f64) -> Vec<f64> {
    let n = flat.verts.len();
    let mut mass = vec![0.0f64; n];
    mass[flat.entry] = arrival_rate;
    // Every edge points to a lower id; a descending sweep sees each
    // vertex after all its predecessors.
    for v in (0..n).rev() {
        let m = mass[v];
        if m <= 0.0 {
            continue;
        }
        match &flat.verts[v] {
            FlatVertex::Acquire { next, .. } | FlatVertex::Release { next, .. } => {
                mass[*next] += m;
            }
            FlatVertex::Exec { on_ok, on_err, .. } => {
                let e = fp.error_prob.get(&v).copied().unwrap_or(0.0);
                mass[*on_ok] += m * (1.0 - e);
                mass[*on_err] += m * e;
            }
            FlatVertex::Dispatch {
                arms, on_nomatch, ..
            } => {
                let probs = fp
                    .arm_probs
                    .get(&v)
                    .cloned()
                    .unwrap_or_else(|| vec![1.0 / arms.len() as f64; arms.len()]);
                let mut rest = 1.0;
                for (arm, p) in arms.iter().zip(&probs) {
                    mass[arm.entry] += m * p;
                    rest -= p;
                }
                if rest > 1e-12 {
                    mass[*on_nomatch] += m * rest;
                }
            }
            FlatVertex::End { .. } => {}
        }
    }
    mass
}

/// For every vertex, the distribution over the *next concrete node to
/// execute* when a flow stands at that vertex (flows that reach an end
/// without executing anything else simply drop out of the distribution).
fn reach_table(flat: &FlatProgram, fp: &FlowParams) -> Vec<Vec<(NodeId, f64)>> {
    let n = flat.verts.len();
    let mut reach: Vec<Vec<(NodeId, f64)>> = vec![Vec::new(); n];
    // Ascending order: successors (lower ids) are resolved first.
    for v in 0..n {
        reach[v] = match &flat.verts[v] {
            FlatVertex::Exec { node, .. } => vec![(*node, 1.0)],
            FlatVertex::End { .. } => Vec::new(),
            FlatVertex::Acquire { next, .. } | FlatVertex::Release { next, .. } => {
                reach[*next].clone()
            }
            FlatVertex::Dispatch {
                arms, on_nomatch, ..
            } => {
                let probs = fp
                    .arm_probs
                    .get(&v)
                    .cloned()
                    .unwrap_or_else(|| vec![1.0 / arms.len() as f64; arms.len()]);
                let mut acc: HashMap<NodeId, f64> = HashMap::new();
                let mut rest = 1.0;
                for (arm, p) in arms.iter().zip(&probs) {
                    rest -= p;
                    for &(node, q) in &reach[arm.entry] {
                        *acc.entry(node).or_insert(0.0) += p * q;
                    }
                }
                if rest > 1e-12 {
                    for &(node, q) in &reach[*on_nomatch] {
                        *acc.entry(node).or_insert(0.0) += rest * q;
                    }
                }
                let mut v: Vec<(NodeId, f64)> = acc.into_iter().collect();
                v.sort_by_key(|&(id, _)| id);
                v
            }
        };
    }
    reach
}

/// Union-find over node ids.
struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Deterministic: smaller id becomes the root.
            let (lo, hi) = (ra.min(rb), ra.max(rb));
            self.parent[hi] = lo;
        }
    }
}

/// All concrete nodes that execute while `root`'s constraints are held:
/// `root` itself if concrete, else every concrete node in its variants,
/// transitively.
fn constraint_footprint(program: &CompiledProgram, root: NodeId, out: &mut Vec<NodeId>) {
    match &program.graph.nodes[root].kind {
        NodeKind::Concrete { .. } => out.push(root),
        NodeKind::Abstract { variants } => {
            for v in variants {
                for &child in &v.body {
                    constraint_footprint(program, child, out);
                }
            }
        }
    }
}

/// The nodes a placement must assign: every source plus every concrete
/// node reachable from any flow (error handlers included).
fn placeable_nodes(program: &CompiledProgram) -> Vec<NodeId> {
    let mut seen = vec![false; program.graph.nodes.len()];
    let mut out = Vec::new();
    for flow in &program.flows {
        for node in std::iter::once(flow.flat.source).chain(flow.flat.execs().map(|(_, n)| n)) {
            if !std::mem::replace(&mut seen[node], true) {
                out.push(node);
            }
        }
    }
    out.sort_unstable();
    out
}

/// Computes a constraint-guided placement of `program` over
/// `config.machines` machines, weighting traffic and load by `params`.
pub fn place(
    program: &CompiledProgram,
    params: &ModelParams,
    config: &PlaceConfig,
) -> Result<Placement, PlaceError> {
    if config.machines == 0 {
        return Err(PlaceError::NoMachines);
    }
    let traffic = TrafficMatrix::build(program, params)?;
    let nodes = placeable_nodes(program);

    // Colocation groups: union every constraint's footprint.
    let mut dsu = Dsu::new(program.graph.nodes.len());
    let mut by_constraint: HashMap<&str, Vec<NodeId>> = HashMap::new();
    for (id, info) in program.graph.nodes.iter().enumerate() {
        for c in &info.constraints {
            let mut fp = Vec::new();
            constraint_footprint(program, id, &mut fp);
            by_constraint.entry(c.name.as_str()).or_default().extend(fp);
        }
    }
    for members in by_constraint.values() {
        for w in members.windows(2) {
            dsu.union(w[0], w[1]);
        }
    }
    finish_placement(program, &traffic, &nodes, dsu, config)
}

/// The constraint-blind baseline: nodes are dealt to machines round-robin
/// in node-id order, one node per group. Metrics (cut rate, remote-lock
/// rate) are computed identically to [`place`] so the two compare
/// directly.
pub fn round_robin(
    program: &CompiledProgram,
    params: &ModelParams,
    machines: usize,
) -> Result<Placement, PlaceError> {
    if machines == 0 {
        return Err(PlaceError::NoMachines);
    }
    let traffic = TrafficMatrix::build(program, params)?;
    let nodes = placeable_nodes(program);
    let mut assignment = HashMap::new();
    let mut loads = vec![0.0; machines];
    for (i, &node) in nodes.iter().enumerate() {
        let m = i % machines;
        assignment.insert(node, m);
        loads[m] += traffic.cpu_load.get(&node).copied().unwrap_or(0.0);
    }
    let groups = nodes.iter().map(|&n| vec![n]).collect();
    Ok(finalize(
        program, &traffic, machines, assignment, groups, loads,
    ))
}

fn finish_placement(
    program: &CompiledProgram,
    traffic: &TrafficMatrix,
    nodes: &[NodeId],
    mut dsu: Dsu,
    config: &PlaceConfig,
) -> Result<Placement, PlaceError> {
    // Materialize groups over placeable nodes only.
    let mut group_of_root: HashMap<usize, usize> = HashMap::new();
    let mut groups: Vec<Vec<NodeId>> = Vec::new();
    for &node in nodes {
        let root = dsu.find(node);
        let g = *group_of_root.entry(root).or_insert_with(|| {
            groups.push(Vec::new());
            groups.len() - 1
        });
        groups[g].push(node);
    }
    for g in &mut groups {
        g.sort_unstable();
    }
    groups.sort_by_key(|g| g[0]);

    let gcount = groups.len();
    let group_of: HashMap<NodeId, usize> = groups
        .iter()
        .enumerate()
        .flat_map(|(gi, g)| g.iter().map(move |&n| (n, gi)))
        .collect();

    // Group loads and group-to-group symmetric affinity.
    let mut gload = vec![0.0f64; gcount];
    for (gi, g) in groups.iter().enumerate() {
        for n in g {
            gload[gi] += traffic.cpu_load.get(n).copied().unwrap_or(0.0);
        }
    }
    let mut affinity: HashMap<(usize, usize), f64> = HashMap::new();
    for (&(a, b), &r) in &traffic.rates {
        let (Some(&ga), Some(&gb)) = (group_of.get(&a), group_of.get(&b)) else {
            continue;
        };
        if ga != gb {
            *affinity.entry((ga.min(gb), ga.max(gb))).or_insert(0.0) += r;
        }
    }

    let total_load: f64 = gload.iter().sum();
    let cap = (total_load / config.machines as f64) * (1.0 + config.balance_tolerance);

    // Greedy: heaviest group first; among machines with room, maximize
    // affinity toward already-placed groups, breaking ties toward the
    // least-loaded machine, then the lowest index.
    let mut order: Vec<usize> = (0..gcount).collect();
    order.sort_by(|&a, &b| {
        gload[b]
            .partial_cmp(&gload[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut machine_of_group = vec![usize::MAX; gcount];
    let mut loads = vec![0.0f64; config.machines];
    let aff = |g: usize, machine: usize, machine_of_group: &[usize]| -> f64 {
        let mut s = 0.0;
        for (&(a, b), &r) in &affinity {
            let other = if a == g {
                b
            } else if b == g {
                a
            } else {
                continue;
            };
            if machine_of_group[other] == machine {
                s += r;
            }
        }
        s
    };
    for &g in &order {
        let mut best: Option<(usize, f64, f64)> = None; // (machine, affinity, load)
        for (m, &load) in loads.iter().enumerate().take(config.machines) {
            let fits = load + gload[g] <= cap || load == 0.0;
            if !fits {
                continue;
            }
            let a = aff(g, m, &machine_of_group);
            let better = match best {
                None => true,
                Some((_, ba, bl)) => {
                    a > ba + 1e-12 || ((a - ba).abs() <= 1e-12 && loads[m] + 1e-12 < bl)
                }
            };
            if better {
                best = Some((m, a, loads[m]));
            }
        }
        let m = match best {
            Some((m, _, _)) => m,
            // Nothing fits under the cap: least-loaded machine.
            None => (0..config.machines)
                .min_by(|&a, &b| {
                    loads[a]
                        .partial_cmp(&loads[b])
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .unwrap_or(0),
        };
        machine_of_group[g] = m;
        loads[m] += gload[g];
    }

    // Local search: move a group when it strictly reduces cut traffic and
    // stays within the cap.
    for _ in 0..config.local_search_passes {
        let mut improved = false;
        for g in 0..gcount {
            let cur = machine_of_group[g];
            let cur_aff = aff(g, cur, &machine_of_group);
            let mut best_move: Option<(usize, f64)> = None;
            for (m, &load) in loads.iter().enumerate().take(config.machines) {
                if m == cur || load + gload[g] > cap {
                    continue;
                }
                let a = aff(g, m, &machine_of_group);
                if a > cur_aff + 1e-12 && best_move.map(|(_, ba)| a > ba).unwrap_or(true) {
                    best_move = Some((m, a));
                }
            }
            if let Some((m, _)) = best_move {
                loads[cur] -= gload[g];
                loads[m] += gload[g];
                machine_of_group[g] = m;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }

    let assignment: HashMap<NodeId, usize> = group_of
        .iter()
        .map(|(&n, &g)| (n, machine_of_group[g]))
        .collect();
    Ok(finalize(
        program,
        traffic,
        config.machines,
        assignment,
        groups,
        loads,
    ))
}

/// Computes the shared metrics for any assignment.
fn finalize(
    program: &CompiledProgram,
    traffic: &TrafficMatrix,
    machines: usize,
    assignment: HashMap<NodeId, usize>,
    groups: Vec<Vec<NodeId>>,
    loads: Vec<f64>,
) -> Placement {
    let mut cut = 0.0;
    let mut total = 0.0;
    for (&(a, b), &r) in &traffic.rates {
        let (Some(&ma), Some(&mb)) = (assignment.get(&a), assignment.get(&b)) else {
            continue;
        };
        total += r;
        if ma != mb {
            cut += r;
        }
    }
    // Remote locks: a constraint whose *combined* footprint (the union
    // over every node declaring it) spans machines pays a distributed
    // acquisition at that constraint's acquire rate.
    let mut footprints: HashMap<&str, Vec<NodeId>> = HashMap::new();
    for (id, info) in program.graph.nodes.iter().enumerate() {
        for c in &info.constraints {
            let fp = footprints.entry(c.name.as_str()).or_default();
            constraint_footprint(program, id, fp);
        }
    }
    let mut remote = 0.0;
    for (name, rate) in &traffic.lock_rates {
        let Some(fp) = footprints.get(name.as_str()) else {
            continue;
        };
        let mut ms = fp.iter().filter_map(|n| assignment.get(n));
        if let Some(&first) = ms.next() {
            if ms.any(|&m| m != first) {
                remote += rate;
            }
        }
    }
    Placement {
        machines,
        assignment,
        groups,
        loads,
        cut_rate: cut,
        total_rate: total,
        remote_lock_rate: remote,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelParams;

    fn compiled(src: &str) -> CompiledProgram {
        crate::compile(src).unwrap()
    }

    fn uniform(p: &CompiledProgram) -> ModelParams {
        ModelParams::uniform(p, 0.001, 0.01)
    }

    #[test]
    fn image_server_cache_nodes_colocate() {
        let p = compiled(crate::fixtures::IMAGE_SERVER);
        let params = uniform(&p);
        for machines in 2..=4 {
            let pl = place(
                &p,
                &params,
                &PlaceConfig {
                    machines,
                    ..PlaceConfig::default()
                },
            )
            .unwrap();
            let cc = pl.machine_of(&p, "CheckCache").unwrap();
            assert_eq!(pl.machine_of(&p, "StoreInCache"), Some(cc));
            assert_eq!(pl.machine_of(&p, "Complete"), Some(cc));
            assert_eq!(pl.remote_lock_rate, 0.0, "guided placement never splits");
        }
    }

    #[test]
    fn all_reachable_nodes_assigned_once() {
        let p = compiled(crate::fixtures::IMAGE_SERVER);
        let pl = place(&p, &uniform(&p), &PlaceConfig::default()).unwrap();
        for name in [
            "Listen",
            "ReadRequest",
            "CheckCache",
            "ReadInFromDisk",
            "Compress",
            "StoreInCache",
            "Write",
            "Complete",
            "FourOhFour",
        ] {
            let m = pl.machine_of(&p, name);
            assert!(m.is_some(), "{name} must be placed");
            assert!(m.unwrap() < pl.machines);
        }
        // Handler is abstract: it has no machine of its own.
        assert_eq!(pl.machine_of(&p, "Handler"), None);
    }

    #[test]
    fn guided_beats_round_robin_on_remote_locks() {
        let p = compiled(crate::fixtures::IMAGE_SERVER);
        let params = uniform(&p);
        let guided = place(
            &p,
            &params,
            &PlaceConfig {
                machines: 3,
                ..PlaceConfig::default()
            },
        )
        .unwrap();
        let rr = round_robin(&p, &params, 3).unwrap();
        assert_eq!(guided.remote_lock_rate, 0.0);
        assert!(
            rr.remote_lock_rate > 0.0,
            "round-robin splits the cache constraint across machines"
        );
        assert!(guided.cut_rate <= rr.cut_rate + 1e-9);
    }

    #[test]
    fn one_machine_has_zero_cut() {
        let p = compiled(crate::fixtures::IMAGE_SERVER);
        let pl = place(
            &p,
            &uniform(&p),
            &PlaceConfig {
                machines: 1,
                ..PlaceConfig::default()
            },
        )
        .unwrap();
        assert_eq!(pl.cut_rate, 0.0);
        assert_eq!(pl.remote_lock_rate, 0.0);
        assert!(pl.total_rate > 0.0);
    }

    #[test]
    fn zero_machines_rejected() {
        let p = compiled(crate::fixtures::IMAGE_SERVER);
        let err = place(
            &p,
            &uniform(&p),
            &PlaceConfig {
                machines: 0,
                ..PlaceConfig::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, PlaceError::NoMachines);
    }

    #[test]
    fn params_mismatch_rejected() {
        let p = compiled(crate::fixtures::IMAGE_SERVER);
        let err = place(&p, &ModelParams::default(), &PlaceConfig::default()).unwrap_err();
        assert!(matches!(err, PlaceError::ParamsMismatch { .. }));
    }

    #[test]
    fn traffic_respects_dispatch_probabilities() {
        let p = compiled(crate::fixtures::IMAGE_SERVER);
        let mut params = uniform(&p);
        // All hits: the miss arm (ReadInFromDisk et al.) gets no traffic.
        params.set_dispatch_probs(&p, "Handler", &[1.0, 0.0]);
        let tm = TrafficMatrix::build(&p, &params).unwrap();
        let (disk, _) = p.graph.node("ReadInFromDisk").unwrap();
        let disk_in: f64 = tm
            .rates
            .iter()
            .filter(|&(&(_, b), _)| b == disk)
            .map(|(_, &r)| r)
            .sum();
        assert!(disk_in.abs() < 1e-9, "no traffic into the miss arm");
        // All misses: the disk node sees the full arrival rate.
        params.set_dispatch_probs(&p, "Handler", &[0.0, 1.0]);
        let tm = TrafficMatrix::build(&p, &params).unwrap();
        let disk_in: f64 = tm
            .rates
            .iter()
            .filter(|&(&(_, b), _)| b == disk)
            .map(|(_, &r)| r)
            .sum();
        assert!(
            (disk_in - 100.0).abs() < 1e-6,
            "1/0.01s arrivals: {disk_in}"
        );
    }

    #[test]
    fn traffic_conserves_arrival_rate_on_a_chain() {
        let p = compiled(
            "Gen () => (int v); A (int v) => (int v); B (int v) => ();
             F = A -> B; source Gen => F;",
        );
        let params = ModelParams::uniform(&p, 0.002, 0.05); // 20 flows/s
        let tm = TrafficMatrix::build(&p, &params).unwrap();
        let (gen, _) = p.graph.node("Gen").unwrap();
        let (a, _) = p.graph.node("A").unwrap();
        let (b, _) = p.graph.node("B").unwrap();
        assert!((tm.rates[&(gen, a)] - 20.0).abs() < 1e-9);
        assert!((tm.rates[&(a, b)] - 20.0).abs() < 1e-9);
        // CPU load: 20/s × 2 ms = 0.04 cpu/s each.
        assert!((tm.cpu_load[&a] - 0.04).abs() < 1e-9);
        assert!((tm.cpu_load[&b] - 0.04).abs() < 1e-9);
    }

    #[test]
    fn error_probability_diverts_traffic_to_handler() {
        let p = compiled(
            "Gen () => (int v); A (int v) => (int v); B (int v) => ();
             H (int v) => ();
             F = A -> B; source Gen => F; handle error A => H;",
        );
        let mut params = ModelParams::uniform(&p, 0.001, 0.1); // 10 flows/s
        params.set_error_prob(&p, "A", 0.25);
        let tm = TrafficMatrix::build(&p, &params).unwrap();
        let (a, _) = p.graph.node("A").unwrap();
        let (b, _) = p.graph.node("B").unwrap();
        let (h, _) = p.graph.node("H").unwrap();
        assert!((tm.rates[&(a, b)] - 7.5).abs() < 1e-9);
        assert!((tm.rates[&(a, h)] - 2.5).abs() < 1e-9);
    }

    #[test]
    fn abstract_constraint_footprint_colocates_children() {
        // A constraint on the abstract node spans its whole body; the
        // children must land together even though none of them declares
        // the constraint itself.
        let p = compiled(
            "Gen () => (int v); A (int v) => (int v); B (int v) => (int v);
             C (int v) => ();
             F = A -> B -> C; source Gen => F; atomic F: {big};",
        );
        let pl = place(
            &p,
            &ModelParams::uniform(&p, 0.001, 0.01),
            &PlaceConfig {
                machines: 3,
                ..PlaceConfig::default()
            },
        )
        .unwrap();
        let a = pl.machine_of(&p, "A").unwrap();
        assert_eq!(pl.machine_of(&p, "B"), Some(a));
        assert_eq!(pl.machine_of(&p, "C"), Some(a));
        assert_eq!(pl.remote_lock_rate, 0.0);
    }

    #[test]
    fn loads_sum_to_total_cpu_demand() {
        let p = compiled(crate::fixtures::IMAGE_SERVER);
        let params = uniform(&p);
        let tm = TrafficMatrix::build(&p, &params).unwrap();
        let want: f64 = tm.cpu_load.values().sum();
        let pl = place(
            &p,
            &params,
            &PlaceConfig {
                machines: 2,
                ..PlaceConfig::default()
            },
        )
        .unwrap();
        let got: f64 = pl.loads.iter().sum();
        assert!((want - got).abs() < 1e-9, "want {want}, got {got}");
    }

    #[test]
    fn placement_is_deterministic() {
        let p = compiled(crate::fixtures::IMAGE_SERVER);
        let params = uniform(&p);
        let cfg = PlaceConfig {
            machines: 3,
            ..PlaceConfig::default()
        };
        let a = place(&p, &params, &cfg).unwrap();
        let b = place(&p, &params, &cfg).unwrap();
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.cut_rate, b.cut_rate);
    }

    #[test]
    fn render_lists_every_machine() {
        let p = compiled(crate::fixtures::IMAGE_SERVER);
        let pl = place(
            &p,
            &uniform(&p),
            &PlaceConfig {
                machines: 2,
                ..PlaceConfig::default()
            },
        )
        .unwrap();
        let text = pl.render(&p);
        assert!(text.contains("machine 0:"));
        assert!(text.contains("machine 1:"));
        assert!(text.contains("CheckCache"));
    }
}
