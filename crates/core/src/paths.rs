//! Ball–Larus path numbering (paper §5.2).
//!
//! Because Flux graphs are acyclic, the Ball–Larus algorithm assigns each
//! edge an increment such that summing the increments along any
//! entry-to-end walk yields a unique, compact path identifier in
//! `[0, num_paths)`. The runtime adds one increment per transition (the
//! paper's "one arithmetic operation per node") and records the final sum;
//! this module also regenerates the node sequence for any identifier so
//! hot-path reports can print `Listen → GetClients → ... → ERROR` lines.

use crate::flat::{EndKind, FlatProgram, FlatVertex, VertexId};
use crate::graph::ProgramGraph;

/// Edge increments and path counts for one flattened flow.
#[derive(Debug, Clone, PartialEq)]
pub struct PathTable {
    /// Total number of distinct entry-to-end paths.
    pub num_paths: u64,
    /// `inc[v][k]` is the increment for taking the `k`-th successor edge
    /// out of vertex `v`.
    pub inc: Vec<Vec<u64>>,
    /// `num_from[v]` is the number of paths from `v` to any end.
    pub num_from: Vec<u64>,
}

/// A fully-resolved path: the concrete nodes executed, in order, plus how
/// the flow ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathInfo {
    pub id: u64,
    /// Names of executed concrete nodes (the source node is *not*
    /// included; callers prepend it for display, as the paper does).
    pub nodes: Vec<String>,
    pub outcome: EndKind,
}

impl PathInfo {
    /// Renders the path the way the paper prints hot paths:
    /// `Listen -> GetClients -> ... -> ERROR`.
    pub fn display(&self, graph: &ProgramGraph, flat: &FlatProgram) -> String {
        let mut parts = vec![graph.name(flat.source).to_string()];
        parts.extend(self.nodes.iter().cloned());
        match self.outcome {
            EndKind::Completed => {}
            EndKind::Errored { .. } => parts.push("ERROR".into()),
            EndKind::Handled { .. } => {}
            EndKind::NoMatch { .. } => parts.push("NO-MATCH".into()),
        }
        parts.join(" -> ")
    }
}

impl PathTable {
    /// Computes Ball–Larus numbering for `flat`.
    ///
    /// Returns an error if the path count overflows `u64` (possible only
    /// for adversarial programs with hundreds of chained dispatches).
    pub fn build(flat: &FlatProgram) -> Result<PathTable, String> {
        let n = flat.verts.len();
        let mut num_from = vec![0u64; n];
        let mut inc: Vec<Vec<u64>> = vec![Vec::new(); n];
        // Vertex ids are reverse-topological (every edge points to a lower
        // id), so a single ascending sweep sees successors first.
        for v in 0..n {
            let succs = flat.verts[v].successors();
            if succs.is_empty() {
                num_from[v] = 1;
                continue;
            }
            let mut total: u64 = 0;
            let mut vals = Vec::with_capacity(succs.len());
            for s in succs {
                vals.push(total);
                total = total
                    .checked_add(num_from[s])
                    .ok_or_else(|| "path count overflows u64".to_string())?;
            }
            num_from[v] = total;
            inc[v] = vals;
        }
        Ok(PathTable {
            num_paths: num_from[flat.entry],
            inc,
            num_from,
        })
    }

    /// Regenerates the path with identifier `id` by walking the graph and
    /// at each vertex taking the largest edge increment not exceeding the
    /// remaining sum (the standard Ball–Larus regeneration).
    pub fn path_info(&self, flat: &FlatProgram, graph: &ProgramGraph, id: u64) -> Option<PathInfo> {
        if id >= self.num_paths {
            return None;
        }
        let mut rem = id;
        let mut v: VertexId = flat.entry;
        let mut nodes = Vec::new();
        loop {
            match &flat.verts[v] {
                FlatVertex::End { outcome } => {
                    return Some(PathInfo {
                        id,
                        nodes,
                        outcome: *outcome,
                    });
                }
                vertex => {
                    if let FlatVertex::Exec { node, .. } = vertex {
                        nodes.push(graph.name(*node).to_string());
                    }
                    let succs = vertex.successors();
                    let vals = &self.inc[v];
                    // Largest k with vals[k] <= rem.
                    let mut k = 0;
                    for (i, &val) in vals.iter().enumerate() {
                        if val <= rem {
                            k = i;
                        } else {
                            break;
                        }
                    }
                    rem -= vals[k];
                    v = succs[k];
                }
            }
        }
    }

    /// Enumerates every path (up to `limit`) in identifier order.
    pub fn enumerate(
        &self,
        flat: &FlatProgram,
        graph: &ProgramGraph,
        limit: usize,
    ) -> Vec<PathInfo> {
        (0..self.num_paths.min(limit as u64))
            .filter_map(|id| self.path_info(flat, graph, id))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlatProgram;
    use crate::graph::ProgramGraph;
    use crate::parser::parse;

    fn table(src: &str) -> (ProgramGraph, FlatProgram, PathTable) {
        let (mut g, _) = ProgramGraph::build(&parse(src).unwrap()).unwrap();
        crate::constraints::analyze(&mut g).unwrap();
        let flat = FlatProgram::build(&g, g.sources[0]).unwrap();
        let t = PathTable::build(&flat).unwrap();
        (g, flat, t)
    }

    #[test]
    fn single_chain_paths() {
        // A -> B, each can error (unhandled): paths are
        // [A ok, B ok], [A ok, B err], [A err] = 3.
        let (_, flat, t) = table(
            "A (int x) => (int x); B (int x) => (); F = A -> B; \
             S () => (int x); source S => F;",
        );
        assert_eq!(t.num_paths, 3);
        let _ = flat;
    }

    #[test]
    fn image_server_path_count() {
        let (g, flat, t) = table(crate::fixtures::IMAGE_SERVER);
        // Enumerate and sanity-check all paths exist and are unique.
        let paths = t.enumerate(&flat, &g, 1000);
        assert_eq!(paths.len() as u64, t.num_paths);
        let mut seen = std::collections::HashSet::new();
        for p in &paths {
            assert!(seen.insert(p.nodes.clone().join("/") + &format!("{:?}", p.outcome)));
        }
        // The hit path: ReadRequest -> CheckCache -> Write -> Complete.
        assert!(paths.iter().any(|p| p.nodes
            == vec!["ReadRequest", "CheckCache", "Write", "Complete"]
            && p.outcome == EndKind::Completed));
        // The miss path adds ReadInFromDisk -> Compress -> StoreInCache.
        assert!(paths.iter().any(|p| p.nodes
            == vec![
                "ReadRequest",
                "CheckCache",
                "ReadInFromDisk",
                "Compress",
                "StoreInCache",
                "Write",
                "Complete"
            ]
            && p.outcome == EndKind::Completed));
        // The 404 path goes through the handler.
        assert!(paths.iter().any(|p| p.nodes.contains(&"FourOhFour".into())));
    }

    #[test]
    fn path_ids_round_trip() {
        let (g, flat, t) = table(crate::fixtures::IMAGE_SERVER);
        for id in 0..t.num_paths {
            let p = t.path_info(&flat, &g, id).unwrap();
            assert_eq!(p.id, id);
        }
        assert!(t.path_info(&flat, &g, t.num_paths).is_none());
    }

    #[test]
    fn increments_sum_to_unique_ids() {
        // Simulate every resolution of the DAG by brute-force DFS and
        // check the summed increments match enumeration order exactly.
        let (g, flat, t) = table(crate::fixtures::MINI_PIPELINE);
        fn walk(flat: &FlatProgram, t: &PathTable, v: usize, sum: u64, out: &mut Vec<u64>) {
            let succs = flat.verts[v].successors();
            if succs.is_empty() {
                out.push(sum);
                return;
            }
            for (k, s) in succs.into_iter().enumerate() {
                walk(flat, t, s, sum + t.inc[v][k], out);
            }
        }
        let mut ids = Vec::new();
        walk(&flat, &t, flat.entry, 0, &mut ids);
        ids.sort_unstable();
        let expect: Vec<u64> = (0..t.num_paths).collect();
        assert_eq!(ids, expect, "every path id in [0, num_paths) exactly once");
        let _ = g;
    }

    #[test]
    fn display_prepends_source_and_marks_errors() {
        let (g, flat, t) = table(crate::fixtures::MINI_PIPELINE);
        let paths = t.enumerate(&flat, &g, 100);
        let displays: Vec<String> = paths.iter().map(|p| p.display(&g, &flat)).collect();
        assert!(displays.iter().all(|d| d.starts_with("Listen -> ")));
        assert!(displays.iter().any(|d| d.ends_with("ERROR")));
    }
}
