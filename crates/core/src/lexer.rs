//! Hand-written lexer for the Flux surface syntax.
//!
//! The paper's implementation used JLex; a hand-rolled scanner is ~100 lines
//! for this grammar and keeps the crate dependency-free. Line (`// ...`) and
//! block (`/* ... */`) comments are skipped, and `#` line comments are also
//! accepted because the paper's published examples use shell-style headers.

use crate::error::{CompileError, ErrorKind};
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Converts Flux source text into a token stream.
pub struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `src`.
    pub fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    /// Lexes the entire input, returning every token (ending with `Eof`) or
    /// the first lexical error.
    pub fn tokenize(mut self) -> Result<Vec<Token>, CompileError> {
        let mut out = Vec::new();
        loop {
            let tok = self.next_token()?;
            let done = tok.kind == TokenKind::Eof;
            out.push(tok);
            if done {
                return Ok(out);
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn skip_trivia(&mut self) -> Result<(), CompileError> {
        loop {
            match self.peek() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'#') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.span_here(2);
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some(b'*'), Some(b'/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => {
                                return Err(CompileError::new(
                                    ErrorKind::UnterminatedComment,
                                    start,
                                ));
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn span_here(&self, len: usize) -> Span {
        Span::new(self.pos, self.pos + len, self.line, self.col)
    }

    fn next_token(&mut self) -> Result<Token, CompileError> {
        self.skip_trivia()?;
        let (start, line, col) = (self.pos, self.line, self.col);
        let mk = |kind: TokenKind, lo: usize, hi: usize| Token {
            kind,
            span: Span::new(lo, hi, line, col),
        };
        let b = match self.peek() {
            None => return Ok(mk(TokenKind::Eof, start, start)),
            Some(b) => b,
        };
        // Identifiers and keywords. `_` alone is the wildcard token; an
        // identifier may still *start* with `_` (e.g. `__u8`).
        if b.is_ascii_alphabetic() || b == b'_' {
            while let Some(c) = self.peek() {
                if c.is_ascii_alphanumeric() || c == b'_' {
                    self.bump();
                } else {
                    break;
                }
            }
            let text = &self.src[start..self.pos];
            let kind = match text {
                "_" => TokenKind::Underscore,
                "source" => TokenKind::KwSource,
                "typedef" => TokenKind::KwTypedef,
                "handle" => TokenKind::KwHandle,
                "error" => TokenKind::KwError,
                "atomic" => TokenKind::KwAtomic,
                "session" => TokenKind::KwSession,
                "blocking" => TokenKind::KwBlocking,
                _ => TokenKind::Ident(text.to_string()),
            };
            return Ok(mk(kind, start, self.pos));
        }
        if b.is_ascii_digit() {
            while let Some(c) = self.peek() {
                if c.is_ascii_digit() {
                    self.bump();
                } else {
                    break;
                }
            }
            let text = &self.src[start..self.pos];
            let n: i64 = text.parse().map_err(|_| {
                CompileError::new(
                    ErrorKind::Other(format!("integer literal `{text}` out of range")),
                    Span::new(start, self.pos, line, col),
                )
            })?;
            return Ok(mk(TokenKind::Int(n), start, self.pos));
        }
        self.bump();
        let kind = match b {
            b'(' => TokenKind::LParen,
            b')' => TokenKind::RParen,
            b'{' => TokenKind::LBrace,
            b'}' => TokenKind::RBrace,
            b'[' => TokenKind::LBracket,
            b']' => TokenKind::RBracket,
            b',' => TokenKind::Comma,
            b';' => TokenKind::Semi,
            b':' => TokenKind::Colon,
            b'?' => TokenKind::Question,
            b'!' => TokenKind::Bang,
            b'*' => TokenKind::Star,
            b'=' => {
                if self.peek() == Some(b'>') {
                    self.bump();
                    TokenKind::FatArrow
                } else {
                    TokenKind::Eq
                }
            }
            b'-' => {
                if self.peek() == Some(b'>') {
                    self.bump();
                    TokenKind::Arrow
                } else {
                    return Err(CompileError::new(
                        ErrorKind::UnexpectedChar('-'),
                        Span::new(start, self.pos, line, col),
                    ));
                }
            }
            other => {
                return Err(CompileError::new(
                    ErrorKind::UnexpectedChar(other as char),
                    Span::new(start, self.pos, line, col),
                ));
            }
        };
        Ok(mk(kind, start, self.pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_source_decl() {
        assert_eq!(
            kinds("source Listen => Image;"),
            vec![
                TokenKind::KwSource,
                TokenKind::Ident("Listen".into()),
                TokenKind::FatArrow,
                TokenKind::Ident("Image".into()),
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_arrows_and_wildcards() {
        assert_eq!(
            kinds("Handler:[_, _, hit] = ;"),
            vec![
                TokenKind::Ident("Handler".into()),
                TokenKind::Colon,
                TokenKind::LBracket,
                TokenKind::Underscore,
                TokenKind::Comma,
                TokenKind::Underscore,
                TokenKind::Comma,
                TokenKind::Ident("hit".into()),
                TokenKind::RBracket,
                TokenKind::Eq,
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_pointer_types() {
        assert_eq!(
            kinds("image_tag *request"),
            vec![
                TokenKind::Ident("image_tag".into()),
                TokenKind::Star,
                TokenKind::Ident("request".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn underscore_prefixed_ident_is_not_wildcard() {
        assert_eq!(
            kinds("__u8 *rgb_data"),
            vec![
                TokenKind::Ident("__u8".into()),
                TokenKind::Star,
                TokenKind::Ident("rgb_data".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn skips_line_and_block_comments() {
        let src = "// line\n/* block\nspanning */ atomic # shell\nA:{x};";
        assert_eq!(
            kinds(src),
            vec![
                TokenKind::KwAtomic,
                TokenKind::Ident("A".into()),
                TokenKind::Colon,
                TokenKind::LBrace,
                TokenKind::Ident("x".into()),
                TokenKind::RBrace,
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn reader_writer_marks() {
        assert_eq!(
            kinds("atomic A:{x?, y!};"),
            vec![
                TokenKind::KwAtomic,
                TokenKind::Ident("A".into()),
                TokenKind::Colon,
                TokenKind::LBrace,
                TokenKind::Ident("x".into()),
                TokenKind::Question,
                TokenKind::Comma,
                TokenKind::Ident("y".into()),
                TokenKind::Bang,
                TokenKind::RBrace,
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn unterminated_comment_errors() {
        let err = Lexer::new("/* oops").tokenize().unwrap_err();
        assert_eq!(err.kind, ErrorKind::UnterminatedComment);
    }

    #[test]
    fn unexpected_char_errors() {
        let err = Lexer::new("a @ b").tokenize().unwrap_err();
        assert_eq!(err.kind, ErrorKind::UnexpectedChar('@'));
    }

    #[test]
    fn bare_dash_errors() {
        let err = Lexer::new("a - b").tokenize().unwrap_err();
        assert_eq!(err.kind, ErrorKind::UnexpectedChar('-'));
    }

    #[test]
    fn tracks_line_numbers() {
        let toks = Lexer::new("a\nb\n  c").tokenize().unwrap();
        assert_eq!(toks[0].span.line, 1);
        assert_eq!(toks[1].span.line, 2);
        assert_eq!(toks[2].span.line, 3);
        assert_eq!(toks[2].span.col, 3);
    }
}
