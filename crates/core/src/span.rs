//! Source locations used by the lexer, parser and diagnostics.

use std::fmt;

/// A half-open byte range into the source text, with the line/column of its
/// start for human-readable diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    /// Byte offset of the first character.
    pub lo: usize,
    /// Byte offset one past the last character.
    pub hi: usize,
    /// 1-based line number of `lo`.
    pub line: u32,
    /// 1-based column number of `lo`.
    pub col: u32,
}

impl Span {
    /// A span covering nothing, used for synthesized items.
    pub const DUMMY: Span = Span {
        lo: 0,
        hi: 0,
        line: 0,
        col: 0,
    };

    /// Creates a span from raw parts.
    pub fn new(lo: usize, hi: usize, line: u32, col: u32) -> Self {
        Span { lo, hi, line, col }
    }

    /// Returns the smallest span covering both `self` and `other`.
    ///
    /// The line/column of the earlier span is kept.
    pub fn merge(self, other: Span) -> Span {
        if self == Span::DUMMY {
            return other;
        }
        if other == Span::DUMMY {
            return self;
        }
        let (first, _) = if self.lo <= other.lo {
            (self, other)
        } else {
            (other, self)
        };
        Span {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
            line: first.line,
            col: first.col,
        }
    }

    /// Extracts the spanned slice from `src`, if in bounds.
    pub fn snippet<'a>(&self, src: &'a str) -> Option<&'a str> {
        src.get(self.lo..self.hi)
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_orders_by_lo() {
        let a = Span::new(10, 20, 2, 1);
        let b = Span::new(5, 12, 1, 6);
        let m = a.merge(b);
        assert_eq!(m.lo, 5);
        assert_eq!(m.hi, 20);
        assert_eq!(m.line, 1);
        assert_eq!(m.col, 6);
    }

    #[test]
    fn merge_with_dummy_keeps_other() {
        let a = Span::new(3, 9, 1, 4);
        assert_eq!(Span::DUMMY.merge(a), a);
        assert_eq!(a.merge(Span::DUMMY), a);
    }

    #[test]
    fn snippet_extracts_range() {
        let src = "source Listen => Image;";
        let s = Span::new(7, 13, 1, 8);
        assert_eq!(s.snippet(src), Some("Listen"));
    }

    #[test]
    fn display_is_line_col() {
        assert_eq!(Span::new(0, 1, 3, 7).to_string(), "3:7");
    }
}
