//! Program-graph internal representation (compiler pass 1, paper §3.1).
//!
//! The first pass links every node referenced in the program's data flows,
//! merges conditional definitions of the same abstract node into ordered
//! dispatch variants, attaches error handlers, atomicity constraints and
//! predicate bindings, and rejects undefined or duplicate names and
//! recursive (cyclic) flows.

use crate::ast::*;
use crate::error::{CompileError, CompileErrors, ErrorKind};
use crate::span::Span;
use std::collections::HashMap;

/// Index of a node in [`ProgramGraph::nodes`].
pub type NodeId = usize;

/// One dispatch variant of an abstract node: an optional pattern and the
/// node ids of its body in flow order.
#[derive(Debug, Clone, PartialEq)]
pub struct Variant {
    /// `None` means unconditional (always matches).
    pub pattern: Option<Vec<PatElem>>,
    pub body: Vec<NodeId>,
    pub span: Span,
}

impl Variant {
    /// True when this variant matches every input (no pattern, or all
    /// wildcards).
    pub fn is_catch_all(&self) -> bool {
        match &self.pattern {
            None => true,
            Some(p) => p.iter().all(|e| matches!(e, PatElem::Wildcard)),
        }
    }
}

/// Whether a node is a C-function leaf or a composition.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeKind {
    /// A leaf with a declared signature, implemented by user code.
    Concrete {
        inputs: Vec<Param>,
        outputs: Vec<Param>,
    },
    /// A composition of other nodes, possibly with dispatch variants.
    /// Input/output types are inferred during type checking.
    Abstract { variants: Vec<Variant> },
}

/// Everything known about one node after graph construction.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeInfo {
    pub name: String,
    pub kind: NodeKind,
    /// Declared atomicity constraints, kept in canonical (alphabetical)
    /// order. The deadlock-avoidance pass may add to this list.
    pub constraints: Vec<ConstraintRef>,
    /// Error handler node, if `handle error` was declared for this node.
    pub error_handler: Option<NodeId>,
    /// True when declared `blocking` (event-runtime off-load extension).
    pub blocking: bool,
    pub span: Span,
}

impl NodeInfo {
    /// True for concrete (leaf) nodes.
    pub fn is_concrete(&self) -> bool {
        matches!(self.kind, NodeKind::Concrete { .. })
    }
}

/// A `source` declaration resolved to node ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceSpec {
    pub source: NodeId,
    pub target: NodeId,
}

/// The linked program graph.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramGraph {
    pub nodes: Vec<NodeInfo>,
    pub by_name: HashMap<String, NodeId>,
    pub sources: Vec<SourceSpec>,
    /// Predicate type name -> user predicate function name (`typedef`).
    pub predicates: HashMap<String, String>,
}

impl ProgramGraph {
    /// Looks a node up by name.
    pub fn node(&self, name: &str) -> Option<(NodeId, &NodeInfo)> {
        self.by_name.get(name).map(|&id| (id, &self.nodes[id]))
    }

    /// The name of node `id`.
    pub fn name(&self, id: NodeId) -> &str {
        &self.nodes[id].name
    }

    /// Builds the graph from a parsed program, reporting every resolvable
    /// error rather than stopping at the first.
    pub fn build(
        program: &Program,
    ) -> Result<(ProgramGraph, Vec<crate::error::Warning>), CompileErrors> {
        let mut errors = CompileErrors::default();
        let mut nodes: Vec<NodeInfo> = Vec::new();
        let mut by_name: HashMap<String, NodeId> = HashMap::new();

        // Pass A: declare every concrete signature and every abstract name.
        for item in &program.items {
            match item {
                Item::NodeSig(sig) => {
                    if by_name.contains_key(&sig.name) {
                        errors.push(CompileError::new(
                            ErrorKind::Duplicate {
                                kind: "node",
                                name: sig.name.clone(),
                            },
                            sig.span,
                        ));
                        continue;
                    }
                    by_name.insert(sig.name.clone(), nodes.len());
                    nodes.push(NodeInfo {
                        name: sig.name.clone(),
                        kind: NodeKind::Concrete {
                            inputs: sig.inputs.clone(),
                            outputs: sig.outputs.clone(),
                        },
                        constraints: Vec::new(),
                        error_handler: None,
                        blocking: false,
                        span: sig.span,
                    });
                }
                Item::Abstract(def) => match by_name.get(&def.name) {
                    None => {
                        by_name.insert(def.name.clone(), nodes.len());
                        nodes.push(NodeInfo {
                            name: def.name.clone(),
                            kind: NodeKind::Abstract {
                                variants: Vec::new(),
                            },
                            constraints: Vec::new(),
                            error_handler: None,
                            blocking: false,
                            span: def.span,
                        });
                    }
                    Some(&id) => {
                        if nodes[id].is_concrete() {
                            errors.push(CompileError::new(
                                ErrorKind::Duplicate {
                                    kind: "node (declared both concrete and abstract)",
                                    name: def.name.clone(),
                                },
                                def.span,
                            ));
                        }
                    }
                },
                _ => {}
            }
        }

        // Pass B: predicates.
        let mut predicates: HashMap<String, String> = HashMap::new();
        for item in &program.items {
            if let Item::Typedef(td) = item {
                if predicates
                    .insert(td.ty_name.clone(), td.func.clone())
                    .is_some()
                {
                    errors.push(CompileError::new(
                        ErrorKind::Duplicate {
                            kind: "predicate type",
                            name: td.ty_name.clone(),
                        },
                        td.span,
                    ));
                }
            }
        }

        // Pass C: attach variants, handlers, constraints, sources, blocking.
        let mut sources = Vec::new();
        for item in &program.items {
            match item {
                Item::Abstract(def) => {
                    let Some(&id) = by_name.get(&def.name) else {
                        continue; // duplicate error already reported
                    };
                    let mut body = Vec::with_capacity(def.body.len());
                    let mut ok = true;
                    for child in &def.body {
                        match by_name.get(child) {
                            Some(&cid) => body.push(cid),
                            None => {
                                ok = false;
                                errors.push(CompileError::new(
                                    ErrorKind::Undefined {
                                        kind: "node",
                                        name: child.clone(),
                                    },
                                    def.span,
                                ));
                            }
                        }
                    }
                    if let Some(pat) = &def.pattern {
                        for el in pat {
                            if let PatElem::Pred(p) = el {
                                if !predicates.contains_key(p) {
                                    ok = false;
                                    errors.push(CompileError::new(
                                        ErrorKind::Undefined {
                                            kind: "predicate type",
                                            name: p.clone(),
                                        },
                                        def.span,
                                    ));
                                }
                            }
                        }
                    }
                    if ok {
                        if let NodeKind::Abstract { variants } = &mut nodes[id].kind {
                            variants.push(Variant {
                                pattern: def.pattern.clone(),
                                body,
                                span: def.span,
                            });
                        }
                    }
                }
                Item::Source(s) => {
                    let src = by_name.get(&s.source).copied();
                    let tgt = by_name.get(&s.target).copied();
                    for (found, name) in [(src, &s.source), (tgt, &s.target)] {
                        if found.is_none() {
                            errors.push(CompileError::new(
                                ErrorKind::Undefined {
                                    kind: "node",
                                    name: name.clone(),
                                },
                                s.span,
                            ));
                        }
                    }
                    if let (Some(source), Some(target)) = (src, tgt) {
                        sources.push(SourceSpec { source, target });
                    }
                }
                Item::ErrorHandler(h) => {
                    let node = by_name.get(&h.node).copied();
                    let handler = by_name.get(&h.handler).copied();
                    for (found, name) in [(node, &h.node), (handler, &h.handler)] {
                        if found.is_none() {
                            errors.push(CompileError::new(
                                ErrorKind::Undefined {
                                    kind: "node",
                                    name: name.clone(),
                                },
                                h.span,
                            ));
                        }
                    }
                    if let (Some(node), Some(handler)) = (node, handler) {
                        if !nodes[handler].is_concrete() {
                            errors.push(CompileError::new(
                                ErrorKind::HandlerNotConcrete {
                                    name: h.handler.clone(),
                                },
                                h.span,
                            ));
                        } else if nodes[node].error_handler.is_some() {
                            errors.push(CompileError::new(
                                ErrorKind::Duplicate {
                                    kind: "error handler for",
                                    name: h.node.clone(),
                                },
                                h.span,
                            ));
                        } else {
                            nodes[node].error_handler = Some(handler);
                        }
                    }
                }
                Item::Atomic(a) => match by_name.get(&a.node).copied() {
                    None => errors.push(CompileError::new(
                        ErrorKind::Undefined {
                            kind: "node",
                            name: a.node.clone(),
                        },
                        a.span,
                    )),
                    Some(id) => {
                        for c in &a.constraints {
                            if !nodes[id].constraints.iter().any(|e| e.name == c.name) {
                                nodes[id].constraints.push(c.clone());
                            }
                        }
                        // Canonical (alphabetical) acquisition order, §3.1.1.
                        nodes[id].constraints.sort_by(|a, b| a.name.cmp(&b.name));
                    }
                },
                Item::Blocking(b) => match by_name.get(&b.node).copied() {
                    None => errors.push(CompileError::new(
                        ErrorKind::Undefined {
                            kind: "node",
                            name: b.node.clone(),
                        },
                        b.span,
                    )),
                    Some(id) => nodes[id].blocking = true,
                },
                Item::NodeSig(_) | Item::Typedef(_) => {}
            }
        }

        // Abstract nodes must have at least one variant.
        for node in &nodes {
            if let NodeKind::Abstract { variants } = &node.kind {
                if variants.is_empty() && errors.is_empty() {
                    errors.push(CompileError::new(
                        ErrorKind::Undefined {
                            kind: "definition for abstract node",
                            name: node.name.clone(),
                        },
                        node.span,
                    ));
                }
            }
        }

        let graph = ProgramGraph {
            nodes,
            by_name,
            sources,
            predicates,
        };

        // Acyclicity: abstract nodes must not (transitively) contain
        // themselves. Flux programs are acyclic by construction (§2).
        if errors.is_empty() {
            if let Err(e) = graph.check_acyclic() {
                errors.push(e);
            }
        }

        if errors.is_empty() {
            let warnings = graph.unreachable_warnings();
            Ok((graph, warnings))
        } else {
            Err(errors)
        }
    }

    fn check_acyclic(&self) -> Result<(), CompileError> {
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let mut marks = vec![Mark::White; self.nodes.len()];
        let mut stack: Vec<NodeId> = Vec::new();

        fn visit(
            g: &ProgramGraph,
            id: NodeId,
            marks: &mut [Mark],
            stack: &mut Vec<NodeId>,
        ) -> Result<(), CompileError> {
            match marks[id] {
                Mark::Black => return Ok(()),
                Mark::Grey => {
                    let pos = stack.iter().position(|&n| n == id).unwrap_or(0);
                    let cycle: Vec<String> = stack[pos..]
                        .iter()
                        .chain(std::iter::once(&id))
                        .map(|&n| g.nodes[n].name.clone())
                        .collect();
                    return Err(CompileError::new(
                        ErrorKind::RecursiveNode {
                            name: g.nodes[id].name.clone(),
                            cycle,
                        },
                        g.nodes[id].span,
                    ));
                }
                Mark::White => {}
            }
            marks[id] = Mark::Grey;
            stack.push(id);
            if let NodeKind::Abstract { variants } = &g.nodes[id].kind {
                for v in variants {
                    for &child in &v.body {
                        visit(g, child, marks, stack)?;
                    }
                }
            }
            stack.pop();
            marks[id] = Mark::Black;
            Ok(())
        }

        for id in 0..self.nodes.len() {
            visit(self, id, &mut marks, &mut stack)?;
        }
        Ok(())
    }

    /// Nodes reachable from no source, reported as warnings (handlers are
    /// reachable through the node they handle).
    fn unreachable_warnings(&self) -> Vec<crate::error::Warning> {
        let mut reachable = vec![false; self.nodes.len()];
        let mut work: Vec<NodeId> = Vec::new();
        for s in &self.sources {
            work.push(s.source);
            work.push(s.target);
        }
        while let Some(id) = work.pop() {
            if std::mem::replace(&mut reachable[id], true) {
                continue;
            }
            if let Some(h) = self.nodes[id].error_handler {
                work.push(h);
            }
            if let NodeKind::Abstract { variants } = &self.nodes[id].kind {
                for v in variants {
                    work.extend(v.body.iter().copied());
                }
            }
        }
        self.nodes
            .iter()
            .enumerate()
            .filter(|(id, _)| !reachable[*id] && !self.sources.is_empty())
            .map(|(_, n)| crate::error::Warning::UnreachableNode {
                name: n.name.clone(),
            })
            .collect()
    }

    /// All dispatch variants of `id` (empty for concrete nodes).
    pub fn variants(&self, id: NodeId) -> &[Variant] {
        match &self.nodes[id].kind {
            NodeKind::Abstract { variants } => variants,
            NodeKind::Concrete { .. } => &[],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn build(src: &str) -> Result<ProgramGraph, CompileErrors> {
        ProgramGraph::build(&parse(src).unwrap()).map(|(g, _)| g)
    }

    #[test]
    fn links_figure2() {
        let src = crate::fixtures::IMAGE_SERVER;
        let g = build(src).unwrap();
        assert_eq!(g.sources.len(), 1);
        let (_, listen) = g.node("Listen").unwrap();
        assert!(listen.is_concrete());
        let (hid, handler) = g.node("Handler").unwrap();
        assert!(!handler.is_concrete());
        assert_eq!(g.variants(hid).len(), 2);
        assert!(!g.variants(hid)[0].is_catch_all());
        assert!(g.variants(hid)[1].is_catch_all());
        let (_, rifd) = g.node("ReadInFromDisk").unwrap();
        let h = rifd.error_handler.unwrap();
        assert_eq!(g.name(h), "FourOhFour");
        let (_, cc) = g.node("CheckCache").unwrap();
        assert_eq!(cc.constraints.len(), 1);
        assert_eq!(cc.constraints[0].name, "cache");
    }

    #[test]
    fn undefined_node_in_body() {
        let err = build("A () => (); Image = A -> Missing; source A => Image;").unwrap_err();
        assert!(err.0.iter().any(|e| matches!(
            &e.kind,
            ErrorKind::Undefined { kind: "node", name } if name == "Missing"
        )));
    }

    #[test]
    fn undefined_predicate() {
        let err = build("A () => (); H:[nope] = ;").unwrap_err();
        assert!(err.0.iter().any(|e| matches!(
            &e.kind,
            ErrorKind::Undefined { kind: "predicate type", name } if name == "nope"
        )));
    }

    #[test]
    fn duplicate_concrete() {
        let err = build("A () => (); A () => ();").unwrap_err();
        assert!(err
            .0
            .iter()
            .any(|e| matches!(&e.kind, ErrorKind::Duplicate { .. })));
    }

    #[test]
    fn recursion_detected() {
        let err =
            build("A (int x) => (int x); Loop = A -> Loop; source S => Loop; S () => (int x);")
                .unwrap_err();
        assert!(err
            .0
            .iter()
            .any(|e| matches!(&e.kind, ErrorKind::RecursiveNode { .. })));
    }

    #[test]
    fn mutual_recursion_detected() {
        let err = build("A = B; B = A;").unwrap_err();
        assert!(err
            .0
            .iter()
            .any(|e| matches!(&e.kind, ErrorKind::RecursiveNode { .. })));
    }

    #[test]
    fn handler_must_be_concrete() {
        let err = build("A () => (); B () => (); H = B; handle error A => H; source A => B;")
            .unwrap_err();
        assert!(err
            .0
            .iter()
            .any(|e| matches!(&e.kind, ErrorKind::HandlerNotConcrete { .. })));
    }

    #[test]
    fn constraints_sorted_canonically() {
        let g = build("A () => (); atomic A:{zebra, apple, mango}; source A => A;");
        // `source A => A` with A concrete: fine structurally.
        let g = g.unwrap();
        let (_, a) = g.node("A").unwrap();
        let names: Vec<_> = a.constraints.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["apple", "mango", "zebra"]);
    }

    #[test]
    fn unreachable_warning() {
        let (_, warns) =
            ProgramGraph::build(&parse("A () => (); B () => (); source A => A;").unwrap()).unwrap();
        assert!(warns
            .iter()
            .any(|w| matches!(w, crate::error::Warning::UnreachableNode { name } if name == "B")));
    }

    #[test]
    fn merges_variants_in_order() {
        let g = build(
            "typedef p F; A (int x) => (int x); H:[p] = A; H:[_] = A -> A; source S => H; S () => (int x);",
        )
        .unwrap();
        let (hid, _) = g.node("H").unwrap();
        assert_eq!(g.variants(hid).len(), 2);
        assert_eq!(g.variants(hid)[0].body.len(), 1);
        assert_eq!(g.variants(hid)[1].body.len(), 2);
    }
}
