//! Recursive-descent parser for Flux (paper §2, grammar per Figure 2).
//!
//! The paper used the CUP LALR generator; the grammar is LL(2), so a small
//! hand-written parser with one token of lookahead past the current token
//! is sufficient and produces better diagnostics.

use crate::ast::*;
use crate::error::{CompileError, ErrorKind};
use crate::lexer::Lexer;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Parses a complete Flux program from source text.
pub fn parse(src: &str) -> Result<Program, CompileError> {
    let tokens = Lexer::new(src).tokenize()?;
    Parser { tokens, pos: 0 }.program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek2(&self) -> &Token {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<Token, CompileError> {
        if &self.peek().kind == kind {
            Ok(self.bump())
        } else {
            Err(self.unexpected(what))
        }
    }

    fn unexpected(&self, expected: &str) -> CompileError {
        CompileError::new(
            ErrorKind::UnexpectedToken {
                expected: expected.to_string(),
                found: self.peek().kind.describe(),
            },
            self.peek().span,
        )
    }

    fn ident(&mut self, what: &str) -> Result<(String, Span), CompileError> {
        match &self.peek().kind {
            TokenKind::Ident(_) => {
                let t = self.bump();
                match t.kind {
                    TokenKind::Ident(s) => Ok((s, t.span)),
                    _ => unreachable!("peeked an identifier"),
                }
            }
            _ => Err(self.unexpected(what)),
        }
    }

    fn program(&mut self) -> Result<Program, CompileError> {
        let mut items = Vec::new();
        while self.peek().kind != TokenKind::Eof {
            items.push(self.item()?);
        }
        Ok(Program { items })
    }

    fn item(&mut self) -> Result<Item, CompileError> {
        match &self.peek().kind {
            TokenKind::KwSource => self.source_decl().map(Item::Source),
            TokenKind::KwTypedef => self.typedef_decl().map(Item::Typedef),
            TokenKind::KwHandle => self.handler_decl().map(Item::ErrorHandler),
            TokenKind::KwAtomic => self.atomic_decl().map(Item::Atomic),
            TokenKind::KwBlocking => self.blocking_decl().map(Item::Blocking),
            TokenKind::Ident(_) => match &self.peek2().kind {
                TokenKind::LParen => self.node_sig().map(Item::NodeSig),
                TokenKind::Eq | TokenKind::Colon => self.abstract_def().map(Item::Abstract),
                _ => Err(self.unexpected(
                    "a declaration (signature `(`, definition `=`, or dispatch `:`) after the name",
                )),
            },
            _ => Err(self.unexpected("a declaration")),
        }
    }

    /// `source Listen => Image;`
    fn source_decl(&mut self) -> Result<SourceDecl, CompileError> {
        let kw = self.bump();
        let (source, _) = self.ident("the source node name")?;
        self.expect(&TokenKind::FatArrow, "`=>`")?;
        let (target, _) = self.ident("the target node name")?;
        let end = self.expect(&TokenKind::Semi, "`;`")?;
        Ok(SourceDecl {
            source,
            target,
            span: kw.span.merge(end.span),
        })
    }

    /// `typedef hit TestInCache;`
    fn typedef_decl(&mut self) -> Result<TypedefDecl, CompileError> {
        let kw = self.bump();
        let (ty_name, _) = self.ident("the predicate type name")?;
        let (func, _) = self.ident("the predicate function name")?;
        let end = self.expect(&TokenKind::Semi, "`;`")?;
        Ok(TypedefDecl {
            ty_name,
            func,
            span: kw.span.merge(end.span),
        })
    }

    /// `handle error Node => Handler;`
    fn handler_decl(&mut self) -> Result<HandlerDecl, CompileError> {
        let kw = self.bump();
        self.expect(&TokenKind::KwError, "`error`")?;
        let (node, _) = self.ident("the node whose errors are handled")?;
        self.expect(&TokenKind::FatArrow, "`=>`")?;
        let (handler, _) = self.ident("the handler node name")?;
        let end = self.expect(&TokenKind::Semi, "`;`")?;
        Ok(HandlerDecl {
            node,
            handler,
            span: kw.span.merge(end.span),
        })
    }

    /// `atomic Node:{c1, c2?, c3(session)};`
    fn atomic_decl(&mut self) -> Result<AtomicDecl, CompileError> {
        let kw = self.bump();
        let (node, _) = self.ident("the constrained node name")?;
        self.expect(&TokenKind::Colon, "`:`")?;
        self.expect(&TokenKind::LBrace, "`{`")?;
        let mut constraints = Vec::new();
        loop {
            let (name, _) = self.ident("a constraint name")?;
            let mode = match self.peek().kind {
                TokenKind::Question => {
                    self.bump();
                    ConstraintMode::Reader
                }
                TokenKind::Bang => {
                    self.bump();
                    ConstraintMode::Writer
                }
                _ => ConstraintMode::Writer,
            };
            let scope = if self.peek().kind == TokenKind::LParen {
                self.bump();
                self.expect(&TokenKind::KwSession, "`session`")?;
                self.expect(&TokenKind::RParen, "`)`")?;
                ConstraintScope::Session
            } else {
                ConstraintScope::Program
            };
            constraints.push(ConstraintRef { name, mode, scope });
            match self.peek().kind {
                TokenKind::Comma => {
                    self.bump();
                }
                TokenKind::RBrace => break,
                _ => return Err(self.unexpected("`,` or `}`")),
            }
        }
        self.expect(&TokenKind::RBrace, "`}`")?;
        let end = self.expect(&TokenKind::Semi, "`;`")?;
        Ok(AtomicDecl {
            node,
            constraints,
            span: kw.span.merge(end.span),
        })
    }

    /// `blocking Node;` (extension)
    fn blocking_decl(&mut self) -> Result<BlockingDecl, CompileError> {
        let kw = self.bump();
        let (node, _) = self.ident("the blocking node name")?;
        let end = self.expect(&TokenKind::Semi, "`;`")?;
        Ok(BlockingDecl {
            node,
            span: kw.span.merge(end.span),
        })
    }

    /// `Name (in) => (out);`
    fn node_sig(&mut self) -> Result<NodeSig, CompileError> {
        let (name, start) = self.ident("the node name")?;
        let inputs = self.param_list()?;
        self.expect(&TokenKind::FatArrow, "`=>`")?;
        let outputs = self.param_list()?;
        let end = self.expect(&TokenKind::Semi, "`;`")?;
        Ok(NodeSig {
            name,
            inputs,
            outputs,
            span: start.merge(end.span),
        })
    }

    /// `( type name, type *name, ... )` possibly empty.
    fn param_list(&mut self) -> Result<Vec<Param>, CompileError> {
        self.expect(&TokenKind::LParen, "`(`")?;
        let mut params = Vec::new();
        if self.peek().kind == TokenKind::RParen {
            self.bump();
            return Ok(params);
        }
        loop {
            params.push(self.param()?);
            match self.peek().kind {
                TokenKind::Comma => {
                    self.bump();
                }
                TokenKind::RParen => {
                    self.bump();
                    return Ok(params);
                }
                _ => return Err(self.unexpected("`,` or `)`")),
            }
        }
    }

    /// One parameter: a run of identifiers and `*`s where the final
    /// identifier is the name and everything before it is the type. This is
    /// how C declarations like `image_tag *request` or `unsigned int n`
    /// are read without a C type grammar.
    fn param(&mut self) -> Result<Param, CompileError> {
        let mut words: Vec<String> = Vec::new();
        let mut stars_after: Vec<usize> = Vec::new();
        loop {
            match &self.peek().kind {
                TokenKind::Ident(_) => {
                    let (w, _) = self.ident("a type or parameter name")?;
                    words.push(w);
                }
                TokenKind::Star => {
                    self.bump();
                    if words.is_empty() {
                        return Err(self.unexpected("a type name before `*`"));
                    }
                    stars_after.push(words.len());
                }
                _ => break,
            }
        }
        if words.len() < 2 {
            return Err(self.unexpected("`type name` (both a type and a parameter name)"));
        }
        let name = words.pop().expect("checked len >= 2");
        let stars = stars_after.iter().filter(|&&i| i >= words.len()).count()
            + stars_after.iter().filter(|&&i| i < words.len()).count();
        let mut ty = words.join(" ");
        for _ in 0..stars {
            ty.push('*');
        }
        Ok(Param { ty, name })
    }

    /// `Name = A -> B;` or `Name:[_, hit] = A -> B;` (body may be empty).
    fn abstract_def(&mut self) -> Result<AbstractDef, CompileError> {
        let (name, start) = self.ident("the abstract node name")?;
        let pattern = if self.peek().kind == TokenKind::Colon {
            self.bump();
            self.expect(&TokenKind::LBracket, "`[`")?;
            let mut pats = Vec::new();
            loop {
                match &self.peek().kind {
                    TokenKind::Underscore => {
                        self.bump();
                        pats.push(PatElem::Wildcard);
                    }
                    TokenKind::Ident(_) => {
                        let (p, _) = self.ident("a predicate type")?;
                        pats.push(PatElem::Pred(p));
                    }
                    _ => return Err(self.unexpected("`_` or a predicate type")),
                }
                match self.peek().kind {
                    TokenKind::Comma => {
                        self.bump();
                    }
                    TokenKind::RBracket => break,
                    _ => return Err(self.unexpected("`,` or `]`")),
                }
            }
            self.expect(&TokenKind::RBracket, "`]`")?;
            Some(pats)
        } else {
            None
        };
        self.expect(&TokenKind::Eq, "`=`")?;
        let mut body = Vec::new();
        if self.peek().kind != TokenKind::Semi {
            loop {
                let (n, _) = self.ident("a node name in the flow body")?;
                body.push(n);
                match self.peek().kind {
                    TokenKind::Arrow => {
                        self.bump();
                    }
                    TokenKind::Semi => break,
                    _ => return Err(self.unexpected("`->` or `;`")),
                }
            }
        }
        let end = self.expect(&TokenKind::Semi, "`;`")?;
        Ok(AbstractDef {
            name,
            pattern,
            body,
            span: start.merge(end.span),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::fixtures::IMAGE_SERVER as FIGURE2;

    #[test]
    fn parses_figure2() {
        let p = parse(FIGURE2).unwrap();
        assert_eq!(p.node_sigs().count(), 9);
        assert_eq!(p.sources().count(), 1);
        assert_eq!(p.abstract_defs().count(), 3);
        let handlers: Vec<_> = p
            .items
            .iter()
            .filter(|i| matches!(i, Item::ErrorHandler(_)))
            .collect();
        assert_eq!(handlers.len(), 1);
        let atomics: Vec<_> = p
            .items
            .iter()
            .filter(|i| matches!(i, Item::Atomic(_)))
            .collect();
        assert_eq!(atomics.len(), 3);
    }

    #[test]
    fn parses_pointer_params() {
        let p = parse("N (image_tag *request, __u8 *rgb) => ();").unwrap();
        let sig = p.node_sigs().next().unwrap();
        assert_eq!(sig.inputs[0].ty, "image_tag*");
        assert_eq!(sig.inputs[0].name, "request");
        assert_eq!(sig.inputs[1].ty, "__u8*");
        assert_eq!(sig.inputs[1].name, "rgb");
        assert!(sig.outputs.is_empty());
    }

    #[test]
    fn parses_multiword_types() {
        let p = parse("N (unsigned int n) => (long long x);").unwrap();
        let sig = p.node_sigs().next().unwrap();
        assert_eq!(sig.inputs[0].ty, "unsigned int");
        assert_eq!(sig.inputs[0].name, "n");
        assert_eq!(sig.outputs[0].ty, "long long");
    }

    #[test]
    fn parses_empty_variant_body() {
        let p = parse("Handler:[_, _, hit] = ;").unwrap();
        let a = p.abstract_defs().next().unwrap();
        assert_eq!(a.name, "Handler");
        assert_eq!(
            a.pattern,
            Some(vec![
                PatElem::Wildcard,
                PatElem::Wildcard,
                PatElem::Pred("hit".into())
            ])
        );
        assert!(a.body.is_empty());
    }

    #[test]
    fn parses_reader_writer_session_constraints() {
        let p = parse("atomic A:{cache?, log!, state(session)};").unwrap();
        let Item::Atomic(a) = &p.items[0] else {
            panic!("expected atomic decl");
        };
        assert_eq!(a.constraints.len(), 3);
        assert_eq!(a.constraints[0].mode, ConstraintMode::Reader);
        assert_eq!(a.constraints[1].mode, ConstraintMode::Writer);
        assert_eq!(a.constraints[2].scope, ConstraintScope::Session);
        assert_eq!(a.constraints[0].scope, ConstraintScope::Program);
    }

    #[test]
    fn parses_blocking_extension() {
        let p = parse("blocking ReadInFromDisk;").unwrap();
        let Item::Blocking(b) = &p.items[0] else {
            panic!("expected blocking decl");
        };
        assert_eq!(b.node, "ReadInFromDisk");
    }

    #[test]
    fn rejects_garbage_after_name() {
        let err = parse("Image ;").unwrap_err();
        assert!(matches!(err.kind, ErrorKind::UnexpectedToken { .. }));
    }

    #[test]
    fn rejects_missing_semicolon() {
        let err = parse("source A => B").unwrap_err();
        assert!(matches!(err.kind, ErrorKind::UnexpectedToken { .. }));
    }

    #[test]
    fn rejects_param_without_name() {
        let err = parse("N (int) => ();").unwrap_err();
        assert!(matches!(err.kind, ErrorKind::UnexpectedToken { .. }));
    }

    #[test]
    fn rejects_star_without_type() {
        let err = parse("N (*x) => ();").unwrap_err();
        assert!(matches!(err.kind, ErrorKind::UnexpectedToken { .. }));
    }

    #[test]
    fn body_chain_roundtrip() {
        let p = parse("Image = A -> B -> C;").unwrap();
        let a = p.abstract_defs().next().unwrap();
        assert_eq!(a.body, vec!["A", "B", "C"]);
        assert_eq!(a.pattern, None);
    }
}
