//! Compile-time diagnostics: errors and warnings.
//!
//! The paper's compiler "signals an error and exits" on undefined references
//! and type mismatches, and emits warnings whenever the deadlock-avoidance
//! pass hoists a constraint (early acquisition reduces concurrency, §3.1.1).

use crate::span::Span;
use std::fmt;

/// Every way a Flux program can fail to compile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErrorKind {
    /// The lexer saw a character that starts no token.
    UnexpectedChar(char),
    /// A `/* ... */` comment ran past the end of the file.
    UnterminatedComment,
    /// The parser expected one construct and saw another.
    UnexpectedToken { expected: String, found: String },
    /// A node, predicate type or handler name was referenced but never
    /// declared.
    Undefined { kind: &'static str, name: String },
    /// The same name was declared twice in conflicting ways.
    Duplicate { kind: &'static str, name: String },
    /// The output types of a node do not match the input types of its
    /// successor.
    TypeMismatch {
        from: String,
        to: String,
        expected: Vec<String>,
        found: Vec<String>,
    },
    /// A dispatch pattern's arity differs from the node's input arity.
    PatternArity {
        node: String,
        expected: usize,
        found: usize,
    },
    /// Two variants of an abstract node disagree on inferred types.
    VariantMismatch { node: String, detail: String },
    /// Abstract nodes may not (transitively) contain themselves: Flux
    /// programs are acyclic.
    RecursiveNode { name: String, cycle: Vec<String> },
    /// A source node must take no inputs.
    SourceHasInputs { name: String },
    /// An error handler must be a concrete node.
    HandlerNotConcrete { name: String },
    /// An empty variant body is only legal when inputs equal outputs.
    InvalidPassthrough { node: String },
    /// Anything else worth a dedicated message.
    Other(String),
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ErrorKind::UnexpectedChar(c) => write!(f, "unexpected character `{c}`"),
            ErrorKind::UnterminatedComment => write!(f, "unterminated block comment"),
            ErrorKind::UnexpectedToken { expected, found } => {
                write!(f, "expected {expected}, found {found}")
            }
            ErrorKind::Undefined { kind, name } => write!(f, "undefined {kind} `{name}`"),
            ErrorKind::Duplicate { kind, name } => write!(f, "duplicate {kind} `{name}`"),
            ErrorKind::TypeMismatch {
                from,
                to,
                expected,
                found,
            } => write!(
                f,
                "type mismatch on edge `{from}` -> `{to}`: `{to}` expects ({}), `{from}` produces ({})",
                expected.join(", "),
                found.join(", ")
            ),
            ErrorKind::PatternArity {
                node,
                expected,
                found,
            } => write!(
                f,
                "pattern for `{node}` has {found} element(s) but the node takes {expected} input(s)"
            ),
            ErrorKind::VariantMismatch { node, detail } => {
                write!(f, "variants of `{node}` disagree: {detail}")
            }
            ErrorKind::RecursiveNode { name, cycle } => write!(
                f,
                "abstract node `{name}` is recursive ({}); Flux graphs must be acyclic",
                cycle.join(" -> ")
            ),
            ErrorKind::SourceHasInputs { name } => {
                write!(f, "source node `{name}` must not take inputs")
            }
            ErrorKind::HandlerNotConcrete { name } => {
                write!(f, "error handler `{name}` must be a concrete node")
            }
            ErrorKind::InvalidPassthrough { node } => write!(
                f,
                "empty variant of `{node}` is only legal when its inputs match its outputs"
            ),
            ErrorKind::Other(msg) => f.write_str(msg),
        }
    }
}

/// A single compile error with its location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    pub kind: ErrorKind,
    pub span: Span,
}

impl CompileError {
    pub fn new(kind: ErrorKind, span: Span) -> Self {
        CompileError { kind, span }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.span == Span::DUMMY {
            write!(f, "error: {}", self.kind)
        } else {
            write!(f, "error at {}: {}", self.span, self.kind)
        }
    }
}

impl std::error::Error for CompileError {}

/// All errors from one compilation attempt.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompileErrors(pub Vec<CompileError>);

impl CompileErrors {
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn push(&mut self, e: CompileError) {
        self.0.push(e);
    }
}

impl fmt::Display for CompileErrors {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, e) in self.0.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{e}")?;
        }
        Ok(())
    }
}

impl std::error::Error for CompileErrors {}

/// Non-fatal diagnostics, chiefly from the deadlock-avoidance pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Warning {
    /// A constraint was hoisted to an enclosing node to restore canonical
    /// lock order (paper §3.1.1). Early acquisition can reduce concurrency.
    ConstraintHoisted {
        constraint: String,
        from: String,
        to: String,
    },
    /// A reader acquisition was promoted to a writer because the same
    /// constraint is also acquired as a writer along some flow.
    ReaderPromoted { constraint: String, node: String },
    /// A node is declared but unreachable from any source.
    UnreachableNode { name: String },
}

impl fmt::Display for Warning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Warning::ConstraintHoisted {
                constraint,
                from,
                to,
            } => write!(
                f,
                "warning: constraint `{constraint}` (required by `{from}`) hoisted to `{to}` to \
                 preserve canonical lock order; early acquisition may reduce concurrency"
            ),
            Warning::ReaderPromoted { constraint, node } => write!(
                f,
                "warning: reader constraint `{constraint}` at `{node}` promoted to writer \
                 (also acquired as writer along a flow)"
            ),
            Warning::UnreachableNode { name } => {
                write!(f, "warning: node `{name}` is unreachable from any source")
            }
        }
    }
}
