//! Tokens produced by the Flux lexer.

use crate::span::Span;
use std::fmt;

/// The kinds of token in a Flux program.
///
/// The surface syntax is tiny (paper §2): identifiers, a handful of
/// punctuation marks, and five keywords. `error` and `session` are
/// contextual (they only mean anything after `handle` and inside `(...)`
/// respectively) but lexing them as keywords is harmless because they are
/// not legal node names in the paper's grammar either.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// A C-style identifier: `[A-Za-z_][A-Za-z0-9_]*`.
    Ident(String),
    /// An integer literal (used only inside type strings such as `__u8`
    /// handled as identifiers; kept for future extensions).
    Int(i64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `=` (abstract node definition)
    Eq,
    /// `->` (flow arrow)
    Arrow,
    /// `=>` (signature / source / handler arrow)
    FatArrow,
    /// `?` (reader constraint)
    Question,
    /// `!` (writer constraint)
    Bang,
    /// `*` (pointer in type position)
    Star,
    /// `_` (wildcard in dispatch patterns)
    Underscore,
    /// `source`
    KwSource,
    /// `typedef`
    KwTypedef,
    /// `handle`
    KwHandle,
    /// `error` (contextual, after `handle`)
    KwError,
    /// `atomic`
    KwAtomic,
    /// `session` (contextual, in constraint scope)
    KwSession,
    /// `blocking` — extension: marks a node as performing blocking calls so
    /// the event-driven runtime off-loads it (substitute for the paper's
    /// LD_PRELOAD interception; see DESIGN.md §4).
    KwBlocking,
    /// End of input.
    Eof,
}

impl TokenKind {
    /// A short human-readable description for diagnostics.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Int(n) => format!("integer `{n}`"),
            TokenKind::LParen => "`(`".into(),
            TokenKind::RParen => "`)`".into(),
            TokenKind::LBrace => "`{`".into(),
            TokenKind::RBrace => "`}`".into(),
            TokenKind::LBracket => "`[`".into(),
            TokenKind::RBracket => "`]`".into(),
            TokenKind::Comma => "`,`".into(),
            TokenKind::Semi => "`;`".into(),
            TokenKind::Colon => "`:`".into(),
            TokenKind::Eq => "`=`".into(),
            TokenKind::Arrow => "`->`".into(),
            TokenKind::FatArrow => "`=>`".into(),
            TokenKind::Question => "`?`".into(),
            TokenKind::Bang => "`!`".into(),
            TokenKind::Star => "`*`".into(),
            TokenKind::Underscore => "`_`".into(),
            TokenKind::KwSource => "`source`".into(),
            TokenKind::KwTypedef => "`typedef`".into(),
            TokenKind::KwHandle => "`handle`".into(),
            TokenKind::KwError => "`error`".into(),
            TokenKind::KwAtomic => "`atomic`".into(),
            TokenKind::KwSession => "`session`".into(),
            TokenKind::KwBlocking => "`blocking`".into(),
            TokenKind::Eof => "end of input".into(),
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

/// A token plus its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    pub span: Span,
}
