//! # flux-core — the Flux coordination language
//!
//! A from-scratch Rust implementation of the Flux language from
//! *Flux: A Language for Programming High-Performance Servers*
//! (Burns, Grimaldi, Kostadinov, Berger, Corner — USENIX ATC 2006).
//!
//! Flux composes off-the-shelf sequential functions into concurrent
//! servers. A program declares typed *concrete nodes*, composes them into
//! *abstract nodes* with `->` arrows, routes flows with *predicate
//! dispatch*, attaches *error handlers*, and controls shared state with
//! declarative *atomicity constraints*. The compiler type-checks the
//! composition, guarantees deadlock freedom by canonical lock ordering
//! (hoisting constraints when nesting would acquire out of order), and
//! hands a flattened, path-numbered flow graph to the runtimes in
//! `flux-runtime`, the profiler, and the simulator in `flux-sim`.
//!
//! ## Fusion boundaries
//!
//! After flattening and path numbering, the [`fuse`] pass groups each
//! flow's maximal straight-line `Exec`/`Release` chains into
//! [`FusedSegment`]s, which the event runtime executes as one queue
//! turn each. Fusion is deliberately conservative — a chain breaks at
//! every semantic boundary and nowhere else:
//!
//! - **dispatch** vertices and each **dispatch arm** entry (control
//!   flow re-converges per arm, not across the dispatch);
//! - **error-arm** targets (an `on_err` edge must land on a segment
//!   head so mid-segment errors route exactly like unfused execution);
//! - **acquire** vertices (lock acquisition can block or fail, so it
//!   stays its own scheduling point);
//! - nodes declared **blocking** (the runtime must see them unfused to
//!   off-load them to the I/O pool — the runtime re-fuses with its
//!   registry's `node_blocking` knowledge via
//!   [`FusedFlow::build_with`]);
//! - **join** points (any vertex with more than one predecessor, which
//!   includes session-affinity re-route targets).
//!
//! [`BreakReason`] names each boundary; `fluxc fused` (alias
//! `--dump-fused`) renders segments and boundary reasons per flow.
//!
//! ## Quickstart
//!
//! ```
//! let program = flux_core::compile(flux_core::fixtures::IMAGE_SERVER).unwrap();
//! assert_eq!(program.flows.len(), 1);
//! // Every node the runtime must supply an implementation for:
//! assert!(program.required_nodes().contains(&"Compress".to_string()));
//! // Straight-line chains are pre-fused for the runtimes:
//! assert!(program.flows[0].fused.segments.iter().any(|s| s.verts.len() >= 2));
//! ```

pub mod ast;
pub mod codegen;
pub mod compile;
pub mod constraints;
pub mod error;
pub mod fixtures;
pub mod flat;
pub mod fuse;
pub mod graph;
pub mod lexer;
pub mod model;
pub mod parser;
pub mod paths;
pub mod place;
pub mod span;
pub mod token;
pub mod typecheck;

pub use ast::{ConstraintMode, ConstraintRef, ConstraintScope, PatElem, Program};
pub use compile::{compile, CompiledProgram, Flow};
pub use error::{CompileError, CompileErrors, ErrorKind, Warning};
pub use flat::{DispatchArm, EndKind, FlatProgram, FlatVertex, VertexId};
pub use fuse::{BreakReason, FusedFlow, FusedSegment};
pub use graph::{NodeId, NodeInfo, NodeKind, ProgramGraph, SourceSpec, Variant};
pub use paths::{PathInfo, PathTable};
pub use place::{place, round_robin, PlaceConfig, PlaceError, Placement, TrafficMatrix};
pub use typecheck::{NodeTypes, TypeTable};
