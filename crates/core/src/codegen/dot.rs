//! Graphviz DOT output for Flux program graphs (paper Figure 7).

use crate::codegen::CodeGenerator;
use crate::compile::CompiledProgram;
use crate::flat::{EndKind, FlatVertex};
use crate::graph::NodeKind;
use std::fmt::Write as _;

/// Emits the program graph in Graphviz DOT form.
///
/// Two styles are available: the *logical* graph (abstract nodes with
/// dispatch patterns on edges, like the paper's Figure 7) and the
/// *flattened* graph (every Acquire/Release/Exec/Dispatch/End vertex).
#[derive(Debug, Clone, Default)]
pub struct DotGenerator {
    /// Emit the flattened vertex graph instead of the logical graph.
    pub flattened: bool,
}

impl CodeGenerator for DotGenerator {
    fn target(&self) -> &'static str {
        "dot"
    }

    fn generate(&self, program: &CompiledProgram) -> String {
        if self.flattened {
            flattened(program)
        } else {
            logical(program)
        }
    }
}

fn logical(p: &CompiledProgram) -> String {
    let g = &p.graph;
    let mut out = String::new();
    let _ = writeln!(out, "digraph flux {{");
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=box, fontname=\"Helvetica\"];");
    for spec in &g.sources {
        let _ = writeln!(
            out,
            "  \"{}\" [shape=ellipse, style=filled, fillcolor=lightblue];",
            g.name(spec.source)
        );
        let _ = writeln!(
            out,
            "  \"{}\" -> \"{}\";",
            g.name(spec.source),
            g.name(spec.target)
        );
    }
    for node in &g.nodes {
        match &node.kind {
            NodeKind::Concrete { .. } => {
                if !node.constraints.is_empty() {
                    let cs: Vec<String> = node.constraints.iter().map(|c| c.to_string()).collect();
                    let _ = writeln!(
                        out,
                        "  \"{}\" [xlabel=\"{{{}}}\"];",
                        node.name,
                        cs.join(",")
                    );
                }
                if let Some(h) = node.error_handler {
                    let _ = writeln!(
                        out,
                        "  \"{}\" -> \"{}\" [style=dashed, color=red, label=\"error\"];",
                        node.name,
                        g.name(h)
                    );
                }
            }
            NodeKind::Abstract { variants } => {
                for v in variants {
                    let label = match &v.pattern {
                        None => String::new(),
                        Some(p) => p
                            .iter()
                            .map(|e| e.to_string())
                            .collect::<Vec<_>>()
                            .join(","),
                    };
                    let mut prev = node.name.clone();
                    for (i, &child) in v.body.iter().enumerate() {
                        let lab = if i == 0 && !label.is_empty() {
                            format!(" [label=\"{label}\"]")
                        } else {
                            String::new()
                        };
                        let _ = writeln!(out, "  \"{}\" -> \"{}\"{};", prev, g.name(child), lab);
                        prev = g.name(child).to_string();
                    }
                }
                if let Some(h) = node.error_handler {
                    let _ = writeln!(
                        out,
                        "  \"{}\" -> \"{}\" [style=dashed, color=red, label=\"error\"];",
                        node.name,
                        g.name(h)
                    );
                }
            }
        }
    }
    let _ = writeln!(out, "}}");
    out
}

fn flat_label(p: &CompiledProgram, v: &FlatVertex) -> (String, &'static str) {
    let g = &p.graph;
    match v {
        FlatVertex::Acquire { node, .. } => (format!("acquire {}", g.name(*node)), "hexagon"),
        FlatVertex::Release { node, .. } => (format!("release {}", g.name(*node)), "hexagon"),
        FlatVertex::Exec { node, .. } => (g.name(*node).to_string(), "box"),
        FlatVertex::Dispatch { node, .. } => (format!("dispatch {}", g.name(*node)), "diamond"),
        FlatVertex::End { outcome } => (
            match outcome {
                EndKind::Completed => "END".to_string(),
                EndKind::Errored { node } => format!("ERROR {}", g.name(*node)),
                EndKind::Handled { handler, .. } => {
                    format!("HANDLED by {}", g.name(*handler))
                }
                EndKind::NoMatch { node } => format!("NO-MATCH {}", g.name(*node)),
            },
            "oval",
        ),
    }
}

fn flattened(p: &CompiledProgram) -> String {
    let g = &p.graph;
    let mut out = String::new();
    let _ = writeln!(out, "digraph flux_flat {{");
    let _ = writeln!(out, "  rankdir=LR;");
    for (fi, flow) in p.flows.iter().enumerate() {
        let _ = writeln!(out, "  subgraph cluster_{fi} {{");
        let _ = writeln!(out, "    label=\"source {}\";", g.name(flow.flat.source));
        // Multi-vertex fused segments render as nested boxes: one
        // dashed cluster per segment, so the straight-line chains the
        // runtime executes in a single queue turn are visible.
        let mut clustered = vec![false; flow.flat.verts.len()];
        for (si, seg) in flow.fused.segments.iter().enumerate() {
            if seg.verts.len() < 2 {
                continue;
            }
            let _ = writeln!(out, "    subgraph cluster_{fi}_seg{si} {{");
            let _ = writeln!(
                out,
                "      label=\"fused seg {si} ({} exec{})\"; style=dashed; color=blue;",
                seg.execs,
                if seg.execs == 1 { "" } else { "s" }
            );
            for &vi in &seg.verts {
                clustered[vi] = true;
                let (label, shape) = flat_label(p, &flow.flat.verts[vi]);
                let _ = writeln!(out, "      f{fi}_v{vi} [label=\"{label}\", shape={shape}];");
            }
            let _ = writeln!(out, "    }}");
        }
        for (i, v) in flow.flat.verts.iter().enumerate() {
            if clustered[i] {
                continue;
            }
            let (label, shape) = flat_label(p, v);
            let _ = writeln!(out, "    f{fi}_v{i} [label=\"{label}\", shape={shape}];");
        }
        for (i, v) in flow.flat.verts.iter().enumerate() {
            for (k, s) in v.successors().into_iter().enumerate() {
                let err = matches!(v, FlatVertex::Exec { .. }) && k == 1;
                // Segment-boundary edges carry their break reason so a
                // reader can see *why* the chain stopped fusing.
                let mut attrs = Vec::new();
                if err {
                    attrs.push("style=dashed, color=red".to_string());
                }
                if let Some(reason) = flow.fused.break_reason(&flow.flat, i, k, s) {
                    attrs.push(format!("label=\"{reason}\""));
                }
                let attrs = if attrs.is_empty() {
                    String::new()
                } else {
                    format!(" [{}]", attrs.join(", "))
                };
                let _ = writeln!(out, "    f{fi}_v{i} -> f{fi}_v{s}{attrs};");
            }
        }
        let _ = writeln!(out, "  }}");
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logical_dot_contains_flow_edges() {
        let p = crate::compile(crate::fixtures::IMAGE_SERVER).unwrap();
        let dot = DotGenerator::default().generate(&p);
        assert!(dot.contains("digraph flux"));
        assert!(dot.contains("\"Listen\" -> \"Image\""));
        assert!(dot.contains("\"ReadRequest\" -> \"CheckCache\""));
        assert!(dot.contains("error"));
    }

    #[test]
    fn flattened_dot_has_all_vertices() {
        let p = crate::compile(crate::fixtures::IMAGE_SERVER).unwrap();
        let gen = DotGenerator { flattened: true };
        let dot = gen.generate(&p);
        let n = p.flows[0].flat.verts.len();
        for i in 0..n {
            assert!(dot.contains(&format!("f0_v{i} ")));
        }
    }

    #[test]
    fn flattened_dot_boxes_fused_segments() {
        let p = crate::compile(crate::fixtures::IMAGE_SERVER).unwrap();
        let dot = DotGenerator { flattened: true }.generate(&p);
        // Every multi-vertex segment gets a nested cluster...
        let multi = p.flows[0]
            .fused
            .segments
            .iter()
            .filter(|s| s.verts.len() >= 2)
            .count();
        assert!(multi >= 2, "IMAGE_SERVER has fused chains");
        for si in 0..p.flows[0].fused.segments.len() {
            let has = dot.contains(&format!("subgraph cluster_0_seg{si} "));
            let want = p.flows[0].fused.segments[si].verts.len() >= 2;
            assert_eq!(has, want, "segment {si}");
        }
        // ...and boundary edges say why fusion stopped there.
        assert!(dot.contains("label=\"dispatch\""), "{dot}");
        assert!(dot.contains("label=\"acquire\""), "{dot}");
        assert!(dot.contains("label=\"error arm\""), "{dot}");
    }
}
