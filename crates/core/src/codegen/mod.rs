//! Code generation (compiler pass 3, paper §3.1).
//!
//! The paper's compiler "defines an object-oriented interface for code
//! generation; new runtimes can easily be plugged into the Flux compiler
//! by implementing this code generator interface". [`CodeGenerator`] is
//! that interface. Three generators ship with the crate:
//!
//! * [`rust::RustGenerator`] — a runnable Rust skeleton: node stubs with
//!   the right shapes plus registry wiring (the paper generated C stubs
//!   and a Makefile);
//! * [`dot::DotGenerator`] — Graphviz DOT of the program graph (Figure 7);
//! * [`sim::SimGenerator`] — CSIM-style discrete-event simulator source
//!   (Figure 5); the executable model lives in `flux-sim`.

pub mod dot;
pub mod rust;
pub mod sim;

use crate::compile::CompiledProgram;

/// The pluggable code-generation interface.
pub trait CodeGenerator {
    /// A short name for the target ("rust", "dot", "csim", ...).
    fn target(&self) -> &'static str;

    /// Generates target source text for the compiled program.
    fn generate(&self, program: &CompiledProgram) -> String;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_generators_produce_output() {
        let p = crate::compile(crate::fixtures::IMAGE_SERVER).unwrap();
        let gens: Vec<Box<dyn CodeGenerator>> = vec![
            Box::new(rust::RustGenerator::default()),
            Box::new(dot::DotGenerator::default()),
            Box::new(sim::SimGenerator),
        ];
        for g in gens {
            let out = g.generate(&p);
            assert!(!out.is_empty(), "{} generator produced nothing", g.target());
        }
    }
}
