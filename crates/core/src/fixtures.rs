//! Canonical Flux programs from the paper, used by tests, examples and
//! benchmarks throughout the repository.

/// The image-compression server of Figure 2, completed with the
/// `FourOhFour` handler signature the paper elides for space.
pub const IMAGE_SERVER: &str = r#"
    // concrete node signatures
    Listen () => (int socket);
    ReadRequest (int socket)
      => (int socket, bool close, image_tag *request);
    CheckCache (int socket, bool close, image_tag *request)
      => (int socket, bool close, image_tag *request);
    ReadInFromDisk (int socket, bool close, image_tag *request)
      => (int socket, bool close, image_tag *request, __u8 *rgb_data);
    StoreInCache (int socket, bool close, image_tag *request)
      => (int socket, bool close, image_tag *request);
    Compress (int socket, bool close, image_tag *request, __u8 *rgb_data)
      => (int socket, bool close, image_tag *request);
    Write (int socket, bool close, image_tag *request)
      => (int socket, bool close, image_tag *request);
    Complete (int socket, bool close, image_tag *request) => ();
    FourOhFour (int socket, bool close, image_tag *request) => ();

    // source node
    source Listen => Image;

    // abstract node
    Image = ReadRequest -> CheckCache -> Handler -> Write -> Complete;

    // predicate type & dispatch
    typedef hit TestInCache;
    Handler:[_, _, hit] = ;
    Handler:[_, _, _] = ReadInFromDisk -> Compress -> StoreInCache;

    // error handler
    handle error ReadInFromDisk => FourOhFour;

    // atomicity constraints
    atomic CheckCache:{cache};
    atomic StoreInCache:{cache};
    atomic Complete:{cache};
"#;

/// The deadlock-avoidance example of §3.1.1: a flow through `A` locks
/// `x` then `y`, a flow through `C` locks `y` then `x`. The compiler must
/// hoist `x` onto `C`, yielding `atomic C:{x,y}`.
pub const DEADLOCK_EXAMPLE: &str = r#"
    B (int v) => (int v);
    D (int v) => (int v);
    SrcA () => (int v);
    SrcC () => (int v);

    A = B;
    C = D;

    source SrcA => A;
    source SrcC => C;

    atomic A: {x};
    atomic B: {y};
    atomic C: {y};
    atomic D: {x};
"#;

/// A miniature request/response pipeline used by unit tests: one source,
/// a three-node chain, a two-way dispatch and an error handler.
pub const MINI_PIPELINE: &str = r#"
    Listen () => (int sock);
    Parse (int sock) => (int sock, bool ok);
    Respond (int sock, bool ok) => (int sock);
    Retry (int sock) => (int sock);
    Close (int sock) => ();
    Oops (int sock) => ();

    typedef valid IsValid;

    source Listen => Flow;
    Flow = Parse -> Route -> Close;
    Route:[_, valid] = Respond;
    Route:[_, _] = Respond -> Retry;

    handle error Parse => Oops;
"#;
