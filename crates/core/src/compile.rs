//! End-to-end compilation: parse → link → type-check → constraint
//! analysis → flatten → path numbering.

use crate::error::{CompileError, CompileErrors, Warning};
use crate::flat::FlatProgram;
use crate::fuse::FusedFlow;
use crate::graph::ProgramGraph;
use crate::parser;
use crate::paths::PathTable;
use crate::typecheck::{self, TypeTable};

/// A fully compiled Flux program, ready for any runtime, the profiler or
/// the simulator.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// The linked program graph with effective (post-hoisting) constraints.
    pub graph: ProgramGraph,
    /// Inferred positional types for every node.
    pub types: TypeTable,
    /// One flattened flow per `source` declaration, in declaration order.
    pub flows: Vec<Flow>,
    /// Warnings produced during compilation (hoists, promotions,
    /// unreachable nodes).
    pub warnings: Vec<Warning>,
}

/// One source flow with its path numbering and stage fusion.
#[derive(Debug, Clone)]
pub struct Flow {
    pub flat: FlatProgram,
    pub paths: PathTable,
    /// Straight-line `Exec`/`Release` chains fused into segments using
    /// compile-time knowledge only (`blocking` declarations); the runtime
    /// re-fuses with its registry's `node_blocking` knowledge on top.
    pub fused: FusedFlow,
}

impl CompiledProgram {
    /// Finds the flow whose source node has the given name.
    pub fn flow_for_source(&self, source: &str) -> Option<&Flow> {
        self.flows
            .iter()
            .find(|f| self.graph.name(f.flat.source) == source)
    }

    /// Names of all concrete nodes the runtime must implement (reachable
    /// from any flow, including error handlers), in flat-graph order.
    pub fn required_nodes(&self) -> Vec<String> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for flow in &self.flows {
            let src = self.graph.name(flow.flat.source);
            if seen.insert(src.to_string()) {
                out.push(src.to_string());
            }
            for (_, node) in flow.flat.execs() {
                let name = self.graph.name(node);
                if seen.insert(name.to_string()) {
                    out.push(name.to_string());
                }
            }
        }
        out
    }

    /// Names of all predicate functions the runtime must implement.
    pub fn required_predicates(&self) -> Vec<String> {
        let mut v: Vec<String> = self.graph.predicates.values().cloned().collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

/// Compiles Flux source text.
pub fn compile(src: &str) -> Result<CompiledProgram, CompileErrors> {
    let program = parser::parse(src).map_err(single)?;
    let (mut graph, mut warnings) = ProgramGraph::build(&program)?;
    let types = typecheck::check(&graph)?;
    warnings.extend(crate::constraints::analyze(&mut graph)?);
    let mut flows = Vec::with_capacity(graph.sources.len());
    for spec in graph.sources.clone() {
        let flat = FlatProgram::build(&graph, spec).map_err(single)?;
        let paths = PathTable::build(&flat).map_err(|m| {
            single(CompileError::new(
                crate::error::ErrorKind::Other(m),
                crate::span::Span::DUMMY,
            ))
        })?;
        let fused = FusedFlow::build(&flat, &graph);
        flows.push(Flow { flat, paths, fused });
    }
    Ok(CompiledProgram {
        graph,
        types,
        flows,
        warnings,
    })
}

fn single(e: CompileError) -> CompileErrors {
    CompileErrors(vec![e])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiles_image_server() {
        let p = compile(crate::fixtures::IMAGE_SERVER).unwrap();
        assert_eq!(p.flows.len(), 1);
        assert!(p.warnings.is_empty());
        let required = p.required_nodes();
        assert!(required.contains(&"Listen".to_string()));
        assert!(required.contains(&"FourOhFour".to_string()));
        assert_eq!(p.required_predicates(), vec!["TestInCache"]);
    }

    #[test]
    fn compiles_deadlock_example_with_warning() {
        let p = compile(crate::fixtures::DEADLOCK_EXAMPLE).unwrap();
        assert!(p
            .warnings
            .iter()
            .any(|w| matches!(w, Warning::ConstraintHoisted { .. })));
        let (_, c) = p.graph.node("C").unwrap();
        let names: Vec<_> = c.constraints.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["x", "y"]);
    }

    #[test]
    fn reports_all_undefined_names() {
        let err = compile("F = A -> B; source S => F;").unwrap_err();
        assert!(err.0.len() >= 3, "A, B and S are all undefined: {err}");
    }

    #[test]
    fn flow_lookup_by_source() {
        let p = compile(crate::fixtures::MINI_PIPELINE).unwrap();
        assert!(p.flow_for_source("Listen").is_some());
        assert!(p.flow_for_source("Nope").is_none());
    }
}
