//! A traditional hand-written game server (the paper's §4.4
//! comparator): one receiver thread applying moves under a lock, one
//! tick thread stepping the world and broadcasting at 10 Hz.

use flux_game::{encode_snapshot, ClientMsg, World};
use flux_net::Datagram;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Stats comparable with the Flux game server's.
#[derive(Default)]
pub struct GameStats {
    pub moves_applied: AtomicU64,
    pub broadcasts: AtomicU64,
}

/// A running traditional game server.
pub struct HandGameServer {
    pub stats: Arc<GameStats>,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl HandGameServer {
    /// Starts the receiver and tick threads.
    pub fn start(socket: Arc<dyn Datagram>, tick: Duration, seed: u64) -> HandGameServer {
        let stats = Arc::new(GameStats::default());
        let stop = Arc::new(AtomicBool::new(false));
        let world = Arc::new(Mutex::new(World::new(seed)));
        let clients: Arc<Mutex<HashMap<u32, String>>> = Arc::new(Mutex::new(HashMap::new()));
        let mut threads = Vec::new();

        {
            let socket = socket.clone();
            let world = world.clone();
            let clients = clients.clone();
            let stats = stats.clone();
            let stop = stop.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("game-recv".into())
                    .spawn(move || {
                        let mut buf = [0u8; 256];
                        loop {
                            if stop.load(Ordering::SeqCst) {
                                return;
                            }
                            let Ok(Some((n, from))) =
                                socket.recv_from(&mut buf, Some(Duration::from_millis(20)))
                            else {
                                continue;
                            };
                            match ClientMsg::decode(&buf[..n]) {
                                Some(ClientMsg::Join { player }) => {
                                    world.lock().join(player);
                                    clients.lock().insert(player, from);
                                }
                                Some(ClientMsg::Leave { player }) => {
                                    world.lock().leave(player);
                                    clients.lock().remove(&player);
                                }
                                Some(ClientMsg::Move(m))
                                    if clients.lock().contains_key(&m.player) =>
                                {
                                    world.lock().apply_move(m);
                                    stats.moves_applied.fetch_add(1, Ordering::Relaxed);
                                }
                                Some(ClientMsg::Move(_)) => {}
                                None => {}
                            }
                        }
                    })
                    .expect("spawn game receiver"),
            );
        }

        {
            let stats = stats.clone();
            let stop = stop.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("game-tick".into())
                    .spawn(move || loop {
                        if stop.load(Ordering::SeqCst) {
                            return;
                        }
                        std::thread::sleep(tick);
                        let snap = world.lock().step();
                        let wire = encode_snapshot(&snap);
                        for addr in clients.lock().values() {
                            let _ = socket.send_to(&wire, addr);
                        }
                        stats.broadcasts.fetch_add(1, Ordering::Relaxed);
                    })
                    .expect("spawn game ticker"),
            );
        }

        HandGameServer {
            stats,
            stop,
            threads,
        }
    }

    /// Stops the server.
    pub fn stop(self) {
        self.stop.store(true, Ordering::SeqCst);
        for t in self.threads {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_game::decode_snapshot;
    use flux_net::MemNet;

    #[test]
    fn joins_moves_and_broadcasts() {
        let net = MemNet::new();
        let sock = Arc::new(net.bind_datagram("hand-game").unwrap());
        let server = HandGameServer::start(sock, Duration::from_millis(10), 5);
        let c1 = net.bind_datagram("hp1").unwrap();
        c1.send_to(&ClientMsg::Join { player: 1 }.encode(), "hand-game")
            .unwrap();
        let mut buf = [0u8; 2048];
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let snap = loop {
            assert!(std::time::Instant::now() < deadline);
            if let Some((n, _)) = c1
                .recv_from(&mut buf, Some(Duration::from_millis(100)))
                .unwrap()
            {
                break decode_snapshot(&buf[..n]).unwrap();
            }
        };
        assert_eq!(snap.it, Some(1));
        assert_eq!(snap.players.len(), 1);
        assert!(server.stats.broadcasts.load(Ordering::Relaxed) > 0);
        server.stop();
    }
}
