//! A Knot-like hand-written web server (substitute for Capriccio's knot,
//! the paper's fastest comparator in Figure 3).
//!
//! Architecture: an accept thread plus a fixed pool of workers, each
//! *owning* a connection for its lifetime — read request, write
//! response, repeat until close. No coordination language, no per-node
//! queues: the minimal-overhead threaded design Flux is measured
//! against.

use crossbeam::channel::{bounded, Receiver, Sender};
use flux_http::{mime_for, read_request, DocRoot, ParseError, Response, Value};
use flux_net::{Conn, Listener};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Shared stats, comparable with the Flux web server's.
#[derive(Default)]
pub struct KnotStats {
    pub requests: AtomicU64,
    pub bytes_out: AtomicU64,
}

/// A running knot-like server.
pub struct KnotServer {
    pub stats: Arc<KnotStats>,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl KnotServer {
    /// Starts `workers` connection-owning workers behind an acceptor.
    pub fn start(listener: Box<dyn Listener>, docroot: DocRoot, workers: usize) -> KnotServer {
        let stats = Arc::new(KnotStats::default());
        let stop = Arc::new(AtomicBool::new(false));
        let (tx, rx): (Sender<Box<dyn Conn>>, Receiver<Box<dyn Conn>>) = bounded(1024);
        let docroot = Arc::new(docroot);
        let mut threads = Vec::new();
        for _ in 0..workers.max(1) {
            let rx = rx.clone();
            let docroot = docroot.clone();
            let stats = stats.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("knot-worker".into())
                    .spawn(move || {
                        while let Ok(mut conn) = rx.recv() {
                            serve_connection(&mut *conn, &docroot, &stats);
                        }
                    })
                    .expect("spawn knot worker"),
            );
        }
        {
            let stop = stop.clone();
            listener.set_accept_timeout(Some(Duration::from_millis(50)));
            threads.push(
                std::thread::Builder::new()
                    .name("knot-accept".into())
                    .spawn(move || loop {
                        if stop.load(Ordering::SeqCst) {
                            return;
                        }
                        match listener.accept() {
                            Ok(conn) => {
                                if tx.send(conn).is_err() {
                                    return;
                                }
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::TimedOut => continue,
                            Err(_) => return,
                        }
                    })
                    .expect("spawn knot acceptor"),
            );
        }
        KnotServer {
            stats,
            stop,
            threads,
        }
    }

    /// Stops the server.
    pub fn stop(self) {
        self.stop.store(true, Ordering::SeqCst);
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// Serves one connection to completion (the worker's whole job).
pub fn serve_connection(conn: &mut dyn Conn, docroot: &DocRoot, stats: &KnotStats) {
    loop {
        let req = match read_request(conn) {
            Ok(r) => r,
            Err(ParseError::ConnectionClosed) => return,
            Err(_) => {
                let _ = Response::error(400).write_to(conn, false);
                return;
            }
        };
        stats.requests.fetch_add(1, Ordering::Relaxed);
        let keep = req.keep_alive();
        let resp = handle_request(&req.path, &req.query_params(), docroot);
        let len = resp.wire_len(keep) as u64;
        if resp.write_to(conn, keep).is_err() {
            return;
        }
        stats.bytes_out.fetch_add(len, Ordering::Relaxed);
        if !keep {
            return;
        }
    }
}

/// The request handler shared with the SEDA baseline: static files plus
/// FluxScript pages, same semantics as the Flux web server.
pub fn handle_request(path: &str, params: &[(String, String)], docroot: &DocRoot) -> Response {
    let Some(content) = docroot.get(path) else {
        return Response::not_found();
    };
    if path.ends_with(".fxs") {
        let template = String::from_utf8_lossy(content).into_owned();
        let mut vars: HashMap<String, Value> = HashMap::new();
        for (k, v) in params {
            let val = v
                .parse::<i64>()
                .map(Value::Int)
                .unwrap_or(Value::Str(v.clone()));
            vars.insert(k.clone(), val);
        }
        match flux_http::fxs_render(&template, &vars) {
            Ok(html) => Response::ok("text/html", html.into_bytes()),
            Err(_) => Response::error(500),
        }
    } else {
        let effective = if path == "/" { "/index.html" } else { path };
        Response::ok(mime_for(effective), content.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_http::read_response;
    use flux_net::MemNet;
    use std::io::Write as _;

    fn docroot() -> DocRoot {
        let mut root = DocRoot::new();
        root.insert("/index.html", "<h1>knot</h1>");
        root.insert("/calc.fxs", "<?fx echo $a * $b; ?>");
        root
    }

    #[test]
    fn serves_static_and_dynamic() {
        let net = MemNet::new();
        let listener = net.listen("knot").unwrap();
        let server = KnotServer::start(Box::new(listener), docroot(), 2);

        let mut conn = net.connect("knot").unwrap();
        write!(conn, "GET / HTTP/1.1\r\nConnection: keep-alive\r\n\r\n").unwrap();
        let (status, body) = read_response(&mut conn).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, b"<h1>knot</h1>");

        write!(
            conn,
            "GET /calc.fxs?a=6&b=7 HTTP/1.1\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let (status, body) = read_response(&mut conn).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, b"42");

        let mut conn = net.connect("knot").unwrap();
        write!(conn, "GET /nope HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        let (status, _) = read_response(&mut conn).unwrap();
        assert_eq!(status, 404);

        assert_eq!(server.stats.requests.load(Ordering::Relaxed), 3);
        server.stop();
    }
}
