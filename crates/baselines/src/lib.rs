//! # flux-baselines — the hand-written comparator servers
//!
//! The paper measures Flux against hand-tuned conventional
//! implementations (§4): knot (Capriccio's threaded web server), Haboob
//! (SEDA's staged event-driven web server), CTorrent (a threaded
//! BitTorrent peer in C) and a traditional game server. This crate
//! holds architectural equivalents built on the same substrates, so
//! the Figure 3/4 comparisons measure coordination style rather than
//! substrate differences (see DESIGN.md §4).

pub mod ctorrent;
pub mod game;
pub mod knot;
pub mod seda;

pub use ctorrent::{CtServer, CtStats};
pub use game::{GameStats, HandGameServer};
pub use knot::{KnotServer, KnotStats};
pub use seda::{SedaConfig, SedaServer, SedaStats};
