//! A Haboob-like staged event-driven web server (substitute for SEDA's
//! Haboob, the slower comparator in Figure 3).
//!
//! A miniature SEDA: the request path is decomposed into *stages*
//! (parse → handle → send), each with its own bounded event queue and
//! its own small thread pool. Events carry the connection between
//! stages; every hop costs an enqueue/dequeue and usually a context
//! switch — the architectural overhead that makes Haboob trail knot and
//! Flux in the paper's Figure 3.

use crossbeam::channel::{bounded, Receiver, Sender};
use flux_http::{read_request, DocRoot, ParseError, Request, Response};
use flux_net::{Conn, Listener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Events flowing between stages.
enum StageEvent {
    /// A connection ready for request parsing.
    Parse(Box<dyn Conn>),
    /// A parsed request awaiting handling.
    Handle(Box<dyn Conn>, Request),
    /// A response ready to send.
    Send(Box<dyn Conn>, Request, Response),
}

/// Stats comparable with the other web servers.
#[derive(Default)]
pub struct SedaStats {
    pub requests: AtomicU64,
    pub bytes_out: AtomicU64,
    /// Events dropped due to full stage queues (overload shedding).
    pub shed: AtomicU64,
}

/// A running mini-SEDA server.
pub struct SedaServer {
    pub stats: Arc<SedaStats>,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

/// Per-stage thread count.
#[derive(Debug, Clone, Copy)]
pub struct SedaConfig {
    pub parse_threads: usize,
    pub handle_threads: usize,
    pub send_threads: usize,
    pub queue_depth: usize,
}

impl Default for SedaConfig {
    fn default() -> Self {
        SedaConfig {
            parse_threads: 2,
            handle_threads: 4,
            send_threads: 2,
            queue_depth: 1024,
        }
    }
}

impl SedaServer {
    /// Starts the staged pipeline behind an acceptor.
    pub fn start(listener: Box<dyn Listener>, docroot: DocRoot, config: SedaConfig) -> SedaServer {
        let stats = Arc::new(SedaStats::default());
        let stop = Arc::new(AtomicBool::new(false));
        let docroot = Arc::new(docroot);
        let (parse_tx, parse_rx) = bounded::<StageEvent>(config.queue_depth);
        let (handle_tx, handle_rx) = bounded::<StageEvent>(config.queue_depth);
        let (send_tx, send_rx) = bounded::<StageEvent>(config.queue_depth);
        let mut threads = Vec::new();

        // Parse stage.
        for _ in 0..config.parse_threads.max(1) {
            let rx: Receiver<StageEvent> = parse_rx.clone();
            let next: Sender<StageEvent> = handle_tx.clone();
            let stats = stats.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("seda-parse".into())
                    .spawn(move || {
                        while let Ok(ev) = rx.recv() {
                            let StageEvent::Parse(mut conn) = ev else {
                                continue;
                            };
                            match read_request(&mut *conn) {
                                Ok(req) => {
                                    stats.requests.fetch_add(1, Ordering::Relaxed);
                                    if next.try_send(StageEvent::Handle(conn, req)).is_err() {
                                        stats.shed.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                                Err(ParseError::ConnectionClosed) => {}
                                Err(_) => {
                                    let _ = Response::error(400).write_to(&mut *conn, false);
                                }
                            }
                        }
                    })
                    .expect("spawn seda parse"),
            );
        }

        // Handle stage.
        for _ in 0..config.handle_threads.max(1) {
            let rx = handle_rx.clone();
            let next = send_tx.clone();
            let docroot = docroot.clone();
            let stats = stats.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("seda-handle".into())
                    .spawn(move || {
                        while let Ok(ev) = rx.recv() {
                            let StageEvent::Handle(conn, req) = ev else {
                                continue;
                            };
                            let resp = crate::knot::handle_request(
                                &req.path,
                                &req.query_params(),
                                &docroot,
                            );
                            if next.try_send(StageEvent::Send(conn, req, resp)).is_err() {
                                stats.shed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    })
                    .expect("spawn seda handle"),
            );
        }

        // Send stage: writes, then recycles keep-alive connections back
        // into the parse queue.
        for _ in 0..config.send_threads.max(1) {
            let rx = send_rx.clone();
            let back: Sender<StageEvent> = parse_tx.clone();
            let stats = stats.clone();
            threads.push(
                std::thread::Builder::new()
                    .name("seda-send".into())
                    .spawn(move || {
                        while let Ok(ev) = rx.recv() {
                            let StageEvent::Send(mut conn, req, resp) = ev else {
                                continue;
                            };
                            let keep = req.keep_alive();
                            if resp.write_to(&mut *conn, keep).is_ok() {
                                stats
                                    .bytes_out
                                    .fetch_add(resp.wire_len(keep) as u64, Ordering::Relaxed);
                                if keep && back.try_send(StageEvent::Parse(conn)).is_err() {
                                    stats.shed.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                    })
                    .expect("spawn seda send"),
            );
        }

        // Acceptor.
        {
            let stop = stop.clone();
            let stats = stats.clone();
            listener.set_accept_timeout(Some(Duration::from_millis(50)));
            threads.push(
                std::thread::Builder::new()
                    .name("seda-accept".into())
                    .spawn(move || loop {
                        if stop.load(Ordering::SeqCst) {
                            return;
                        }
                        match listener.accept() {
                            Ok(conn) => {
                                if parse_tx.try_send(StageEvent::Parse(conn)).is_err() {
                                    stats.shed.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::TimedOut => continue,
                            Err(_) => return,
                        }
                    })
                    .expect("spawn seda accept"),
            );
        }

        SedaServer {
            stats,
            stop,
            threads,
        }
    }

    /// Stops the server.
    pub fn stop(self) {
        self.stop.store(true, Ordering::SeqCst);
        // Dropping our ends does not close stage channels (clones live in
        // threads); the acceptor exit starves parse, which starves the
        // rest once queues drain. Joining the acceptor then detaching
        // stage threads keeps shutdown simple; for tests the process
        // exits anyway.
        for t in self.threads {
            if t.thread().name() == Some("seda-accept") {
                let _ = t.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_http::read_response;
    use flux_net::MemNet;
    use std::io::Write as _;

    #[test]
    fn staged_pipeline_serves_requests() {
        let mut docroot = DocRoot::new();
        docroot.insert("/index.html", "<h1>seda</h1>");
        docroot.insert("/c.fxs", "<?fx echo 2 + 2; ?>");
        let net = MemNet::new();
        let listener = net.listen("seda").unwrap();
        let server = SedaServer::start(Box::new(listener), docroot, SedaConfig::default());

        let mut conn = net.connect("seda").unwrap();
        write!(
            conn,
            "GET /index.html HTTP/1.1\r\nConnection: keep-alive\r\n\r\n"
        )
        .unwrap();
        let (status, body) = read_response(&mut conn).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, b"<h1>seda</h1>");

        // Keep-alive: the connection is recycled through the stages.
        write!(conn, "GET /c.fxs HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        let (status, body) = read_response(&mut conn).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, b"4");

        assert_eq!(server.stats.requests.load(Ordering::Relaxed), 2);
        server.stop();
    }

    #[test]
    fn missing_file_404s() {
        let net = MemNet::new();
        let listener = net.listen("seda2").unwrap();
        let server = SedaServer::start(Box::new(listener), DocRoot::new(), SedaConfig::default());
        let mut conn = net.connect("seda2").unwrap();
        write!(conn, "GET /x HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        let (status, _) = read_response(&mut conn).unwrap();
        assert_eq!(status, 404);
        server.stop();
    }
}
