//! A CTorrent-like hand-written BitTorrent seeder (substitute for the
//! CTorrent comparator of Figure 4).
//!
//! Classic threaded design: an accept loop hands each peer connection
//! to a dedicated thread that owns it — handshake, bitfield, then a
//! read-request/write-piece loop until disconnect. Same substrate
//! (`flux-bittorrent`) as the Flux peer, no coordination layer.

use flux_bittorrent::{Handshake, Message, Metainfo, PieceStore};
use flux_net::{Conn, Listener};
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Stats comparable with the Flux peer's.
#[derive(Default)]
pub struct CtStats {
    pub blocks_served: AtomicU64,
    pub bytes_up: AtomicU64,
    pub peers_seen: AtomicU64,
}

/// A running ctorrent-like seeder.
pub struct CtServer {
    pub stats: Arc<CtStats>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl CtServer {
    /// Starts the seeder.
    pub fn start(listener: Box<dyn Listener>, meta: Metainfo, file: Vec<u8>) -> CtServer {
        let stats = Arc::new(CtStats::default());
        let stop = Arc::new(AtomicBool::new(false));
        let store = Arc::new(PieceStore::new(meta, file).expect("seed file matches metainfo"));
        let accept_thread = {
            let stats = stats.clone();
            let stop = stop.clone();
            listener.set_accept_timeout(Some(Duration::from_millis(50)));
            std::thread::Builder::new()
                .name("ct-accept".into())
                .spawn(move || loop {
                    if stop.load(Ordering::SeqCst) {
                        return;
                    }
                    match listener.accept() {
                        Ok(conn) => {
                            let store = store.clone();
                            let stats = stats.clone();
                            stats.peers_seen.fetch_add(1, Ordering::Relaxed);
                            let _ = std::thread::Builder::new()
                                .name("ct-peer".into())
                                .spawn(move || serve_peer(conn, &store, &stats));
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::TimedOut => continue,
                        Err(_) => return,
                    }
                })
                .expect("spawn ct acceptor")
        };
        CtServer {
            stats,
            stop,
            accept_thread: Some(accept_thread),
        }
    }

    /// Stops accepting (in-flight peers finish naturally).
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn serve_peer(mut conn: Box<dyn Conn>, store: &PieceStore, stats: &CtStats) {
    let Ok(hs) = Handshake::read_from(&mut *conn) else {
        return;
    };
    if hs.info_hash != store.metainfo().info_hash {
        return;
    }
    let reply = Handshake {
        info_hash: store.metainfo().info_hash,
        peer_id: *b"-CT0001-baseline0001",
    };
    if conn.write_all(&reply.encode()).is_err() {
        return;
    }
    let bits = store.bitfield();
    if Message::Bitfield(bits.as_bytes().to_vec())
        .write_to(&mut *conn)
        .is_err()
    {
        return;
    }
    loop {
        match Message::read_from(&mut *conn) {
            Ok(Message::Request {
                index,
                begin,
                length,
            }) => {
                let Some(block) = store.read_block(index, begin, length) else {
                    return;
                };
                let reply = Message::Piece {
                    index,
                    begin,
                    data: block.to_vec(),
                };
                if reply.write_to(&mut *conn).is_err() {
                    return;
                }
                stats.blocks_served.fetch_add(1, Ordering::Relaxed);
                stats
                    .bytes_up
                    .fetch_add(length as u64 + 13, Ordering::Relaxed);
            }
            Ok(Message::KeepAlive) => continue,
            Ok(Message::Interested) | Ok(Message::NotInterested) => continue,
            Ok(Message::Have { .. }) | Ok(Message::Bitfield(_)) => continue,
            Ok(Message::Cancel { .. }) => continue,
            Ok(Message::Choke) | Ok(Message::Unchoke) => continue,
            Ok(Message::Piece { .. }) => continue,
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_bittorrent::synth_file;
    use flux_net::MemNet;
    use flux_servers::bt::client;

    #[test]
    fn serves_complete_download() {
        let file = synth_file(180_000, 3);
        let meta = Metainfo::from_file("t", "f", 32 * 1024, &file);
        let net = MemNet::new();
        let listener = net.listen("ct").unwrap();
        let server = CtServer::start(Box::new(listener), meta.clone(), file.clone());
        let conn = net.connect("ct").unwrap();
        let got =
            client::download(Box::new(conn), &meta, *b"-FX0001-testclient01", Some(3)).unwrap();
        assert_eq!(got, file);
        assert!(server.stats.blocks_served.load(Ordering::Relaxed) > 0);
        server.stop();
    }

    #[test]
    fn concurrent_peers() {
        let file = synth_file(120_000, 8);
        let meta = Metainfo::from_file("t", "f", 32 * 1024, &file);
        let net = MemNet::new();
        let listener = net.listen("ct2").unwrap();
        let server = CtServer::start(Box::new(listener), meta.clone(), file.clone());
        let mut joins = Vec::new();
        for i in 0..4u8 {
            let net = net.clone();
            let meta = meta.clone();
            let file = file.clone();
            joins.push(std::thread::spawn(move || {
                let mut id = *b"-FX0001-testclient00";
                id[19] = b'0' + i;
                let conn = net.connect("ct2").unwrap();
                let got = client::download(Box::new(conn), &meta, id, None).unwrap();
                assert_eq!(got, file);
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(server.stats.peers_seen.load(Ordering::Relaxed), 4);
        server.stop();
    }
}
