//! The dedicated profiling socket of §5.2, as a service.
//!
//! "A performance analyst can obtain path profiles from a running Flux
//! server by connecting to a dedicated socket." [`spawn`] attaches that
//! socket — any [`flux_net::Listener`], real TCP or in-memory — to a
//! running [`FluxServer`]; each accepted connection is answered by
//! `flux_runtime::handle_profile_conn` (one command line in, one text
//! report out).

use flux_net::Listener;
use flux_runtime::FluxServer;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A running profiling service; drop-off is explicit via [`stop`].
pub struct ProfileService {
    stop: Arc<AtomicBool>,
    thread: JoinHandle<()>,
}

/// Serves profiling requests for `server` on `listener` until stopped.
pub fn spawn<P: Send + 'static>(
    server: Arc<FluxServer<P>>,
    listener: Box<dyn Listener>,
) -> ProfileService {
    let stop = Arc::new(AtomicBool::new(false));
    let flag = stop.clone();
    listener.set_accept_timeout(Some(Duration::from_millis(50)));
    let thread = std::thread::Builder::new()
        .name("flux-profile-socket".into())
        .spawn(move || {
            while !flag.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok(mut conn) => {
                        let _ = conn.set_read_timeout(Some(Duration::from_secs(2)));
                        let _ = flux_runtime::handle_profile_conn(&*server, &mut *conn);
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::TimedOut => {}
                    Err(_) => break,
                }
            }
        })
        .expect("spawn profile socket thread");
    ProfileService { stop, thread }
}

/// Stops the service and joins its thread.
pub fn stop(service: ProfileService) {
    service.stop.store(true, Ordering::SeqCst);
    let _ = service.thread.join();
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_net::MemNet;
    use flux_runtime::{NodeOutcome, NodeRegistry, RuntimeKind, SourceOutcome};
    use std::io::{Read as _, Write as _};
    use std::sync::atomic::AtomicU64;

    /// End-to-end §5.2: profile a running server through the socket.
    #[test]
    fn analyst_reads_hot_paths_over_the_socket() {
        let program = flux_core::compile(
            "Gen () => (int n); Work (int n) => (int n); Out (int n) => ();
             F = Work -> Out; source Gen => F;",
        )
        .unwrap();
        let total = 120u64;
        let mut reg: NodeRegistry<u64> = NodeRegistry::new();
        let produced = AtomicU64::new(0);
        reg.source("Gen", move || {
            let i = produced.fetch_add(1, Ordering::SeqCst);
            if i >= total {
                SourceOutcome::Shutdown
            } else {
                SourceOutcome::New(i)
            }
        });
        reg.node("Work", |_| NodeOutcome::Ok);
        reg.node("Out", |_| NodeOutcome::Ok);
        let server = Arc::new(FluxServer::with_profiling(program, reg).expect("registry complete"));
        let handle = flux_runtime::start(server.clone(), RuntimeKind::ThreadPool { workers: 2 });

        let net = MemNet::new();
        let service = spawn(server.clone(), Box::new(net.listen("profile").unwrap()));
        handle.join();

        // The analyst connects while the server object is live.
        let mut conn = net.connect("profile").unwrap();
        conn.write_all(b"count\n").unwrap();
        let mut reply = String::new();
        conn.read_to_string(&mut reply).unwrap();
        assert!(reply.contains("Gen -> Work -> Out"), "{reply}");
        assert!(reply.contains("120"), "{reply}");

        // Stats over a fresh connection.
        let mut conn = net.connect("profile").unwrap();
        conn.write_all(b"stats\n").unwrap();
        let mut reply = String::new();
        conn.read_to_string(&mut reply).unwrap();
        assert!(reply.contains("completed 120"), "{reply}");

        stop(service);
    }
}
