//! One typed construction surface for all five servers.
//!
//! The paper's runtime-independence claim says the same Flux program
//! runs on any concurrency substrate; this module makes the *public
//! API* reflect that. Before it, each server exposed its own divergent
//! `spawn(config, runtime, profile)` signature; now every server,
//! example, bench harness and test constructs through one
//! [`ServerBuilder`]:
//!
//! ```ignore
//! let server = ServerBuilder::new(WebSpec::new(listener, docroot))
//!     .runtime(RuntimeKind::event_driven_sharded(4, 4))
//!     .net(NetConfig::default())   // backend, max_pending_out, io_timeout
//!     .profile(true)
//!     .spawn();
//! ```
//!
//! The builder owns the glue every server shared but re-implemented:
//! compiling the program and binding the registry (via the server's
//! [`ServerSpec`]), toggling path profiling, installing the network
//! driver's counters into [`flux_runtime::ServerStats`], and starting
//! the chosen [`RuntimeKind`]. The [`NetConfig`] travels into the
//! spec's `build`, so the readiness backend (poll/epoll), the
//! per-connection output-buffer bound and the event-poll timeout are
//! decided in exactly one place.

use flux_core::CompiledProgram;
use flux_net::{ConnDriver, NetConfig};
use flux_runtime::{
    AdaptivePolicy, FusionMode, NodeRegistry, OverloadPolicy, RuntimeKind, ShardQueueKind,
};
use std::sync::Arc;

/// What a server kind must provide to be built: its compiled program,
/// bound node registry and shared context, plus access to its network
/// driver (when it has one) for stats installation.
pub trait ServerSpec {
    /// The per-flow payload type.
    type Flow: Send + 'static;
    /// The shared server context handed back to the caller
    /// (`Arc<WebCtx>`, `Arc<BtCtx>`, ...).
    type Ctx;

    /// Compiles the Flux program, binds the node implementations and
    /// builds the shared context, constructing any [`ConnDriver`]
    /// through `net`.
    fn build(self, net: &NetConfig) -> (CompiledProgram, NodeRegistry<Self::Flow>, Self::Ctx);

    /// The context's network driver, when the server has one (used to
    /// publish [`flux_net::DriverCounters`] into the runtime stats).
    fn driver(ctx: &Self::Ctx) -> Option<Arc<ConnDriver>>;

    /// The context's fan-out counter block, when the server is a
    /// streaming (pub/sub) server. The builder shares it into
    /// [`flux_runtime::ServerStats::fanout`] so `describe()` reports
    /// publishes/deliveries/coalesced next to the flow counters.
    fn fanout(ctx: &Self::Ctx) -> Option<Arc<flux_runtime::FanoutStat>> {
        let _ = ctx;
        None
    }
}

/// A running server: the runtime handle plus the server's shared
/// context. The per-server aliases (`web::WebServer`, `bt::BtServer`,
/// `image::ImageServer`, `game::GameServer`, `pubsub::PubSubServer`)
/// are instantiations of this one type.
pub struct RunningServer<P: Send + 'static, C> {
    pub handle: flux_runtime::ServerHandle<P>,
    pub ctx: C,
}

/// The one typed builder behind all five servers (see module docs).
pub struct ServerBuilder<S: ServerSpec> {
    spec: S,
    runtime: RuntimeKind,
    /// Set by [`ServerBuilder::adaptive`]; applied to the event-driven
    /// runtime at [`ServerBuilder::spawn`], so `.adaptive(...)` and
    /// `.runtime(...)` compose in either order.
    adaptive: Option<AdaptivePolicy>,
    /// Set by [`ServerBuilder::shard_queue`]; applied at
    /// [`ServerBuilder::spawn`] like `adaptive`, so it composes with
    /// `.runtime(...)` in either order.
    shard_queue: Option<ShardQueueKind>,
    /// Set by [`ServerBuilder::fusion`]; [`FusionMode::On`] (segment
    /// execution) when unset.
    fusion: Option<FusionMode>,
    /// Set by [`ServerBuilder::overload`]; applied at
    /// [`ServerBuilder::spawn`] like `adaptive`, so it composes with
    /// `.runtime(...)` in either order.
    overload: Option<OverloadPolicy>,
    net: NetConfig,
    profile: bool,
    stats: bool,
}

impl<S: ServerSpec> ServerBuilder<S> {
    /// A builder with the defaults: the paper's event-driven runtime
    /// (one dispatcher shard, four I/O workers), the default
    /// [`NetConfig`] (epoll on Linux with poll fallback, honouring
    /// `FLUX_POLLER`), profiling off, stats on.
    pub fn new(spec: S) -> Self {
        ServerBuilder {
            spec,
            runtime: RuntimeKind::event_driven_sharded(1, 4),
            adaptive: None,
            shard_queue: None,
            fusion: None,
            overload: None,
            net: NetConfig::default(),
            profile: false,
            stats: true,
        }
    }

    /// Which runtime executes the flows (paper §3.2).
    pub fn runtime(mut self, kind: RuntimeKind) -> Self {
        self.runtime = kind;
        self
    }

    /// Sets the adaptive shard policy of the event-driven runtime:
    /// [`AdaptivePolicy::Adaptive`] runs the controller loop that parks
    /// idle dispatchers and wakes them on burst,
    /// [`AdaptivePolicy::Static`] (the default) keeps the paper's fixed
    /// dispatcher set. Applied at [`ServerBuilder::spawn`], so it
    /// composes with [`ServerBuilder::runtime`] in either call order;
    /// ignored by the non-event runtimes, and inert when the
    /// event-driven runtime has a single shard (one dispatcher is
    /// already the controller's floor — `stats.adaptive.describe()`
    /// reports which state is actually running).
    pub fn adaptive(mut self, policy: AdaptivePolicy) -> Self {
        self.adaptive = Some(policy);
        self
    }

    /// Selects the shard-queue implementation of the event-driven
    /// runtime ([`ShardQueueKind::Mutex`] is the default;
    /// [`ShardQueueKind::Ring`] swaps in the lock-free bounded ring).
    /// Applied at [`ServerBuilder::spawn`] so it composes with
    /// [`ServerBuilder::runtime`] in either call order; ignored by the
    /// non-event runtimes. The `FLUX_SHARD_QUEUE` env var overrides
    /// either choice at start.
    pub fn shard_queue(mut self, kind: ShardQueueKind) -> Self {
        self.shard_queue = Some(kind);
        self
    }

    /// Selects the flow interpreter: [`FusionMode::On`] (the default)
    /// executes fused straight-line segments in one queue turn,
    /// [`FusionMode::Off`] keeps the per-vertex oracle for ablation.
    /// The `FLUX_FUSE` env var overrides either choice at start.
    pub fn fusion(mut self, mode: FusionMode) -> Self {
        self.fusion = Some(mode);
        self
    }

    /// Sets the overload policy of the event-driven runtime:
    /// [`OverloadPolicy::Bounded`] enforces hard per-shard queue depth
    /// caps with shed-at-source (servers answer a prebuilt 503/BUSY via
    /// their registered shed handler), [`OverloadPolicy::Unbounded`]
    /// (the default) is the paper's grow-without-limit semantics.
    /// Applied at [`ServerBuilder::spawn`] so it composes with
    /// [`ServerBuilder::runtime`] in either call order; ignored by the
    /// non-event runtimes.
    pub fn overload(mut self, policy: OverloadPolicy) -> Self {
        self.overload = Some(policy);
        self
    }

    /// Replaces the whole network configuration.
    pub fn net(mut self, net: NetConfig) -> Self {
        self.net = net;
        self
    }

    /// Selects the readiness backend (poll or epoll) for this server's
    /// driver.
    #[cfg(unix)]
    pub fn backend(mut self, backend: flux_net::PollerBackend) -> Self {
        self.net.backend = backend;
        self
    }

    /// Caps each connection's output buffer on the non-blocking write
    /// path.
    pub fn max_pending_out(mut self, bytes: usize) -> Self {
        self.net.max_pending_out = bytes;
        self
    }

    /// How long the server's `Listen` source blocks per event poll
    /// before re-checking shutdown.
    pub fn io_timeout(mut self, timeout: std::time::Duration) -> Self {
        self.net.io_timeout = timeout;
        self
    }

    /// Caps live connections on this server's driver: past the cap the
    /// acceptor closes fresh sockets immediately (counted in
    /// `accepts_governed`) instead of registering them. `0` (the
    /// default) is unlimited.
    pub fn max_conns(mut self, n: usize) -> Self {
        self.net.max_conns = n;
        self
    }

    /// Bounds the accept rate (connections/second token bucket with a
    /// one-second burst). `0` (the default) is unlimited.
    pub fn accept_rate(mut self, per_sec: u32) -> Self {
        self.net.accept_rate = per_sec;
        self
    }

    /// Arms idle/slow-loris reaping: connections with no application
    /// progress for `timeout` are swept out by the reactor tick,
    /// releasing their slab slot and poller watch. `None` (the
    /// default) disables reaping.
    pub fn idle_timeout(mut self, timeout: Option<std::time::Duration>) -> Self {
        self.net.idle_timeout = timeout;
        self
    }

    /// Enables Ball–Larus path profiling (paper §5.2).
    pub fn profile(mut self, on: bool) -> Self {
        self.profile = on;
        self
    }

    /// Publishes the network driver's counters into
    /// [`flux_runtime::ServerStats`] (on by default).
    pub fn stats(mut self, on: bool) -> Self {
        self.stats = on;
        self
    }

    /// Compiles, binds and starts the server.
    pub fn spawn(mut self) -> RunningServer<S::Flow, S::Ctx> {
        if let (Some(policy), RuntimeKind::EventDriven { adaptive, .. }) =
            (self.adaptive, &mut self.runtime)
        {
            *adaptive = policy;
        }
        if let (Some(kind), RuntimeKind::EventDriven { queue, .. }) =
            (self.shard_queue, &mut self.runtime)
        {
            *queue = kind;
        }
        if let (Some(policy), RuntimeKind::EventDriven { overload, .. }) =
            (self.overload, &mut self.runtime)
        {
            *overload = policy;
        }
        let (program, registry, ctx) = self.spec.build(&self.net);
        let mut server = flux_runtime::FluxServer::with_options(
            program,
            registry,
            self.profile,
            self.fusion.unwrap_or_default(),
        )
        .expect("registry satisfies the program");
        if let Some(fanout) = S::fanout(&ctx) {
            server.stats.fanout = fanout;
        }
        if self.stats {
            if let Some(driver) = S::driver(&ctx) {
                server
                    .stats
                    .install_net(Arc::new(crate::DriverNetCounters(driver.counters())));
            }
        }
        let handle = flux_runtime::start(Arc::new(server), self.runtime);
        RunningServer { handle, ctx }
    }
}
