//! The Flux web server (paper §4.2): HTTP/1.1 with static files and
//! FluxScript dynamic pages (the PHP substitute).
//!
//! Flux programs are acyclic, so a keep-alive connection is not a loop
//! in the graph: the `Listen` source multiplexes readiness over all
//! connections (via [`flux_net::ConnDriver`]) and emits one flow per
//! ready request; `Complete` either closes the connection (deferred
//! until the response drains) or re-arms it for the next request. This
//! mirrors the paper's web and BitTorrent servers, whose source nodes
//! select over existing clients.
//!
//! Response transmission defaults to [`WriteMode::Reactor`]: the
//! `Write` node enqueues the serialized response on the driver's
//! non-blocking write path and completes immediately, leaving partial
//! writes to the reactor's `POLLOUT` drain — no I/O worker is ever
//! parked in `send(2)` and no connection lock is held across a send.
//!
//! Event delivery defaults to [`HotPath::Batched`]: `Listen` drains a
//! whole reactor round per poll and hands the burst to the runtime as
//! one `SourceOutcome::Batch` (one shard-queue lock downstream),
//! responses serialize into the driver's pooled buffers, and request
//! heads parse into per-connection scratch — the steady-state request
//! path performs no hashing and no heap allocation.
//! [`HotPath::PerEvent`] preserves the old behaviour for the
//! old-vs-new ablation (`BENCH_hot_path.json`).

use crate::builder::{RunningServer, ServerSpec};
use flux_core::CompiledProgram;
use flux_http::{
    mime_for, read_request, read_request_buffered, DocRoot, ParseError, Request, Response, Value,
};
use flux_net::{ConnDriver, DriverEvent, Listener, NetConfig, SharedConn, Token};
use flux_runtime::{NodeOutcome, NodeRegistry, SourceOutcome};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The Flux program, as the paper would write it (~36 lines).
pub const FLUX_SRC: &str = r#"
    Listen () => (int token);
    ReadRequest (int token)
      => (int token, bool close, http_request *req);
    RunScript (int token, bool close, http_request *req)
      => (int token, bool close, http_response *resp);
    ReadFromDisk (int token, bool close, http_request *req)
      => (int token, bool close, http_response *resp);
    Write (int token, bool close, http_response *resp)
      => (int token, bool close);
    Complete (int token, bool close) => ();
    BadRequest (int token) => ();
    FourOhFour (int token, bool close, http_request *req) => ();
    FiveHundred (int token, bool close, http_request *req) => ();

    typedef script IsScript;

    source Listen => Page;
    Page = ReadRequest -> Handler -> Write -> Complete;
    Handler:[_, _, script] = RunScript;
    Handler:[_, _, _] = ReadFromDisk;

    handle error ReadRequest => BadRequest;
    handle error ReadFromDisk => FourOhFour;
    handle error RunScript => FiveHundred;

    blocking ReadRequest;
"#;

/// How events travel from the driver into flows — the new batched,
/// pooled hot path versus the pre-slab per-event behaviour (kept for
/// the old-vs-new ablation, `BENCH_hot_path.json`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HotPath {
    /// `Listen` drains a whole readiness batch per poll
    /// (`ConnDriver::next_events` → `SourceOutcome::Batch`, one shard
    /// queue lock per burst), responses serialize into pooled buffers,
    /// and request heads parse into per-connection scratch. Default.
    #[default]
    Batched,
    /// One event per poll, a fresh allocation per response and per
    /// request head — the per-event delivery PRs 1–3 shipped.
    PerEvent,
}

/// How the `Write` node transmits responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WriteMode {
    /// Enqueue on the connection's output buffer and complete: the
    /// reactor drains partial writes via `POLLOUT`, so `Write` never
    /// occupies an I/O worker or holds the connection lock across a
    /// send. This is the default.
    #[default]
    Reactor,
    /// The seed behaviour: `Write` is a blocking node that parks an I/O
    /// worker in `write_all` under the connection lock for the full
    /// send. Kept for the ablation benchmark.
    Blocking,
}

/// Per-flow payload: the union of fields flowing between nodes, exactly
/// like the paper's per-flow C struct.
pub struct WebFlow {
    pub token: Token,
    pub close: bool,
    pub request: Option<Request>,
    pub response: Option<Response>,
    conn: Option<SharedConn>,
}

/// Shared server context captured by the node closures.
pub struct WebCtx {
    pub driver: Arc<ConnDriver>,
    pub docroot: DocRoot,
    /// Total response bytes written (throughput accounting).
    pub bytes_out: AtomicU64,
    /// Requests served (any status).
    pub requests: AtomicU64,
    /// Buffer pooling on (the [`HotPath::Batched`] configuration).
    pooled: bool,
    /// Prebuilt `503 Service Unavailable` wire bytes (Connection:
    /// close), serialized once at build time so the shed path costs one
    /// pooled-buffer copy and no formatting.
    busy_response: Vec<u8>,
}

impl WebCtx {
    fn conn(&self, token: Token) -> Option<SharedConn> {
        self.driver.get(token)
    }

    fn finish(&self, token: Token, close: bool) {
        if close {
            // Deferred close: the connection goes away only after the
            // reactor has drained any still-buffered response bytes.
            self.driver.remove_when_flushed(token);
        } else {
            self.driver.arm(token);
        }
    }

    /// Blocking-mode transmission: holds the connection lock across the
    /// full send (the seed behaviour, kept for the ablation benchmark).
    fn write_response(&self, flow_conn: &SharedConn, resp: &Response, close: bool) -> bool {
        let mut conn = flow_conn.lock();
        let ok = resp.write_to(&mut **conn, !close).is_ok();
        if ok {
            self.bytes_out
                .fetch_add(resp.wire_len(!close) as u64, Ordering::Relaxed);
        }
        ok
    }

    /// Reactor-mode transmission: serializes the response and enqueues
    /// it on the driver's non-blocking write path. Completion (and any
    /// failure) arrives on the event stream as `WriteDone`/`WriteFailed`.
    /// `bytes_out` counts bytes *accepted for transmission*; a write
    /// that later fails mid-drain is still counted (benchmark goodput
    /// is measured client-side, so this only affects the server's own
    /// gauge). With pooling on, the serialization buffer comes from
    /// (and returns to) the driver's bounded pool, so the steady-state
    /// reply path performs no heap allocation.
    fn send_response(&self, token: Token, resp: &Response, close: bool) -> bool {
        let mut bytes = if self.pooled {
            self.driver.take_write_buf()
        } else {
            Vec::new()
        };
        bytes.reserve(resp.wire_len(!close));
        resp.write_to(&mut bytes, !close)
            .expect("serializing a response to memory cannot fail");
        let len = bytes.len() as u64;
        let ok = if self.pooled {
            self.driver.submit_write_buf(token, bytes)
        } else {
            self.driver.submit_write(token, &bytes)
        };
        if ok {
            self.bytes_out.fetch_add(len, Ordering::Relaxed);
        }
        ok
    }

    /// The shed path: answers the prebuilt 503 from the pooled-buffer
    /// write path and closes once it drains. Runs on the source thread,
    /// *before* the flow enters any shard queue, so an overloaded
    /// server refuses work at the edge for the cost of one buffered
    /// write.
    fn shed_busy(&self, token: Token) {
        let mut bytes = self.driver.take_write_buf();
        bytes.extend_from_slice(&self.busy_response);
        if self.driver.submit_write_buf(token, bytes) {
            self.driver.remove_when_flushed(token);
        } else {
            self.driver.remove(token);
        }
    }
}

/// The web server's build spec: what [`crate::ServerBuilder`] consumes.
pub struct WebSpec {
    pub listener: Box<dyn Listener>,
    pub docroot: DocRoot,
    pub write_mode: WriteMode,
    pub hot_path: HotPath,
}

impl WebSpec {
    /// A spec with the default (reactor) write mode and the batched,
    /// pooled hot path.
    pub fn new(listener: Box<dyn Listener>, docroot: DocRoot) -> Self {
        WebSpec {
            listener,
            docroot,
            write_mode: WriteMode::Reactor,
            hot_path: HotPath::Batched,
        }
    }

    /// Overrides how the `Write` node transmits (the blocking mode is
    /// kept for the ablation benchmark).
    pub fn write_mode(mut self, mode: WriteMode) -> Self {
        self.write_mode = mode;
        self
    }

    /// Overrides the event-delivery/buffer strategy (the per-event mode
    /// is kept for the old-vs-new hot-path ablation).
    pub fn hot_path(mut self, mode: HotPath) -> Self {
        self.hot_path = mode;
        self
    }
}

impl ServerSpec for WebSpec {
    type Flow = WebFlow;
    type Ctx = Arc<WebCtx>;

    fn build(self, net: &NetConfig) -> (CompiledProgram, NodeRegistry<WebFlow>, Arc<WebCtx>) {
        build_spec(self, net)
    }

    fn driver(ctx: &Arc<WebCtx>) -> Option<Arc<ConnDriver>> {
        Some(ctx.driver.clone())
    }
}

/// Builds the compiled program, node registry and shared context with
/// the default (reactor) write mode and network configuration.
pub fn build(
    listener: Box<dyn Listener>,
    docroot: DocRoot,
) -> (CompiledProgram, NodeRegistry<WebFlow>, Arc<WebCtx>) {
    build_spec(WebSpec::new(listener, docroot), &NetConfig::default())
}

/// Builds the compiled program, node registry and shared context.
///
/// `net.io_timeout` bounds how long `Listen` blocks before yielding
/// (`SourceOutcome::Skip`) so shutdown stays responsive.
pub fn build_with(
    listener: Box<dyn Listener>,
    docroot: DocRoot,
    write_mode: WriteMode,
    net: &NetConfig,
) -> (CompiledProgram, NodeRegistry<WebFlow>, Arc<WebCtx>) {
    build_spec(WebSpec::new(listener, docroot).write_mode(write_mode), net)
}

/// How many driver events one `Listen` poll may drain in batched mode.
/// Bounds a single shard-queue append (and the flow vector) without
/// ever splitting a typical reactor round.
const LISTEN_BATCH: usize = 128;

fn build_spec(
    spec: WebSpec,
    net: &NetConfig,
) -> (CompiledProgram, NodeRegistry<WebFlow>, Arc<WebCtx>) {
    let WebSpec {
        listener,
        docroot,
        write_mode,
        hot_path,
    } = spec;
    let program = flux_core::compile(FLUX_SRC).expect("web server Flux program compiles");
    let driver = Arc::new(ConnDriver::with_config(net));
    driver.spawn_acceptor(listener);
    let io_timeout = net.io_timeout;
    let mut busy_response = Vec::new();
    Response::error(503)
        .write_to(&mut busy_response, false)
        .expect("serializing a response to memory cannot fail");
    let ctx = Arc::new(WebCtx {
        driver,
        docroot,
        bytes_out: AtomicU64::new(0),
        requests: AtomicU64::new(0),
        pooled: hot_path == HotPath::Batched,
        busy_response,
    });

    let mut reg: NodeRegistry<WebFlow> = NodeRegistry::new();

    // Source: the readiness multiplexer. New connections are armed for
    // their first request; readable connections become flows. Write
    // completions need no action here — the driver already retired the
    // submission (and performed any deferred close on the final
    // `WriteDone`, or removed the connection on `WriteFailed`).
    match hot_path {
        HotPath::Batched => {
            // Batched: one poll drains a whole reactor round; the burst
            // of readable connections becomes one SourceOutcome::Batch,
            // which the sharded runtime appends to each home shard
            // under a single queue lock. The event buffer is reused
            // across polls (the source closure is shared state, hence
            // the mutex — it is only ever locked from the one source
            // thread, so it is never contended).
            let c = ctx.clone();
            let events: Mutex<Vec<DriverEvent>> = Mutex::new(Vec::new());
            reg.source("Listen", move || {
                let mut buf = events.lock();
                buf.clear();
                if c.driver.next_events(&mut buf, LISTEN_BATCH, io_timeout) == 0 {
                    return SourceOutcome::Skip;
                }
                let mut flows: Vec<WebFlow> = Vec::with_capacity(buf.len());
                for ev in buf.drain(..) {
                    match ev {
                        DriverEvent::Incoming(token) => c.driver.arm(token),
                        DriverEvent::WriteDone(_) | DriverEvent::WriteFailed(_) => {}
                        DriverEvent::Readable(token) => flows.push(WebFlow {
                            token,
                            close: false,
                            request: None,
                            response: None,
                            conn: c.driver.get(token),
                        }),
                    }
                }
                match flows.len() {
                    0 => SourceOutcome::Skip,
                    1 => SourceOutcome::New(flows.pop().expect("len checked")),
                    _ => SourceOutcome::Batch(flows),
                }
            });
        }
        HotPath::PerEvent => {
            let c = ctx.clone();
            reg.source("Listen", move || match c.driver.next_event(io_timeout) {
                None => SourceOutcome::Skip,
                Some(DriverEvent::Incoming(token)) => {
                    c.driver.arm(token);
                    SourceOutcome::Skip
                }
                Some(DriverEvent::WriteDone(_)) | Some(DriverEvent::WriteFailed(_)) => {
                    SourceOutcome::Skip
                }
                Some(DriverEvent::Readable(token)) => SourceOutcome::New(WebFlow {
                    token,
                    close: false,
                    request: None,
                    response: None,
                    conn: c.driver.get(token),
                }),
            });
        }
    }

    let c = ctx.clone();
    reg.node_blocking("ReadRequest", move |f: &mut WebFlow| {
        let Some(conn) = f.conn.clone().or_else(|| c.conn(f.token)) else {
            return NodeOutcome::Err(1); // connection already gone
        };
        f.conn = Some(conn.clone());
        let mut guard = conn.lock();
        // Pooled mode parses the request head into the connection's
        // scratch buffer, reused across every request on a keep-alive
        // connection (slot lock under conn lock is the crate-wide
        // order, so taking it here is safe).
        let parsed = if c.pooled {
            let mut scratch = c.driver.take_read_buf(f.token);
            let parsed = read_request_buffered(&mut **guard, &mut scratch);
            c.driver.put_read_buf(f.token, scratch);
            parsed
        } else {
            read_request(&mut **guard)
        };
        match parsed {
            Ok(req) => {
                drop(guard);
                // A complete request head is application progress: the
                // idle sweep's deadline resets. Trickled partial heads
                // deliberately don't reset it (slow-loris reapability).
                c.driver.mark_progress(f.token);
                c.requests.fetch_add(1, Ordering::Relaxed);
                f.close = !req.keep_alive();
                f.request = Some(req);
                NodeOutcome::Ok
            }
            Err(ParseError::ConnectionClosed) => {
                drop(guard);
                c.driver.remove(f.token);
                NodeOutcome::Err(2)
            }
            Err(_) => {
                drop(guard);
                NodeOutcome::Err(3)
            }
        }
    });

    reg.predicate("IsScript", |f: &WebFlow| {
        f.request.as_ref().is_some_and(|r| r.path.ends_with(".fxs"))
    });

    let c = ctx.clone();
    reg.node("ReadFromDisk", move |f: &mut WebFlow| {
        let req = f.request.as_ref().expect("ReadRequest ran");
        match c.docroot.get(&req.path) {
            Some(body) => {
                f.response = Some(Response::ok(mime_for(&req.path), body.to_vec()));
                NodeOutcome::Ok
            }
            None => NodeOutcome::Err(404),
        }
    });

    let c = ctx.clone();
    reg.node("RunScript", move |f: &mut WebFlow| {
        let req = f.request.as_ref().expect("ReadRequest ran");
        let Some(template) = c.docroot.get(&req.path) else {
            return NodeOutcome::Err(404);
        };
        let template = String::from_utf8_lossy(template).into_owned();
        let mut vars: HashMap<String, Value> = HashMap::new();
        for (k, v) in req.query_params() {
            let val = v
                .parse::<i64>()
                .map(Value::Int)
                .unwrap_or(Value::Str(v.clone()));
            vars.insert(k, val);
        }
        match flux_http::fxs_render(&template, &vars) {
            Ok(html) => {
                f.response = Some(Response::ok("text/html", html.into_bytes()));
                NodeOutcome::Ok
            }
            Err(_) => NodeOutcome::Err(500),
        }
    });

    match write_mode {
        WriteMode::Reactor => {
            // Enqueue-and-complete: the node returns as soon as the
            // response bytes are buffered; the reactor drains them via
            // POLLOUT. Runs on a dispatcher shard, never the I/O pool.
            let c = ctx.clone();
            reg.node("Write", move |f: &mut WebFlow| {
                debug_assert!(
                    !std::thread::current()
                        .name()
                        .unwrap_or("")
                        .starts_with("flux-io-"),
                    "reactor-mode Write must not occupy an I/O worker"
                );
                let resp = f.response.as_ref().expect("handler set a response");
                if !c.send_response(f.token, resp, f.close) {
                    f.close = true; // connection already gone
                }
                NodeOutcome::Ok // delivery failure still completes the flow
            });
        }
        WriteMode::Blocking => {
            let c = ctx.clone();
            reg.node_blocking("Write", move |f: &mut WebFlow| {
                let resp = f.response.as_ref().expect("handler set a response");
                let Some(conn) = f.conn.clone() else {
                    return NodeOutcome::Err(1);
                };
                if !c.write_response(&conn, resp, f.close) {
                    f.close = true;
                }
                NodeOutcome::Ok // delivery failure still completes the flow
            });
        }
    }

    let c = ctx.clone();
    reg.node("Complete", move |f: &mut WebFlow| {
        c.finish(f.token, f.close);
        NodeOutcome::Ok
    });

    // Overload shedding (OverloadPolicy::Bounded): a readable
    // connection whose home shard stands at the depth cap gets the
    // prebuilt 503 instead of queueing doomed work.
    let c = ctx.clone();
    reg.on_shed(move |f: WebFlow| c.shed_busy(f.token));

    // Error handlers enqueue a diagnostic response and close or re-arm
    // (the driver's non-blocking write path works on every runtime, so
    // these stay non-blocking nodes in both write modes).
    let c = ctx.clone();
    reg.node("BadRequest", move |f: &mut WebFlow| {
        if c.send_response(f.token, &Response::error(400), true) {
            c.driver.remove_when_flushed(f.token);
        } else {
            c.driver.remove(f.token);
        }
        NodeOutcome::Ok
    });
    let c = ctx.clone();
    reg.node("FourOhFour", move |f: &mut WebFlow| {
        if c.send_response(f.token, &Response::not_found(), f.close) {
            c.finish(f.token, f.close);
        } else {
            c.driver.remove(f.token);
        }
        NodeOutcome::Ok
    });
    let c = ctx.clone();
    reg.node("FiveHundred", move |f: &mut WebFlow| {
        if c.send_response(f.token, &Response::error(500), f.close) {
            c.finish(f.token, f.close);
        } else {
            c.driver.remove(f.token);
        }
        NodeOutcome::Ok
    });

    (program, reg, ctx)
}

/// A running Flux web server plus its context — what
/// [`crate::ServerBuilder::spawn`] returns for a [`WebSpec`].
pub type WebServer = RunningServer<WebFlow, Arc<WebCtx>>;

/// Stops a web server: shuts down sources, the driver and runtime.
pub fn stop(server: WebServer) {
    server.ctx.driver.stop();
    server.handle.server().request_shutdown();
    server.handle.stop();
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_http::read_response;
    use flux_net::MemNet;
    use flux_runtime::RuntimeKind;
    use std::io::Write;

    fn docroot() -> DocRoot {
        let mut root = DocRoot::new();
        root.insert("/index.html", "<h1>home</h1>");
        root.insert("/a.txt", "alpha");
        root.insert(
            "/sum.fxs",
            "<?fx $t = 0; for ($i = 1; $i <= $n; $i = $i + 1) { $t = $t + $i; } echo $t; ?>",
        );
        root.insert("/bad.fxs", "<?fx echo $undefined_variable; ?>");
        root
    }

    fn get(net: &Arc<MemNet>, path: &str) -> (u16, Vec<u8>) {
        let mut conn = net.connect("web").unwrap();
        write!(
            conn,
            "GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        read_response(&mut conn).unwrap()
    }

    fn run_web_test(runtime: RuntimeKind) {
        run_web_test_mode(runtime, HotPath::Batched);
    }

    fn run_web_test_mode(runtime: RuntimeKind, hot_path: HotPath) {
        let net = MemNet::new();
        let listener = net.listen("web").unwrap();
        let server = crate::ServerBuilder::new(
            WebSpec::new(Box::new(listener), docroot()).hot_path(hot_path),
        )
        .runtime(runtime)
        .spawn();

        let (status, body) = get(&net, "/index.html");
        assert_eq!((status, body.as_slice()), (200, b"<h1>home</h1>".as_ref()));

        let (status, body) = get(&net, "/sum.fxs?n=10");
        assert_eq!(status, 200);
        assert_eq!(body, b"55");

        let (status, _) = get(&net, "/missing.html");
        assert_eq!(status, 404);

        let (status, _) = get(&net, "/bad.fxs");
        assert_eq!(status, 500);

        assert!(server.ctx.requests.load(Ordering::Relaxed) >= 4);
        stop(server);
    }

    #[test]
    fn serves_on_thread_pool() {
        run_web_test(RuntimeKind::ThreadPool { workers: 4 });
    }

    #[test]
    fn serves_on_event_runtime() {
        run_web_test(RuntimeKind::event_driven_sharded(1, 4));
    }

    #[test]
    fn serves_on_sharded_event_runtime() {
        run_web_test(RuntimeKind::event_driven_sharded(4, 4));
    }

    #[test]
    fn serves_on_thread_per_flow() {
        run_web_test(RuntimeKind::ThreadPerFlow);
    }

    /// The pre-slab per-event mode (kept for the old-vs-new hot-path
    /// ablation) must stay fully functional.
    #[test]
    fn serves_on_per_event_hot_path() {
        run_web_test_mode(RuntimeKind::event_driven_sharded(2, 4), HotPath::PerEvent);
    }

    #[test]
    fn keep_alive_serves_five_requests_per_connection() {
        let net = MemNet::new();
        let listener = net.listen("web").unwrap();
        let server = crate::ServerBuilder::new(WebSpec::new(Box::new(listener), docroot()))
            .runtime(RuntimeKind::ThreadPool { workers: 2 })
            .spawn();
        let mut conn = net.connect("web").unwrap();
        for i in 0..5 {
            let last = i == 4;
            let connection = if last { "close" } else { "keep-alive" };
            write!(
                conn,
                "GET /a.txt HTTP/1.1\r\nHost: t\r\nConnection: {connection}\r\n\r\n"
            )
            .unwrap();
            let (status, body) = read_response(&mut conn).unwrap();
            assert_eq!(status, 200);
            assert_eq!(body, b"alpha");
        }
        assert_eq!(server.ctx.requests.load(Ordering::Relaxed), 5);
        stop(server);
    }

    #[test]
    fn program_compiles_and_is_small() {
        let program = flux_core::compile(FLUX_SRC).unwrap();
        assert_eq!(program.flows.len(), 1);
        // Table 1: the paper's web server is 36 lines of Flux.
        let lines = FLUX_SRC
            .lines()
            .filter(|l| !l.trim().is_empty() && !l.trim().starts_with("//"))
            .count();
        assert!(lines <= 40, "Flux web server stays small: {lines} lines");
    }
}
