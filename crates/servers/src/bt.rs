//! The Flux BitTorrent peer (paper §4.3, Figure 7).
//!
//! The program graph follows Figure 7: one `Listen` source selects over
//! peer sockets (`GetClients -> SelectSockets -> CheckSockets`), new
//! connections flow through `SetupConnection -> Handshake ->
//! SendBitfield`, and messages flow through `ReadMessage ->
//! HandleMessage -> <per-type node> -> MessageDone` with predicate
//! dispatch over the message kind. Timer sources drive the tracker
//! check-in (`TrackerTimer`), the choke recomputation (`ChokeTimer`)
//! and keep-alives (`KeepAliveTimer`).
//!
//! As in the paper's benchmark setup, every peer is unchoked by default
//! and the bench peer holds a complete copy (a seeder). `CheckSockets`
//! returns an error when a wakeup carries no work (the peer sent only a
//! keep-alive) — that is the paper's famous most-frequent hot path
//! `Listen -> GetClients -> SelectSockets -> CheckSockets -> ERROR`.
//!
//! Every reply (handshake, bitfield, piece blocks, keep-alives) is
//! *enqueued* on the driver's non-blocking write path and drained by
//! the reactor on `POLLOUT`; the seed version held the connection lock
//! across `write_all` inside `Request`, occupying an I/O worker (and
//! blocking every other node touching that session) for the whole send.

use crate::builder::{RunningServer, ServerSpec};
use flux_bittorrent::{Handshake, Message, Metainfo, PieceStore};
use flux_core::CompiledProgram;
use flux_net::{ConnDriver, DriverEvent, Listener, NetConfig, SharedConn, Token};
use flux_runtime::{NodeOutcome, NodeRegistry, SourceOutcome};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The Flux program (~84 lines in the paper's Table 1).
pub const FLUX_SRC: &str = r#"
    Listen () => (int token, bool isnew);
    GetClients (int token, bool isnew) => (int token, bool isnew);
    SelectSockets (int token, bool isnew) => (int token, bool isnew);
    CheckSockets (int token, bool isnew)
      => (int token, bool isnew, bt_message *msg);

    AcceptHandshake (int token, bool isnew, bt_message *msg)
      => (int token, bool isnew, bt_message *msg);
    SendBitfield (int token, bool isnew, bt_message *msg) => ();

    ReadMessage (int token, bool isnew, bt_message *msg)
      => (int token, bool isnew, bt_message *msg);
    Request (int token, bool isnew, bt_message *msg)
      => (int token, bool isnew, bt_message *msg);
    Piece (int token, bool isnew, bt_message *msg)
      => (int token, bool isnew, bt_message *msg);
    Have (int token, bool isnew, bt_message *msg)
      => (int token, bool isnew, bt_message *msg);
    Bitfield (int token, bool isnew, bt_message *msg)
      => (int token, bool isnew, bt_message *msg);
    Interested (int token, bool isnew, bt_message *msg)
      => (int token, bool isnew, bt_message *msg);
    Uninterested (int token, bool isnew, bt_message *msg)
      => (int token, bool isnew, bt_message *msg);
    Choke (int token, bool isnew, bt_message *msg)
      => (int token, bool isnew, bt_message *msg);
    Unchoke (int token, bool isnew, bt_message *msg)
      => (int token, bool isnew, bt_message *msg);
    Cancel (int token, bool isnew, bt_message *msg)
      => (int token, bool isnew, bt_message *msg);
    UnknownMessage (int token, bool isnew, bt_message *msg)
      => (int token, bool isnew, bt_message *msg);
    MessageDone (int token, bool isnew, bt_message *msg) => ();
    DropPeer (int token, bool isnew, bt_message *msg) => ();

    TrackerTimer () => (int tick);
    CheckinWithTracker (int tick) => (int tick);
    SendRequestToTracker (int tick) => (int tick, tracker_response *resp);
    GetTrackerResponse (int tick, tracker_response *resp) => ();

    ChokeTimer () => (int tick);
    UpdateChokeList (int tick) => (int tick);
    PickChoked (int tick) => (int tick);
    SendChokeUnchoke (int tick) => ();

    KeepAliveTimer () => (int tick);
    SendKeepAlives (int tick) => ();

    typedef is_request IsRequest;
    typedef is_piece IsPiece;
    typedef is_have IsHave;
    typedef is_bitfield IsBitfield;
    typedef is_interested IsInterested;
    typedef is_uninterested IsUninterested;
    typedef is_choke IsChoke;
    typedef is_unchoke IsUnchoke;
    typedef is_cancel IsCancel;
    typedef is_new IsNew;

    source Listen => Peer;
    Peer = GetClients -> SelectSockets -> CheckSockets -> Work;
    Work:[_, is_new, _] = AcceptHandshake -> SendBitfield;
    Work:[_, _, _] = Message;
    Message = ReadMessage -> HandleMessage -> MessageDone;
    HandleMessage:[_, _, is_request] = Request;
    HandleMessage:[_, _, is_piece] = Piece;
    HandleMessage:[_, _, is_have] = Have;
    HandleMessage:[_, _, is_bitfield] = Bitfield;
    HandleMessage:[_, _, is_interested] = Interested;
    HandleMessage:[_, _, is_uninterested] = Uninterested;
    HandleMessage:[_, _, is_choke] = Choke;
    HandleMessage:[_, _, is_unchoke] = Unchoke;
    HandleMessage:[_, _, is_cancel] = Cancel;
    HandleMessage:[_, _, _] = UnknownMessage;

    source TrackerTimer => Announce;
    Announce = CheckinWithTracker -> SendRequestToTracker -> GetTrackerResponse;

    source ChokeTimer => Choking;
    Choking = UpdateChokeList -> PickChoked -> SendChokeUnchoke;

    source KeepAliveTimer => KeepAlive;
    KeepAlive = SendKeepAlives;

    handle error ReadMessage => DropPeer;
    handle error AcceptHandshake => DropPeer;
    handle error UnknownMessage => DropPeer;

    atomic GetClients: {clients?};
    atomic AcceptHandshake: {clients};
    atomic DropPeer: {clients};
    atomic SendKeepAlives: {clients?};
    atomic SendChokeUnchoke: {clients?};
    atomic UpdateChokeList: {choking};
    atomic PickChoked: {choking};

    blocking CheckSockets;
    blocking ReadMessage;
    blocking SendRequestToTracker;
"#;

/// Per-flow payload.
pub struct BtFlow {
    pub token: Token,
    pub isnew: bool,
    pub msg: Option<Message>,
    conn: Option<SharedConn>,
    pub tick: u64,
}

impl BtFlow {
    fn empty(token: Token, isnew: bool, conn: Option<SharedConn>) -> BtFlow {
        BtFlow {
            token,
            isnew,
            msg: None,
            conn,
            tick: 0,
        }
    }
}

/// One connected peer's server-side state.
pub struct PeerState {
    pub peer_id: [u8; 20],
    pub choked: bool,
    pub interested: bool,
    pub have: Vec<bool>,
}

/// Shared context for the peer.
pub struct BtCtx {
    pub driver: Arc<ConnDriver>,
    pub store: PieceStore,
    /// Connected peers (the `clients` constraint's data).
    pub peers: Mutex<HashMap<Token, PeerState>>,
    /// Tracker connector: opens a connection to the tracker address.
    tracker_dial: Box<dyn Fn() -> Option<Box<dyn flux_net::Conn>> + Send + Sync>,
    pub peer_id: [u8; 20],
    pub addr: String,
    /// Stats.
    pub blocks_served: AtomicU64,
    pub bytes_up: AtomicU64,
    pub keepalives_seen: AtomicU64,
    pub announces: AtomicU64,
    pub running: AtomicBool,
}

/// Configuration for the Flux peer.
pub struct BtConfig {
    pub listener: Box<dyn Listener>,
    pub meta: Metainfo,
    pub file: Vec<u8>,
    /// Opens a fresh connection to the tracker (None disables announces).
    pub tracker_dial: Option<Box<dyn Fn() -> Option<Box<dyn flux_net::Conn>> + Send + Sync>>,
    pub peer_id: [u8; 20],
    /// Address peers can reach us at (goes to the tracker).
    pub addr: String,
    /// Timer periods (shortened in tests).
    pub tracker_period: Duration,
    pub choke_period: Duration,
    pub keepalive_period: Duration,
}

impl ServerSpec for BtConfig {
    type Flow = BtFlow;
    type Ctx = Arc<BtCtx>;

    fn build(self, net: &NetConfig) -> (CompiledProgram, NodeRegistry<BtFlow>, Arc<BtCtx>) {
        build(self, net)
    }

    fn driver(ctx: &Arc<BtCtx>) -> Option<Arc<ConnDriver>> {
        Some(ctx.driver.clone())
    }
}

/// Builds the compiled Figure 7 program, registry and context.
pub fn build(
    config: BtConfig,
    net: &NetConfig,
) -> (CompiledProgram, NodeRegistry<BtFlow>, Arc<BtCtx>) {
    let program = flux_core::compile(FLUX_SRC).expect("BitTorrent Flux program compiles");
    let driver = Arc::new(ConnDriver::with_config(net));
    driver.spawn_acceptor(config.listener);
    let io_timeout = net.io_timeout;
    let store = PieceStore::new(config.meta, config.file).expect("seed file matches metainfo");
    let ctx = Arc::new(BtCtx {
        driver,
        store,
        peers: Mutex::new(HashMap::new()),
        tracker_dial: config.tracker_dial.unwrap_or_else(|| Box::new(|| None)),
        peer_id: config.peer_id,
        addr: config.addr,
        blocks_served: AtomicU64::new(0),
        bytes_up: AtomicU64::new(0),
        keepalives_seen: AtomicU64::new(0),
        announces: AtomicU64::new(0),
        running: AtomicBool::new(true),
    });

    let mut reg: NodeRegistry<BtFlow> = NodeRegistry::new();

    // ------------------------------------------------ the Listen flow --
    let c = ctx.clone();
    reg.source("Listen", move || {
        if !c.running.load(Ordering::SeqCst) {
            return SourceOutcome::Shutdown;
        }
        match c.driver.next_event(io_timeout) {
            None => SourceOutcome::Skip,
            Some(DriverEvent::Incoming(token)) => {
                SourceOutcome::New(BtFlow::empty(token, true, c.driver.get(token)))
            }
            Some(DriverEvent::WriteDone(_)) => SourceOutcome::Skip,
            Some(DriverEvent::WriteFailed(token)) => {
                // The driver already removed the broken connection;
                // forget the peer as well.
                c.peers.lock().remove(&token);
                SourceOutcome::Skip
            }
            Some(DriverEvent::Readable(token)) => {
                SourceOutcome::New(BtFlow::empty(token, false, c.driver.get(token)))
            }
        }
    });

    // Bookkeeping nodes: in the paper these fetch the client table and
    // select; here the driver has preselected, so they validate state
    // under the `clients` reader constraint.
    let c = ctx.clone();
    reg.node("GetClients", move |f: &mut BtFlow| {
        if !f.isnew && !c.peers.lock().contains_key(&f.token) {
            // Peer vanished between readiness and processing.
            return NodeOutcome::Err(1);
        }
        NodeOutcome::Ok
    });
    reg.node("SelectSockets", |_f: &mut BtFlow| NodeOutcome::Ok);

    // CheckSockets: consume keep-alives here. A keep-alive wakeup means
    // "no outstanding chunk requests" — the paper's most frequent path,
    // which exits with an error right here.
    let c = ctx.clone();
    reg.node_blocking("CheckSockets", move |f: &mut BtFlow| {
        if f.isnew {
            return NodeOutcome::Ok;
        }
        let Some(conn) = f.conn.clone() else {
            return NodeOutcome::Err(1);
        };
        let mut guard = conn.lock();
        match Message::read_from(&mut **guard) {
            Ok(Message::KeepAlive) => {
                drop(guard);
                c.keepalives_seen.fetch_add(1, Ordering::Relaxed);
                // A keep-alive is the peer's liveness signal: real
                // progress as far as the idle reaper is concerned.
                c.driver.mark_progress(f.token);
                c.driver.arm(f.token);
                NodeOutcome::Err(100) // nothing to do: the hot ERROR path
            }
            Ok(msg) => {
                drop(guard);
                c.driver.mark_progress(f.token);
                f.msg = Some(msg);
                NodeOutcome::Ok
            }
            Err(_) => {
                drop(guard);
                // Disconnect: clean the peer table.
                c.peers.lock().remove(&f.token);
                c.driver.remove(f.token);
                NodeOutcome::Err(2)
            }
        }
    });

    reg.predicate("IsNew", |f: &BtFlow| f.isnew);

    // Overload shedding (OverloadPolicy::Bounded): the wire protocol
    // has no cheap error frame, so a shed peer event closes the
    // connection — the peer observes EOF and re-dials another seed,
    // which is BitTorrent's native retry path.
    let c = ctx.clone();
    reg.on_shed(move |f: BtFlow| {
        c.peers.lock().remove(&f.token);
        c.driver.remove(f.token);
    });

    // ---------------------------------------------- connection set-up --
    let c = ctx.clone();
    reg.node("AcceptHandshake", move |f: &mut BtFlow| {
        let Some(conn) = f.conn.clone() else {
            return NodeOutcome::Err(1);
        };
        let mut guard = conn.lock();
        let hs = match Handshake::read_from(&mut **guard) {
            Ok(hs) => hs,
            Err(_) => return NodeOutcome::Err(2),
        };
        drop(guard);
        if hs.info_hash != c.store.metainfo().info_hash {
            return NodeOutcome::Err(3);
        }
        let reply = Handshake {
            info_hash: c.store.metainfo().info_hash,
            peer_id: c.peer_id,
        };
        // Enqueue the reply; the per-connection buffer keeps it ordered
        // ahead of the bitfield SendBitfield enqueues next.
        if !c.driver.submit_write(f.token, &reply.encode()) {
            return NodeOutcome::Err(4);
        }
        c.peers.lock().insert(
            f.token,
            PeerState {
                peer_id: hs.peer_id,
                choked: false, // everyone unchoked by default (paper §4.3)
                interested: false,
                have: vec![false; c.store.metainfo().num_pieces()],
            },
        );
        NodeOutcome::Ok
    });

    let c = ctx.clone();
    reg.node("SendBitfield", move |f: &mut BtFlow| {
        let bits = c.store.bitfield();
        let msg = Message::Bitfield(bits.as_bytes().to_vec());
        if !c.driver.submit_write(f.token, &msg.encode()) {
            return NodeOutcome::Err(2);
        }
        c.driver.arm(f.token);
        NodeOutcome::Ok
    });

    // ------------------------------------------------- message chains --
    reg.node("ReadMessage", |f: &mut BtFlow| {
        // CheckSockets already read the message (single read point); this
        // node validates it exists — separate nodes keep the Figure 7
        // path structure observable in profiles.
        if f.msg.is_some() {
            NodeOutcome::Ok
        } else {
            NodeOutcome::Err(1)
        }
    });

    macro_rules! kind_pred {
        ($name:literal, $kind:literal) => {
            reg.predicate($name, |f: &BtFlow| {
                f.msg.as_ref().is_some_and(|m| m.kind() == $kind)
            });
        };
    }
    kind_pred!("IsRequest", "request");
    kind_pred!("IsPiece", "piece");
    kind_pred!("IsHave", "have");
    kind_pred!("IsBitfield", "bitfield");
    kind_pred!("IsInterested", "interested");
    kind_pred!("IsUninterested", "uninterested");
    kind_pred!("IsChoke", "choke");
    kind_pred!("IsUnchoke", "unchoke");
    kind_pred!("IsCancel", "cancel");

    // The hot node: serve a block. The piece reply is *enqueued*, not
    // written: the seed version held the connection lock across
    // `write_all` on an I/O worker — exactly the hidden blocking the
    // event-driven runtime exists to avoid. The reactor drains the
    // bytes via POLLOUT if the peer's socket is full. The reply is
    // framed directly from the piece store into a pooled buffer
    // (`encode_piece_into` + `submit_write_buf`), so the steady-state
    // seeding path allocates nothing and copies the block once.
    let c = ctx.clone();
    reg.node("Request", move |f: &mut BtFlow| {
        let Some(Message::Request {
            index,
            begin,
            length,
        }) = f.msg
        else {
            return NodeOutcome::Err(1);
        };
        let Some(block) = c.store.read_block(index, begin, length) else {
            return NodeOutcome::Err(2);
        };
        let mut reply = c.driver.take_write_buf();
        Message::encode_piece_into(index, begin, block, &mut reply);
        if !c.driver.submit_write_buf(f.token, reply) {
            return NodeOutcome::Err(4);
        }
        c.blocks_served.fetch_add(1, Ordering::Relaxed);
        c.bytes_up.fetch_add(length as u64 + 13, Ordering::Relaxed);
        NodeOutcome::Ok
    });

    // Seeder-side handlers for the remaining message types.
    let c = ctx.clone();
    reg.node("Have", move |f: &mut BtFlow| {
        if let Some(Message::Have { index }) = f.msg {
            if let Some(p) = c.peers.lock().get_mut(&f.token) {
                if let Some(h) = p.have.get_mut(index as usize) {
                    *h = true;
                }
            }
        }
        NodeOutcome::Ok
    });
    let c = ctx.clone();
    reg.node("Bitfield", move |f: &mut BtFlow| {
        if let Some(Message::Bitfield(bits)) = &f.msg {
            if let Some(p) = c.peers.lock().get_mut(&f.token) {
                for (i, h) in p.have.iter_mut().enumerate() {
                    *h = bits.get(i / 8).is_some_and(|b| b & (0x80 >> (i % 8)) != 0);
                }
            }
        }
        NodeOutcome::Ok
    });
    let c = ctx.clone();
    reg.node("Interested", move |f: &mut BtFlow| {
        if let Some(p) = c.peers.lock().get_mut(&f.token) {
            p.interested = true;
        }
        NodeOutcome::Ok
    });
    let c = ctx.clone();
    reg.node("Uninterested", move |f: &mut BtFlow| {
        if let Some(p) = c.peers.lock().get_mut(&f.token) {
            p.interested = false;
        }
        NodeOutcome::Ok
    });
    reg.node("UnknownMessage", |_f: &mut BtFlow| {
        // Protocol violation: error into the DropPeer handler.
        NodeOutcome::Err(1)
    });
    reg.node("Choke", |_f: &mut BtFlow| NodeOutcome::Ok);
    reg.node("Unchoke", |_f: &mut BtFlow| NodeOutcome::Ok);
    reg.node("Cancel", |_f: &mut BtFlow| NodeOutcome::Ok);
    reg.node("Piece", |_f: &mut BtFlow| {
        // A seeder receives no piece data; accept and ignore.
        NodeOutcome::Ok
    });

    let c = ctx.clone();
    reg.node("MessageDone", move |f: &mut BtFlow| {
        c.driver.arm(f.token); // wait for the peer's next message
        NodeOutcome::Ok
    });

    let c = ctx.clone();
    reg.node("DropPeer", move |f: &mut BtFlow| {
        c.peers.lock().remove(&f.token);
        c.driver.remove(f.token);
        NodeOutcome::Ok
    });

    // ---------------------------------------------------- timer flows --
    // Timer sources sleep in 50 ms slices so shutdown stays responsive
    // even with hour-long periods.
    fn timer_source(
        ctx: Arc<BtCtx>,
        period: Duration,
    ) -> impl Fn() -> SourceOutcome<BtFlow> + Send + Sync {
        let tick = AtomicU64::new(0);
        let slept = Mutex::new(Duration::ZERO);
        move || {
            if !ctx.running.load(Ordering::SeqCst) {
                return SourceOutcome::Shutdown;
            }
            let slice = Duration::from_millis(50).min(period);
            std::thread::sleep(slice);
            let mut acc = slept.lock();
            *acc += slice;
            if *acc < period {
                return SourceOutcome::Skip;
            }
            *acc = Duration::ZERO;
            drop(acc);
            SourceOutcome::New(BtFlow {
                token: 0,
                isnew: false,
                msg: None,
                conn: None,
                tick: tick.fetch_add(1, Ordering::SeqCst),
            })
        }
    }

    reg.source(
        "TrackerTimer",
        timer_source(ctx.clone(), config.tracker_period),
    );
    reg.node("CheckinWithTracker", |_f: &mut BtFlow| NodeOutcome::Ok);
    let c = ctx.clone();
    reg.node_blocking("SendRequestToTracker", move |_f: &mut BtFlow| {
        let Some(mut conn) = (c.tracker_dial)() else {
            return NodeOutcome::Err(1);
        };
        let req = flux_bittorrent::Announce {
            info_hash: c.store.metainfo().info_hash,
            peer_id: c.peer_id,
            addr: c.addr.clone(),
            left: 0,
        };
        match flux_bittorrent::announce(&mut *conn, &req) {
            Ok(_resp) => {
                c.announces.fetch_add(1, Ordering::Relaxed);
                NodeOutcome::Ok
            }
            Err(_) => NodeOutcome::Err(2),
        }
    });
    reg.node("GetTrackerResponse", |_f: &mut BtFlow| NodeOutcome::Ok);

    reg.source("ChokeTimer", timer_source(ctx.clone(), config.choke_period));
    // The bench policy: everyone stays unchoked (paper §4.3 modified
    // both implementations this way). The nodes still run so the
    // choking flow appears in profiles.
    reg.node("UpdateChokeList", |_f: &mut BtFlow| NodeOutcome::Ok);
    reg.node("PickChoked", |_f: &mut BtFlow| NodeOutcome::Ok);
    let c = ctx.clone();
    reg.node("SendChokeUnchoke", move |_f: &mut BtFlow| {
        // All peers unchoked: nothing to send, but touch the table under
        // the reader constraint as the real policy would.
        let _interested = c.peers.lock().values().filter(|p| p.interested).count();
        NodeOutcome::Ok
    });

    reg.source(
        "KeepAliveTimer",
        timer_source(ctx.clone(), config.keepalive_period),
    );
    let c = ctx.clone();
    reg.node("SendKeepAlives", move |_f: &mut BtFlow| {
        let tokens: Vec<Token> = c.peers.lock().keys().copied().collect();
        let keepalive = Message::KeepAlive.encode();
        for t in tokens {
            // Enqueue-and-complete: a peer with a full socket must not
            // stall the keep-alive sweep (which holds the `clients?`
            // constraint) — the reactor drains stragglers.
            let _ = c.driver.submit_write(t, &keepalive);
        }
        NodeOutcome::Ok
    });

    (program, reg, ctx)
}

/// A running Flux BitTorrent peer — what
/// [`crate::ServerBuilder::spawn`] returns for a [`BtConfig`].
pub type BtServer = RunningServer<BtFlow, Arc<BtCtx>>;

/// Stops a peer.
pub fn stop(server: BtServer) {
    server.ctx.running.store(false, Ordering::SeqCst);
    server.ctx.driver.stop();
    server.handle.server().request_shutdown();
    server.handle.stop();
}

/// A simple protocol-level client for tests and the load generator:
/// handshakes and downloads the whole file sequentially.
pub mod client {
    use super::*;
    use flux_bittorrent::{BlockResult, PieceAssembler, BLOCK_SIZE};
    use std::io::Write as _;

    /// Downloads the complete file from a seeder over `conn`. Returns
    /// the file and the number of keep-alives sent (the load generator
    /// interleaves them; see module docs).
    pub fn download(
        mut conn: Box<dyn flux_net::Conn>,
        meta: &Metainfo,
        peer_id: [u8; 20],
        keepalive_every: Option<u32>,
    ) -> std::io::Result<Vec<u8>> {
        let hs = Handshake {
            info_hash: meta.info_hash,
            peer_id,
        };
        conn.write_all(&hs.encode())?;
        let _their_hs = Handshake::read_from(&mut *conn)?;
        // Expect the seeder's bitfield.
        let first = Message::read_from(&mut *conn)?;
        if !matches!(first, Message::Bitfield(_)) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("expected bitfield, got {}", first.kind()),
            ));
        }
        let mut asm = PieceAssembler::new(meta.clone());
        let mut sent = 0u32;
        for piece in 0..meta.num_pieces() as u32 {
            for (begin, length) in piece_blocks(meta, piece) {
                if let Some(k) = keepalive_every {
                    if sent.is_multiple_of(k) {
                        Message::KeepAlive.write_to(&mut *conn)?;
                    }
                }
                Message::Request {
                    index: piece,
                    begin,
                    length,
                }
                .write_to(&mut *conn)?;
                sent += 1;
                // Read messages until the matching piece arrives.
                loop {
                    match Message::read_from(&mut *conn)? {
                        Message::Piece { index, begin, data } => {
                            match asm.add_block(index, begin, &data) {
                                BlockResult::Rejected => {
                                    return Err(std::io::Error::new(
                                        std::io::ErrorKind::InvalidData,
                                        "block rejected",
                                    ));
                                }
                                BlockResult::HashMismatch => {
                                    return Err(std::io::Error::new(
                                        std::io::ErrorKind::InvalidData,
                                        "piece hash mismatch",
                                    ));
                                }
                                _ => {}
                            }
                            break;
                        }
                        Message::KeepAlive | Message::Have { .. } => continue,
                        other => {
                            return Err(std::io::Error::new(
                                std::io::ErrorKind::InvalidData,
                                format!("unexpected {}", other.kind()),
                            ));
                        }
                    }
                }
            }
        }
        Ok(asm.into_data())
    }

    fn piece_blocks(meta: &Metainfo, piece: u32) -> Vec<(u32, u32)> {
        let size = meta.piece_size(piece as usize) as u32;
        let mut out = Vec::new();
        let mut begin = 0;
        while begin < size {
            out.push((begin, BLOCK_SIZE.min(size - begin)));
            begin += BLOCK_SIZE;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_bittorrent::{synth_file, Tracker};
    use flux_net::MemNet;
    use flux_runtime::RuntimeKind;

    fn setup(net: &Arc<MemNet>, file_len: usize) -> (BtConfig, Metainfo, Vec<u8>) {
        let file = synth_file(file_len, 7);
        let meta = Metainfo::from_file("mem:tracker", "bench.bin", 32 * 1024, &file);
        let listener = net.listen("peer").unwrap();
        (
            BtConfig {
                listener: Box::new(listener),
                meta: meta.clone(),
                file: file.clone(),
                tracker_dial: None,
                peer_id: *b"-FX0001-seeder000001",
                addr: "mem:peer".into(),
                tracker_period: Duration::from_millis(100),
                choke_period: Duration::from_millis(50),
                keepalive_period: Duration::from_millis(200),
            },
            meta,
            file,
        )
    }

    fn run_download_test(runtime: RuntimeKind) {
        let net = MemNet::new();
        let (config, meta, file) = setup(&net, 200_000);
        let server = crate::ServerBuilder::new(config).runtime(runtime).spawn();
        let conn = net.connect("peer").unwrap();
        let got =
            client::download(Box::new(conn), &meta, *b"-FX0001-leecher00001", Some(3)).unwrap();
        assert_eq!(got, file, "downloaded file matches the seed");
        assert!(server.ctx.blocks_served.load(Ordering::Relaxed) > 0);
        assert!(server.ctx.keepalives_seen.load(Ordering::Relaxed) > 0);
        stop(server);
    }

    #[test]
    fn download_on_thread_pool() {
        run_download_test(RuntimeKind::ThreadPool { workers: 4 });
    }

    #[test]
    fn download_on_event_runtime() {
        run_download_test(RuntimeKind::event_driven_sharded(1, 4));
    }

    #[test]
    fn concurrent_downloads() {
        let net = MemNet::new();
        let (config, meta, file) = setup(&net, 150_000);
        let server = crate::ServerBuilder::new(config)
            .runtime(RuntimeKind::ThreadPool { workers: 8 })
            .spawn();
        let mut joins = Vec::new();
        for i in 0..6u8 {
            let net = net.clone();
            let meta = meta.clone();
            let file = file.clone();
            joins.push(std::thread::spawn(move || {
                let mut id = *b"-FX0001-leecher00000";
                id[19] = b'0' + i;
                let conn = net.connect("peer").unwrap();
                let got = client::download(Box::new(conn), &meta, id, Some(4)).unwrap();
                assert_eq!(got, file);
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        stop(server);
    }

    #[test]
    fn tracker_announce_flow_runs() {
        let net = MemNet::new();
        let tracker = Tracker::new();
        let tl = net.listen("tracker").unwrap();
        tl.set_accept_timeout(Some(Duration::from_millis(50)));
        let t2 = tracker.clone();
        let tracker_thread = std::thread::spawn(move || {
            // Serve a few announce connections, then exit.
            let deadline = std::time::Instant::now() + Duration::from_secs(5);
            while std::time::Instant::now() < deadline {
                match tl.accept() {
                    Ok(mut conn) => {
                        let _ = t2.serve_conn(&mut *conn);
                    }
                    Err(_) => continue,
                }
            }
        });
        let (mut config, _meta, _file) = setup(&net, 64 * 1024);
        let net2 = net.clone();
        config.tracker_dial = Some(Box::new(move || {
            net2.connect("tracker")
                .ok()
                .map(|c| Box::new(c) as Box<dyn flux_net::Conn>)
        }));
        config.tracker_period = Duration::from_millis(60);
        let server = crate::ServerBuilder::new(config)
            .runtime(RuntimeKind::ThreadPool { workers: 2 })
            .spawn();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while server.ctx.announces.load(Ordering::Relaxed) == 0
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(
            server.ctx.announces.load(Ordering::Relaxed) > 0,
            "peer announced to the tracker"
        );
        stop(server);
        tracker_thread.join().unwrap();
    }

    #[test]
    fn program_matches_figure7_shape() {
        let program = flux_core::compile(FLUX_SRC).unwrap();
        assert_eq!(program.flows.len(), 4, "Listen + 3 timers");
        // The famous error path must exist in the path table.
        let flow = program.flow_for_source("Listen").unwrap();
        let paths = flow.paths.enumerate(&flow.flat, &program.graph, 10_000);
        let error_path = paths.iter().any(|p| {
            p.nodes == vec!["GetClients", "SelectSockets", "CheckSockets"]
                && matches!(p.outcome, flux_core::EndKind::Errored { .. })
        });
        assert!(error_path, "CheckSockets -> ERROR path exists");
        let transfer_path = paths.iter().any(|p| {
            p.nodes
                == vec![
                    "GetClients",
                    "SelectSockets",
                    "CheckSockets",
                    "ReadMessage",
                    "Request",
                    "MessageDone",
                ]
        });
        assert!(transfer_path, "file-transfer path exists");
    }
}
