//! The Flux image-compression server (paper §2, Figure 2; evaluated in
//! §5.1/Figure 6).
//!
//! Serves HTTP requests for PPM-stored images compressed to JPEG, with
//! the LFU cache and its `CheckCache`/`StoreInCache`/`Complete`
//! reference-count protocol guarded by the `cache` atomicity constraint
//! — the program is the paper's Figure 2, verbatim (plus `blocking`
//! declarations for the event runtime).
//!
//! Two operation modes:
//!
//! * **Net**: real requests over `flux-net` (`GET /imgN-S.jpg`, scale
//!   `S` in eighths).
//! * **Synthetic**: the Figure 6 load pattern — open-loop arrivals at a
//!   fixed rate, no network, with either the real JPEG encoder or a
//!   calibrated timed `Compress` (which lets a small host emulate the
//!   paper's 16-processor SunFire; see DESIGN.md §4).

use crate::builder::{RunningServer, ServerSpec};
use flux_core::CompiledProgram;
use flux_http::{read_request, ParseError, Response};
use flux_image::{jpeg_encode, Image, LfuCache};
use flux_net::{ConnDriver, DriverEvent, Listener, NetConfig, SharedConn, Token};
use flux_runtime::{NodeOutcome, NodeRegistry, SourceOutcome};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Figure 2, with the handler/blocking declarations spelled out.
pub const FLUX_SRC: &str = r#"
    Listen () => (int socket);
    ReadRequest (int socket)
      => (int socket, bool close, image_tag *request);
    CheckCache (int socket, bool close, image_tag *request)
      => (int socket, bool close, image_tag *request);
    ReadInFromDisk (int socket, bool close, image_tag *request)
      => (int socket, bool close, image_tag *request, __u8 *rgb_data);
    StoreInCache (int socket, bool close, image_tag *request)
      => (int socket, bool close, image_tag *request);
    Compress (int socket, bool close, image_tag *request, __u8 *rgb_data)
      => (int socket, bool close, image_tag *request);
    Write (int socket, bool close, image_tag *request)
      => (int socket, bool close, image_tag *request);
    Complete (int socket, bool close, image_tag *request) => ();
    FourOhFour (int socket, bool close, image_tag *request) => ();

    source Listen => Image;

    Image = ReadRequest -> CheckCache -> Handler -> Write -> Complete;

    typedef hit TestInCache;
    Handler:[_, _, hit] = ;
    Handler:[_, _, _] = ReadInFromDisk -> Compress -> StoreInCache;

    handle error ReadInFromDisk => FourOhFour;

    atomic CheckCache:{cache};
    atomic StoreInCache:{cache};
    atomic Complete:{cache};

    blocking ReadRequest;
    blocking Write;
"#;

/// One image request: image id and scale (numerator of eighths).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ImageTag {
    pub image: u32,
    pub scale: u32,
}

impl ImageTag {
    /// Parses `/img3-5.jpg` style paths.
    pub fn from_path(path: &str) -> Option<ImageTag> {
        let stem = path.strip_prefix("/img")?.strip_suffix(".jpg")?;
        let (img, scale) = stem.split_once('-')?;
        let tag = ImageTag {
            image: img.parse().ok()?,
            scale: scale.parse().ok()?,
        };
        (1..=8).contains(&tag.scale).then_some(tag)
    }
}

/// How `Compress` burns its time.
#[derive(Debug, Clone, Copy)]
pub enum CompressMode {
    /// The real JPEG encoder (scale + DCT + Huffman).
    Real { quality: u8 },
    /// Sleep for a calibrated duration — the Figure 6 processor-scaling
    /// mode, where thread-pool workers stand in for CPUs.
    TimedHold(Duration),
    /// Spin the CPU for a duration (real CPU load without the encoder's
    /// data dependence).
    Spin(Duration),
}

/// How requests arrive.
pub enum ImageSource {
    /// Real connections through a driver.
    Net(Box<dyn Listener>),
    /// Open-loop synthetic arrivals: one request every `interarrival`,
    /// for `total` flows (the paper's load tester with n clients issues
    /// one request per 1/n s).
    Synthetic { interarrival: Duration, total: u64 },
}

/// Per-flow payload (the paper's per-flow struct).
pub struct ImageFlow {
    pub socket: Token,
    pub close: bool,
    pub tag: Option<ImageTag>,
    pub rgb: Option<Image>,
    pub jpeg: Option<Arc<Vec<u8>>>,
    conn: Option<SharedConn>,
}

/// Shared context.
pub struct ImageCtx {
    pub driver: Option<Arc<ConnDriver>>,
    /// "Disk": the PPM originals, by image id.
    pub disk: Vec<Image>,
    /// The JPEG cache. The Flux `cache` constraint provides atomicity;
    /// the mutex only satisfies Rust's aliasing rules per access.
    pub cache: Mutex<LfuCache<ImageTag, Arc<Vec<u8>>>>,
    pub compress_mode: CompressMode,
    pub bytes_out: AtomicU64,
    pub served: AtomicU64,
}

fn synth_disk(images: usize, size: usize) -> Vec<Image> {
    (0..images)
        .map(|i| Image::synthetic(size, size * 3 / 4, i as u64 + 1))
        .collect()
}

/// Configuration for [`build`].
pub struct ImageConfig {
    pub source: ImageSource,
    pub compress: CompressMode,
    /// Number of distinct source images ("The image server had 5
    /// images").
    pub images: usize,
    /// Source image width in pixels (height is 3/4 of it).
    pub image_size: usize,
    /// Cache capacity in bytes.
    pub cache_bytes: usize,
}

impl Default for ImageConfig {
    fn default() -> Self {
        ImageConfig {
            source: ImageSource::Synthetic {
                interarrival: Duration::from_millis(10),
                total: 100,
            },
            compress: CompressMode::Real { quality: 75 },
            images: 5,
            image_size: 256,
            cache_bytes: 8 * 1024 * 1024,
        }
    }
}

impl ServerSpec for ImageConfig {
    type Flow = ImageFlow;
    type Ctx = Arc<ImageCtx>;

    fn build(self, net: &NetConfig) -> (CompiledProgram, NodeRegistry<ImageFlow>, Arc<ImageCtx>) {
        build_with(self, net)
    }

    fn driver(ctx: &Arc<ImageCtx>) -> Option<Arc<ConnDriver>> {
        ctx.driver.clone()
    }
}

/// Builds the compiled Figure 2 program, registry and context with the
/// default network configuration.
pub fn build(config: ImageConfig) -> (CompiledProgram, NodeRegistry<ImageFlow>, Arc<ImageCtx>) {
    build_with(config, &NetConfig::default())
}

/// Builds the compiled Figure 2 program, registry and context.
pub fn build_with(
    config: ImageConfig,
    net: &NetConfig,
) -> (CompiledProgram, NodeRegistry<ImageFlow>, Arc<ImageCtx>) {
    let program = flux_core::compile(FLUX_SRC).expect("image server Flux program compiles");
    let io_timeout = net.io_timeout;
    let driver = match &config.source {
        ImageSource::Net(_) => Some(Arc::new(ConnDriver::with_config(net))),
        ImageSource::Synthetic { .. } => None,
    };
    if let (ImageSource::Net(_), Some(d)) = (&config.source, &driver) {
        // Acceptor started below once we own the listener.
        let _ = d;
    }
    let ctx = Arc::new(ImageCtx {
        driver: driver.clone(),
        disk: synth_disk(config.images, config.image_size),
        cache: Mutex::new(LfuCache::new(config.cache_bytes, |v: &Arc<Vec<u8>>| {
            v.len()
        })),
        compress_mode: config.compress,
        bytes_out: AtomicU64::new(0),
        served: AtomicU64::new(0),
    });

    let mut reg: NodeRegistry<ImageFlow> = NodeRegistry::new();

    match config.source {
        ImageSource::Net(listener) => {
            let d = driver.expect("driver created for net mode");
            d.spawn_acceptor(listener);
            let c = ctx.clone();
            reg.source("Listen", move || {
                let d = c.driver.as_ref().expect("net mode");
                match d.next_event(io_timeout) {
                    None => SourceOutcome::Skip,
                    Some(DriverEvent::Incoming(token)) => {
                        d.arm(token);
                        SourceOutcome::Skip
                    }
                    Some(DriverEvent::WriteDone(_)) | Some(DriverEvent::WriteFailed(_)) => {
                        SourceOutcome::Skip
                    }
                    Some(DriverEvent::Readable(token)) => SourceOutcome::New(ImageFlow {
                        socket: token,
                        close: false,
                        tag: None,
                        rgb: None,
                        jpeg: None,
                        conn: d.get(token),
                    }),
                }
            });
            let c = ctx.clone();
            reg.node_blocking("ReadRequest", move |f: &mut ImageFlow| {
                let Some(conn) = f.conn.clone() else {
                    return NodeOutcome::Err(1);
                };
                let mut guard = conn.lock();
                match read_request(&mut **guard) {
                    Ok(req) => {
                        drop(guard);
                        // A complete request head resets the idle
                        // reaper's deadline; partial heads don't.
                        c.driver.as_ref().expect("net mode").mark_progress(f.socket);
                        f.close = !req.keep_alive();
                        match ImageTag::from_path(&req.path) {
                            Some(tag) => {
                                f.tag = Some(tag);
                                NodeOutcome::Ok
                            }
                            None => {
                                // Unparseable image name: treat as a miss
                                // that ReadInFromDisk will 404.
                                f.tag = Some(ImageTag {
                                    image: u32::MAX,
                                    scale: 1,
                                });
                                NodeOutcome::Ok
                            }
                        }
                    }
                    Err(ParseError::ConnectionClosed) => {
                        drop(guard);
                        let d = c.driver.as_ref().expect("net mode");
                        d.remove(f.socket);
                        NodeOutcome::Err(2)
                    }
                    Err(_) => NodeOutcome::Err(3),
                }
            });

            // Overload shedding (OverloadPolicy::Bounded): answer the
            // prebuilt 503 and close instead of queueing doomed decode
            // work.
            let mut busy = Vec::new();
            Response::error(503)
                .write_to(&mut busy, false)
                .expect("serializing a response to memory cannot fail");
            let c = ctx.clone();
            reg.on_shed(move |f: ImageFlow| {
                let d = c.driver.as_ref().expect("net mode");
                if d.submit_write(f.socket, &busy) {
                    d.remove_when_flushed(f.socket);
                } else {
                    d.remove(f.socket);
                }
            });

            let c = ctx.clone();
            reg.node_blocking("Write", move |f: &mut ImageFlow| {
                let Some(conn) = f.conn.clone() else {
                    return NodeOutcome::Err(1);
                };
                let jpeg = f.jpeg.as_ref().expect("hit or compressed");
                let resp = Response::ok("image/jpeg", jpeg.as_ref().clone());
                let mut guard = conn.lock();
                if resp.write_to(&mut **guard, !f.close).is_ok() {
                    c.bytes_out
                        .fetch_add(resp.wire_len(!f.close) as u64, Ordering::Relaxed);
                } else {
                    f.close = true;
                }
                NodeOutcome::Ok
            });
        }
        ImageSource::Synthetic {
            interarrival,
            total,
        } => {
            // Deterministic round-robin over (image, scale), matching the
            // paper's "randomly requests one of eight sizes of a
            // randomly-chosen image" in distribution.
            let images = config.images as u64;
            let issued = AtomicU64::new(0);
            let c = ctx.clone();
            reg.source("Listen", move || {
                let i = issued.fetch_add(1, Ordering::SeqCst);
                if i >= total {
                    return SourceOutcome::Shutdown;
                }
                if !interarrival.is_zero() {
                    std::thread::sleep(interarrival);
                }
                // A multiplicative hash spreads image/scale choices.
                let h = i.wrapping_mul(0x9E3779B97F4A7C15);
                SourceOutcome::New(ImageFlow {
                    socket: 0,
                    close: true,
                    tag: Some(ImageTag {
                        image: (h % images) as u32,
                        scale: ((h >> 8) % 8 + 1) as u32,
                    }),
                    rgb: None,
                    jpeg: None,
                    conn: None,
                })
            });
            reg.node("ReadRequest", |_f: &mut ImageFlow| NodeOutcome::Ok);
            let c2 = c.clone();
            reg.node("Write", move |f: &mut ImageFlow| {
                if let Some(j) = &f.jpeg {
                    c2.bytes_out.fetch_add(j.len() as u64, Ordering::Relaxed);
                }
                NodeOutcome::Ok
            });
        }
    }

    // The cache protocol (shared by both modes). Atomicity comes from
    // the Flux `cache` constraint.
    let c = ctx.clone();
    reg.node("CheckCache", move |f: &mut ImageFlow| {
        let tag = f.tag.expect("ReadRequest set the tag");
        if let Some(hit) = c.cache.lock().check(&tag) {
            f.jpeg = Some(hit.clone());
        }
        NodeOutcome::Ok
    });

    reg.predicate("TestInCache", |f: &ImageFlow| f.jpeg.is_some());

    let c = ctx.clone();
    reg.node("ReadInFromDisk", move |f: &mut ImageFlow| {
        let tag = f.tag.expect("tag set");
        match c.disk.get(tag.image as usize) {
            Some(img) => {
                f.rgb = Some(img.clone());
                NodeOutcome::Ok
            }
            None => NodeOutcome::Err(404),
        }
    });

    let c = ctx.clone();
    reg.node("Compress", move |f: &mut ImageFlow| {
        let tag = f.tag.expect("tag set");
        match c.compress_mode {
            CompressMode::Real { quality } => {
                let rgb = f.rgb.take().expect("ReadInFromDisk ran");
                let scaled = rgb.scale_eighths(tag.scale);
                f.jpeg = Some(Arc::new(jpeg_encode(&scaled, quality)));
            }
            CompressMode::TimedHold(d) => {
                std::thread::sleep(d);
                f.jpeg = Some(Arc::new(vec![0xAB; 1024]));
            }
            CompressMode::Spin(d) => {
                let t0 = std::time::Instant::now();
                let mut x = 0u64;
                while t0.elapsed() < d {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    std::hint::black_box(x);
                }
                f.jpeg = Some(Arc::new(vec![0xAB; 1024]));
            }
        }
        NodeOutcome::Ok
    });

    let c = ctx.clone();
    reg.node("StoreInCache", move |f: &mut ImageFlow| {
        let tag = f.tag.expect("tag set");
        let jpeg = f.jpeg.clone().expect("Compress ran");
        c.cache.lock().store(tag, jpeg);
        NodeOutcome::Ok
    });

    let c = ctx.clone();
    reg.node("Complete", move |f: &mut ImageFlow| {
        let tag = f.tag.expect("tag set");
        c.cache.lock().release(&tag);
        c.served.fetch_add(1, Ordering::Relaxed);
        if let Some(d) = &c.driver {
            if f.close {
                d.remove(f.socket);
            } else {
                d.arm(f.socket);
            }
        }
        NodeOutcome::Ok
    });

    let c = ctx.clone();
    reg.node("FourOhFour", move |f: &mut ImageFlow| {
        if let Some(conn) = f.conn.clone() {
            let mut guard = conn.lock();
            let _ = Response::not_found().write_to(&mut **guard, false);
        }
        if let Some(d) = &c.driver {
            d.remove(f.socket);
        }
        NodeOutcome::Ok
    });

    (program, reg, ctx)
}

/// A running image server — what [`crate::ServerBuilder::spawn`]
/// returns for an [`ImageConfig`].
pub type ImageServer = RunningServer<ImageFlow, Arc<ImageCtx>>;

/// Stops an image server: shuts down the driver (when one exists),
/// sources and runtime.
pub fn stop(server: ImageServer) {
    if let Some(d) = &server.ctx.driver {
        d.stop();
    }
    server.handle.server().request_shutdown();
    server.handle.stop();
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_runtime::RuntimeKind;

    #[test]
    fn tag_parsing() {
        assert_eq!(
            ImageTag::from_path("/img3-5.jpg"),
            Some(ImageTag { image: 3, scale: 5 })
        );
        assert_eq!(ImageTag::from_path("/img3-9.jpg"), None);
        assert_eq!(ImageTag::from_path("/img3.jpg"), None);
        assert_eq!(ImageTag::from_path("/x.jpg"), None);
    }

    #[test]
    fn synthetic_run_completes_and_caches() {
        let server = crate::ServerBuilder::new(ImageConfig {
            source: ImageSource::Synthetic {
                interarrival: Duration::ZERO,
                total: 200,
            },
            compress: CompressMode::Real { quality: 60 },
            images: 5,
            image_size: 64,
            cache_bytes: 4 * 1024 * 1024,
        })
        .runtime(RuntimeKind::ThreadPool { workers: 4 })
        .spawn();
        server.handle.join();
        assert_eq!(server.ctx.served.load(Ordering::Relaxed), 200);
        let cache = server.ctx.cache.lock();
        // 5 images x 8 scales = 40 distinct keys; 200 requests must hit.
        assert!(cache.hits > 0, "cache hits: {}", cache.hits);
        assert!(cache.misses >= 40);
    }

    #[test]
    fn synthetic_run_on_event_runtime() {
        let server = crate::ServerBuilder::new(ImageConfig {
            source: ImageSource::Synthetic {
                interarrival: Duration::ZERO,
                total: 100,
            },
            compress: CompressMode::TimedHold(Duration::from_micros(200)),
            images: 3,
            image_size: 32,
            cache_bytes: 1 << 20,
        })
        .runtime(RuntimeKind::event_driven_sharded(1, 2))
        .spawn();
        server.handle.join();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while server.ctx.served.load(Ordering::Relaxed) < 100
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(server.ctx.served.load(Ordering::Relaxed), 100);
    }

    /// Runtime independence extends to the staged (SEDA-style) runtime:
    /// the identical server definition completes unchanged.
    #[test]
    fn synthetic_run_on_staged_runtime() {
        let server = crate::ServerBuilder::new(ImageConfig {
            source: ImageSource::Synthetic {
                interarrival: Duration::ZERO,
                total: 100,
            },
            compress: CompressMode::Real { quality: 60 },
            images: 3,
            image_size: 32,
            cache_bytes: 1 << 20,
        })
        .runtime(RuntimeKind::Staged { stage_workers: 2 })
        .spawn();
        server.handle.join();
        assert_eq!(server.ctx.served.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn net_mode_serves_jpeg() {
        use flux_net::MemNet;
        use std::io::Write as _;
        let net = MemNet::new();
        let listener = net.listen("img").unwrap();
        let server = crate::ServerBuilder::new(ImageConfig {
            source: ImageSource::Net(Box::new(listener)),
            compress: CompressMode::Real { quality: 70 },
            images: 2,
            image_size: 48,
            cache_bytes: 1 << 20,
        })
        .runtime(RuntimeKind::ThreadPool { workers: 2 })
        .spawn();
        let mut conn = net.connect("img").unwrap();
        write!(
            conn,
            "GET /img1-4.jpg HTTP/1.1\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let (status, body) = flux_http::read_response(&mut conn).unwrap();
        assert_eq!(status, 200);
        assert!(flux_image::jpeg_probe(&body).is_ok(), "serves a real JPEG");
        // A missing image 404s through the error handler.
        let mut conn = net.connect("img").unwrap();
        write!(
            conn,
            "GET /img99-4.jpg HTTP/1.1\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let (status, _) = flux_http::read_response(&mut conn).unwrap();
        assert_eq!(status, 404);

        stop(server);
    }

    #[test]
    fn hit_path_skips_compress() {
        // Profile-enabled run: the hit path must appear once warm.
        let (program, reg, ctx) = build(ImageConfig {
            source: ImageSource::Synthetic {
                interarrival: Duration::ZERO,
                total: 100,
            },
            compress: CompressMode::Real { quality: 50 },
            images: 1,
            image_size: 32,
            cache_bytes: 1 << 20,
        });
        let server = Arc::new(flux_runtime::FluxServer::with_profiling(program, reg).unwrap());
        let handle = flux_runtime::start(server.clone(), RuntimeKind::ThreadPool { workers: 2 });
        handle.join();
        let report =
            server
                .profiler()
                .unwrap()
                .report(server.program(), 0, flux_runtime::HotOrder::ByCount);
        let hit = report
            .iter()
            .find(|h| h.info.nodes == vec!["ReadRequest", "CheckCache", "Write", "Complete"]);
        assert!(hit.is_some(), "hit path executed: {report:?}");
        let _ = ctx;
    }
}
