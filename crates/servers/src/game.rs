//! The Flux game server (paper §4.4): multiplayer Tag over UDP at 10 Hz.
//!
//! Two sources: `ReceiveMove` (client datagrams: joins, moves, leaves)
//! and `Tick` (the heartbeat timer). The shared world is guarded by the
//! `world` atomicity constraint; the client table by `clients`. The
//! heartbeat flow computes the new state under the writer constraint
//! and broadcasts the identical snapshot to every player — the paper's
//! consistency requirement.

use crate::builder::{RunningServer, ServerSpec};
use flux_core::CompiledProgram;
use flux_game::{encode_snapshot, ClientMsg, Snapshot, World, TICK_MS};
use flux_net::{ConnDriver, Datagram, NetConfig};
use flux_runtime::{NodeOutcome, NodeRegistry, SourceOutcome};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The Flux program (~54 lines in the paper's Table 1).
pub const FLUX_SRC: &str = r#"
    ReceiveMove () => (game_msg *m);
    AddPlayer (game_msg *m) => ();
    RemovePlayer (game_msg *m) => ();
    Validate (game_msg *m) => (game_msg *m);
    ApplyMove (game_msg *m) => ();
    BadMove (game_msg *m) => ();

    Tick () => (int tick);
    ComputeState (int tick) => (game_state *s);
    Broadcast (game_state *s) => ();

    typedef is_join IsJoin;
    typedef is_leave IsLeave;

    source ReceiveMove => MoveFlow;
    MoveFlow:[is_join] = AddPlayer;
    MoveFlow:[is_leave] = RemovePlayer;
    MoveFlow:[_] = Validate -> ApplyMove;

    source Tick => TickFlow;
    TickFlow = ComputeState -> Broadcast;

    handle error Validate => BadMove;

    atomic AddPlayer: {clients, world};
    atomic RemovePlayer: {clients, world};
    atomic ApplyMove: {world};
    atomic ComputeState: {world};
    atomic Broadcast: {clients?};

    blocking Broadcast;
"#;

/// Per-flow payload.
pub struct GameFlow {
    pub msg: Option<ClientMsg>,
    pub from: String,
    pub snapshot: Option<Snapshot>,
    pub tick: u64,
}

/// Shared context.
pub struct GameCtx {
    pub socket: Arc<dyn Datagram>,
    /// The authoritative world (`world` constraint's data).
    pub world: Mutex<World>,
    /// player id -> reply address (`clients` constraint's data).
    pub clients: Mutex<HashMap<u32, String>>,
    pub moves_applied: AtomicU64,
    pub broadcasts: AtomicU64,
    pub bad_moves: AtomicU64,
    pub running: AtomicBool,
}

/// Configuration.
pub struct GameConfig {
    pub socket: Arc<dyn Datagram>,
    /// Heartbeat period (100 ms = 10 Hz in the paper; tests shorten it).
    pub tick: Duration,
    /// World RNG seed.
    pub seed: u64,
}

impl ServerSpec for GameConfig {
    type Flow = GameFlow;
    type Ctx = Arc<GameCtx>;

    fn build(self, net: &NetConfig) -> (CompiledProgram, NodeRegistry<GameFlow>, Arc<GameCtx>) {
        build(self, net)
    }

    /// The game server speaks datagrams directly; there is no
    /// connection driver to publish counters for.
    fn driver(_ctx: &Arc<GameCtx>) -> Option<Arc<ConnDriver>> {
        None
    }
}

/// Builds the compiled program, registry and context. `net.io_timeout`
/// bounds how long `ReceiveMove` blocks per datagram poll.
pub fn build(
    config: GameConfig,
    net: &NetConfig,
) -> (CompiledProgram, NodeRegistry<GameFlow>, Arc<GameCtx>) {
    let program = flux_core::compile(FLUX_SRC).expect("game server Flux program compiles");
    let io_timeout = net.io_timeout;
    let ctx = Arc::new(GameCtx {
        socket: config.socket,
        world: Mutex::new(World::new(config.seed)),
        clients: Mutex::new(HashMap::new()),
        moves_applied: AtomicU64::new(0),
        broadcasts: AtomicU64::new(0),
        bad_moves: AtomicU64::new(0),
        running: AtomicBool::new(true),
    });

    let mut reg: NodeRegistry<GameFlow> = NodeRegistry::new();

    // No `on_shed` handler: this is a datagram protocol, and dropping a
    // move under overload is indistinguishable from network loss the
    // client already tolerates. A shed datagram still lands in the
    // runtime's overload counters.
    let c = ctx.clone();
    reg.source("ReceiveMove", move || {
        if !c.running.load(Ordering::SeqCst) {
            return SourceOutcome::Shutdown;
        }
        let mut buf = [0u8; 256];
        match c.socket.recv_from(&mut buf, Some(io_timeout)) {
            Ok(Some((n, from))) => match ClientMsg::decode(&buf[..n]) {
                Some(msg) => SourceOutcome::New(GameFlow {
                    msg: Some(msg),
                    from,
                    snapshot: None,
                    tick: 0,
                }),
                None => SourceOutcome::Skip,
            },
            Ok(None) => SourceOutcome::Skip,
            Err(_) => SourceOutcome::Skip,
        }
    });

    reg.predicate("IsJoin", |f: &GameFlow| {
        matches!(f.msg, Some(ClientMsg::Join { .. }))
    });
    reg.predicate("IsLeave", |f: &GameFlow| {
        matches!(f.msg, Some(ClientMsg::Leave { .. }))
    });

    let c = ctx.clone();
    reg.node("AddPlayer", move |f: &mut GameFlow| {
        let Some(ClientMsg::Join { player }) = f.msg else {
            return NodeOutcome::Err(1);
        };
        c.world.lock().join(player);
        c.clients.lock().insert(player, f.from.clone());
        NodeOutcome::Ok
    });

    let c = ctx.clone();
    reg.node("RemovePlayer", move |f: &mut GameFlow| {
        let Some(ClientMsg::Leave { player }) = f.msg else {
            return NodeOutcome::Err(1);
        };
        c.world.lock().leave(player);
        c.clients.lock().remove(&player);
        NodeOutcome::Ok
    });

    let c = ctx.clone();
    reg.node("Validate", move |f: &mut GameFlow| {
        let Some(ClientMsg::Move(m)) = &f.msg else {
            return NodeOutcome::Err(1);
        };
        // Unknown players' moves are rejected (the error handler counts
        // them).
        if !c.clients.lock().contains_key(&m.player) {
            return NodeOutcome::Err(2);
        }
        NodeOutcome::Ok
    });

    let c = ctx.clone();
    reg.node("ApplyMove", move |f: &mut GameFlow| {
        let Some(ClientMsg::Move(m)) = f.msg else {
            return NodeOutcome::Err(1);
        };
        c.world.lock().apply_move(m);
        c.moves_applied.fetch_add(1, Ordering::Relaxed);
        NodeOutcome::Ok
    });

    let c = ctx.clone();
    reg.node("BadMove", move |_f: &mut GameFlow| {
        c.bad_moves.fetch_add(1, Ordering::Relaxed);
        NodeOutcome::Ok
    });

    let c = ctx.clone();
    let tick_period = config.tick;
    let tick_counter = AtomicU64::new(0);
    reg.source("Tick", move || {
        if !c.running.load(Ordering::SeqCst) {
            return SourceOutcome::Shutdown;
        }
        std::thread::sleep(tick_period);
        SourceOutcome::New(GameFlow {
            msg: None,
            from: String::new(),
            snapshot: None,
            tick: tick_counter.fetch_add(1, Ordering::SeqCst),
        })
    });

    let c = ctx.clone();
    reg.node("ComputeState", move |f: &mut GameFlow| {
        f.snapshot = Some(c.world.lock().step());
        NodeOutcome::Ok
    });

    let c = ctx.clone();
    reg.node_blocking("Broadcast", move |f: &mut GameFlow| {
        let snap = f.snapshot.as_ref().expect("ComputeState ran");
        let wire = encode_snapshot(snap);
        let clients = c.clients.lock();
        for addr in clients.values() {
            let _ = c.socket.send_to(&wire, addr);
        }
        drop(clients);
        c.broadcasts.fetch_add(1, Ordering::Relaxed);
        NodeOutcome::Ok
    });

    (program, reg, ctx)
}

/// A running Flux game server — what [`crate::ServerBuilder::spawn`]
/// returns for a [`GameConfig`].
pub type GameServer = RunningServer<GameFlow, Arc<GameCtx>>;

/// Stops a game server.
pub fn stop(server: GameServer) {
    server.ctx.running.store(false, Ordering::SeqCst);
    server.handle.server().request_shutdown();
    server.handle.stop();
}

/// The default heartbeat period (10 Hz).
pub fn default_tick() -> Duration {
    Duration::from_millis(TICK_MS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_game::decode_snapshot;
    use flux_net::MemNet;
    use flux_runtime::RuntimeKind;

    fn run_game_test(runtime: RuntimeKind) {
        let net = MemNet::new();
        let server_sock = Arc::new(net.bind_datagram("game").unwrap());
        let server = crate::ServerBuilder::new(GameConfig {
            socket: server_sock,
            tick: Duration::from_millis(10),
            seed: 42,
        })
        .runtime(runtime)
        .spawn();

        // Two clients join and move.
        let c1 = net.bind_datagram("p1").unwrap();
        let c2 = net.bind_datagram("p2").unwrap();
        c1.send_to(&ClientMsg::Join { player: 1 }.encode(), "game")
            .unwrap();
        c2.send_to(&ClientMsg::Join { player: 2 }.encode(), "game")
            .unwrap();

        // Wait for a broadcast showing both players.
        let mut buf = [0u8; 2048];
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let snap = loop {
            assert!(std::time::Instant::now() < deadline, "no broadcast");
            if let Some((n, _)) = c1
                .recv_from(&mut buf, Some(Duration::from_millis(200)))
                .unwrap()
            {
                let snap = decode_snapshot(&buf[..n]).unwrap();
                if snap.players.len() == 2 {
                    break snap;
                }
            }
        };
        assert_eq!(snap.it, Some(1), "first joiner is it");

        // Move player 2 and observe the position change.
        let before = snap.players.iter().find(|&&(id, _)| id == 2).unwrap().1;
        c2.send_to(
            &ClientMsg::Move(flux_game::Move {
                player: 2,
                dx: 25,
                dy: 0,
            })
            .encode(),
            "game",
        )
        .unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            assert!(std::time::Instant::now() < deadline, "move not applied");
            if let Some((n, _)) = c2
                .recv_from(&mut buf, Some(Duration::from_millis(200)))
                .unwrap()
            {
                let snap = decode_snapshot(&buf[..n]).unwrap();
                let after = snap.players.iter().find(|&&(id, _)| id == 2).unwrap().1;
                if after != before {
                    assert_eq!(after.x, (before.x + 25).min(flux_game::WORLD_W - 1));
                    break;
                }
            }
        }
        assert!(server.ctx.broadcasts.load(Ordering::Relaxed) > 0);
        stop(server);
    }

    #[test]
    fn plays_on_thread_pool() {
        run_game_test(RuntimeKind::ThreadPool { workers: 4 });
    }

    #[test]
    fn plays_on_event_runtime() {
        run_game_test(RuntimeKind::event_driven_sharded(1, 2));
    }

    #[test]
    fn unknown_player_move_is_bad() {
        let net = MemNet::new();
        let server_sock = Arc::new(net.bind_datagram("game").unwrap());
        let server = crate::ServerBuilder::new(GameConfig {
            socket: server_sock,
            tick: Duration::from_millis(50),
            seed: 1,
        })
        .runtime(RuntimeKind::ThreadPool { workers: 2 })
        .spawn();
        let c = net.bind_datagram("ghost").unwrap();
        c.send_to(
            &ClientMsg::Move(flux_game::Move {
                player: 99,
                dx: 1,
                dy: 1,
            })
            .encode(),
            "game",
        )
        .unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while server.ctx.bad_moves.load(Ordering::Relaxed) == 0
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(server.ctx.bad_moves.load(Ordering::Relaxed), 1);
        stop(server);
    }

    #[test]
    fn program_compiles_with_expected_constraints() {
        let program = flux_core::compile(FLUX_SRC).unwrap();
        assert_eq!(program.flows.len(), 2);
        let (_, n) = program.graph.node("ComputeState").unwrap();
        assert_eq!(n.constraints.len(), 1);
        assert_eq!(n.constraints[0].name, "world");
    }
}
