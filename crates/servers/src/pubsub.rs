//! The Flux streaming pub/sub server: windowed per-topic aggregation
//! with refcounted multicast fan-out.
//!
//! Where the other four servers are request/response, this one is a
//! *streaming* workload: producers publish at high rate, subscribers
//! receive a continuous feed, and one inbound event fans out to N
//! outbound writes. It exercises the two pieces of infrastructure built
//! for it — [`flux_net::SharedPayload`] (one encoded buffer submitted
//! to every subscriber, returned to the pool by whichever connection
//! drains last) and topic-keyed session pinning
//! ([`NodeRegistry::session_pinned`]): the session key is a hash of the
//! *topic*, not the connection, so a topic's window state always
//! executes on its home dispatcher shard.
//!
//! # Protocol
//!
//! Newline-delimited text, one command per line (trailing `\r`
//! tolerated):
//!
//! ```text
//! SUB <topic>            -> +OK <topic>
//! PUB <topic> <value>    (no acknowledgement)
//! ```
//!
//! Every publish triggers one aggregation round on the topic and one
//! fan-out message to every current subscriber:
//!
//! ```text
//! MSG <topic> <seq> <count> <top-k> <last>
//! ```
//!
//! where `<seq>` is the total values ever published to the topic,
//! `<count>` the current window population, `<top-k>` the k most
//! frequent window values as `value:count` pairs joined by commas
//! (`-` when the window is empty), and `<last>` echoes the value of
//! the publish that triggered the round (the fan-out benchmark embeds
//! a timestamp there to measure end-to-end latency). Unrecognized
//! lines are dropped.
//!
//! # Window semantics
//!
//! Each topic keeps a count-based sliding window of the last
//! [`PubSubSpec::window`] published values (default 64) with
//! incremental frequency counts; top-k (default 3) is recomputed per
//! round over the ≤window distinct values. The whole state lives in
//! one striped map entry whose flows are pinned to the topic's home
//! shard, so the common path takes an uncontended stripe lock.
//!
//! # Fan-out
//!
//! `Aggregate` encodes the `MSG` line **once** into a driver-pooled
//! buffer and seals it into a [`flux_net::SharedPayload`]; `Fanout`
//! submits that one buffer to every subscriber
//! ([`ConnDriver::submit_write_shared`]), so the payload-copy count
//! per publish is exactly 1 regardless of the subscriber count. A
//! subscriber that stops draining is evicted when its output buffer
//! hits `max_pending_out` (counted in
//! [`flux_net::DriverCounters::slow_consumer_evicted`]); its token
//! then fails fast on the next round and is pruned from the topic.

use crate::builder::{RunningServer, ServerSpec};
use flux_core::CompiledProgram;
use flux_net::{ConnDriver, DriverEvent, Listener, NetConfig, SharedPayload, Token};
use flux_runtime::{FanoutStat, NodeOutcome, NodeRegistry, SourceOutcome};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The Flux program (mirrors `programs/pubsub.flux`): one source, two
/// predicate-dispatched paths (subscribe and publish), session-scoped
/// atomicity on the topic state.
pub const FLUX_SRC: &str = r#"
    Listen () => (int token, pubsub_cmd *cmd);
    Subscribe (int token, pubsub_cmd *cmd) => (int token, pubsub_cmd *cmd);
    Ack (int token, pubsub_cmd *cmd) => ();
    Aggregate (int token, pubsub_cmd *cmd) => (int token, pubsub_cmd *cmd);
    Fanout (int token, pubsub_cmd *cmd) => ();
    Drop (int token, pubsub_cmd *cmd) => ();

    typedef is_sub IsSub;
    typedef is_pub IsPub;

    source Listen => Cmd;
    Cmd:[_, is_sub] = Subscribe -> Ack;
    Cmd:[_, is_pub] = Aggregate -> Fanout;
    Cmd:[_, _] = Drop;

    handle error Subscribe => Drop;
    handle error Aggregate => Drop;

    atomic Subscribe: {topics(session)};
    atomic Aggregate: {topics(session)};
    atomic Fanout: {topics(session)};
"#;

/// One parsed client command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PubSubCmd {
    /// `SUB <topic>`: register the connection as a subscriber.
    Sub { topic: String },
    /// `PUB <topic> <value>`: publish. Consecutive publishes to the
    /// same topic from one readable burst coalesce into one command
    /// (one aggregation round, one fan-out — `values.len() - 1` counts
    /// as coalesced).
    Pub { topic: String, values: Vec<String> },
    /// Anything unparseable; routed to `Drop`.
    Junk,
}

impl PubSubCmd {
    fn topic(&self) -> Option<&str> {
        match self {
            PubSubCmd::Sub { topic } | PubSubCmd::Pub { topic, .. } => Some(topic),
            PubSubCmd::Junk => None,
        }
    }
}

/// Per-flow payload: the originating connection and its command, plus
/// the fields `Aggregate` hands to `Fanout` (the sealed payload and the
/// subscriber snapshot).
pub struct PubSubFlow {
    pub token: Token,
    pub cmd: PubSubCmd,
    payload: Option<SharedPayload>,
    subs: Vec<Token>,
}

impl PubSubFlow {
    fn new(token: Token, cmd: PubSubCmd) -> Self {
        PubSubFlow {
            token,
            cmd,
            payload: None,
            subs: Vec::new(),
        }
    }

    /// Session key: FNV-1a of the topic, so every flow touching a topic
    /// — and therefore its window state — homes on one dispatcher
    /// shard. Junk flows key on the connection instead (they touch no
    /// shared state, any shard will do).
    fn session_key(&self) -> u64 {
        match self.cmd.topic() {
            Some(topic) => fnv1a(topic.as_bytes()),
            None => self.token,
        }
    }
}

/// FNV-1a: deterministic (unlike `std`'s keyed SipHash), cheap on the
/// short topic names this protocol carries.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One topic's sliding-window state plus its subscriber list.
struct TopicState {
    /// The last ≤window published values, oldest first.
    window: VecDeque<String>,
    /// Frequency of each distinct value currently in the window.
    counts: HashMap<String, u32>,
    /// Total values ever published to this topic.
    seq: u64,
    /// Subscriber tokens; dead ones are pruned lazily when a fan-out
    /// submission reports the token gone.
    subs: Vec<Token>,
}

impl TopicState {
    fn new() -> Self {
        TopicState {
            window: VecDeque::new(),
            counts: HashMap::new(),
            seq: 0,
            subs: Vec::new(),
        }
    }

    /// Applies one published value to the window.
    fn push(&mut self, value: String, window: usize) {
        self.seq += 1;
        *self.counts.entry(value.clone()).or_insert(0) += 1;
        self.window.push_back(value);
        while self.window.len() > window {
            let old = self.window.pop_front().expect("window non-empty");
            if let Some(n) = self.counts.get_mut(&old) {
                *n -= 1;
                if *n == 0 {
                    self.counts.remove(&old);
                }
            }
        }
    }

    /// The k most frequent window values as `value:count` pairs joined
    /// by commas (ties broken by value for determinism), `-` when the
    /// window is empty.
    fn topk(&self, k: usize) -> String {
        if self.counts.is_empty() {
            return "-".to_string();
        }
        let mut pairs: Vec<(&String, u32)> = self.counts.iter().map(|(v, &n)| (v, n)).collect();
        pairs.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        pairs.truncate(k);
        let mut out = String::new();
        for (i, (v, n)) in pairs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(v);
            out.push(':');
            out.push_str(&n.to_string());
        }
        out
    }
}

/// How many lock stripes the topic map spreads over. Pinning already
/// keeps each topic's flows on one shard; the stripes only decorrelate
/// *different* topics that share a shard.
const TOPIC_STRIPES: usize = 16;

/// Shared server context captured by the node closures.
pub struct PubSubCtx {
    pub driver: Arc<ConnDriver>,
    /// Fan-out counters; the builder shares this very block into
    /// [`flux_runtime::ServerStats::fanout`].
    pub fanout: Arc<FanoutStat>,
    /// `MSG` payload encodes. The zero-copy invariant the tests assert:
    /// `encodes == fanout.publishes` — one encode per aggregation
    /// round, no matter how many subscribers the round delivered to.
    pub encodes: AtomicU64,
    /// Successful `SUB` registrations.
    pub subscriptions: AtomicU64,
    topics: Vec<Mutex<HashMap<String, TopicState>>>,
    window: usize,
    topk: usize,
}

impl PubSubCtx {
    fn stripe(&self, topic: &str) -> &Mutex<HashMap<String, TopicState>> {
        &self.topics[(fnv1a(topic.as_bytes()) % TOPIC_STRIPES as u64) as usize]
    }

    /// Current subscriber count of a topic (test/ops introspection).
    pub fn subscriber_count(&self, topic: &str) -> usize {
        self.stripe(topic)
            .lock()
            .get(topic)
            .map_or(0, |t| t.subs.len())
    }
}

/// The pub/sub server's build spec: what [`crate::ServerBuilder`]
/// consumes.
pub struct PubSubSpec {
    pub listener: Box<dyn Listener>,
    /// Sliding-window size in values (default 64).
    pub window: usize,
    /// How many top values each `MSG` reports (default 3).
    pub topk: usize,
}

impl PubSubSpec {
    pub fn new(listener: Box<dyn Listener>) -> Self {
        PubSubSpec {
            listener,
            window: 64,
            topk: 3,
        }
    }

    /// Overrides the sliding-window size.
    pub fn window(mut self, values: usize) -> Self {
        self.window = values.max(1);
        self
    }

    /// Overrides how many top values each `MSG` reports.
    pub fn topk(mut self, k: usize) -> Self {
        self.topk = k.max(1);
        self
    }
}

impl ServerSpec for PubSubSpec {
    type Flow = PubSubFlow;
    type Ctx = Arc<PubSubCtx>;

    fn build(self, net: &NetConfig) -> (CompiledProgram, NodeRegistry<PubSubFlow>, Arc<PubSubCtx>) {
        build_spec(self, net)
    }

    fn driver(ctx: &Arc<PubSubCtx>) -> Option<Arc<ConnDriver>> {
        Some(ctx.driver.clone())
    }

    fn fanout(ctx: &Arc<PubSubCtx>) -> Option<Arc<FanoutStat>> {
        Some(ctx.fanout.clone())
    }
}

/// How many driver events one `Listen` poll may drain (same bound as
/// the web server's batched hot path).
const LISTEN_BATCH: usize = 128;

/// Largest single read per readable event. Leftover bytes re-trigger
/// readiness after the re-arm, so a firehose publisher cannot starve
/// the rest of the reactor round.
const READ_CHUNK: usize = 16 * 1024;

/// Parses one protocol line (`\r`-tolerant, already `\n`-stripped).
fn parse_line(line: &[u8]) -> PubSubCmd {
    let line = match line.last() {
        Some(b'\r') => &line[..line.len() - 1],
        _ => line,
    };
    let Ok(line) = std::str::from_utf8(line) else {
        return PubSubCmd::Junk;
    };
    let mut words = line.splitn(3, ' ');
    match (words.next(), words.next(), words.next()) {
        (Some("SUB"), Some(topic), None) if !topic.is_empty() => PubSubCmd::Sub {
            topic: topic.to_string(),
        },
        (Some("PUB"), Some(topic), Some(value)) if !topic.is_empty() && !value.is_empty() => {
            PubSubCmd::Pub {
                topic: topic.to_string(),
                values: vec![value.to_string()],
            }
        }
        _ => PubSubCmd::Junk,
    }
}

/// Drains the complete lines of one readable burst into flows,
/// coalescing consecutive publishes to the same topic into one command.
/// Returns how many extra publishes were coalesced.
fn parse_burst(token: Token, scratch: &mut Vec<u8>, flows: &mut Vec<PubSubFlow>) -> u64 {
    let mut consumed = 0;
    let mut coalesced = 0;
    while let Some(nl) = scratch[consumed..].iter().position(|&b| b == b'\n') {
        let line = &scratch[consumed..consumed + nl];
        consumed += nl + 1;
        if line.is_empty() {
            continue;
        }
        match parse_line(line) {
            PubSubCmd::Pub { topic, mut values } => {
                // Coalesce into the immediately preceding publish to the
                // same topic: one flow, one aggregation round, one
                // fan-out for the whole burst.
                if let Some(PubSubFlow {
                    token: prev,
                    cmd:
                        PubSubCmd::Pub {
                            topic: prev_topic,
                            values: prev_values,
                        },
                    ..
                }) = flows.last_mut()
                {
                    if *prev == token && *prev_topic == topic {
                        prev_values.append(&mut values);
                        coalesced += 1;
                        continue;
                    }
                }
                flows.push(PubSubFlow::new(token, PubSubCmd::Pub { topic, values }));
            }
            cmd => flows.push(PubSubFlow::new(token, cmd)),
        }
    }
    scratch.drain(..consumed);
    coalesced
}

fn build_spec(
    spec: PubSubSpec,
    net: &NetConfig,
) -> (CompiledProgram, NodeRegistry<PubSubFlow>, Arc<PubSubCtx>) {
    let PubSubSpec {
        listener,
        window,
        topk,
    } = spec;
    let program = flux_core::compile(FLUX_SRC).expect("pub/sub Flux program compiles");
    let driver = Arc::new(ConnDriver::with_config(net));
    driver.spawn_acceptor(listener);
    let io_timeout = net.io_timeout;
    let ctx = Arc::new(PubSubCtx {
        driver,
        fanout: Arc::new(FanoutStat::default()),
        encodes: AtomicU64::new(0),
        subscriptions: AtomicU64::new(0),
        topics: (0..TOPIC_STRIPES)
            .map(|_| Mutex::new(HashMap::new()))
            .collect(),
        window,
        topk,
    });

    let mut reg: NodeRegistry<PubSubFlow> = NodeRegistry::new();

    // Source: the readiness multiplexer *and* the protocol parser. The
    // topic must be known before the flow enters the runtime (the
    // session key is derived from it), so lines are split here, with
    // the partial tail of a burst kept in the connection's driver
    // scratch across events. Streaming connections are re-armed
    // immediately — a publisher's next burst must not wait for the
    // previous flow to complete.
    let c = ctx.clone();
    let events: Mutex<Vec<DriverEvent>> = Mutex::new(Vec::new());
    reg.source("Listen", move || {
        let mut buf = events.lock();
        buf.clear();
        if c.driver.next_events(&mut buf, LISTEN_BATCH, io_timeout) == 0 {
            return SourceOutcome::Skip;
        }
        let mut flows: Vec<PubSubFlow> = Vec::new();
        let mut coalesced = 0;
        for ev in buf.drain(..) {
            match ev {
                DriverEvent::Incoming(token) => c.driver.arm(token),
                DriverEvent::WriteDone(_) | DriverEvent::WriteFailed(_) => {}
                DriverEvent::Readable(token) => {
                    let Some(conn) = c.driver.get(token) else {
                        continue;
                    };
                    let mut chunk = [0u8; READ_CHUNK];
                    let read = {
                        use std::io::Read as _;
                        conn.lock().read(&mut chunk)
                    };
                    match read {
                        Ok(0) | Err(_) => {
                            // EOF or error: drop the connection; its
                            // subscriptions are pruned lazily when the
                            // next fan-out round finds the token gone.
                            c.driver.remove(token);
                        }
                        Ok(n) => {
                            let mut scratch = c.driver.take_read_buf(token);
                            scratch.extend_from_slice(&chunk[..n]);
                            let before = flows.len();
                            coalesced += parse_burst(token, &mut scratch, &mut flows);
                            if flows.len() > before {
                                // A complete protocol line is progress;
                                // trickled partial lines are not, so a
                                // slow-loris publisher stays reapable.
                                c.driver.mark_progress(token);
                            }
                            c.driver.put_read_buf(token, scratch);
                            c.driver.arm(token);
                        }
                    }
                }
            }
        }
        if coalesced > 0 {
            c.fanout
                .coalesced_publishes
                .fetch_add(coalesced, Ordering::Relaxed);
        }
        match flows.len() {
            0 => SourceOutcome::Skip,
            1 => SourceOutcome::New(flows.pop().expect("len checked")),
            _ => SourceOutcome::Batch(flows),
        }
    });

    // Topic-keyed session affinity: hash the *topic*, and tell the
    // runtime the key pins execution — every flow touching a topic runs
    // on the topic's home shard, so the stripe lock below is
    // uncontended on the steady-state path.
    reg.session_pinned("Listen", |f: &PubSubFlow| f.session_key());

    reg.predicate("IsSub", |f: &PubSubFlow| {
        matches!(f.cmd, PubSubCmd::Sub { .. })
    });
    reg.predicate("IsPub", |f: &PubSubFlow| {
        matches!(f.cmd, PubSubCmd::Pub { .. })
    });

    let c = ctx.clone();
    reg.node("Subscribe", move |f: &mut PubSubFlow| {
        let PubSubCmd::Sub { topic } = &f.cmd else {
            unreachable!("IsSub matched");
        };
        if c.driver.get(f.token).is_none() {
            return NodeOutcome::Err(1); // connection already gone
        }
        let mut stripe = c.stripe(topic).lock();
        let state = stripe.entry(topic.clone()).or_insert_with(TopicState::new);
        if !state.subs.contains(&f.token) {
            state.subs.push(f.token);
        }
        drop(stripe);
        c.subscriptions.fetch_add(1, Ordering::Relaxed);
        NodeOutcome::Ok
    });

    let c = ctx.clone();
    reg.node("Ack", move |f: &mut PubSubFlow| {
        let PubSubCmd::Sub { topic } = &f.cmd else {
            unreachable!("IsSub matched");
        };
        let mut buf = c.driver.take_write_buf();
        buf.extend_from_slice(b"+OK ");
        buf.extend_from_slice(topic.as_bytes());
        buf.push(b'\n');
        c.driver.submit_write_buf(f.token, buf);
        NodeOutcome::Ok
    });

    // Aggregate: apply the publish burst to the topic window, then
    // encode the MSG line exactly once into a pooled buffer and seal it
    // for sharing. The subscriber snapshot travels in the flow so
    // Fanout needs no second stripe lookup on the hot path.
    let c = ctx.clone();
    reg.node("Aggregate", move |f: &mut PubSubFlow| {
        let PubSubCmd::Pub { topic, values } = &f.cmd else {
            unreachable!("IsPub matched");
        };
        if values.is_empty() {
            return NodeOutcome::Err(1);
        }
        let last = values.last().expect("non-empty").clone();
        let mut stripe = c.stripe(topic).lock();
        let state = stripe.entry(topic.clone()).or_insert_with(TopicState::new);
        for value in values {
            state.push(value.clone(), c.window);
        }
        let mut buf = c.driver.take_write_buf();
        buf.extend_from_slice(b"MSG ");
        buf.extend_from_slice(topic.as_bytes());
        buf.extend_from_slice(
            format!(
                " {} {} {} {}\n",
                state.seq,
                state.window.len(),
                state.topk(c.topk),
                last
            )
            .as_bytes(),
        );
        f.subs.clear();
        f.subs.extend_from_slice(&state.subs);
        drop(stripe);
        f.payload = Some(c.driver.seal_write_buf(buf));
        c.encodes.fetch_add(1, Ordering::Relaxed);
        c.fanout.publishes.fetch_add(1, Ordering::Relaxed);
        NodeOutcome::Ok
    });

    // Fanout: submit the one sealed payload to every subscriber. Each
    // submission that reaches a live connection buffers an Arc clone,
    // never a copy; the buffer returns to the driver's pool when the
    // last connection drains (or fails). Tokens the driver no longer
    // knows — closed or slow-consumer-evicted — are pruned from the
    // topic here.
    let c = ctx.clone();
    reg.node("Fanout", move |f: &mut PubSubFlow| {
        let Some(payload) = f.payload.take() else {
            return NodeOutcome::Ok; // aggregation errored upstream
        };
        let PubSubCmd::Pub { topic, .. } = &f.cmd else {
            unreachable!("IsPub matched");
        };
        let mut delivered = 0u64;
        let mut dead: Vec<Token> = Vec::new();
        for &sub in &f.subs {
            if c.driver.submit_write_shared(sub, &payload) {
                delivered += 1;
            } else {
                dead.push(sub);
            }
        }
        if delivered > 0 {
            c.fanout.deliveries.fetch_add(delivered, Ordering::Relaxed);
        }
        if !dead.is_empty() {
            let mut stripe = c.stripe(topic).lock();
            if let Some(state) = stripe.get_mut(topic) {
                state.subs.retain(|t| !dead.contains(t));
            }
        }
        NodeOutcome::Ok
    });

    // Drop: terminal for junk lines and the error arms of
    // Subscribe/Aggregate. The connection stays armed (the source
    // re-arms on every read), so one bad line does not kill a session.
    reg.node("Drop", move |_f: &mut PubSubFlow| NodeOutcome::Ok);

    // Overload shedding (OverloadPolicy::Bounded): a command whose home
    // shard stands at the depth cap is answered `-BUSY` on the source
    // thread instead of queueing. The connection stays open — this is a
    // streaming protocol and the client may retry — and the shed count
    // lands in the runtime's overload stats.
    let c = ctx.clone();
    reg.on_shed(move |f: PubSubFlow| {
        let mut buf = c.driver.take_write_buf();
        buf.extend_from_slice(b"-BUSY\n");
        c.driver.submit_write_buf(f.token, buf);
    });

    (program, reg, ctx)
}

/// A running Flux pub/sub server plus its context — what
/// [`crate::ServerBuilder::spawn`] returns for a [`PubSubSpec`].
pub type PubSubServer = RunningServer<PubSubFlow, Arc<PubSubCtx>>;

/// Stops a pub/sub server: shuts down sources, the driver and runtime.
pub fn stop(server: PubSubServer) {
    server.ctx.driver.stop();
    server.handle.server().request_shutdown();
    server.handle.stop();
}

#[cfg(test)]
mod tests {
    use super::*;
    use flux_net::MemNet;
    use flux_runtime::RuntimeKind;
    use std::io::{BufRead, BufReader, Write};

    fn spawn_on(net: &Arc<MemNet>, runtime: RuntimeKind) -> PubSubServer {
        let listener = net.listen("pubsub").unwrap();
        crate::ServerBuilder::new(PubSubSpec::new(Box::new(listener)))
            .runtime(runtime)
            .spawn()
    }

    fn subscribe(net: &Arc<MemNet>, topic: &str) -> BufReader<flux_net::MemConn> {
        let mut conn = net.connect("pubsub").unwrap();
        writeln!(conn, "SUB {topic}").unwrap();
        let mut reader = BufReader::new(conn);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, format!("+OK {topic}\n"));
        reader
    }

    fn read_msg(reader: &mut BufReader<flux_net::MemConn>) -> Vec<String> {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.ends_with('\n'), "truncated: {line:?}");
        line.trim_end().split(' ').map(str::to_string).collect()
    }

    fn run_pubsub_test(runtime: RuntimeKind) {
        let net = MemNet::new();
        let server = spawn_on(&net, runtime);

        let mut sub_a = subscribe(&net, "news");
        let mut sub_b = subscribe(&net, "news");
        let mut publisher = net.connect("pubsub").unwrap();

        writeln!(publisher, "PUB news alpha").unwrap();
        for sub in [&mut sub_a, &mut sub_b] {
            let msg = read_msg(sub);
            assert_eq!(&msg[..4], &["MSG", "news", "1", "1"]);
            assert_eq!(&msg[4..], &["alpha:1", "alpha"]);
        }

        publisher
            .write_all(b"PUB news beta\nPUB news beta\n")
            .unwrap();
        // Whether the two lines coalesce depends on arrival timing;
        // drain rounds until seq reaches 3 on both subscribers.
        for sub in [&mut sub_a, &mut sub_b] {
            loop {
                let msg = read_msg(sub);
                assert_eq!(&msg[..2], &["MSG", "news"]);
                if msg[2] == "3" {
                    assert_eq!(msg[3], "3"); // window population
                    assert_eq!(msg[4], "beta:2,alpha:1");
                    assert_eq!(msg[5], "beta");
                    break;
                }
            }
        }

        // A topic nobody subscribes to still aggregates without error.
        writeln!(publisher, "PUB quiet x").unwrap();
        // Junk lines are dropped without killing the session.
        publisher.write_all(b"NOPE\nPUB news gamma\n").unwrap();
        for sub in [&mut sub_a, &mut sub_b] {
            let msg = read_msg(sub);
            assert_eq!(&msg[..3], &["MSG", "news", "4"]);
            assert_eq!(msg[5], "gamma");
        }

        let publishes = server.ctx.fanout.publishes.load(Ordering::Relaxed);
        let encodes = server.ctx.encodes.load(Ordering::Relaxed);
        assert_eq!(
            encodes, publishes,
            "zero-copy invariant: one encode per aggregation round"
        );
        // The deliveries counter is bumped *after* `submit_write_shared`
        // makes the bytes reader-visible, so the reads above can
        // complete a beat before the publisher flow's fetch_add lands —
        // wait for the counter rather than racing it.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        while server.ctx.fanout.deliveries.load(Ordering::Relaxed) < 2 * 3
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert!(server.ctx.fanout.deliveries.load(Ordering::Relaxed) >= 2 * 3);
        assert_eq!(server.ctx.subscriptions.load(Ordering::Relaxed), 2);
        stop(server);
    }

    #[test]
    fn pubsub_on_sharded_event_runtime() {
        run_pubsub_test(RuntimeKind::event_driven_sharded(4, 4));
    }

    #[test]
    fn pubsub_on_single_shard_event_runtime() {
        run_pubsub_test(RuntimeKind::event_driven_sharded(1, 4));
    }

    #[test]
    fn pubsub_on_thread_pool() {
        run_pubsub_test(RuntimeKind::ThreadPool { workers: 4 });
    }

    #[test]
    fn pubsub_on_thread_per_flow() {
        run_pubsub_test(RuntimeKind::ThreadPerFlow);
    }

    /// The acceptance invariant: with 8 subscribers, one publish
    /// encodes its payload exactly once (copy count 1) and submits the
    /// same shared buffer 8 times.
    #[test]
    fn one_publish_encodes_once_for_eight_subscribers() {
        let net = MemNet::new();
        let server = spawn_on(&net, RuntimeKind::event_driven_sharded(2, 4));

        let mut subs: Vec<_> = (0..8).map(|_| subscribe(&net, "bulk")).collect();
        let mut publisher = net.connect("pubsub").unwrap();
        writeln!(publisher, "PUB bulk payload-once").unwrap();
        for sub in &mut subs {
            let msg = read_msg(sub);
            assert_eq!(&msg[..2], &["MSG", "bulk"]);
            assert_eq!(msg[5], "payload-once");
        }

        assert_eq!(server.ctx.fanout.publishes.load(Ordering::Relaxed), 1);
        assert_eq!(
            server.ctx.encodes.load(Ordering::Relaxed),
            1,
            "payload-copy count per publish must be 1"
        );
        assert_eq!(server.ctx.fanout.deliveries.load(Ordering::Relaxed), 8);
        assert_eq!(
            server
                .ctx
                .driver
                .counters()
                .writes_shared
                .load(Ordering::Relaxed),
            8
        );
        stop(server);
    }

    /// Subscribers that disconnect are pruned on the next round and do
    /// not break delivery to the rest.
    #[test]
    fn dead_subscribers_are_pruned() {
        let net = MemNet::new();
        let server = spawn_on(&net, RuntimeKind::event_driven_sharded(2, 4));

        let mut stays = subscribe(&net, "churn");
        let goes = subscribe(&net, "churn");
        drop(goes);

        let mut publisher = net.connect("pubsub").unwrap();
        // First round may still submit to the closing token; the one
        // that sticks around must receive every round.
        writeln!(publisher, "PUB churn one").unwrap();
        assert_eq!(read_msg(&mut stays)[5], "one");
        writeln!(publisher, "PUB churn two").unwrap();
        assert_eq!(read_msg(&mut stays)[5], "two");

        // The dead token is gone from the topic once a round saw it
        // fail (the EOF may race the first publish, hence the retry).
        for _ in 0..50 {
            if server.ctx.subscriber_count("churn") == 1 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
            writeln!(publisher, "PUB churn again").unwrap();
            read_msg(&mut stays);
        }
        assert_eq!(server.ctx.subscriber_count("churn"), 1);
        stop(server);
    }

    #[test]
    fn program_compiles_and_is_small() {
        let program = flux_core::compile(FLUX_SRC).unwrap();
        assert_eq!(program.flows.len(), 1);
        let lines = FLUX_SRC
            .lines()
            .filter(|l| !l.trim().is_empty() && !l.trim().starts_with("//"))
            .count();
        assert!(
            lines <= 30,
            "Flux pub/sub server stays small: {lines} lines"
        );
    }

    #[test]
    fn parse_and_coalesce() {
        assert_eq!(parse_line(b"SUB a"), PubSubCmd::Sub { topic: "a".into() });
        assert_eq!(
            parse_line(b"PUB a hello world\r"),
            PubSubCmd::Pub {
                topic: "a".into(),
                values: vec!["hello world".into()],
            }
        );
        assert_eq!(parse_line(b"SUB"), PubSubCmd::Junk);
        assert_eq!(parse_line(b"PUB a"), PubSubCmd::Junk);
        assert_eq!(parse_line(b"GET /"), PubSubCmd::Junk);

        let mut scratch = b"PUB t 1\nPUB t 2\nPUB u 3\nPUB t 4\nSUB t\nPUB t 5\npartial".to_vec();
        let mut flows = Vec::new();
        let coalesced = parse_burst(7, &mut scratch, &mut flows);
        assert_eq!(coalesced, 1); // only the t:1/t:2 pair is consecutive
        assert_eq!(scratch, b"partial");
        assert_eq!(flows.len(), 5);
        assert_eq!(
            flows[0].cmd,
            PubSubCmd::Pub {
                topic: "t".into(),
                values: vec!["1".into(), "2".into()],
            }
        );
        assert!(matches!(&flows[3].cmd, PubSubCmd::Sub { topic } if topic == "t"));

        // Session keys: same topic, same key — whether SUB or PUB;
        // different topics diverge; junk keys on the connection token.
        assert_eq!(flows[0].session_key(), flows[2].session_key());
        assert_eq!(flows[0].session_key(), flows[3].session_key());
        assert_ne!(flows[0].session_key(), flows[1].session_key());
        assert_eq!(PubSubFlow::new(3, PubSubCmd::Junk).session_key(), 3);
    }

    /// Window semantics: values older than the window fall out of both
    /// the population and the top-k counts.
    #[test]
    fn window_evicts_and_topk_orders() {
        let mut state = TopicState::new();
        for v in ["a", "b", "a", "c", "a", "b"] {
            state.push(v.to_string(), 4);
        }
        // Window holds the last 4: [a, c, a, b].
        assert_eq!(state.seq, 6);
        assert_eq!(state.window.len(), 4);
        assert_eq!(state.topk(3), "a:2,b:1,c:1");
        assert_eq!(state.topk(1), "a:2");
        assert_eq!(TopicState::new().topk(3), "-");
    }
}
