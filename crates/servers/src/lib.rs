//! # flux-servers — the paper's four servers plus a streaming fifth, written in Flux
//!
//! Each module embeds its Flux program source (compiled at start-up by
//! `flux-core`), the Rust node implementations it binds, and a *spec*
//! type consumed by the one typed [`ServerBuilder`]. The same server
//! runs unchanged on any of the four runtimes — the paper's "runtime
//! independence" claim, exercised by the test suites of every module —
//! and, one layer down, on any readiness backend (`poll(2)` or
//! `epoll(7)`, chosen through [`flux_net::NetConfig`]).
//!
//! | module | paper section | style | spec |
//! |--------|---------------|-------|------|
//! | [`web`]    | §4.2 | request-response (HTTP/1.1 + FluxScript) | [`web::WebSpec`] |
//! | [`image`]  | §2, §5.1 | request-response (PPM -> JPEG, LFU cache) | [`image::ImageConfig`] |
//! | [`bt`]     | §4.3 | peer-to-peer (BitTorrent, Figure 7) | [`bt::BtConfig`] |
//! | [`game`]   | §4.4 | heartbeat client-server (Tag at 10 Hz) | [`game::GameConfig`] |
//! | [`pubsub`] | beyond the paper | streaming (windowed aggregation, multicast fan-out) | [`pubsub::PubSubSpec`] |
//!
//! The pub/sub module stresses what the request/response servers never
//! do: one inbound publish fans out to N subscribers through a single
//! refcounted payload ([`flux_net::SharedPayload`]), and flows are
//! pinned to their *topic's* home shard rather than their
//! connection's ([`flux_runtime::NodeRegistry::session_pinned`]); see
//! its module docs for the wire protocol and window semantics.
//!
//! Construction is uniform across servers, examples, benches and
//! tests:
//!
//! ```ignore
//! use flux_servers::{ServerBuilder, web::WebSpec};
//! let server = ServerBuilder::new(WebSpec::new(listener, docroot))
//!     .runtime(RuntimeKind::event_driven_sharded(4, 4))
//!     .spawn();
//! // ... server.ctx, server.handle ...
//! web::stop(server);
//! ```
//!
//! The builder decides runtime kind, network configuration (readiness
//! backend, per-connection write-buffer bound, event-poll timeout) and
//! the stats/profiling toggles in one place; each module keeps a
//! `stop` helper for orderly shutdown.

pub mod bt;
pub mod builder;
pub mod game;
pub mod image;
pub mod profile_service;
pub mod pubsub;
pub mod web;

pub use builder::{RunningServer, ServerBuilder, ServerSpec};

/// Adapter publishing a [`flux_net::DriverCounters`] block through the
/// runtime's [`flux_runtime::NetCounters`] stats view (the runtime
/// crate does not depend on the net crate).
#[derive(Debug)]
pub struct DriverNetCounters(pub std::sync::Arc<flux_net::DriverCounters>);

impl flux_runtime::NetCounters for DriverNetCounters {
    fn accept_retries(&self) -> u64 {
        self.0
            .accept_retries
            .load(std::sync::atomic::Ordering::Relaxed)
    }
    fn writes_submitted(&self) -> u64 {
        self.0
            .writes_submitted
            .load(std::sync::atomic::Ordering::Relaxed)
    }
    fn writes_drained(&self) -> u64 {
        self.0
            .writes_drained
            .load(std::sync::atomic::Ordering::Relaxed)
    }
    fn write_would_block(&self) -> u64 {
        self.0
            .write_would_block
            .load(std::sync::atomic::Ordering::Relaxed)
    }
    fn writes_failed(&self) -> u64 {
        self.0
            .writes_failed
            .load(std::sync::atomic::Ordering::Relaxed)
    }
    fn writes_shared(&self) -> u64 {
        self.0
            .writes_shared
            .load(std::sync::atomic::Ordering::Relaxed)
    }
    fn slow_consumer_evicted(&self) -> u64 {
        self.0
            .slow_consumer_evicted
            .load(std::sync::atomic::Ordering::Relaxed)
    }
    fn accepts_admitted(&self) -> u64 {
        self.0
            .accepts_admitted
            .load(std::sync::atomic::Ordering::Relaxed)
    }
    fn accepts_governed(&self) -> u64 {
        self.0
            .accepts_governed
            .load(std::sync::atomic::Ordering::Relaxed)
    }
    fn idle_reaped(&self) -> u64 {
        self.0
            .idle_reaped
            .load(std::sync::atomic::Ordering::Relaxed)
    }
    fn writes_deferred(&self) -> u64 {
        self.0
            .writes_deferred
            .load(std::sync::atomic::Ordering::Relaxed)
    }
}
