//! # flux-servers — the paper's four servers, written in Flux
//!
//! Each module embeds its Flux program source (compiled at start-up by
//! `flux-core`), the Rust node implementations it binds, and a `spawn`
//! helper. The same server runs unchanged on any of the three runtimes
//! — the paper's "runtime independence" claim, exercised by the test
//! suites of every module.
//!
//! | module | paper section | style |
//! |--------|---------------|-------|
//! | [`web`]   | §4.2 | request-response (HTTP/1.1 + FluxScript) |
//! | [`image`] | §2, §5.1 | request-response (PPM -> JPEG, LFU cache) |
//! | [`bt`]    | §4.3 | peer-to-peer (BitTorrent, Figure 7) |
//! | [`game`]  | §4.4 | heartbeat client-server (Tag at 10 Hz) |

pub mod bt;
pub mod game;
pub mod image;
pub mod profile_service;
pub mod web;

/// Adapter publishing a [`flux_net::DriverCounters`] block through the
/// runtime's [`flux_runtime::NetCounters`] stats view (the runtime
/// crate does not depend on the net crate).
#[derive(Debug)]
pub struct DriverNetCounters(pub std::sync::Arc<flux_net::DriverCounters>);

impl flux_runtime::NetCounters for DriverNetCounters {
    fn accept_retries(&self) -> u64 {
        self.0
            .accept_retries
            .load(std::sync::atomic::Ordering::Relaxed)
    }
    fn writes_submitted(&self) -> u64 {
        self.0
            .writes_submitted
            .load(std::sync::atomic::Ordering::Relaxed)
    }
    fn writes_drained(&self) -> u64 {
        self.0
            .writes_drained
            .load(std::sync::atomic::Ordering::Relaxed)
    }
    fn write_would_block(&self) -> u64 {
        self.0
            .write_would_block
            .load(std::sync::atomic::Ordering::Relaxed)
    }
    fn writes_failed(&self) -> u64 {
        self.0
            .writes_failed
            .load(std::sync::atomic::Ordering::Relaxed)
    }
}
