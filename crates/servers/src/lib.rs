//! # flux-servers — the paper's four servers, written in Flux
//!
//! Each module embeds its Flux program source (compiled at start-up by
//! `flux-core`), the Rust node implementations it binds, and a `spawn`
//! helper. The same server runs unchanged on any of the three runtimes
//! — the paper's "runtime independence" claim, exercised by the test
//! suites of every module.
//!
//! | module | paper section | style |
//! |--------|---------------|-------|
//! | [`web`]   | §4.2 | request-response (HTTP/1.1 + FluxScript) |
//! | [`image`] | §2, §5.1 | request-response (PPM -> JPEG, LFU cache) |
//! | [`bt`]    | §4.3 | peer-to-peer (BitTorrent, Figure 7) |
//! | [`game`]  | §4.4 | heartbeat client-server (Tag at 10 Hz) |

pub mod bt;
pub mod game;
pub mod image;
pub mod profile_service;
pub mod web;
