//! Acceptance tests for overload control (edge admission + idle
//! reaping) against the real TCP stack.
//!
//! The slow-loris proof: a peer that opens a connection and trickles a
//! partial request head — never completing it — parks a blocking
//! `ReadRequest` on the I/O pool and, unchecked, holds its slab slot
//! forever. With `idle_timeout` set, only *application progress* (a
//! complete parsed request, a drained response) refreshes a
//! connection's deadline, so the loris is severed at the OS level
//! within the timeout while concurrent healthy clients are served
//! throughout.

use flux_http::{read_response, DocRoot};
use flux_net::{Conn as _, Listener as _, TcpAcceptor, TcpConn};
use flux_runtime::RuntimeKind;
use flux_servers::web;
use std::io::{Read as _, Write as _};
use std::time::{Duration, Instant};

fn docroot() -> DocRoot {
    let mut root = DocRoot::new();
    root.insert("/small.txt", "tiny");
    root
}

fn healthy_request(addr: &str) {
    let mut conn = TcpConn::connect(addr).unwrap();
    write!(
        conn,
        "GET /small.txt HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let (status, body) = read_response(&mut conn).unwrap();
    assert_eq!((status, body.as_slice()), (200, b"tiny".as_ref()));
}

#[test]
fn slow_loris_is_reaped_while_healthy_clients_are_served() {
    let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
    let addr = acceptor.local_addr();
    let server = flux_servers::ServerBuilder::new(
        web::WebSpec::new(Box::new(acceptor), docroot()).write_mode(web::WriteMode::Reactor),
    )
    .runtime(RuntimeKind::event_driven_sharded(2, 2))
    .idle_timeout(Some(Duration::from_millis(300)))
    .spawn();

    // The loris: one byte of a request head, then silence. This wakes a
    // `Readable`, dispatches `ReadRequest`, and parks an I/O worker in
    // a blocking read with the conn lock held.
    let mut loris = TcpConn::connect(&addr).unwrap();
    loris.write_all(b"GET /sl").unwrap();

    // Healthy clients are served while the loris sits parked.
    for _ in 0..5 {
        healthy_request(&addr);
        std::thread::sleep(Duration::from_millis(20));
    }

    // The reaper severs the loris within the idle window (plus sweep
    // cadence slack): the client observes EOF, not a hang.
    loris
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let t0 = Instant::now();
    let mut byte = [0u8; 64];
    let n = loris.read(&mut byte).unwrap_or(0);
    assert_eq!(n, 0, "severed loris must see EOF, got {n} bytes");
    assert!(
        t0.elapsed() < Duration::from_secs(8),
        "loris outlived the idle timeout by far: {:?}",
        t0.elapsed()
    );

    // The client can observe the `shutdown(2)` EOF a beat before the
    // sweep finishes its pass and bumps the counter, so poll briefly.
    let counters = server
        .handle
        .server()
        .stats
        .net_counters()
        .expect("web server installs net counters");
    let t0 = Instant::now();
    while counters.idle_reaped() == 0 {
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "the sweep must account for the reaped loris"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // Service is intact afterwards: the parked worker was released.
    for _ in 0..3 {
        healthy_request(&addr);
    }
    web::stop(server);
}

/// `max_conns` is a hard admission cap: connections past it are
/// accepted (draining the kernel backlog) and closed immediately,
/// counted as governed, while connections under the cap keep working.
#[test]
fn max_conns_closes_excess_connections_immediately() {
    let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
    let addr = acceptor.local_addr();
    let server = flux_servers::ServerBuilder::new(
        web::WebSpec::new(Box::new(acceptor), docroot()).write_mode(web::WriteMode::Reactor),
    )
    .runtime(RuntimeKind::event_driven_sharded(2, 1))
    .max_conns(2)
    .idle_timeout(Some(Duration::from_secs(30)))
    .spawn();

    // Two keep-alive connections occupy the cap.
    let mut held = Vec::new();
    for _ in 0..2 {
        let mut conn = TcpConn::connect(&addr).unwrap();
        write!(conn, "GET /small.txt HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let (status, _) = read_response(&mut conn).unwrap();
        assert_eq!(status, 200);
        held.push(conn);
    }

    // A third connection is admitted by the kernel but closed by the
    // governor: the client sees EOF instead of a served request.
    let mut over = TcpConn::connect(&addr).unwrap();
    over.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let _ = over.write_all(b"GET /small.txt HTTP/1.1\r\nHost: t\r\n\r\n");
    let mut buf = [0u8; 16];
    let n = over.read(&mut buf).unwrap_or(0);
    assert_eq!(n, 0, "over-cap connection must be closed unserved");

    let counters = server
        .handle
        .server()
        .stats
        .net_counters()
        .expect("web server installs net counters");
    assert!(
        counters.accepts_governed() >= 1,
        "the close must be counted"
    );
    assert!(counters.accepts_admitted() >= 2);

    // The held connections still work (keep-alive, under the cap).
    for conn in &mut held {
        write!(conn, "GET /small.txt HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let (status, _) = read_response(conn).unwrap();
        assert_eq!(status, 200);
    }
    drop(held);
    web::stop(server);
}
