//! Acceptance test for the reactor write path (ISSUE 2 tentpole): with
//! reactor writes enabled, `Write` nodes never occupy an I/O worker —
//! responses, including partial writes against a full TCP socket
//! buffer, are drained by the reactor via `POLLOUT`.
//!
//! The behavioural proof: the server runs with **one** I/O worker and a
//! client that requests a multi-megabyte file and then refuses to read.
//! Under the seed's blocking write path that worker would park in
//! `write_all` until the client drains, starving every other
//! connection's `ReadRequest`; with reactor writes the pool stays free
//! and other clients are served while the slow reader's response sits
//! in the reactor's `POLLOUT` drain.

use flux_http::{read_response, DocRoot};
use flux_net::{Listener as _, TcpAcceptor, TcpConn};
use flux_runtime::RuntimeKind;
use flux_servers::web;
use std::io::{Read as _, Write as _};
use std::time::{Duration, Instant};

const BIG_LEN: usize = 8 * 1024 * 1024;

fn docroot() -> DocRoot {
    let mut root = DocRoot::new();
    let big: Vec<u8> = (0..BIG_LEN).map(|i| (i % 249) as u8).collect();
    root.insert("/big.bin", big);
    root.insert("/small.txt", "tiny");
    root
}

/// The compiled web program no longer declares `Write` blocking, so the
/// event runtime never routes it to the I/O pool (structural half of
/// the guarantee; the debug_assert inside the node enforces it at run
/// time in every debug/test build).
#[test]
fn write_node_is_not_blocking_in_the_graph() {
    let program = flux_core::compile(web::FLUX_SRC).unwrap();
    let (_, info) = program.graph.node("Write").expect("Write node exists");
    assert!(
        !info.blocking,
        "reactor-mode Write must not be declared blocking"
    );
    // ReadRequest still is: reads genuinely park a worker.
    let (_, info) = program.graph.node("ReadRequest").unwrap();
    assert!(info.blocking);
}

#[test]
fn slow_reader_never_occupies_the_io_pool() {
    let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
    let addr = acceptor.local_addr();
    let server = flux_servers::ServerBuilder::new(
        web::WebSpec::new(Box::new(acceptor), docroot()).write_mode(web::WriteMode::Reactor),
    )
    // One I/O worker: a single blocking write would wedge the pool.
    .runtime(RuntimeKind::event_driven_sharded(2, 1))
    .spawn();

    // Slow reader: request the big file, read nothing yet. The response
    // overruns the socket buffers, so the reactor is left holding a
    // partially drained output buffer.
    let mut slow = TcpConn::connect(&addr).unwrap();
    write!(
        slow,
        "GET /big.bin HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let t0 = Instant::now();
    let counters = loop {
        let c = server
            .handle
            .server()
            .stats
            .net_counters()
            .expect("web server installs net counters");
        if c.write_would_block() > 0 {
            break c;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "the big response never hit WouldBlock — socket buffers \
             swallowed {BIG_LEN} bytes?"
        );
        std::thread::sleep(Duration::from_millis(10));
    };

    // While that response is parked on the reactor, the single I/O
    // worker must still service other connections' blocking reads.
    for _ in 0..5 {
        let mut conn = TcpConn::connect(&addr).unwrap();
        write!(
            conn,
            "GET /small.txt HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let (status, body) = read_response(&mut conn).unwrap();
        assert_eq!((status, body.as_slice()), (200, b"tiny".as_ref()));
    }

    // Now drain the slow reader: the reactor finishes the partial write
    // via POLLOUT and the deferred close delivers EOF afterwards.
    let (status, body) = read_response(&mut slow).unwrap();
    assert_eq!(status, 200);
    assert_eq!(body.len(), BIG_LEN, "full payload despite partial writes");
    assert!(body.iter().enumerate().all(|(i, &b)| b == (i % 249) as u8));
    let mut rest = [0u8; 16];
    assert_eq!(slow.read(&mut rest).unwrap(), 0, "EOF after deferred close");

    assert!(
        counters.writes_drained() >= 6,
        "all six responses drained through the driver write path \
         (got {})",
        counters.writes_drained()
    );
    web::stop(server);
}
