//! Property-based tests for the image substrate: PPM round-trips, JPEG
//! encode/decode structural integrity across arbitrary dimensions, and
//! LFU cache accounting invariants.

use flux_image::{jpeg_decode, jpeg_encode, jpeg_probe, psnr, Image, LfuCache};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn ppm_round_trips(w in 1usize..48, h in 1usize..48, seed in any::<u64>()) {
        let img = Image::synthetic(w, h, seed);
        let back = Image::from_ppm(&img.to_ppm()).expect("own encoding decodes");
        prop_assert_eq!(img, back);
    }

    #[test]
    fn ppm_decoder_total(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Image::from_ppm(&data); // never panics
    }

    #[test]
    fn jpeg_any_dimensions(w in 1usize..40, h in 1usize..40, q in 10u8..95) {
        let img = Image::synthetic(w, h, (w * h) as u64);
        let jpg = jpeg_encode(&img, q);
        let info = jpeg_probe(&jpg).expect("valid structure");
        prop_assert_eq!(info.width, w);
        prop_assert_eq!(info.height, h);
        let back = jpeg_decode(&jpg).expect("own encoding decodes");
        prop_assert_eq!(back.width, w);
        prop_assert_eq!(back.height, h);
        // Lossy, but not garbage.
        prop_assert!(psnr(&img, &back) > 12.0);
    }

    #[test]
    fn scaling_dimensions_exact(w in 8usize..64, h in 8usize..64, numer in 1u32..9) {
        let img = Image::synthetic(w, h, 3);
        let s = img.scale_eighths(numer);
        prop_assert_eq!(s.width, (w * numer as usize / 8).max(1));
        prop_assert_eq!(s.height, (h * numer as usize / 8).max(1));
    }

    /// Cache accounting: used_bytes equals the sum of live entries and
    /// never exceeds capacity while anything is evictable.
    #[test]
    fn lfu_accounting(ops in proptest::collection::vec((0u8..3, 0u8..8, 1usize..64), 1..60)) {
        let mut cache: LfuCache<u8, Vec<u8>> = LfuCache::new(256, |v| v.len());
        let mut live_refs: std::collections::HashMap<u8, u32> = Default::default();
        for (op, key, size) in ops {
            match op {
                0 => {
                    if cache.check(&key).is_some() {
                        *live_refs.entry(key).or_insert(0) += 1;
                    }
                }
                1 => {
                    cache.store(key, vec![0; size]);
                    *live_refs.entry(key).or_insert(0) += 1;
                }
                _ => {
                    if let Some(r) = live_refs.get_mut(&key) {
                        if *r > 0 {
                            cache.release(&key);
                            *r -= 1;
                        }
                    }
                }
            }
        }
        // Release everything, then one store must be able to evict down
        // to within capacity.
        for (key, refs) in live_refs {
            for _ in 0..refs {
                cache.release(&key);
            }
        }
        cache.store(200, vec![0; 10]);
        prop_assert!(cache.used_bytes() <= 256, "after full release, capacity holds");
    }
}
