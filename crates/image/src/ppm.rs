//! PPM (portable pixmap) decoding, encoding, scaling and synthesis.
//!
//! The paper's image server "receives HTTP requests for images that are
//! stored in the PPM format and compresses them into JPEGs". Both the
//! binary (`P6`) and ASCII (`P3`) forms are supported, plus the box
//! scaling the benchmark needs (eight sizes from 1/8 scale to full size)
//! and deterministic synthetic image generation for workloads.

use std::fmt;

/// An 8-bit RGB image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    pub width: usize,
    pub height: usize,
    /// Row-major RGB triples, `3 * width * height` bytes.
    pub rgb: Vec<u8>,
}

/// PPM parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PpmError(pub String);

impl fmt::Display for PpmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ppm error: {}", self.0)
    }
}

impl std::error::Error for PpmError {}

fn err<T>(m: impl Into<String>) -> Result<T, PpmError> {
    Err(PpmError(m.into()))
}

impl Image {
    /// Creates a black image.
    pub fn new(width: usize, height: usize) -> Image {
        Image {
            width,
            height,
            rgb: vec![0; 3 * width * height],
        }
    }

    /// Pixel accessor (r, g, b).
    pub fn pixel(&self, x: usize, y: usize) -> (u8, u8, u8) {
        let i = 3 * (y * self.width + x);
        (self.rgb[i], self.rgb[i + 1], self.rgb[i + 2])
    }

    /// Sets one pixel.
    pub fn set_pixel(&mut self, x: usize, y: usize, rgb: (u8, u8, u8)) {
        let i = 3 * (y * self.width + x);
        self.rgb[i] = rgb.0;
        self.rgb[i + 1] = rgb.1;
        self.rgb[i + 2] = rgb.2;
    }

    /// Deterministic synthetic photo-like test image: smooth gradients
    /// with superimposed shapes, so JPEG compression has realistic
    /// frequency content.
    pub fn synthetic(width: usize, height: usize, seed: u64) -> Image {
        let mut img = Image::new(width, height);
        let s1 = (seed & 0xff) as f32 / 255.0;
        let s2 = ((seed >> 8) & 0xff) as f32 / 255.0;
        for y in 0..height {
            for x in 0..width {
                let fx = x as f32 / width.max(1) as f32;
                let fy = y as f32 / height.max(1) as f32;
                let r = 255.0 * (0.5 + 0.5 * ((fx * 7.0 + s1 * 6.0).sin() * (fy * 3.0).cos()));
                let g = 255.0 * (0.5 + 0.5 * ((fy * 9.0 + s2 * 4.0).sin()));
                let b = 255.0 * (fx * (1.0 - fy));
                // A few hard-edged rectangles for high-frequency content.
                let in_box = ((x / 37) % 5 == (seed as usize) % 5) && ((y / 23) % 3 == 0);
                let (r, g, b) = if in_box {
                    (255.0 - r, 255.0 - g, 255.0 - b)
                } else {
                    (r, g, b)
                };
                img.set_pixel(x, y, (r as u8, g as u8, b as u8));
            }
        }
        img
    }

    /// Encodes as binary PPM (`P6`).
    pub fn to_ppm(&self) -> Vec<u8> {
        let mut out = format!("P6\n{} {}\n255\n", self.width, self.height).into_bytes();
        out.extend_from_slice(&self.rgb);
        out
    }

    /// Decodes a `P6` or `P3` PPM.
    pub fn from_ppm(data: &[u8]) -> Result<Image, PpmError> {
        let mut toks = Tokens { data, pos: 0 };
        let magic = toks.token()?;
        match magic {
            b"P6" => {
                let width = toks.int()? as usize;
                let height = toks.int()? as usize;
                let maxval = toks.int()?;
                if maxval != 255 {
                    return err(format!("unsupported maxval {maxval}"));
                }
                // Exactly one whitespace byte separates header and raster.
                toks.pos += 1;
                let need = 3 * width * height;
                let raster = data
                    .get(toks.pos..toks.pos + need)
                    .ok_or_else(|| PpmError("truncated raster".into()))?;
                Ok(Image {
                    width,
                    height,
                    rgb: raster.to_vec(),
                })
            }
            b"P3" => {
                let width = toks.int()? as usize;
                let height = toks.int()? as usize;
                let maxval = toks.int()?;
                if maxval != 255 {
                    return err(format!("unsupported maxval {maxval}"));
                }
                let need = 3 * width * height;
                let mut rgb = Vec::with_capacity(need);
                for _ in 0..need {
                    let v = toks.int()?;
                    if v > 255 {
                        return err(format!("sample {v} exceeds maxval"));
                    }
                    rgb.push(v as u8);
                }
                Ok(Image { width, height, rgb })
            }
            other => err(format!("bad magic {:?}", String::from_utf8_lossy(other))),
        }
    }

    /// Box-filter scale to `numer/8` of the original (numer in 1..=8),
    /// the benchmark's "eight sizes between 1/8th scale and full-size".
    pub fn scale_eighths(&self, numer: u32) -> Image {
        assert!((1..=8).contains(&numer), "scale numerator in 1..=8");
        if numer == 8 {
            return self.clone();
        }
        let nw = (self.width * numer as usize / 8).max(1);
        let nh = (self.height * numer as usize / 8).max(1);
        self.resize_box(nw, nh)
    }

    /// Box-filter resize to exactly `nw` x `nh`.
    pub fn resize_box(&self, nw: usize, nh: usize) -> Image {
        let mut out = Image::new(nw, nh);
        for oy in 0..nh {
            let y0 = oy * self.height / nh;
            let y1 = (((oy + 1) * self.height).div_ceil(nh)).max(y0 + 1);
            for ox in 0..nw {
                let x0 = ox * self.width / nw;
                let x1 = (((ox + 1) * self.width).div_ceil(nw)).max(x0 + 1);
                let (mut r, mut g, mut b, mut n) = (0u32, 0u32, 0u32, 0u32);
                for y in y0..y1.min(self.height) {
                    for x in x0..x1.min(self.width) {
                        let (pr, pg, pb) = self.pixel(x, y);
                        r += pr as u32;
                        g += pg as u32;
                        b += pb as u32;
                        n += 1;
                    }
                }
                let n = n.max(1);
                out.set_pixel(ox, oy, ((r / n) as u8, (g / n) as u8, (b / n) as u8));
            }
        }
        out
    }
}

struct Tokens<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Tokens<'a> {
    /// Next whitespace-delimited token, skipping `#` comments.
    fn token(&mut self) -> Result<&'a [u8], PpmError> {
        loop {
            while self.pos < self.data.len() && self.data[self.pos].is_ascii_whitespace() {
                self.pos += 1;
            }
            if self.pos < self.data.len() && self.data[self.pos] == b'#' {
                while self.pos < self.data.len() && self.data[self.pos] != b'\n' {
                    self.pos += 1;
                }
                continue;
            }
            break;
        }
        let start = self.pos;
        while self.pos < self.data.len() && !self.data[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
        if start == self.pos {
            return err("unexpected end of header");
        }
        Ok(&self.data[start..self.pos])
    }

    fn int(&mut self) -> Result<u32, PpmError> {
        let t = self.token()?;
        std::str::from_utf8(t)
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| PpmError(format!("bad integer {:?}", String::from_utf8_lossy(t))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p6_round_trip() {
        let img = Image::synthetic(33, 17, 7);
        let ppm = img.to_ppm();
        let back = Image::from_ppm(&ppm).unwrap();
        assert_eq!(img, back);
    }

    #[test]
    fn p3_parses() {
        let src = b"P3\n# a comment\n2 2\n255\n255 0 0  0 255 0\n0 0 255  255 255 255\n";
        let img = Image::from_ppm(src).unwrap();
        assert_eq!(img.width, 2);
        assert_eq!(img.pixel(0, 0), (255, 0, 0));
        assert_eq!(img.pixel(1, 1), (255, 255, 255));
    }

    #[test]
    fn p6_with_comment() {
        let mut head = b"P6\n# made by tests\n2 1\n255\n".to_vec();
        head.extend_from_slice(&[1, 2, 3, 4, 5, 6]);
        let img = Image::from_ppm(&head).unwrap();
        assert_eq!(img.pixel(1, 0), (4, 5, 6));
    }

    #[test]
    fn truncated_raster_rejected() {
        let data = b"P6\n4 4\n255\nshort";
        assert!(Image::from_ppm(data).is_err());
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(Image::from_ppm(b"P9\n1 1\n255\nxyz").is_err());
    }

    #[test]
    fn nonstandard_maxval_rejected() {
        assert!(Image::from_ppm(b"P6\n1 1\n65535\n\0\0\0\0\0\0").is_err());
    }

    #[test]
    fn scale_eighths_dimensions() {
        let img = Image::synthetic(160, 80, 1);
        for numer in 1..=8u32 {
            let s = img.scale_eighths(numer);
            assert_eq!(s.width, 160 * numer as usize / 8);
            assert_eq!(s.height, 80 * numer as usize / 8);
        }
    }

    #[test]
    fn full_scale_is_identity() {
        let img = Image::synthetic(31, 19, 3);
        assert_eq!(img.scale_eighths(8), img);
    }

    #[test]
    fn box_filter_averages() {
        // 2x2 image of distinct grays scaled to 1x1 = average.
        let mut img = Image::new(2, 2);
        img.set_pixel(0, 0, (0, 0, 0));
        img.set_pixel(1, 0, (100, 100, 100));
        img.set_pixel(0, 1, (100, 100, 100));
        img.set_pixel(1, 1, (200, 200, 200));
        let s = img.resize_box(1, 1);
        assert_eq!(s.pixel(0, 0), (100, 100, 100));
    }

    #[test]
    fn synthetic_is_deterministic() {
        assert_eq!(Image::synthetic(64, 64, 5), Image::synthetic(64, 64, 5));
        assert_ne!(Image::synthetic(64, 64, 5), Image::synthetic(64, 64, 6));
    }
}
