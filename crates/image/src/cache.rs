//! The LFU image cache with reference counts (paper §2, §2.5).
//!
//! "Recently-compressed images are stored in a cache managed with a
//! least-frequently used (LFU) replacement policy. ... CheckCache
//! increments a reference count to the cached item, StoreInCache writes
//! a new item into the cache, evicting the least-frequently used item
//! with a zero reference count, and Complete decrements the cached
//! image's reference count."
//!
//! The cache itself is deliberately *unsynchronized* (no interior
//! locking): exactly like the paper's C implementation, safety comes
//! from the Flux-level `atomic` constraints on the nodes that touch it.
//! Holders wrap it in whatever the constraint maps to.

use std::collections::HashMap;

/// One cached entry.
#[derive(Debug, Clone)]
struct Entry<V> {
    value: V,
    /// Access frequency for LFU ordering.
    freq: u64,
    /// In-flight flows currently using this entry; never evicted while
    /// non-zero.
    refs: u32,
    /// Insertion tie-breaker: evict the oldest among equal frequencies.
    seq: u64,
}

/// An LFU cache with per-entry reference counts and a byte-size bound.
#[derive(Debug, Clone)]
pub struct LfuCache<K: std::hash::Hash + Eq + Clone, V> {
    map: HashMap<K, Entry<V>>,
    capacity_bytes: usize,
    used_bytes: usize,
    seq: u64,
    size_of: fn(&V) -> usize,
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
}

impl<K: std::hash::Hash + Eq + Clone, V> LfuCache<K, V> {
    /// Creates a cache bounded by `capacity_bytes`, measuring entries
    /// with `size_of`.
    pub fn new(capacity_bytes: usize, size_of: fn(&V) -> usize) -> Self {
        LfuCache {
            map: HashMap::new(),
            capacity_bytes,
            used_bytes: 0,
            seq: 0,
            size_of,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// `CheckCache`: on hit, bumps the frequency, takes a reference and
    /// returns the value; on miss returns `None`. The caller must pair
    /// every hit with a [`LfuCache::release`] (the paper's `Complete`).
    pub fn check(&mut self, key: &K) -> Option<&V> {
        match self.map.get_mut(key) {
            Some(e) => {
                e.freq += 1;
                e.refs += 1;
                self.hits += 1;
                Some(&e.value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// `StoreInCache`: inserts (or replaces) the value with an initial
    /// reference, evicting least-frequently-used zero-reference entries
    /// until it fits. If the cache cannot make room (everything is
    /// referenced), the item is still inserted — matching the paper's
    /// behaviour of never failing a store — but the cache may
    /// temporarily exceed capacity. Pair with [`LfuCache::release`].
    pub fn store(&mut self, key: K, value: V) {
        let size = (self.size_of)(&value);
        if let Some(old) = self.map.remove(&key) {
            self.used_bytes -= (self.size_of)(&old.value);
        }
        while self.used_bytes + size > self.capacity_bytes {
            match self.evict_one() {
                true => {}
                false => break,
            }
        }
        self.seq += 1;
        self.used_bytes += size;
        self.map.insert(
            key,
            Entry {
                value,
                freq: 1,
                refs: 1,
                seq: self.seq,
            },
        );
    }

    /// `Complete`: drops one reference taken by `check` or `store`.
    pub fn release(&mut self, key: &K) {
        if let Some(e) = self.map.get_mut(key) {
            e.refs = e.refs.saturating_sub(1);
        }
    }

    fn evict_one(&mut self) -> bool {
        let victim = self
            .map
            .iter()
            .filter(|(_, e)| e.refs == 0)
            .min_by_key(|(_, e)| (e.freq, e.seq))
            .map(|(k, _)| k.clone());
        match victim {
            Some(k) => {
                let e = self.map.remove(&k).expect("victim exists");
                self.used_bytes -= (self.size_of)(&e.value);
                self.evictions += 1;
                true
            }
            None => false,
        }
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Bytes accounted to live entries.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Hit ratio over the cache's lifetime.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(cap: usize) -> LfuCache<String, Vec<u8>> {
        LfuCache::new(cap, |v| v.len())
    }

    #[test]
    fn miss_then_hit() {
        let mut c = cache(100);
        assert!(c.check(&"a".into()).is_none());
        c.store("a".into(), vec![0; 10]);
        c.release(&"a".into());
        assert_eq!(c.check(&"a".into()).unwrap().len(), 10);
        c.release(&"a".into());
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 1);
        assert!((c.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lfu_evicts_least_frequent() {
        let mut c = cache(30);
        c.store("hot".into(), vec![0; 10]);
        c.release(&"hot".into());
        c.store("cold".into(), vec![0; 10]);
        c.release(&"cold".into());
        // Touch "hot" several times.
        for _ in 0..5 {
            c.check(&"hot".into());
            c.release(&"hot".into());
        }
        // Storing 20 more bytes forces one eviction: "cold" must go.
        c.store("new".into(), vec![0; 20]);
        c.release(&"new".into());
        assert!(c.check(&"hot".into()).is_some());
        assert!(c.check(&"cold".into()).is_none());
        assert_eq!(c.evictions, 1);
    }

    #[test]
    fn referenced_entries_never_evicted() {
        let mut c = cache(20);
        c.store("pinned".into(), vec![0; 10]);
        // Do NOT release: refs = 1.
        c.store("x".into(), vec![0; 10]);
        c.release(&"x".into());
        // Need room: only "x" is evictable.
        c.store("y".into(), vec![0; 10]);
        c.release(&"y".into());
        assert!(c.check(&"pinned".into()).is_some(), "pinned survives");
        assert!(c.check(&"x".into()).is_none(), "x was the only victim");
    }

    #[test]
    fn overflow_when_everything_referenced() {
        let mut c = cache(10);
        c.store("a".into(), vec![0; 8]);
        c.store("b".into(), vec![0; 8]); // nothing evictable
        assert_eq!(c.len(), 2);
        assert!(c.used_bytes() > 10, "temporarily over capacity");
        c.release(&"a".into());
        c.release(&"b".into());
        // The next store can now evict.
        c.store("c".into(), vec![0; 8]);
        assert!(c.used_bytes() <= 18);
    }

    #[test]
    fn replace_same_key_updates_bytes() {
        let mut c = cache(100);
        c.store("k".into(), vec![0; 40]);
        c.release(&"k".into());
        c.store("k".into(), vec![0; 10]);
        c.release(&"k".into());
        assert_eq!(c.used_bytes(), 10);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn eviction_ties_broken_by_age() {
        let mut c = cache(20);
        c.store("old".into(), vec![0; 10]);
        c.release(&"old".into());
        c.store("newer".into(), vec![0; 10]);
        c.release(&"newer".into());
        // Equal frequency: evict the older insertion.
        c.store("third".into(), vec![0; 10]);
        c.release(&"third".into());
        assert!(c.check(&"old".into()).is_none());
        assert!(c.check(&"newer".into()).is_some());
    }
}
