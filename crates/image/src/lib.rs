//! # flux-image — image substrate for the Flux image-compression server
//!
//! Everything the paper's image server (§2, Figure 2) needs, built from
//! scratch: a PPM codec with box scaling (the benchmark requests eight
//! sizes of each image), a baseline JFIF JPEG encoder *and* decoder
//! (libjpeg substitute; the encoder is the CPU-bound `Compress` node of
//! the Figure 6 experiment), and the LFU cache with reference counts
//! whose `CheckCache`/`StoreInCache`/`Complete` protocol the paper's
//! atomicity constraints protect.

pub mod cache;
pub mod jpeg;
pub mod ppm;

pub use cache::LfuCache;
pub use jpeg::{
    decode as jpeg_decode, encode as jpeg_encode, probe as jpeg_probe, psnr, JpegError, JpegInfo,
};
pub use ppm::{Image, PpmError};
