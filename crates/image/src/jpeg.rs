//! Baseline JPEG encoder and decoder, from scratch (libjpeg substitute).
//!
//! The image server's `Compress` node is the CPU-bound heart of the
//! paper's Figure 6 experiment; this module provides a real encoder so
//! its cost profile is genuine: RGB→YCbCr, 8×8 forward DCT, quality-
//! scaled quantization with the Annex K tables, zig-zag ordering,
//! differential DC + run-length AC Huffman coding with the standard
//! K.3 tables, and JFIF framing. A matching baseline decoder (4:4:4,
//! as produced by the encoder) exists so tests can verify PSNR, not
//! just marker structure.

use crate::ppm::Image;

// ------------------------------------------------------------- tables --

/// Annex K.1 luminance quantization table, in natural (row-major) order.
const Q_LUMA: [u16; 64] = [
    16, 11, 10, 16, 24, 40, 51, 61, 12, 12, 14, 19, 26, 58, 60, 55, 14, 13, 16, 24, 40, 57, 69, 56,
    14, 17, 22, 29, 51, 87, 80, 62, 18, 22, 37, 56, 68, 109, 103, 77, 24, 35, 55, 64, 81, 104, 113,
    92, 49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99,
];

/// Annex K.2 chrominance quantization table.
const Q_CHROMA: [u16; 64] = [
    17, 18, 24, 47, 99, 99, 99, 99, 18, 21, 26, 66, 99, 99, 99, 99, 24, 26, 56, 99, 99, 99, 99, 99,
    47, 66, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99,
    99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99, 99,
];

/// Zig-zag scan order: `ZIGZAG[i]` is the natural index of coefficient i.
const ZIGZAG: [usize; 64] = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5, 12, 19, 26, 33, 40, 48, 41, 34, 27, 20,
    13, 6, 7, 14, 21, 28, 35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51, 58, 59,
    52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
];

// Standard K.3 Huffman table specifications: (bits[1..=16], values).
const DC_LUMA_BITS: [u8; 16] = [0, 1, 5, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0];
const DC_LUMA_VALS: [u8; 12] = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11];
const DC_CHROMA_BITS: [u8; 16] = [0, 3, 1, 1, 1, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0];
const DC_CHROMA_VALS: [u8; 12] = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11];
const AC_LUMA_BITS: [u8; 16] = [0, 2, 1, 3, 3, 2, 4, 3, 5, 5, 4, 4, 0, 0, 1, 125];
const AC_LUMA_VALS: [u8; 162] = [
    0x01, 0x02, 0x03, 0x00, 0x04, 0x11, 0x05, 0x12, 0x21, 0x31, 0x41, 0x06, 0x13, 0x51, 0x61, 0x07,
    0x22, 0x71, 0x14, 0x32, 0x81, 0x91, 0xa1, 0x08, 0x23, 0x42, 0xb1, 0xc1, 0x15, 0x52, 0xd1, 0xf0,
    0x24, 0x33, 0x62, 0x72, 0x82, 0x09, 0x0a, 0x16, 0x17, 0x18, 0x19, 0x1a, 0x25, 0x26, 0x27, 0x28,
    0x29, 0x2a, 0x34, 0x35, 0x36, 0x37, 0x38, 0x39, 0x3a, 0x43, 0x44, 0x45, 0x46, 0x47, 0x48, 0x49,
    0x4a, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58, 0x59, 0x5a, 0x63, 0x64, 0x65, 0x66, 0x67, 0x68, 0x69,
    0x6a, 0x73, 0x74, 0x75, 0x76, 0x77, 0x78, 0x79, 0x7a, 0x83, 0x84, 0x85, 0x86, 0x87, 0x88, 0x89,
    0x8a, 0x92, 0x93, 0x94, 0x95, 0x96, 0x97, 0x98, 0x99, 0x9a, 0xa2, 0xa3, 0xa4, 0xa5, 0xa6, 0xa7,
    0xa8, 0xa9, 0xaa, 0xb2, 0xb3, 0xb4, 0xb5, 0xb6, 0xb7, 0xb8, 0xb9, 0xba, 0xc2, 0xc3, 0xc4, 0xc5,
    0xc6, 0xc7, 0xc8, 0xc9, 0xca, 0xd2, 0xd3, 0xd4, 0xd5, 0xd6, 0xd7, 0xd8, 0xd9, 0xda, 0xe1, 0xe2,
    0xe3, 0xe4, 0xe5, 0xe6, 0xe7, 0xe8, 0xe9, 0xea, 0xf1, 0xf2, 0xf3, 0xf4, 0xf5, 0xf6, 0xf7, 0xf8,
    0xf9, 0xfa,
];
const AC_CHROMA_BITS: [u8; 16] = [0, 2, 1, 2, 4, 4, 3, 4, 7, 5, 4, 4, 0, 1, 2, 119];
const AC_CHROMA_VALS: [u8; 162] = [
    0x00, 0x01, 0x02, 0x03, 0x11, 0x04, 0x05, 0x21, 0x31, 0x06, 0x12, 0x41, 0x51, 0x07, 0x61, 0x71,
    0x13, 0x22, 0x32, 0x81, 0x08, 0x14, 0x42, 0x91, 0xa1, 0xb1, 0xc1, 0x09, 0x23, 0x33, 0x52, 0xf0,
    0x15, 0x62, 0x72, 0xd1, 0x0a, 0x16, 0x24, 0x34, 0xe1, 0x25, 0xf1, 0x17, 0x18, 0x19, 0x1a, 0x26,
    0x27, 0x28, 0x29, 0x2a, 0x35, 0x36, 0x37, 0x38, 0x39, 0x3a, 0x43, 0x44, 0x45, 0x46, 0x47, 0x48,
    0x49, 0x4a, 0x53, 0x54, 0x55, 0x56, 0x57, 0x58, 0x59, 0x5a, 0x63, 0x64, 0x65, 0x66, 0x67, 0x68,
    0x69, 0x6a, 0x73, 0x74, 0x75, 0x76, 0x77, 0x78, 0x79, 0x7a, 0x82, 0x83, 0x84, 0x85, 0x86, 0x87,
    0x88, 0x89, 0x8a, 0x92, 0x93, 0x94, 0x95, 0x96, 0x97, 0x98, 0x99, 0x9a, 0xa2, 0xa3, 0xa4, 0xa5,
    0xa6, 0xa7, 0xa8, 0xa9, 0xaa, 0xb2, 0xb3, 0xb4, 0xb5, 0xb6, 0xb7, 0xb8, 0xb9, 0xba, 0xc2, 0xc3,
    0xc4, 0xc5, 0xc6, 0xc7, 0xc8, 0xc9, 0xca, 0xd2, 0xd3, 0xd4, 0xd5, 0xd6, 0xd7, 0xd8, 0xd9, 0xda,
    0xe2, 0xe3, 0xe4, 0xe5, 0xe6, 0xe7, 0xe8, 0xe9, 0xea, 0xf2, 0xf3, 0xf4, 0xf5, 0xf6, 0xf7, 0xf8,
    0xf9, 0xfa,
];

/// (code, length) pairs indexed by symbol value.
fn build_encode_table(bits: &[u8; 16], vals: &[u8]) -> Vec<(u16, u8)> {
    let mut table = vec![(0u16, 0u8); 256];
    let mut code = 0u16;
    let mut k = 0;
    for (len_minus_1, &count) in bits.iter().enumerate() {
        for _ in 0..count {
            table[vals[k] as usize] = (code, len_minus_1 as u8 + 1);
            code += 1;
            k += 1;
        }
        code <<= 1;
    }
    table
}

// ---------------------------------------------------------- bit writer --

struct BitWriter {
    out: Vec<u8>,
    acc: u32,
    nbits: u32,
}

impl BitWriter {
    fn new() -> Self {
        BitWriter {
            out: Vec::new(),
            acc: 0,
            nbits: 0,
        }
    }

    fn put(&mut self, code: u16, len: u8) {
        debug_assert!((1..=16).contains(&len));
        self.acc = (self.acc << len) | (code as u32 & ((1 << len) - 1));
        self.nbits += len as u32;
        while self.nbits >= 8 {
            let byte = ((self.acc >> (self.nbits - 8)) & 0xff) as u8;
            self.out.push(byte);
            if byte == 0xff {
                self.out.push(0x00); // byte stuffing
            }
            self.nbits -= 8;
        }
    }

    fn flush(&mut self) {
        if self.nbits > 0 {
            let pad = 8 - self.nbits;
            self.put((1u16 << pad) - 1, pad as u8);
        }
    }
}

// ----------------------------------------------------------------- DCT --

/// Forward 8x8 DCT (separable, straightforward f32).
fn fdct(block: &mut [f32; 64]) {
    let mut tmp = [0f32; 64];
    // Rows.
    for y in 0..8 {
        for u in 0..8 {
            let mut s = 0f32;
            for x in 0..8 {
                s += block[y * 8 + x]
                    * ((2 * x + 1) as f32 * u as f32 * std::f32::consts::PI / 16.0).cos();
            }
            let cu = if u == 0 {
                std::f32::consts::FRAC_1_SQRT_2
            } else {
                1.0
            };
            tmp[y * 8 + u] = 0.5 * cu * s;
        }
    }
    // Columns.
    for u in 0..8 {
        for v in 0..8 {
            let mut s = 0f32;
            for y in 0..8 {
                s += tmp[y * 8 + u]
                    * ((2 * y + 1) as f32 * v as f32 * std::f32::consts::PI / 16.0).cos();
            }
            let cv = if v == 0 {
                std::f32::consts::FRAC_1_SQRT_2
            } else {
                1.0
            };
            block[v * 8 + u] = 0.5 * cv * s;
        }
    }
}

/// Inverse 8x8 DCT.
fn idct(block: &mut [f32; 64]) {
    let mut tmp = [0f32; 64];
    for v in 0..8 {
        for x in 0..8 {
            let mut s = 0f32;
            for u in 0..8 {
                let cu = if u == 0 {
                    std::f32::consts::FRAC_1_SQRT_2
                } else {
                    1.0
                };
                s += cu
                    * block[v * 8 + u]
                    * ((2 * x + 1) as f32 * u as f32 * std::f32::consts::PI / 16.0).cos();
            }
            tmp[v * 8 + x] = 0.5 * s;
        }
    }
    for x in 0..8 {
        for y in 0..8 {
            let mut s = 0f32;
            for v in 0..8 {
                let cv = if v == 0 {
                    std::f32::consts::FRAC_1_SQRT_2
                } else {
                    1.0
                };
                s += cv
                    * tmp[v * 8 + x]
                    * ((2 * y + 1) as f32 * v as f32 * std::f32::consts::PI / 16.0).cos();
            }
            block[y * 8 + x] = 0.5 * s;
        }
    }
}

// -------------------------------------------------------------- encode --

/// Scales an Annex K table for a libjpeg-style quality in 1..=100.
fn scaled_table(base: &[u16; 64], quality: u8) -> [u16; 64] {
    let q = quality.clamp(1, 100) as i32;
    let scale = if q < 50 { 5000 / q } else { 200 - 2 * q };
    let mut out = [0u16; 64];
    for i in 0..64 {
        let v = (base[i] as i32 * scale + 50) / 100;
        out[i] = v.clamp(1, 255) as u16;
    }
    out
}

fn rgb_to_ycbcr(r: u8, g: u8, b: u8) -> (f32, f32, f32) {
    let (r, g, b) = (r as f32, g as f32, b as f32);
    (
        0.299 * r + 0.587 * g + 0.114 * b,
        -0.168736 * r - 0.331264 * g + 0.5 * b + 128.0,
        0.5 * r - 0.418688 * g - 0.081312 * b + 128.0,
    )
}

fn ycbcr_to_rgb(y: f32, cb: f32, cr: f32) -> (u8, u8, u8) {
    let cb = cb - 128.0;
    let cr = cr - 128.0;
    let r = y + 1.402 * cr;
    let g = y - 0.344136 * cb - 0.714136 * cr;
    let b = y + 1.772 * cb;
    (
        r.round().clamp(0.0, 255.0) as u8,
        g.round().clamp(0.0, 255.0) as u8,
        b.round().clamp(0.0, 255.0) as u8,
    )
}

/// Magnitude category (number of bits) of a coefficient.
fn category(v: i32) -> u8 {
    (32 - (v.unsigned_abs()).leading_zeros()) as u8
}

/// Two's-complement-style JPEG magnitude bits.
fn magnitude_bits(v: i32) -> u16 {
    if v >= 0 {
        v as u16
    } else {
        (v - 1) as u16 & ((1u32 << category(v)) - 1) as u16
    }
}

/// Encodes `img` as a baseline JFIF JPEG (4:4:4, quality 1..=100).
pub fn encode(img: &Image, quality: u8) -> Vec<u8> {
    let qy = scaled_table(&Q_LUMA, quality);
    let qc = scaled_table(&Q_CHROMA, quality);
    let dc_y = build_encode_table(&DC_LUMA_BITS, &DC_LUMA_VALS);
    let ac_y = build_encode_table(&AC_LUMA_BITS, &AC_LUMA_VALS);
    let dc_c = build_encode_table(&DC_CHROMA_BITS, &DC_CHROMA_VALS);
    let ac_c = build_encode_table(&AC_CHROMA_BITS, &AC_CHROMA_VALS);

    let mut out = Vec::with_capacity(img.rgb.len() / 4 + 1024);
    // SOI + APP0 (JFIF).
    out.extend_from_slice(&[0xff, 0xd8]);
    out.extend_from_slice(&[0xff, 0xe0, 0x00, 0x10]);
    out.extend_from_slice(b"JFIF\0");
    out.extend_from_slice(&[0x01, 0x01, 0x00, 0x00, 0x01, 0x00, 0x01, 0x00, 0x00]);
    // DQT x2.
    for (id, table) in [(0u8, &qy), (1u8, &qc)] {
        out.extend_from_slice(&[0xff, 0xdb, 0x00, 0x43, id]);
        for i in 0..64 {
            out.push(table[ZIGZAG[i]] as u8);
        }
    }
    // SOF0: 8-bit, 3 components, 1x1 sampling (4:4:4).
    let (w, h) = (img.width as u16, img.height as u16);
    out.extend_from_slice(&[0xff, 0xc0, 0x00, 0x11, 0x08]);
    out.extend_from_slice(&h.to_be_bytes());
    out.extend_from_slice(&w.to_be_bytes());
    out.extend_from_slice(&[0x03, 1, 0x11, 0, 2, 0x11, 1, 3, 0x11, 1]);
    // DHT x4.
    for (class_id, bits, vals) in [
        (0x00u8, &DC_LUMA_BITS, &DC_LUMA_VALS[..]),
        (0x10, &AC_LUMA_BITS, &AC_LUMA_VALS[..]),
        (0x01, &DC_CHROMA_BITS, &DC_CHROMA_VALS[..]),
        (0x11, &AC_CHROMA_BITS, &AC_CHROMA_VALS[..]),
    ] {
        let len = 2 + 1 + 16 + vals.len();
        out.extend_from_slice(&[0xff, 0xc4]);
        out.extend_from_slice(&(len as u16).to_be_bytes());
        out.push(class_id);
        out.extend_from_slice(bits);
        out.extend_from_slice(vals);
    }
    // SOS.
    out.extend_from_slice(&[
        0xff, 0xda, 0x00, 0x0c, 0x03, 1, 0x00, 2, 0x11, 3, 0x11, 0x00, 0x3f, 0x00,
    ]);

    // Entropy-coded data.
    let mut bw = BitWriter::new();
    let bw_ref = &mut bw;
    let mut prev_dc = [0i32; 3];
    let bh = img.height.div_ceil(8);
    let bwid = img.width.div_ceil(8);
    let mut ycc: [Box<[f32]>; 3] = [
        vec![0f32; img.width.max(1) * img.height.max(1)].into_boxed_slice(),
        vec![0f32; img.width.max(1) * img.height.max(1)].into_boxed_slice(),
        vec![0f32; img.width.max(1) * img.height.max(1)].into_boxed_slice(),
    ];
    for y in 0..img.height {
        for x in 0..img.width {
            let (r, g, b) = img.pixel(x, y);
            let (yy, cb, cr) = rgb_to_ycbcr(r, g, b);
            ycc[0][y * img.width + x] = yy;
            ycc[1][y * img.width + x] = cb;
            ycc[2][y * img.width + x] = cr;
        }
    }
    for by in 0..bh {
        for bx in 0..bwid {
            for comp in 0..3 {
                let q = if comp == 0 { &qy } else { &qc };
                let (dct_table, act) = if comp == 0 {
                    (&dc_y, &ac_y)
                } else {
                    (&dc_c, &ac_c)
                };
                let mut block = [0f32; 64];
                for dy in 0..8 {
                    for dx in 0..8 {
                        // Edge replication for partial blocks.
                        let sy = (by * 8 + dy).min(img.height.saturating_sub(1));
                        let sx = (bx * 8 + dx).min(img.width.saturating_sub(1));
                        block[dy * 8 + dx] = ycc[comp][sy * img.width + sx] - 128.0;
                    }
                }
                fdct(&mut block);
                // Quantize into zig-zag order.
                let mut coeffs = [0i32; 64];
                for i in 0..64 {
                    let nat = ZIGZAG[i];
                    coeffs[i] = (block[nat] / q[nat] as f32).round() as i32;
                }
                // DC.
                let diff = coeffs[0] - prev_dc[comp];
                prev_dc[comp] = coeffs[0];
                let cat = category(diff);
                let (code, len) = dct_table[cat as usize];
                bw_ref.put(code, len);
                if cat > 0 {
                    bw_ref.put(magnitude_bits(diff), cat);
                }
                // AC with run-length coding.
                let mut run = 0u8;
                for &cf in &coeffs[1..] {
                    if cf == 0 {
                        run += 1;
                        continue;
                    }
                    while run >= 16 {
                        let (zc, zl) = act[0xf0]; // ZRL
                        bw_ref.put(zc, zl);
                        run -= 16;
                    }
                    let cat = category(cf);
                    let sym = (run << 4) | cat;
                    let (code, len) = act[sym as usize];
                    debug_assert!(len > 0, "missing AC code for symbol {sym:#x}");
                    bw_ref.put(code, len);
                    bw_ref.put(magnitude_bits(cf), cat);
                    run = 0;
                }
                if run > 0 {
                    let (ec, el) = act[0x00]; // EOB
                    bw_ref.put(ec, el);
                }
            }
        }
    }
    bw.flush();
    out.extend_from_slice(&bw.out);
    out.extend_from_slice(&[0xff, 0xd9]); // EOI
    out
}

// -------------------------------------------------------------- decode --

/// JPEG decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JpegError(pub String);

impl std::fmt::Display for JpegError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "jpeg error: {}", self.0)
    }
}

impl std::error::Error for JpegError {}

fn jerr<T>(m: impl Into<String>) -> Result<T, JpegError> {
    Err(JpegError(m.into()))
}

struct HuffDecoder {
    /// (length, code) -> value.
    lookup: std::collections::HashMap<(u8, u16), u8>,
    max_len: u8,
}

impl HuffDecoder {
    fn new(bits: &[u8; 16], vals: &[u8]) -> Self {
        let mut lookup = std::collections::HashMap::new();
        let mut code = 0u16;
        let mut k = 0;
        let mut max_len = 0;
        for (lm1, &count) in bits.iter().enumerate() {
            for _ in 0..count {
                lookup.insert((lm1 as u8 + 1, code), vals[k]);
                code += 1;
                k += 1;
                max_len = lm1 as u8 + 1;
            }
            code <<= 1;
        }
        HuffDecoder { lookup, max_len }
    }
}

struct BitReader<'a> {
    data: &'a [u8],
    pos: usize,
    acc: u32,
    nbits: u32,
}

impl<'a> BitReader<'a> {
    fn new(data: &'a [u8]) -> Self {
        BitReader {
            data,
            pos: 0,
            acc: 0,
            nbits: 0,
        }
    }

    fn fill(&mut self) {
        while self.nbits <= 24 && self.pos < self.data.len() {
            let mut byte = self.data[self.pos];
            self.pos += 1;
            if byte == 0xff {
                // Skip the stuffed 0x00; a marker ends the stream.
                match self.data.get(self.pos) {
                    Some(0x00) => {
                        self.pos += 1;
                    }
                    _ => {
                        byte = 0; // treat as padding at stream end
                        self.pos = self.data.len();
                    }
                }
            }
            self.acc = (self.acc << 8) | byte as u32;
            self.nbits += 8;
        }
    }

    fn get_bits(&mut self, n: u8) -> Result<u16, JpegError> {
        if n == 0 {
            return Ok(0);
        }
        self.fill();
        if self.nbits < n as u32 {
            return jerr("bit stream exhausted");
        }
        let v = ((self.acc >> (self.nbits - n as u32)) & ((1u32 << n) - 1)) as u16;
        self.nbits -= n as u32;
        Ok(v)
    }

    fn decode(&mut self, table: &HuffDecoder) -> Result<u8, JpegError> {
        let mut code = 0u16;
        for len in 1..=table.max_len {
            code = (code << 1) | self.get_bits(1)?;
            if let Some(&v) = table.lookup.get(&(len, code)) {
                return Ok(v);
            }
        }
        jerr("invalid Huffman code")
    }
}

fn extend(v: u16, cat: u8) -> i32 {
    if cat == 0 {
        return 0;
    }
    let vt = 1i32 << (cat - 1);
    if (v as i32) < vt {
        v as i32 - (1 << cat) + 1
    } else {
        v as i32
    }
}

/// Header info parsed from a baseline JPEG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JpegInfo {
    pub width: usize,
    pub height: usize,
    pub components: usize,
}

/// Parses markers to extract dimensions without a full decode.
pub fn probe(data: &[u8]) -> Result<JpegInfo, JpegError> {
    if data.len() < 4 || data[0] != 0xff || data[1] != 0xd8 {
        return jerr("missing SOI");
    }
    let mut pos = 2;
    while pos + 4 <= data.len() {
        if data[pos] != 0xff {
            return jerr(format!("expected marker at {pos}"));
        }
        let marker = data[pos + 1];
        if marker == 0xd9 {
            break;
        }
        let len = u16::from_be_bytes([data[pos + 2], data[pos + 3]]) as usize;
        if marker == 0xc0 || marker == 0xc1 {
            if pos + 9 >= data.len() {
                return jerr("truncated SOF");
            }
            let height = u16::from_be_bytes([data[pos + 5], data[pos + 6]]) as usize;
            let width = u16::from_be_bytes([data[pos + 7], data[pos + 8]]) as usize;
            let components = data[pos + 9] as usize;
            return Ok(JpegInfo {
                width,
                height,
                components,
            });
        }
        if marker == 0xda {
            // Entropy data follows; SOF should have come first.
            return jerr("SOS before SOF");
        }
        pos += 2 + len;
    }
    jerr("no SOF marker found")
}

/// Decodes a baseline 4:4:4 JPEG produced by [`encode`].
pub fn decode(data: &[u8]) -> Result<Image, JpegError> {
    let info = probe(data)?;
    if info.components != 3 {
        return jerr("decoder supports 3-component images");
    }
    // Re-parse to collect tables and the scan offset.
    let mut qtables: [[u16; 64]; 4] = [[0; 64]; 4];
    let mut dc_tabs: Vec<Option<HuffDecoder>> = (0..4).map(|_| None).collect();
    let mut ac_tabs: Vec<Option<HuffDecoder>> = (0..4).map(|_| None).collect();
    let mut comp_q = [0usize; 3];
    let mut comp_dc = [0usize; 3];
    let mut comp_ac = [0usize; 3];
    let mut scan_start = None;
    let mut pos = 2;
    while pos + 4 <= data.len() {
        if data[pos] != 0xff {
            return jerr(format!("expected marker at {pos}"));
        }
        let marker = data[pos + 1];
        if marker == 0xd9 {
            break;
        }
        let len = u16::from_be_bytes([data[pos + 2], data[pos + 3]]) as usize;
        let body = &data[pos + 4..pos + 2 + len];
        match marker {
            0xdb => {
                let mut b = body;
                while !b.is_empty() {
                    let id = (b[0] & 0x0f) as usize;
                    if b[0] >> 4 != 0 {
                        return jerr("16-bit quant tables unsupported");
                    }
                    for i in 0..64 {
                        qtables[id][ZIGZAG[i]] = b[1 + i] as u16;
                    }
                    b = &b[65..];
                }
            }
            0xc4 => {
                let mut b = body;
                while b.len() >= 17 {
                    let class = b[0] >> 4;
                    let id = (b[0] & 0x0f) as usize;
                    let mut bits = [0u8; 16];
                    bits.copy_from_slice(&b[1..17]);
                    let total: usize = bits.iter().map(|&x| x as usize).sum();
                    let vals = &b[17..17 + total];
                    let dec = HuffDecoder::new(&bits, vals);
                    if class == 0 {
                        dc_tabs[id] = Some(dec);
                    } else {
                        ac_tabs[id] = Some(dec);
                    }
                    b = &b[17 + total..];
                }
            }
            0xc0 => {
                let ncomp = body[5] as usize;
                for c in 0..ncomp {
                    let sampling = body[7 + 3 * c];
                    if sampling != 0x11 {
                        return jerr("decoder supports 4:4:4 only");
                    }
                    comp_q[c] = body[8 + 3 * c] as usize;
                }
            }
            0xda => {
                let ncomp = body[0] as usize;
                for c in 0..ncomp {
                    let tabs = body[2 + 2 * c];
                    comp_dc[c] = (tabs >> 4) as usize;
                    comp_ac[c] = (tabs & 0x0f) as usize;
                }
                scan_start = Some(pos + 2 + len);
                break;
            }
            _ => {}
        }
        pos += 2 + len;
    }
    let scan_start = scan_start.ok_or_else(|| JpegError("no SOS".into()))?;
    let scan_end = data
        .len()
        .checked_sub(2)
        .ok_or_else(|| JpegError("truncated".into()))?;
    let mut br = BitReader::new(&data[scan_start..scan_end]);

    let mut img = Image::new(info.width, info.height);
    let mut planes: Vec<Vec<f32>> = vec![vec![0f32; info.width * info.height]; 3];
    let mut prev_dc = [0i32; 3];
    let bh = info.height.div_ceil(8);
    let bw = info.width.div_ceil(8);
    for by in 0..bh {
        for bx in 0..bw {
            for comp in 0..3 {
                let dc_tab = dc_tabs[comp_dc[comp]]
                    .as_ref()
                    .ok_or_else(|| JpegError("missing DC table".into()))?;
                let ac_tab = ac_tabs[comp_ac[comp]]
                    .as_ref()
                    .ok_or_else(|| JpegError("missing AC table".into()))?;
                let q = &qtables[comp_q[comp]];
                let mut coeffs = [0i32; 64];
                let cat = br.decode(dc_tab)?;
                let diff = extend(br.get_bits(cat)?, cat);
                prev_dc[comp] += diff;
                coeffs[0] = prev_dc[comp];
                let mut k = 1;
                while k < 64 {
                    let sym = br.decode(ac_tab)?;
                    if sym == 0x00 {
                        break; // EOB
                    }
                    if sym == 0xf0 {
                        k += 16;
                        continue;
                    }
                    k += (sym >> 4) as usize;
                    if k >= 64 {
                        return jerr("AC run past block end");
                    }
                    let cat = sym & 0x0f;
                    coeffs[k] = extend(br.get_bits(cat)?, cat);
                    k += 1;
                }
                let mut block = [0f32; 64];
                for i in 0..64 {
                    let nat = ZIGZAG[i];
                    block[nat] = (coeffs[i] * q[nat] as i32) as f32;
                }
                idct(&mut block);
                for dy in 0..8 {
                    for dx in 0..8 {
                        let py = by * 8 + dy;
                        let px = bx * 8 + dx;
                        if py < info.height && px < info.width {
                            planes[comp][py * info.width + px] = block[dy * 8 + dx] + 128.0;
                        }
                    }
                }
            }
        }
    }
    for y in 0..info.height {
        for x in 0..info.width {
            let i = y * info.width + x;
            img.set_pixel(x, y, ycbcr_to_rgb(planes[0][i], planes[1][i], planes[2][i]));
        }
    }
    Ok(img)
}

/// Peak signal-to-noise ratio between two same-sized images, in dB.
pub fn psnr(a: &Image, b: &Image) -> f64 {
    assert_eq!(a.width, b.width);
    assert_eq!(a.height, b.height);
    let mse: f64 = a
        .rgb
        .iter()
        .zip(&b.rgb)
        .map(|(&x, &y)| {
            let d = x as f64 - y as f64;
            d * d
        })
        .sum::<f64>()
        / a.rgb.len() as f64;
    if mse == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (255.0f64 * 255.0 / mse).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encodes_valid_structure() {
        let img = Image::synthetic(64, 48, 1);
        let jpg = encode(&img, 75);
        assert_eq!(&jpg[..2], &[0xff, 0xd8], "SOI");
        assert_eq!(&jpg[jpg.len() - 2..], &[0xff, 0xd9], "EOI");
        let info = probe(&jpg).unwrap();
        assert_eq!(info.width, 64);
        assert_eq!(info.height, 48);
        assert_eq!(info.components, 3);
    }

    #[test]
    fn round_trip_psnr_reasonable() {
        let img = Image::synthetic(96, 64, 3);
        let jpg = encode(&img, 90);
        let back = decode(&jpg).unwrap();
        let quality = psnr(&img, &back);
        assert!(quality > 28.0, "q90 PSNR {quality} dB too low");
    }

    #[test]
    fn flat_image_compresses_nearly_losslessly() {
        let mut img = Image::new(32, 32);
        for y in 0..32 {
            for x in 0..32 {
                img.set_pixel(x, y, (120, 130, 140));
            }
        }
        let jpg = encode(&img, 90);
        let back = decode(&jpg).unwrap();
        assert!(psnr(&img, &back) > 40.0);
        // A flat image is tiny.
        assert!(
            jpg.len() < 2048,
            "flat image should compress well: {}",
            jpg.len()
        );
    }

    #[test]
    fn higher_quality_is_larger_and_better() {
        let img = Image::synthetic(128, 96, 9);
        let q30 = encode(&img, 30);
        let q90 = encode(&img, 90);
        assert!(q90.len() > q30.len());
        let p30 = psnr(&img, &decode(&q30).unwrap());
        let p90 = psnr(&img, &decode(&q90).unwrap());
        assert!(p90 > p30, "PSNR q90 {p90} must beat q30 {p30}");
    }

    #[test]
    fn non_multiple_of_8_sizes() {
        for (w, h) in [(1, 1), (7, 3), (9, 17), (65, 33)] {
            let img = Image::synthetic(w, h, 2);
            let jpg = encode(&img, 80);
            let back = decode(&jpg).unwrap();
            assert_eq!(back.width, w);
            assert_eq!(back.height, h);
        }
    }

    #[test]
    fn category_and_magnitude() {
        assert_eq!(category(0), 0);
        assert_eq!(category(1), 1);
        assert_eq!(category(-1), 1);
        assert_eq!(category(255), 8);
        assert_eq!(category(-255), 8);
        // JPEG encoding of -1 in category 1 is bit 0.
        assert_eq!(magnitude_bits(-1), 0);
        assert_eq!(magnitude_bits(1), 1);
        assert_eq!(extend(magnitude_bits(-5), category(-5)), -5);
        assert_eq!(extend(magnitude_bits(5), category(5)), 5);
    }

    #[test]
    fn dct_idct_round_trip() {
        let mut block = [0f32; 64];
        for (i, b) in block.iter_mut().enumerate() {
            *b = ((i * 37) % 251) as f32 - 128.0;
        }
        let original = block;
        fdct(&mut block);
        idct(&mut block);
        for i in 0..64 {
            assert!(
                (block[i] - original[i]).abs() < 0.01,
                "coefficient {i}: {} vs {}",
                block[i],
                original[i]
            );
        }
    }

    #[test]
    fn probe_rejects_garbage() {
        assert!(probe(b"not a jpeg").is_err());
        assert!(probe(&[0xff, 0xd8, 0xff, 0xd9]).is_err());
    }

    #[test]
    fn quality_scaling_bounds() {
        let q1 = scaled_table(&Q_LUMA, 1);
        let q100 = scaled_table(&Q_LUMA, 100);
        assert!(q1.iter().all(|&v| (1..=255).contains(&v)));
        assert!(q100.iter().all(|&v| v >= 1));
        assert!(q1[0] > q100[0]);
    }

    #[test]
    fn byte_stuffing_in_entropy_stream() {
        // Encode many images; ensure no bare 0xFF marker bytes appear
        // inside the entropy stream (all must be stuffed or markers).
        let img = Image::synthetic(80, 80, 11);
        let jpg = encode(&img, 95);
        let mut i = 2;
        let mut sos_seen = false;
        while i + 1 < jpg.len() {
            if jpg[i] == 0xff {
                let m = jpg[i + 1];
                if sos_seen {
                    assert!(
                        m == 0x00 || m == 0xd9,
                        "unexpected marker {m:#x} inside scan at {i}"
                    );
                }
                if m == 0xda {
                    sos_seen = true;
                }
            }
            i += 1;
        }
    }
}
