//! Helpers for tests that mutate process-global state.
//!
//! `std::env::set_var`/`remove_var` affect the whole process, and
//! `cargo test` runs tests in one process on many threads, so every
//! test that toggles a `FLUX_*` variable must serialize against every
//! other such test. Before this module each test file kept its own
//! static lock, which only serialized tests *within* that file; the
//! shared [`test_env_lock`] here serializes them across the whole
//! crate (and downstream crates' tests, which link this library).

use std::sync::{Mutex, MutexGuard};

static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Serializes tests that set/remove process environment variables
/// (`FLUX_SHARD_QUEUE`, `FLUX_SHARD_RING_CAP`, `FLUX_FUSE`,
/// `FLUX_FUSE_BUDGET`, ...). Hold the guard for the whole test,
/// including the part that *reads* the env (server/runtime startup).
///
/// Poisoning is ignored: a panic in one env test must not cascade into
/// spurious failures of every later env test.
pub fn test_env_lock() -> MutexGuard<'static, ()> {
    ENV_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}
