//! Ball–Larus path profiling at runtime (paper §5.2).
//!
//! "Profiling adds just one arithmetic operation and two high-resolution
//! timer calls to each node." The flow cursor accumulates the Ball–Larus
//! path sum as it takes edges; at flow end the profiler bumps one counter
//! and adds the flow's wall time. Per-vertex edge counters and per-node
//! service timers are also kept so a profiled run can parameterize the
//! discrete-event simulator (§5.1), exactly as the paper does.

use flux_core::model::{FlowParams, ModelParams};
use flux_core::{CompiledProgram, FlatVertex, PathInfo};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Per-path counters for one flow.
struct FlowProfile {
    /// Hit count per path id (dense; path counts are small for real
    /// servers — the BitTorrent peer of Figure 7 has a few dozen).
    path_count: Vec<AtomicU64>,
    /// Total flow wall time per path id, in nanoseconds.
    path_ns: Vec<AtomicU64>,
    /// Edge counters: `edges[v][k]` counts traversals of vertex `v`'s
    /// `k`-th out-edge (gives branch and error probabilities).
    edges: Vec<Vec<AtomicU64>>,
    /// Per-vertex execution time for `Exec` vertices, in nanoseconds.
    exec_ns: Vec<AtomicU64>,
    /// Per-vertex execution count.
    exec_count: Vec<AtomicU64>,
    /// Inter-arrival tracking for the source.
    arrivals: Mutex<ArrivalStats>,
}

#[derive(Default)]
struct ArrivalStats {
    last: Option<Instant>,
    total_ns: u64,
    count: u64,
}

/// Collects path, edge and timing statistics for a running server.
pub struct PathProfiler {
    flows: Vec<FlowProfile>,
    /// Paths beyond this bound are aggregated into the last slot (kept
    /// tiny in practice; a guard against adversarial programs).
    overflow: AtomicU64,
}

/// Dense path-count ceiling per flow; programs with more paths aggregate
/// the tail (real Flux servers have well under a thousand).
const MAX_DENSE_PATHS: u64 = 1 << 20;

impl PathProfiler {
    /// Creates a profiler shaped for `program`.
    pub fn new(program: &CompiledProgram) -> Self {
        let flows = program
            .flows
            .iter()
            .map(|flow| {
                let n_paths = flow.paths.num_paths.min(MAX_DENSE_PATHS) as usize;
                let n_verts = flow.flat.verts.len();
                FlowProfile {
                    path_count: (0..n_paths).map(|_| AtomicU64::new(0)).collect(),
                    path_ns: (0..n_paths).map(|_| AtomicU64::new(0)).collect(),
                    edges: flow
                        .flat
                        .verts
                        .iter()
                        .map(|v| {
                            (0..v.successors().len())
                                .map(|_| AtomicU64::new(0))
                                .collect()
                        })
                        .collect(),
                    exec_ns: (0..n_verts).map(|_| AtomicU64::new(0)).collect(),
                    exec_count: (0..n_verts).map(|_| AtomicU64::new(0)).collect(),
                    arrivals: Mutex::new(ArrivalStats::default()),
                }
            })
            .collect();
        PathProfiler {
            flows,
            overflow: AtomicU64::new(0),
        }
    }

    /// Records a new flow arrival on flow `fi`.
    pub fn record_arrival(&self, fi: usize, now: Instant) {
        let mut a = self.flows[fi].arrivals.lock();
        if let Some(last) = a.last {
            a.total_ns += now.duration_since(last).as_nanos() as u64;
            a.count += 1;
        }
        a.last = Some(now);
    }

    /// Records taking out-edge `k` of vertex `v`.
    #[inline]
    pub fn record_edge(&self, fi: usize, v: usize, k: usize) {
        self.flows[fi].edges[v][k].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one execution of the `Exec` vertex `v` taking `ns`.
    #[inline]
    pub fn record_exec(&self, fi: usize, v: usize, ns: u64) {
        self.flows[fi].exec_ns[v].fetch_add(ns, Ordering::Relaxed);
        self.flows[fi].exec_count[v].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a finished flow with its Ball–Larus path sum and duration.
    pub fn record_path(&self, fi: usize, path_id: u64, ns: u64) {
        let f = &self.flows[fi];
        let idx = path_id as usize;
        if idx < f.path_count.len() {
            f.path_count[idx].fetch_add(1, Ordering::Relaxed);
            f.path_ns[idx].fetch_add(ns, Ordering::Relaxed);
        } else {
            self.overflow.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Produces the hot-path report for flow `fi`: every executed path
    /// with count and mean time, sorted by `order`.
    pub fn report(&self, program: &CompiledProgram, fi: usize, order: HotOrder) -> Vec<HotPath> {
        let flow = &program.flows[fi];
        let f = &self.flows[fi];
        let mut out = Vec::new();
        for (id, count) in f.path_count.iter().enumerate() {
            let count = count.load(Ordering::Relaxed);
            if count == 0 {
                continue;
            }
            let total_ns = f.path_ns[id].load(Ordering::Relaxed);
            if let Some(info) = flow.paths.path_info(&flow.flat, &program.graph, id as u64) {
                out.push(HotPath {
                    info,
                    count,
                    total_ns,
                });
            }
        }
        match order {
            HotOrder::ByCount => out.sort_by_key(|h| std::cmp::Reverse(h.count)),
            HotOrder::ByTotalTime => out.sort_by_key(|h| std::cmp::Reverse(h.total_ns)),
            HotOrder::ByMeanTime => {
                out.sort_by_key(|h| std::cmp::Reverse(h.total_ns / h.count.max(1)))
            }
        }
        out
    }

    /// Extracts simulator parameters from the observations, exactly what
    /// §5.1 feeds CSIM: per-node service means, branch probabilities and
    /// source inter-arrival times.
    pub fn observed_params(&self, program: &CompiledProgram) -> ModelParams {
        let mut params = ModelParams::default();
        for (fi, flow) in program.flows.iter().enumerate() {
            let f = &self.flows[fi];
            let mut fp = FlowParams::default();
            {
                let a = f.arrivals.lock();
                fp.interarrival_mean_s = if a.count > 0 {
                    a.total_ns as f64 / a.count as f64 / 1e9
                } else {
                    0.0
                };
            }
            for (vid, vert) in flow.flat.verts.iter().enumerate() {
                match vert {
                    FlatVertex::Exec { .. } => {
                        let n = f.exec_count[vid].load(Ordering::Relaxed);
                        let ns = f.exec_ns[vid].load(Ordering::Relaxed);
                        if n > 0 {
                            fp.service_mean_s.insert(vid, ns as f64 / n as f64 / 1e9);
                            let ok = f.edges[vid][0].load(Ordering::Relaxed);
                            let err = f.edges[vid][1].load(Ordering::Relaxed);
                            let total = (ok + err).max(1);
                            fp.error_prob.insert(vid, err as f64 / total as f64);
                        }
                    }
                    FlatVertex::Dispatch { arms, .. } => {
                        let counts: Vec<u64> = (0..=arms.len())
                            .map(|k| f.edges[vid][k].load(Ordering::Relaxed))
                            .collect();
                        let total: u64 = counts.iter().sum();
                        if total > 0 {
                            fp.arm_probs.insert(
                                vid,
                                counts[..arms.len()]
                                    .iter()
                                    .map(|&c| c as f64 / total as f64)
                                    .collect(),
                            );
                        }
                    }
                    _ => {}
                }
            }
            params.flows.push(fp);
        }
        params
    }

    /// Total flows whose path id exceeded the dense table (0 in practice).
    pub fn overflowed(&self) -> u64 {
        self.overflow.load(Ordering::Relaxed)
    }

    /// Renders a text hot-path report across every flow, at most `limit`
    /// paths per flow — the payload the paper's profiling socket serves
    /// to a connected performance analyst (§5.2).
    pub fn render(&self, program: &CompiledProgram, order: HotOrder, limit: usize) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (fi, flow) in program.flows.iter().enumerate() {
            let source = program.graph.name(flow.flat.source);
            let report = self.report(program, fi, order);
            let _ = writeln!(
                out,
                "flow {fi} (source {source}): {} hot path(s), order {order:?}",
                report.len()
            );
            for h in report.iter().take(limit) {
                let _ = writeln!(
                    out,
                    "  {:>10}x  {:>10.3} ms  {:>5.1}%  {}",
                    h.count,
                    h.mean_ms(),
                    100.0 * h.share_of(&report),
                    h.info.display(&program.graph, &flow.flat)
                );
            }
        }
        out
    }
}

/// Sort order for hot-path reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HotOrder {
    /// Most frequently executed first (the paper's 780,510× no-op path).
    ByCount,
    /// Largest total time first (share of server execution time).
    ByTotalTime,
    /// Most expensive per execution first (the 0.295 ms transfer path).
    ByMeanTime,
}

/// One line of a hot-path report.
#[derive(Debug, Clone)]
pub struct HotPath {
    pub info: PathInfo,
    pub count: u64,
    pub total_ns: u64,
}

impl HotPath {
    /// Mean time per execution in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64 / 1e6
        }
    }

    /// This path's share of the total time across `all` paths (the
    /// paper's "13% of BitTorrent's execution time").
    pub fn share_of(&self, all: &[HotPath]) -> f64 {
        let total: u64 = all.iter().map(|h| h.total_ns).sum();
        if total == 0 {
            0.0
        } else {
            self.total_ns as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reports() {
        let program = flux_core::compile(flux_core::fixtures::MINI_PIPELINE).unwrap();
        let prof = PathProfiler::new(&program);
        prof.record_path(0, 0, 1_000_000);
        prof.record_path(0, 0, 3_000_000);
        prof.record_path(0, 1, 500_000);
        let by_count = prof.report(&program, 0, HotOrder::ByCount);
        assert_eq!(by_count[0].count, 2);
        assert!((by_count[0].mean_ms() - 2.0).abs() < 1e-9);
        let by_time = prof.report(&program, 0, HotOrder::ByTotalTime);
        assert_eq!(by_time[0].total_ns, 4_000_000);
        let share = by_time[0].share_of(&by_time);
        assert!((share - 4.0 / 4.5).abs() < 1e-9);
    }

    #[test]
    fn observed_params_reflect_edges() {
        let program = flux_core::compile(flux_core::fixtures::MINI_PIPELINE).unwrap();
        let prof = PathProfiler::new(&program);
        let flow = &program.flows[0];
        // Find the dispatch vertex and feed arm counts 3:1.
        let (dv, arms) = flow
            .flat
            .verts
            .iter()
            .enumerate()
            .find_map(|(i, v)| match v {
                FlatVertex::Dispatch { arms, .. } => Some((i, arms.len())),
                _ => None,
            })
            .unwrap();
        assert_eq!(arms, 2);
        for _ in 0..3 {
            prof.record_edge(0, dv, 0);
        }
        prof.record_edge(0, dv, 1);
        // Execute one exec vertex with service time 2ms, one error in four.
        let (ev, _) = flow.flat.execs().next().unwrap();
        for _ in 0..4 {
            prof.record_exec(0, ev, 2_000_000);
        }
        for _ in 0..3 {
            prof.record_edge(0, ev, 0);
        }
        prof.record_edge(0, ev, 1);
        let params = prof.observed_params(&program);
        let fp = &params.flows[0];
        let probs = &fp.arm_probs[&dv];
        assert!((probs[0] - 0.75).abs() < 1e-9);
        assert!((probs[1] - 0.25).abs() < 1e-9);
        assert!((fp.service_mean_s[&ev] - 0.002).abs() < 1e-12);
        assert!((fp.error_prob[&ev] - 0.25).abs() < 1e-9);
    }

    #[test]
    fn interarrival_mean() {
        let program = flux_core::compile(flux_core::fixtures::MINI_PIPELINE).unwrap();
        let prof = PathProfiler::new(&program);
        let t0 = Instant::now();
        prof.record_arrival(0, t0);
        prof.record_arrival(0, t0 + std::time::Duration::from_millis(10));
        prof.record_arrival(0, t0 + std::time::Duration::from_millis(30));
        let params = prof.observed_params(&program);
        let m = params.flows[0].interarrival_mean_s;
        assert!((m - 0.015).abs() < 1e-6, "mean of 10ms and 20ms, got {m}");
    }

    #[test]
    fn overflow_paths_counted_not_crashed() {
        let program = flux_core::compile(flux_core::fixtures::MINI_PIPELINE).unwrap();
        let prof = PathProfiler::new(&program);
        prof.record_path(0, u64::MAX, 1);
        assert_eq!(prof.overflowed(), 1);
    }
}
