//! Lock-free bounded MPSC ring for the sharded dispatcher queues.
//!
//! [`EventRing`] is an LMAX-disruptor-style bounded ring buffer with
//! per-slot sequence numbers (the Vyukov bounded-queue slot protocol):
//! producers batch-claim a run of slots with one CAS on `tail`, the
//! dispatcher batch-consumes a whole published run with one CAS on
//! `head`, and a thief claims the oldest half of the published run the
//! same way — so the steady-state hand-off between an I/O completion
//! and its dispatcher costs two atomic RMWs per *batch*, not a mutex
//! acquisition per event. `head` and `tail` live on separate cache
//! lines ([`CachePadded`]) so producer traffic never invalidates the
//! consumer's line.
//!
//! # Ring memory ordering
//!
//! Each slot carries a sequence counter `seq` encoding its state for a
//! given ring position `pos` (positions increase forever; the slot
//! index is `pos & mask`):
//!
//! * `seq == pos` — slot free, a producer may claim it.
//! * `seq == pos + 1` — slot published, a consumer may take it.
//! * `seq == pos + capacity` — slot consumed and recycled for the next
//!   lap (which sees it as free, since next-lap `pos' = pos + capacity`).
//!
//! **Publish:** a producer claims `[tail, tail+k)` by CAS on `tail`
//! (SeqCst), writes each payload, then stores `seq = pos + 1` with
//! `Release` *in increasing position order*. The Release store is the
//! publication edge: a consumer that observes `seq == pos + 1` with
//! `Acquire` also observes the payload write. In-order publication
//! keeps the published run contiguous, so a batch consume never skips
//! over an unpublished hole.
//!
//! **Consume:** the consumer scans the published run starting at
//! `head`, claims it by CAS on `head` (SeqCst), reads each payload (it
//! now owns the slots exclusively — the CAS winner is the only reader),
//! and frees each slot with `seq = pos + capacity` (`Release`, pairing
//! with the producer's `Acquire` free-check so the payload read happens
//! before the slot is reused).
//!
//! **Parked-flag handshake (Dekker):** the dispatcher parks only after
//! publishing `parked = true` (SeqCst) and then re-checking emptiness
//! with SeqCst loads of `tail`/`head`/`overflow_len`; a producer
//! performs its claim (the `tail` CAS or the `overflow_len`
//! increment — both SeqCst RMWs) *before* loading `parked` (SeqCst).
//! Under the C++11 total order over SeqCst operations one of the two
//! must observe the other: either the producer sees `parked == true`
//! and notifies the condvar, or the dispatcher's emptiness re-check
//! sees the claim and refuses to sleep. All fences are avoided on
//! purpose — every edge is an atomic *operation*, which ThreadSanitizer
//! models precisely. The notify itself is performed while holding the
//! shard's sleep mutex, closing the classic lost-wakeup window between
//! the dispatcher's re-check and its `wait`.
//!
//! **Overflow sidecar:** the ring is bounded; when it is full (or the
//! sidecar is already non-empty — see below) producers append to a
//! plain `Mutex<VecDeque>` sidecar instead, so submission never spins
//! unbounded and never drops events. Two rules keep the combined
//! structure FIFO per producer and starvation-free: (1) once the
//! sidecar is non-empty, *all* new pushes go to the sidecar (a producer
//! checks `overflow_len` first), so ring traffic cannot starve
//! sidecar events or overtake them; (2) the consumer swaps the whole
//! sidecar out only when the ring is observably empty (`head == tail`,
//! which also covers claimed-but-unpublished slots) and executes it
//! before returning to the ring. Ring runs and sidecar runs therefore
//! never interleave out of order.
//!
//! **Steal:** a thief claims the oldest `ceil(r/2)` events of the
//! victim's published run via the same `head` CAS the owner uses, so
//! owner and thief serialize on the claim; the sidecar is never stolen
//! (it is swapped wholesale by the owner). Two consumers freeing slots
//! out of order can at worst make a lap's worth of slots look
//! transiently full to producers — which routes them to the sidecar,
//! never corrupts.

use parking_lot::Mutex;
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Pads and aligns a value to a 64-byte cache line, so two hot atomics
/// written by different threads never share a line (false sharing turns
/// every counter increment into cross-core cache traffic).
#[derive(Default, Debug)]
#[repr(align(64))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` with cache-line alignment.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

/// One ring slot: the Vyukov sequence counter plus the payload cell it
/// guards (see the module docs for the `seq` state encoding).
struct Slot<T> {
    seq: AtomicU64,
    val: UnsafeCell<MaybeUninit<T>>,
}

/// What a [`EventRing::push_batch`] did with the group: how many events
/// went into the ring proper, how many spilled to the overflow sidecar,
/// and how many tail-CAS claims it took (the amortization counter —
/// `ringed / claims` is the events-per-CAS batching factor).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Pushed {
    /// Events placed in ring slots.
    pub ringed: u64,
    /// Events appended to the overflow sidecar.
    pub overflowed: u64,
    /// Successful tail CASes performed.
    pub claims: u64,
}

/// The bounded MPSC (multi-producer, batch-consumer) event ring with a
/// mutexed overflow sidecar. See the module docs for the full ordering
/// discipline.
pub struct EventRing<T> {
    /// Producer claim counter (next unclaimed position).
    tail: CachePadded<AtomicU64>,
    /// Consumer claim counter (oldest unconsumed position).
    head: CachePadded<AtomicU64>,
    slots: Box<[Slot<T>]>,
    mask: u64,
    /// Ring-full spillover; drained wholesale by the consumer when the
    /// ring is empty (rule 2 in the module docs).
    overflow: Mutex<VecDeque<T>>,
    /// Lock-free view of the sidecar's length, maintained under the
    /// `overflow` lock but readable without it: producers check it
    /// first (rule 1), the dispatcher's park re-check reads it, and
    /// `len` includes it.
    overflow_len: AtomicUsize,
}

// SAFETY: the slot protocol hands each T from exactly one producer to
// exactly one consumer (the claim CASes serialize ownership), so the
// ring is Send/Sync whenever T itself may move between threads.
unsafe impl<T: Send> Send for EventRing<T> {}
unsafe impl<T: Send> Sync for EventRing<T> {}

impl<T> EventRing<T> {
    /// A ring with at least `cap` slots, rounded up to a power of two
    /// (minimum 2).
    pub fn with_capacity(cap: usize) -> Self {
        let cap = cap.next_power_of_two().max(2);
        EventRing {
            tail: CachePadded::new(AtomicU64::new(0)),
            head: CachePadded::new(AtomicU64::new(0)),
            slots: (0..cap as u64)
                .map(|i| Slot {
                    seq: AtomicU64::new(i),
                    val: UnsafeCell::new(MaybeUninit::uninit()),
                })
                .collect(),
            mask: cap as u64 - 1,
            overflow: Mutex::new(VecDeque::new()),
            overflow_len: AtomicUsize::new(0),
        }
    }

    /// Slot count (a power of two).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    #[inline]
    fn slot(&self, pos: u64) -> &Slot<T> {
        &self.slots[(pos & self.mask) as usize]
    }

    /// Approximate queued-event count: claimed-but-unconsumed ring
    /// positions plus the overflow sidecar. Racy by nature; used for
    /// depth stats and steal heuristics, never for correctness.
    pub fn len(&self) -> usize {
        let head = self.head.load(Ordering::SeqCst);
        let tail = self.tail.load(Ordering::SeqCst);
        tail.saturating_sub(head) as usize + self.overflow_len.load(Ordering::SeqCst)
    }

    /// True when no event is claimed in the ring or parked in the
    /// sidecar (same approximation caveat as [`EventRing::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends the whole group to the overflow sidecar (rule 1 / ring
    /// full). The length counter is maintained under the lock; the
    /// `fetch_add` is the producer-side SeqCst RMW of the parked-flag
    /// handshake on this path.
    fn push_overflow_batch(&self, group: &mut Vec<T>) -> u64 {
        let n = group.len();
        let mut ov = self.overflow.lock();
        ov.extend(group.drain(..));
        self.overflow_len.fetch_add(n, Ordering::SeqCst);
        n as u64
    }

    /// Pushes one event (the single-event enqueue path: fairness
    /// re-queues, I/O completions). Same protocol as
    /// [`EventRing::push_batch`] with a group of one.
    pub fn push(&self, item: T) -> Pushed {
        let mut one = vec![item];
        self.push_batch(&mut one)
    }

    /// Pushes a whole group, batch-claiming runs of slots with one
    /// `tail` CAS each; whatever cannot be ringed goes to the overflow
    /// sidecar. Drains `group` completely — events are never dropped.
    pub fn push_batch(&self, group: &mut Vec<T>) -> Pushed {
        let mut pushed = Pushed::default();
        while !group.is_empty() {
            // Rule 1: a non-empty sidecar captures all new traffic, so
            // sidecar events are never overtaken by ring events.
            if self.overflow_len.load(Ordering::SeqCst) > 0 {
                pushed.overflowed += self.push_overflow_batch(group);
                break;
            }
            let tail = self.tail.load(Ordering::SeqCst);
            // Largest contiguous free run starting at tail, capped by
            // the group size. Free means seq == pos (this lap's
            // producers may claim); Acquire pairs with the consumer's
            // Release free so the payload slot is truly dead.
            let want = group.len() as u64;
            let mut k = 0u64;
            while k < want && self.slot(tail + k).seq.load(Ordering::Acquire) == tail + k {
                k += 1;
            }
            if k == 0 {
                // Ring full (or a consumer's out-of-order free made it
                // look full): spill to the sidecar rather than spin.
                pushed.overflowed += self.push_overflow_batch(group);
                break;
            }
            // Claim [tail, tail+k). Winning the CAS grants exclusive
            // write ownership of those slots: the free-check above can
            // only have been stale towards *fewer* free slots, and any
            // slot that was free at the check stays free until a
            // producer claims it — which now can only be us.
            if self
                .tail
                .compare_exchange(tail, tail + k, Ordering::SeqCst, Ordering::SeqCst)
                .is_err()
            {
                continue; // another producer claimed first; rescan
            }
            pushed.claims += 1;
            pushed.ringed += k;
            for (i, item) in group.drain(..k as usize).enumerate() {
                let pos = tail + i as u64;
                let slot = self.slot(pos);
                // SAFETY: the CAS gave us exclusive ownership of this
                // slot until we publish it below.
                unsafe { (*slot.val.get()).write(item) };
                // Publish in increasing order (module docs): the run
                // visible to consumers is always contiguous.
                slot.seq.store(pos + 1, Ordering::Release);
            }
        }
        pushed
    }

    /// Batch-consumes up to `max` events from the published run at
    /// `head` into `out` (push_back, oldest first). Returns how many
    /// were taken; 0 when nothing is published.
    pub fn pop_run(&self, out: &mut VecDeque<T>, max: usize) -> usize {
        self.claim_run(out, max, false)
    }

    /// Steals the oldest half (rounded up) of the published run —
    /// the thief-side entry point. The sidecar is never stolen.
    pub fn steal_run(&self, out: &mut VecDeque<T>, max: usize) -> usize {
        self.claim_run(out, max, true)
    }

    fn claim_run(&self, out: &mut VecDeque<T>, max: usize, halve: bool) -> usize {
        loop {
            let head = self.head.load(Ordering::SeqCst);
            // Published run length: contiguous seq == pos + 1 slots.
            let mut r = 0u64;
            while (r as usize) < max
                && self.slot(head + r).seq.load(Ordering::Acquire) == head + r + 1
            {
                r += 1;
            }
            if r == 0 {
                return 0;
            }
            let take = if halve { r.div_ceil(2) } else { r };
            // Claim [head, head+take); the winner owns the slots.
            if self
                .head
                .compare_exchange(head, head + take, Ordering::SeqCst, Ordering::SeqCst)
                .is_err()
            {
                continue; // owner/thief race: rescan from the new head
            }
            let cap = self.slots.len() as u64;
            for i in 0..take {
                let pos = head + i;
                let slot = self.slot(pos);
                // SAFETY: head CAS winner is the exclusive reader of
                // these published slots.
                let item = unsafe { (*slot.val.get()).assume_init_read() };
                // Recycle for the next lap; Release pairs with the
                // producer's Acquire free-check.
                slot.seq.store(pos + cap, Ordering::Release);
                out.push_back(item);
            }
            return take as usize;
        }
    }

    /// Swaps the whole overflow sidecar into `out` — but only when the
    /// ring is observably empty (`head == tail` covers published *and*
    /// claimed-but-unpublished slots), preserving rule 2's FIFO
    /// guarantee. Returns how many events moved.
    pub fn take_overflow(&self, out: &mut VecDeque<T>) -> usize {
        if self.overflow_len.load(Ordering::SeqCst) == 0 {
            return 0;
        }
        if self.tail.load(Ordering::SeqCst) != self.head.load(Ordering::SeqCst) {
            return 0; // ring traffic still pending; drain that first
        }
        let mut ov = self.overflow.lock();
        let n = ov.len();
        out.extend(ov.drain(..));
        self.overflow_len.fetch_sub(n, Ordering::SeqCst);
        n
    }
}

impl<T> Drop for EventRing<T> {
    fn drop(&mut self) {
        // &mut self: no concurrent claims. Drop every published,
        // unconsumed payload (claimed-but-unpublished slots hold no
        // initialized value; the sidecar drops itself).
        let head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        for pos in head..tail {
            let idx = (pos & self.mask) as usize;
            if *self.slots[idx].seq.get_mut() == pos + 1 {
                unsafe { (*self.slots[idx].val.get()).assume_init_drop() };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(EventRing::<u32>::with_capacity(0).capacity(), 2);
        assert_eq!(EventRing::<u32>::with_capacity(3).capacity(), 4);
        assert_eq!(EventRing::<u32>::with_capacity(1024).capacity(), 1024);
    }

    #[test]
    fn fifo_through_ring_and_overflow_with_tiny_cap() {
        let ring = EventRing::with_capacity(4);
        let mut group: Vec<u32> = (0..10).collect();
        let pushed = ring.push_batch(&mut group);
        assert!(group.is_empty());
        assert_eq!(pushed.ringed + pushed.overflowed, 10);
        assert!(pushed.overflowed >= 6); // cap 4 ring
        assert_eq!(ring.len(), 10);

        // Consumer protocol: ring first, sidecar only when ring empty.
        let mut out = VecDeque::new();
        while out.len() < 10 {
            if ring.pop_run(&mut out, 64) == 0 {
                ring.take_overflow(&mut out);
            }
        }
        let got: Vec<u32> = out.into_iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert!(ring.is_empty());
    }

    #[test]
    fn wraparound_reuses_slots_across_laps() {
        let ring = EventRing::with_capacity(4);
        let mut out = VecDeque::new();
        for lap in 0u32..100 {
            let mut group = vec![lap * 2, lap * 2 + 1];
            let pushed = ring.push_batch(&mut group);
            assert_eq!(pushed.ringed, 2, "no overflow needed at depth 2");
            assert_eq!(ring.pop_run(&mut out, 8), 2);
        }
        let got: Vec<u32> = out.into_iter().collect();
        assert_eq!(got, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn steal_takes_oldest_half_rounded_up() {
        let ring = EventRing::with_capacity(16);
        let mut group: Vec<u32> = (0..7).collect();
        ring.push_batch(&mut group);
        let mut stolen = VecDeque::new();
        assert_eq!(ring.steal_run(&mut stolen, 64), 4); // ceil(7/2)
        assert_eq!(stolen.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        let mut rest = VecDeque::new();
        assert_eq!(ring.pop_run(&mut rest, 64), 3);
        assert_eq!(rest.iter().copied().collect::<Vec<_>>(), vec![4, 5, 6]);
    }

    #[test]
    fn overflow_not_swapped_while_ring_nonempty() {
        let ring = EventRing::with_capacity(2);
        let mut group: Vec<u32> = (0..5).collect();
        ring.push_batch(&mut group); // 2 ringed, 3 overflow
        let mut out = VecDeque::new();
        assert_eq!(ring.take_overflow(&mut out), 0, "ring still holds events");
        assert_eq!(ring.pop_run(&mut out, 64), 2);
        assert_eq!(ring.take_overflow(&mut out), 3);
        let got: Vec<u32> = out.into_iter().collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn nonempty_overflow_captures_new_pushes() {
        let ring = EventRing::with_capacity(2);
        let mut group: Vec<u32> = (0..3).collect();
        ring.push_batch(&mut group); // overflow becomes non-empty
        let p = ring.push(99);
        assert_eq!(p.overflowed, 1, "rule 1: sidecar captures all traffic");
        let mut out = VecDeque::new();
        ring.pop_run(&mut out, 64);
        ring.take_overflow(&mut out);
        let got: Vec<u32> = out.into_iter().collect();
        assert_eq!(got, vec![0, 1, 2, 99]);
    }

    #[test]
    fn drop_releases_unconsumed_events() {
        let live = Arc::new(AtomicUsize::new(0));
        struct Tracked(Arc<AtomicUsize>);
        impl Drop for Tracked {
            fn drop(&mut self) {
                self.0.fetch_sub(1, Ordering::SeqCst);
            }
        }
        let ring = EventRing::with_capacity(4);
        for _ in 0..6 {
            live.fetch_add(1, Ordering::SeqCst);
            ring.push(Tracked(live.clone()));
        }
        let mut out = VecDeque::new();
        ring.pop_run(&mut out, 2);
        drop(out); // 2 dropped by consumer
        drop(ring); // 2 ring + 2 overflow dropped by Drop impl
        assert_eq!(live.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn concurrent_producers_preserve_per_producer_order() {
        const PRODUCERS: usize = 4;
        const PER: u64 = 5_000;
        let ring = Arc::new(EventRing::with_capacity(64));
        let mut handles = Vec::new();
        for p in 0..PRODUCERS as u64 {
            let ring = ring.clone();
            handles.push(std::thread::spawn(move || {
                let mut i = 0;
                while i < PER {
                    let n = (3).min(PER - i);
                    let mut group: Vec<u64> = (i..i + n).map(|v| p * PER + v).collect();
                    ring.push_batch(&mut group);
                    i += n;
                }
            }));
        }
        // Single consumer drains ring-then-overflow, as the dispatcher
        // does.
        let mut got: Vec<u64> = Vec::new();
        let mut out = VecDeque::new();
        while got.len() < PRODUCERS * PER as usize {
            if ring.pop_run(&mut out, 128) == 0 {
                ring.take_overflow(&mut out);
            }
            got.extend(out.drain(..));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Conservation + per-producer FIFO.
        assert_eq!(got.len(), PRODUCERS * PER as usize);
        let mut next = [0u64; PRODUCERS];
        for v in got {
            let p = (v / PER) as usize;
            assert_eq!(v % PER, next[p], "producer {p} out of order");
            next[p] += 1;
        }
        for n in next {
            assert_eq!(n, PER);
        }
    }

    #[test]
    fn concurrent_owner_and_thief_conserve_events() {
        const TOTAL: u64 = 20_000;
        let ring = Arc::new(EventRing::with_capacity(32));
        let producer = {
            let ring = ring.clone();
            std::thread::spawn(move || {
                let mut i = 0;
                while i < TOTAL {
                    let n = (7).min(TOTAL - i);
                    let mut group: Vec<u64> = (i..i + n).collect();
                    ring.push_batch(&mut group);
                    i += n;
                }
            })
        };
        let seen = Arc::new(Mutex::new(Vec::<u64>::new()));
        let done = Arc::new(AtomicUsize::new(0));
        let mut consumers = Vec::new();
        for c in 0..2 {
            let ring = ring.clone();
            let seen = seen.clone();
            let done = done.clone();
            consumers.push(std::thread::spawn(move || {
                let mut out = VecDeque::new();
                loop {
                    let got = if c == 0 {
                        let g = ring.pop_run(&mut out, 64);
                        if g == 0 {
                            ring.take_overflow(&mut out)
                        } else {
                            g
                        }
                    } else {
                        ring.steal_run(&mut out, 64)
                    };
                    if got > 0 {
                        let mut s = seen.lock();
                        s.extend(out.drain(..));
                        if s.len() as u64 == TOTAL {
                            done.store(1, Ordering::SeqCst);
                        }
                    } else if done.load(Ordering::SeqCst) == 1 {
                        return;
                    } else {
                        std::thread::yield_now();
                    }
                }
            }));
        }
        producer.join().unwrap();
        for c in consumers {
            c.join().unwrap();
        }
        let mut s = seen.lock();
        s.sort_unstable();
        assert_eq!(s.len() as u64, TOTAL, "no event lost or duplicated");
        for (i, v) in s.iter().enumerate() {
            assert_eq!(*v, i as u64);
        }
    }
}
