//! # flux-runtime — runtime systems for Flux programs
//!
//! Executes programs compiled by `flux-core` on any of the paper's three
//! runtime systems (thread-per-flow, thread-pool, event-driven), with the
//! atomicity-constraint lock manager and optional Ball–Larus path
//! profiling.
//!
//! The sharded event-driven runtime's steady-state event path is
//! **batched and allocation-free**: sources may return a whole burst of
//! flows per poll ([`SourceOutcome::Batch`] — the web server hands over
//! one reactor round's readiness batch at a time), and the runtime
//! routes the burst to its home shards with one queue lock and at most
//! one condvar notify per destination shard (`route_home_batch`). A
//! per-shard *parked* flag, maintained under the shard's queue lock,
//! lets enqueuers skip the notify entirely when the dispatcher is
//! provably awake. [`ShardStat::batches`]/[`ShardStat::batch_events`]
//! expose the amortization factor, and on multi-core hosts each
//! `flux-shard-N` thread pins itself to core `N mod host_cores`
//! ([`affinity`]; opt out with `FLUX_PIN=0`), with the resulting state
//! recorded in [`ServerStats::pinning`].
//!
//! ```
//! use flux_runtime::{NodeOutcome, NodeRegistry, SourceOutcome, FluxServer};
//! use std::sync::atomic::{AtomicU32, Ordering};
//!
//! const PROGRAM: &str = "
//!     Gen () => (int v);
//!     Double (int v) => (int v);
//!     Print (int v) => ();
//!     Flow = Double -> Print;
//!     source Gen => Flow;
//! ";
//!
//! struct Payload { v: u32 }
//!
//! let program = flux_core::compile(PROGRAM).unwrap();
//! let mut reg: NodeRegistry<Payload> = NodeRegistry::new();
//! let n = AtomicU32::new(0);
//! reg.source("Gen", move || {
//!     match n.fetch_add(1, Ordering::SeqCst) {
//!         0..=9 => SourceOutcome::New(Payload { v: n.load(Ordering::SeqCst) }),
//!         _ => SourceOutcome::Shutdown,
//!     }
//! });
//! reg.node("Double", |p: &mut Payload| { p.v *= 2; NodeOutcome::Ok });
//! reg.node("Print", |_p: &mut Payload| NodeOutcome::Ok);
//!
//! let server = std::sync::Arc::new(FluxServer::new(program, reg).unwrap());
//! let handle = flux_runtime::start(
//!     server.clone(),
//!     flux_runtime::RuntimeKind::ThreadPool { workers: 2 },
//! );
//! handle.join();
//! assert_eq!(server.stats.finished(), 10);
//! ```

pub mod affinity;
pub mod locks;
pub mod profile;
pub mod profile_socket;
pub mod registry;
pub mod runtimes;
pub mod server;
pub mod stats;

pub use locks::{FlowId, LockManager, ReentrantRwLock};
pub use profile::{HotOrder, HotPath, PathProfiler};
pub use profile_socket::handle_profile_conn;
pub use registry::{NodeOutcome, NodeRegistry, SourceOutcome};
pub use runtimes::{shard_index, start, RuntimeKind, ServerHandle};
pub use server::{FlowCursor, FluxServer, LockWait, Step};
pub use stats::{LatencyHistogram, NetCounters, PinningStat, ServerStats, ShardStat};
