//! # flux-runtime — runtime systems for Flux programs
//!
//! Executes programs compiled by `flux-core` on any of the paper's three
//! runtime systems (thread-per-flow, thread-pool, event-driven), with the
//! atomicity-constraint lock manager and optional Ball–Larus path
//! profiling.
//!
//! The sharded event-driven runtime's steady-state event path is
//! **batched and allocation-free**: sources may return a whole burst of
//! flows per poll ([`SourceOutcome::Batch`] — the web server hands over
//! one reactor round's readiness batch at a time), and the runtime
//! routes the burst to its home shards with one queue lock and at most
//! one condvar notify per destination shard (`route_home_batch`). A
//! per-shard *parked* flag, maintained under the shard's queue lock,
//! lets enqueuers skip the notify entirely when the dispatcher is
//! provably awake. [`ShardStat::batches`]/[`ShardStat::batch_events`]
//! expose the amortization factor, and on multi-core hosts each
//! `flux-shard-N` thread pins itself to core `N mod host_cores`
//! ([`affinity`]; opt out with `FLUX_PIN=0`), with the resulting state
//! recorded in [`ServerStats::pinning`].
//!
//! The dispatcher set is also **elastic**: with
//! [`AdaptivePolicy::Adaptive`], a controller loop samples every
//! shard's depth/steal/batch counters into a [`ShardLoadWindow`] each
//! tick, parks the highest-indexed dispatcher after a full idle window
//! and wakes a parked one within a single tick of observing standing
//! queue depth. The controller's invariants — parks commit only after
//! the shard drain-forwards its queue to active siblings, enqueuers
//! can't race a park because the routing prefix and the shard's
//! deactivated flag change under the same queue lock they hold, and
//! session routing only ever targets active shards — are spelled out in
//! the [`runtimes`] module docs ("Adaptive shard scaling").
//! [`AdaptivePolicy::Static`] (the default) keeps the paper's fixed
//! dispatcher set, and [`ServerStats::adaptive`] reports the active
//! count plus cumulative park/wake totals either way.
//!
//! The dispatch queue itself comes in two kinds
//! ([`ShardQueueKind`], builder knob + `FLUX_SHARD_QUEUE` env):
//! [`ShardQueueKind::Mutex`] (the default) is the classic
//! `Mutex<VecDeque>`-under-Condvar queue, and [`ShardQueueKind::Ring`]
//! replaces it with a lock-free bounded MPSC ring ([`EventRing`]) —
//! producers batch-claim slots with one CAS per event group, the
//! dispatcher batch-consumes whole published runs, and a mutexed
//! overflow sidecar absorbs ring-full bursts so events are never
//! dropped. The **ring memory-ordering discipline** — the
//! publish/consume Acquire/Release edges, the SeqCst parked-flag
//! (Dekker) handshake that makes a known-awake dispatcher safe to skip
//! notifying, the overflow sidecar's FIFO rules, and how stealing
//! claims the oldest half of a published run — is documented in the
//! [`ring`] module docs. The Mutex path stays as the ablation baseline
//! and semantic oracle (a differential proptest runs the same event
//! script through both kinds).
//!
//! ## Overload invariants
//!
//! Past saturation a staged pipeline is only as robust as the bounds on
//! each stage's queue, so the sharded runtime can run under
//! [`OverloadPolicy::Bounded`]: a hard depth cap on every shard queue
//! (both [`ShardQueueKind`]s). The rules for where shedding may and may
//! not happen:
//!
//! * **Shedding happens only at the source-submission boundary**
//!   (`route_home_batch`, the path that admits a source's burst into
//!   the shard queues). A group whose destination shard stands at the
//!   cap is truncated; the overflow payloads are counted in
//!   [`ShardStat::shed`] and handed to the registry's
//!   [`NodeRegistry::on_shed`] handler on the source thread, *before*
//!   they enter any queue — servers answer a cheap prebuilt 503/BUSY
//!   there instead of queueing doomed work.
//! * **Admitted events are never dropped.** Requeues
//!   (`Step::WouldBlock`, fairness budgets), I/O-pool completions,
//!   work-steal transfers and a parking shard's drain-forward all move
//!   events that already passed admission; none of those paths consults
//!   the cap, so a flow that entered the graph always reaches an `End`.
//! * **Every shed is counted.** The conservation invariant `offered ==
//!   admitted + shed` is exposed through
//!   [`ServerStats::overload`](stats::OverloadStat) /
//!   [`ServerStats::total_shed`] and proptested across random
//!   interleavings.
//! * [`OverloadPolicy::Unbounded`] (the default) is the paper's
//!   semantics: no cap, no shedding, queues grow with demand.
//!
//! Edge admission (accept governing, idle reaping) lives one layer
//! down, in `flux-net`'s `ConnDriver` — see that crate's "Overload
//! invariants" docs.
//!
//! ## Fusion boundaries
//!
//! By default ([`server::FusionMode::On`], builder knob + `FLUX_FUSE`
//! env) the server executes *fused segments*: maximal straight-line
//! `Exec`/`Release` chains, computed by `flux-core`'s fusion pass and
//! re-fused here with the registry's [`NodeRegistry::node_blocking`]
//! knowledge, run as **one queue turn** per segment instead of one per
//! vertex. Segments never cross a semantic boundary — dispatch arms,
//! error-handler entries, constraint `Acquire`s, blocking nodes (which
//! must stay visible to the I/O off-load check) and join points all
//! break the chain — so a mid-segment [`NodeOutcome::Err`] still
//! releases held locks and lands on the flow's `on_err` vertex exactly
//! as the unfused walk would, and Ball–Larus path sums are
//! bit-identical (each fused transition replays the original
//! profiling edge). Dispatcher fairness generalizes from the old
//! one-exec-per-turn latch to a *step budget* (`FLUX_FUSE_BUDGET`,
//! default = the longest segment's execution count): a turn may spend
//! that many node executions before the event is re-queued.
//! [`server::FusionMode::Off`] (or `FLUX_FUSE=0`) keeps the per-vertex
//! interpreter as the semantic oracle and ablation baseline, and
//! [`ShardStat::fused_execs`] / [`ServerStats::describe`] report how
//! many node executions rode inside fused segments.
//!
//! ```
//! use flux_runtime::{NodeOutcome, NodeRegistry, SourceOutcome, FluxServer};
//! use std::sync::atomic::{AtomicU32, Ordering};
//!
//! const PROGRAM: &str = "
//!     Gen () => (int v);
//!     Double (int v) => (int v);
//!     Print (int v) => ();
//!     Flow = Double -> Print;
//!     source Gen => Flow;
//! ";
//!
//! struct Payload { v: u32 }
//!
//! let program = flux_core::compile(PROGRAM).unwrap();
//! let mut reg: NodeRegistry<Payload> = NodeRegistry::new();
//! let n = AtomicU32::new(0);
//! reg.source("Gen", move || {
//!     match n.fetch_add(1, Ordering::SeqCst) {
//!         0..=9 => SourceOutcome::New(Payload { v: n.load(Ordering::SeqCst) }),
//!         _ => SourceOutcome::Shutdown,
//!     }
//! });
//! reg.node("Double", |p: &mut Payload| { p.v *= 2; NodeOutcome::Ok });
//! reg.node("Print", |_p: &mut Payload| NodeOutcome::Ok);
//!
//! let server = std::sync::Arc::new(FluxServer::new(program, reg).unwrap());
//! let handle = flux_runtime::start(
//!     server.clone(),
//!     flux_runtime::RuntimeKind::ThreadPool { workers: 2 },
//! );
//! handle.join();
//! assert_eq!(server.stats.finished(), 10);
//! ```

pub mod affinity;
pub mod locks;
pub mod profile;
pub mod profile_socket;
pub mod registry;
pub mod ring;
pub mod runtimes;
pub mod server;
pub mod stats;
pub mod testutil;

pub use locks::{FlowId, LockManager, ReentrantRwLock};
pub use profile::{HotOrder, HotPath, PathProfiler};
pub use profile_socket::handle_profile_conn;
pub use registry::{NodeOutcome, NodeRegistry, SourceOutcome};
pub use ring::{CachePadded, EventRing};
pub use runtimes::{
    shard_index, start, AdaptiveConfig, AdaptivePolicy, OverloadConfig, OverloadPolicy,
    RuntimeKind, ServerHandle, ShardQueueKind,
};
pub use server::{FlowCursor, FluxServer, FusionMode, LockWait, Step};
pub use stats::{
    AdaptiveStat, FanoutStat, LatencyHistogram, NetCounters, OverloadStat, PinningStat,
    ServerStats, ShardLoadWindow, ShardSample, ShardStat,
};
