//! CPU affinity for dispatcher shards (Linux `sched_setaffinity`, raw
//! FFI — the offline build has no `libc` crate).
//!
//! Pinning is on by default when the host has more than one core and
//! can be disabled with `FLUX_PIN=0`. Shard `N` pins to core
//! `N mod host_cores`, so session-affine queues stop bouncing between
//! caches under steal-heavy load. The net crate carries a sibling copy
//! of this ~40-line shim for its reactor thread; the two crates are
//! deliberately independent (neither depends on the other), so the FFI
//! glue is duplicated rather than shared.

/// Number of hardware threads on this host.
pub fn host_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// True when thread pinning should be attempted: more than one core
/// and not opted out via `FLUX_PIN=0`.
pub fn should_pin() -> bool {
    host_cores() > 1 && std::env::var("FLUX_PIN").as_deref() != Ok("0")
}

#[cfg(target_os = "linux")]
mod sys {
    extern "C" {
        /// `pid == 0` targets the calling thread.
        pub fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const u64) -> i32;
    }
}

/// Pins the calling thread to `core` (mod the host core count).
/// Returns `true` on success; always `false` off Linux.
pub fn pin_current_thread(core: usize) -> bool {
    #[cfg(target_os = "linux")]
    {
        let core = core % host_cores().max(1);
        // 1024-bit cpu_set_t, the kernel's default size.
        let mut mask = [0u64; 16];
        if core >= 1024 {
            return false;
        }
        mask[core / 64] |= 1u64 << (core % 64);
        unsafe { sys::sched_setaffinity(0, std::mem::size_of_val(&mask), mask.as_ptr()) == 0 }
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = core;
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_cores_is_positive() {
        assert!(host_cores() >= 1);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn pin_to_core_zero_succeeds() {
        // Core 0 always exists; pinning the test thread is harmless.
        assert!(pin_current_thread(0));
    }
}
