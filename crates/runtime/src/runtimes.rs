//! The three runtime systems of paper §3.2.
//!
//! * **Thread-per-flow** — "a thread is created for every different data
//!   flow"; high overhead under load, included as the paper's naïve
//!   baseline.
//! * **Thread-pool** — "a fixed number of threads are allocated to
//!   service data flows. If all threads are occupied when a new data
//!   flow is created, the data flow is queued and handled in first-in
//!   first-out order."
//! * **Event-driven** — "every input to a functional node is treated as
//!   an event ... handled in turn by a single thread." Our runtime
//!   generalizes the paper's single dispatcher to `shards` dispatcher
//!   threads so flow execution scales across cores; `shards: 1`
//!   reproduces the paper's configuration exactly. Nodes flagged as
//!   blocking are off-loaded to an I/O helper pool that posts a
//!   completion event back to the queues — the moral equivalent of the
//!   paper's LD_PRELOAD shim plus its select-based callback-simulation
//!   thread (now a real readiness reactor on the network side; see
//!   `flux-net`'s reactor module). Since the reactor also drains
//!   per-connection output buffers on `POLLOUT`, response-writing nodes
//!   are ordinary non-blocking nodes: the pool services only genuinely
//!   blocking work (reads, disk), never sends. The driver's write-path
//!   counters surface next to [`crate::stats::ShardStat`] through
//!   [`crate::stats::NetCounters`].
//!
//!   **Sharding design.** Each shard owns a local FIFO run queue of
//!   [`FlowCursor`] events. New flows are routed by *session affinity*:
//!   a cursor whose source declared a session function hashes its
//!   session id to a fixed home shard, so session-scoped constraint
//!   locks stay core-local; sessionless cursors hash their flow id,
//!   which spreads load round-robin-ish. When a shard's queue drains it
//!   *steals* the oldest half of a sibling's queue (preserving FIFO
//!   latency ordering): the oldest event runs immediately, the rest
//!   move to the thief's own queue in the same lock acquisition — so a
//!   saturated shard sheds backlog without per-event lock traffic
//!   (`ShardStat::stolen_batch` counts the bulk moves). Fairness
//!   re-queues stay on the executing shard rather than re-routing
//!   home. A `Step::WouldBlock` retry is re-routed
//!   to the cursor's home shard rather than the thief's queue, so a
//!   blocked session flow stops ping-ponging between cores while the
//!   lock holder (pinned to the same home shard) makes progress.
//!   Per-shard queue-depth, steal and affinity counters land in
//!   [`crate::stats::ShardStat`].
//!
//!   **Adaptive shard scaling.** With
//!   [`AdaptivePolicy::Adaptive`], a controller thread
//!   (`flux-adaptive`) samples every shard's depth/steal/batch counters
//!   into a [`ShardLoadWindow`](crate::stats::ShardLoadWindow) each
//!   tick and resizes the *routing prefix* `0..active`: after a full
//!   idle window it parks the highest active shard, and the first tick
//!   that shows standing queue depth it wakes the lowest parked one
//!   (SEDA-style load-driven sizing; `AdaptivePolicy::Static` keeps the
//!   paper's fixed dispatcher set). The park protocol preserves three
//!   invariants: (1) *enqueuers can't race a park* — the prefix shrink
//!   and the shard's `deactivated` flag are written inside that shard's
//!   queue lock, the same lock every enqueuer holds, so a submitter
//!   either routes by the new prefix or its event lands where the
//!   parked dispatcher will see it; (2) *work drains before a park
//!   commits* — the deactivated dispatcher forwards its whole queue to
//!   active siblings (counted in `ShardStat::forwarded`) before first
//!   blocking, and keeps forwarding stragglers while parked, so no
//!   event is ever executed on, or stranded behind, a parked shard;
//!   (3) *session affinity follows the prefix* — `home_of` hashes over
//!   the active count only, so new flows, I/O completions and
//!   `WouldBlock` retries never target a parked shard (affinity is a
//!   locality heuristic; the lock manager is global, so a prefix resize
//!   remaps sessions without any correctness impact). Park/wake totals
//!   and the live active count surface in
//!   [`crate::stats::ServerStats::adaptive`].
//!
//!   **Shard queue kinds.** The per-shard queue comes in two
//!   interchangeable implementations, selected by [`ShardQueueKind`]
//!   (builder knob, [`RuntimeKind::shard_queue`], or the
//!   `FLUX_SHARD_QUEUE` env override): the default
//!   [`ShardQueueKind::Mutex`] is the classic `Mutex<VecDeque>` under a
//!   condvar described above, and [`ShardQueueKind::Ring`] swaps in a
//!   lock-free bounded MPSC ring ([`crate::ring::EventRing`]) where
//!   producers batch-claim slots with one CAS per event group and the
//!   dispatcher batch-consumes whole published runs into a local run
//!   buffer. Under the ring, the parked-flag handshake becomes a SeqCst
//!   Dekker protocol (publish-then-check-parked on the producer side,
//!   park-then-re-check-emptiness on the consumer side, notify under
//!   the shard's sleep mutex), ring-full submissions spill to a mutexed
//!   overflow sidecar (never dropped, never unbounded spinning), steals
//!   claim the oldest half of the victim's published run via the same
//!   head CAS the owner uses, and a deactivating shard forward-drains
//!   ring + sidecar through `route_home` re-checking its flag per
//!   event. The full ordering discipline is in the [`crate::ring`]
//!   module docs; the Mutex path remains the ablation baseline and
//!   semantic oracle.
//!
//!   **Shutdown.** A shard may exit only when every source loop has
//!   exited *and* the global live-event count is zero; the count is
//!   incremented at submission and decremented at `Step::Done`, so
//!   events parked in sibling queues or the I/O pool keep every shard
//!   alive until the system is fully drained. A controller-parked shard
//!   obeys the same rule: its wait loop re-checks the drain condition
//!   (woken by the same `wake_all` broadcasts), so shutdown never hangs
//!   on a parked dispatcher.
//! * **Staged** — a SEDA-style runtime (paper §3.2.3 reports a prototype
//!   "that targets Java, using both SEDA and a custom runtime
//!   implementation"): every concrete node is a stage with its own FIFO
//!   queue and worker pool; flows hop from stage to stage, giving
//!   cohort-style batching of each node's executions.
//!
//! Because Flux programs are runtime-independent, the same
//! [`FluxServer`] value runs unchanged on any of the four.

use crate::ring::EventRing;
use crate::server::{FlowCursor, FluxServer, LockWait, Step};
use crate::stats::{ShardLoadWindow, ShardStat};
use crossbeam::channel::{self, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// How the sharded event-driven runtime sizes its dispatcher set while
/// running.
///
/// [`AdaptivePolicy::Static`] keeps every configured shard hot for the
/// server's whole life — the paper's fixed-dispatcher semantics (and
/// with `shards: 1`, its exact single-dispatcher configuration).
/// [`AdaptivePolicy::Adaptive`] starts all `shards` dispatchers but
/// runs a controller loop that *parks* idle dispatchers and wakes them
/// when load returns: SEDA's observation that per-stage controllers
/// driven by observed load beat static sizing, applied to the paper's
/// event runtime. See the module docs ("Adaptive shard scaling") for
/// the park/wake protocol and its invariants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdaptivePolicy {
    /// Fixed dispatcher set; no controller thread. The default, and the
    /// paper's semantics.
    #[default]
    Static,
    /// Park idle dispatchers and wake them on burst, governed by the
    /// given controller configuration. With `shards: 1` the controller
    /// has nothing to do (the floor is one dispatcher), so no
    /// controller thread is started and
    /// [`crate::stats::AdaptiveStat::enabled`] reports `false` — the
    /// runtime is exactly the paper's single-dispatcher configuration.
    Adaptive(AdaptiveConfig),
}

impl AdaptivePolicy {
    /// The adaptive controller with its default tuning
    /// ([`AdaptiveConfig::default`]).
    pub fn adaptive() -> Self {
        AdaptivePolicy::Adaptive(AdaptiveConfig::default())
    }
}

/// Tuning of the adaptive shard controller (see [`AdaptivePolicy`]).
///
/// The controller samples every shard's depth/steal/batch counters into
/// a [`ShardLoadWindow`] once per `sample_every` tick, then applies two
/// rules with deliberate asymmetry — parking is slow (a full idle
/// window of `park_after` ticks), waking is fast (one tick observing
/// standing depth) — so bursts never wait on hysteresis but a brief lull
/// doesn't thrash the dispatcher set:
///
/// * **Park** when the trailing `park_after` ticks were all idle (zero
///   standing depth, at most `park_below` events executed per tick) and
///   more than `min_shards` dispatchers are active: deactivate the
///   highest-indexed active shard.
/// * **Wake** when the most recent tick shows at least `wake_depth`
///   events of standing queue depth and a parked shard exists:
///   reactivate the lowest-indexed parked shard — within one sampling
///   interval of the burst.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveConfig {
    /// Dispatchers the controller must keep active (clamped to
    /// `1..=shards`). With `min_shards: 1`, a fully idle server runs
    /// one dispatcher — the paper's configuration.
    pub min_shards: usize,
    /// Controller tick: how often the load window samples the shard
    /// counters (and therefore the worst-case wake latency).
    pub sample_every: Duration,
    /// Consecutive idle ticks required before one shard is parked.
    pub park_after: u32,
    /// Executed events per tick (across all shards) at or below which a
    /// tick counts as idle.
    pub park_below: u64,
    /// Standing queue depth (across all shards) at a tick that triggers
    /// an immediate wake.
    pub wake_depth: u64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            min_shards: 1,
            sample_every: Duration::from_millis(1),
            park_after: 16,
            park_below: 2,
            wake_depth: 2,
        }
    }
}

/// Which implementation backs each dispatcher shard's run queue (see
/// the module docs, "Shard queue kinds").
///
/// Selected per server through [`RuntimeKind::shard_queue`] or the
/// `ServerBuilder::shard_queue` knob; the `FLUX_SHARD_QUEUE` env var
/// (`"mutex"` / `"ring"`) overrides either at start, mirroring the
/// `FLUX_PIN`/`FLUX_POLLER` operator overrides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardQueueKind {
    /// `Mutex<VecDeque>` under a condvar — the default until the
    /// multi-core CI gate confirms the ring wins, and the ablation
    /// baseline / semantic oracle thereafter.
    #[default]
    Mutex,
    /// Lock-free bounded MPSC ring ([`crate::ring::EventRing`]) with a
    /// mutexed overflow sidecar. Ring capacity defaults to 1024 slots
    /// per shard; `FLUX_SHARD_RING_CAP` overrides (rounded up to a
    /// power of two).
    Ring,
}

impl ShardQueueKind {
    /// The `FLUX_SHARD_QUEUE` operator override, when set to a
    /// recognized value.
    pub fn from_env() -> Option<Self> {
        match std::env::var("FLUX_SHARD_QUEUE")
            .ok()?
            .to_ascii_lowercase()
            .as_str()
        {
            "ring" => Some(ShardQueueKind::Ring),
            "mutex" => Some(ShardQueueKind::Mutex),
            _ => None,
        }
    }
}

/// Whether the sharded event runtime bounds its per-shard queues.
///
/// [`OverloadPolicy::Unbounded`] (the default, and the paper's
/// semantics) lets queues grow without limit — past saturation, latency
/// and memory grow with them. [`OverloadPolicy::Bounded`] enforces a
/// hard depth cap on every shard queue (both [`ShardQueueKind`]s) and
/// converts enqueue-over-cap into **shed-at-source**: the overflow
/// payloads of a source batch are counted per shard
/// ([`crate::stats::ShardStat`]'s `shed`, rolled up in
/// [`crate::stats::OverloadStat`]) and handed to the registry's
/// `on_shed` handler *before* they enter any queue, so servers answer a
/// cheap 503/BUSY instead of queueing doomed work. Shedding happens
/// only at the source-submission boundary; events already admitted are
/// never dropped mid-graph (requeues, stealing and drain-forward are
/// exempt from the cap — see the module docs, "Overload invariants").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverloadPolicy {
    /// Unbounded shard queues; no shedding. The default.
    #[default]
    Unbounded,
    /// Hard per-shard depth caps with shed-at-source accounting.
    Bounded(OverloadConfig),
}

impl OverloadPolicy {
    /// Bounded queues with the given per-shard depth cap and otherwise
    /// default tuning.
    pub fn bounded(max_shard_depth: usize) -> Self {
        OverloadPolicy::Bounded(OverloadConfig { max_shard_depth })
    }
}

/// Tuning of the bounded overload policy (see [`OverloadPolicy`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverloadConfig {
    /// Events a shard queue may hold before source submissions to it
    /// shed. Applies to each shard independently (a hot shard sheds
    /// while its siblings admit). Clamped to at least 1.
    pub max_shard_depth: usize,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            max_shard_depth: 4096,
        }
    }
}

/// Which runtime to launch (paper §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimeKind {
    /// One OS thread per flow.
    ThreadPerFlow,
    /// Fixed worker pool with a FIFO queue.
    ThreadPool { workers: usize },
    /// `shards` dispatcher threads with session-affine routing and work
    /// stealing; blocking nodes off-loaded to `io_workers` helpers.
    /// `shards: 1` is the paper's single-dispatcher configuration,
    /// `adaptive` decides whether the dispatcher set is fixed
    /// ([`AdaptivePolicy::Static`]) or resized under load by the
    /// controller loop ([`AdaptivePolicy::Adaptive`]), and `queue`
    /// selects the shard-queue implementation ([`ShardQueueKind`]).
    EventDriven {
        shards: usize,
        io_workers: usize,
        adaptive: AdaptivePolicy,
        queue: ShardQueueKind,
        /// Whether shard queues are depth-capped with shed-at-source
        /// ([`OverloadPolicy`]); `Unbounded` is the paper's semantics.
        overload: OverloadPolicy,
    },
    /// SEDA-style: one FIFO queue + `stage_workers` threads per concrete
    /// node (paper §3.2.3's SEDA target).
    Staged { stage_workers: usize },
}

impl RuntimeKind {
    /// The paper's single-dispatcher event-driven runtime (`shards: 1`).
    pub fn event_driven(io_workers: usize) -> Self {
        RuntimeKind::EventDriven {
            shards: 1,
            io_workers,
            adaptive: AdaptivePolicy::Static,
            queue: ShardQueueKind::Mutex,
            overload: OverloadPolicy::Unbounded,
        }
    }

    /// The multi-core event-driven runtime with a fixed dispatcher set.
    pub fn event_driven_sharded(shards: usize, io_workers: usize) -> Self {
        RuntimeKind::EventDriven {
            shards,
            io_workers,
            adaptive: AdaptivePolicy::Static,
            queue: ShardQueueKind::Mutex,
            overload: OverloadPolicy::Unbounded,
        }
    }

    /// The multi-core event-driven runtime with the adaptive shard
    /// controller (default tuning).
    pub fn event_driven_adaptive(shards: usize, io_workers: usize) -> Self {
        RuntimeKind::EventDriven {
            shards,
            io_workers,
            adaptive: AdaptivePolicy::adaptive(),
            queue: ShardQueueKind::Mutex,
            overload: OverloadPolicy::Unbounded,
        }
    }

    /// Selects the shard-queue implementation of an event-driven
    /// runtime (no-op on the other kinds), composing with the
    /// constructors: `RuntimeKind::event_driven_sharded(4, 4)
    /// .shard_queue(ShardQueueKind::Ring)`.
    pub fn shard_queue(mut self, kind: ShardQueueKind) -> Self {
        if let RuntimeKind::EventDriven { queue, .. } = &mut self {
            *queue = kind;
        }
        self
    }

    /// Selects the overload policy of an event-driven runtime (no-op on
    /// the other kinds), composing with the constructors:
    /// `RuntimeKind::event_driven_sharded(4, 4)
    /// .overload(OverloadPolicy::bounded(1024))`.
    pub fn overload(mut self, policy: OverloadPolicy) -> Self {
        if let RuntimeKind::EventDriven { overload, .. } = &mut self {
            *overload = policy;
        }
        self
    }
}

/// A running server: join it or stop it.
pub struct ServerHandle<P: Send + 'static> {
    server: Arc<FluxServer<P>>,
    threads: Vec<JoinHandle<()>>,
}

impl<P: Send + 'static> ServerHandle<P> {
    /// The underlying server (stats, profiler, shutdown).
    pub fn server(&self) -> &Arc<FluxServer<P>> {
        &self.server
    }

    /// Requests shutdown and joins every runtime thread. Source
    /// implementations must return periodically (`SourceOutcome::Skip`
    /// on a timeout) for this to complete.
    pub fn stop(self) {
        self.server.request_shutdown();
        for t in self.threads {
            let _ = t.join();
        }
    }

    /// Blocks until all runtime threads exit on their own (sources
    /// returned `Shutdown`).
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// Starts `server` on the chosen runtime.
pub fn start<P: Send + 'static>(server: Arc<FluxServer<P>>, kind: RuntimeKind) -> ServerHandle<P> {
    let threads = match kind {
        RuntimeKind::ThreadPerFlow => start_thread_per_flow(&server),
        RuntimeKind::ThreadPool { workers } => start_thread_pool(&server, workers.max(1)),
        RuntimeKind::EventDriven {
            shards,
            io_workers,
            adaptive,
            queue,
            overload,
        } => start_event_driven(
            &server,
            shards.max(1),
            io_workers.max(1),
            adaptive,
            queue,
            overload,
        ),
        RuntimeKind::Staged { stage_workers } => start_staged(&server, stage_workers.max(1)),
    };
    ServerHandle { server, threads }
}

fn source_loop<P: Send + 'static>(
    server: &Arc<FluxServer<P>>,
    fi: usize,
    submit: impl FnMut(&mut Vec<(FlowCursor, P)>) + Send + 'static,
) -> JoinHandle<()> {
    source_loop_on_exit(server, fi, submit, || {})
}

fn source_loop_counted<P: Send + 'static>(
    server: &Arc<FluxServer<P>>,
    fi: usize,
    submit: impl FnMut(&mut Vec<(FlowCursor, P)>) + Send + 'static,
    active: Option<Arc<std::sync::atomic::AtomicUsize>>,
) -> JoinHandle<()> {
    source_loop_on_exit(server, fi, submit, move || {
        if let Some(active) = active {
            active.fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
        }
    })
}

/// The one source-lifecycle protocol every runtime shares: poll the
/// source until it shuts down, hand each batch of new flows to `submit`
/// (one pair for a plain `New`, the whole burst for a `Batch`), then
/// run `on_exit` (runtime-specific bookkeeping) exactly once. The batch
/// vector is drained by `submit` and reused across polls, so the
/// steady-state submission path allocates nothing.
fn source_loop_on_exit<P: Send + 'static>(
    server: &Arc<FluxServer<P>>,
    fi: usize,
    mut submit: impl FnMut(&mut Vec<(FlowCursor, P)>) + Send + 'static,
    on_exit: impl FnOnce() + Send + 'static,
) -> JoinHandle<()> {
    let server = server.clone();
    thread::Builder::new()
        .name(format!("flux-source-{}", server.source_name(fi)))
        .spawn(move || {
            let mut batch: Vec<(FlowCursor, P)> = Vec::new();
            while server.poll_source_batch(fi, &mut batch) {
                if !batch.is_empty() {
                    submit(&mut batch);
                    batch.clear(); // submit drains; belt and braces
                }
            }
            on_exit();
        })
        .expect("spawn source thread")
}

fn start_thread_per_flow<P: Send + 'static>(server: &Arc<FluxServer<P>>) -> Vec<JoinHandle<()>> {
    (0..server.flow_count())
        .map(|fi| {
            let srv = server.clone();
            source_loop(server, fi, move |batch: &mut Vec<(FlowCursor, P)>| {
                for (cursor, payload) in batch.drain(..) {
                    let srv = srv.clone();
                    // One thread per flow, as in the paper's naive runtime.
                    let _ = thread::Builder::new()
                        .name("flux-flow".into())
                        .spawn(move || {
                            srv.run_flow(cursor, payload);
                        });
                }
            })
        })
        .collect()
}

fn start_thread_pool<P: Send + 'static>(
    server: &Arc<FluxServer<P>>,
    workers: usize,
) -> Vec<JoinHandle<()>> {
    let (tx, rx): (Sender<(FlowCursor, P)>, Receiver<(FlowCursor, P)>) = channel::unbounded();
    let mut threads: Vec<JoinHandle<()>> = (0..workers)
        .map(|i| {
            let srv = server.clone();
            let rx = rx.clone();
            thread::Builder::new()
                .name(format!("flux-worker-{i}"))
                .spawn(move || {
                    // FIFO: a single shared channel preserves submission
                    // order across workers.
                    while let Ok((cursor, payload)) = rx.recv() {
                        srv.run_flow(cursor, payload);
                    }
                })
                .expect("spawn pool worker")
        })
        .collect();
    for fi in 0..server.flow_count() {
        let tx = tx.clone();
        threads.push(source_loop(
            server,
            fi,
            move |batch: &mut Vec<(FlowCursor, P)>| {
                for pair in batch.drain(..) {
                    let _ = tx.send(pair);
                }
            },
        ));
    }
    // Dropping the original sender here means workers exit when all
    // source loops have exited and the queue drains.
    drop(tx);
    threads
}

struct Event<P> {
    cursor: FlowCursor,
    payload: P,
}

/// The session-affinity routing hash of the sharded event runtime: maps
/// a session id (or flow id for sessionless cursors) to its home shard.
/// Public so tests and benchmarks can predict placements; Fibonacci
/// hashing keeps consecutive ids from correlating with the shard count.
pub fn shard_index(key: u64, shards: usize) -> usize {
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % shards.max(1)
}

/// A shard's run queue: the classic mutexed deque or the lock-free
/// ring, per [`ShardQueueKind`]. Every shard of a run uses the same
/// kind.
// One instance per shard for the lifetime of the run (inside an Arc'd
// Shard), so the Ring variant's cache-line-padded atomics (≥256 bytes)
// cost nothing per event; boxing it would buy no memory and add a
// pointer hop to every enqueue/dequeue.
#[allow(clippy::large_enum_variant)]
enum ShardQueue<P> {
    Mutex(Mutex<VecDeque<Event<P>>>),
    Ring(EventRing<Event<P>>),
}

impl<P> ShardQueue<P> {
    /// The mutexed deque — only called on code paths that are
    /// statically reachable only under [`ShardQueueKind::Mutex`].
    fn as_mutex(&self) -> &Mutex<VecDeque<Event<P>>> {
        match self {
            ShardQueue::Mutex(m) => m,
            ShardQueue::Ring(_) => unreachable!("mutex-path call on a ring shard"),
        }
    }

    /// The ring — mirror of [`ShardQueue::as_mutex`] for the ring-only
    /// paths.
    fn as_ring(&self) -> &EventRing<Event<P>> {
        match self {
            ShardQueue::Ring(r) => r,
            ShardQueue::Mutex(_) => unreachable!("ring-path call on a mutex shard"),
        }
    }
}

/// One dispatcher shard: a local FIFO run queue plus a wake-up condvar.
struct Shard<P> {
    queue: ShardQueue<P>,
    cond: Condvar,
    /// The mutex the ring dispatcher's condvar waits on (the Mutex
    /// queue kind waits on its queue lock instead and never touches
    /// this). Producers that observe `parked == true` acquire-release
    /// it before notifying, so a notify can never fall between the
    /// dispatcher's emptiness re-check and its wait.
    sleep: Mutex<()>,
    /// True while the dispatcher is (about to be) blocked in its
    /// condvar wait.
    ///
    /// Under [`ShardQueueKind::Mutex`]: set and cleared under `queue`'s
    /// lock, and read by enqueuers while they hold that same lock, so
    /// the check is race-free: a known-awake shard (parked == false) is
    /// guaranteed to re-examine its queue before it can park, and
    /// skipping the `notify_one` saves a futex syscall per event on a
    /// busy shard.
    ///
    /// Under [`ShardQueueKind::Ring`] there is no queue lock; the same
    /// guarantee comes from a SeqCst Dekker handshake (see
    /// [`crate::ring`] docs): the producer's claim RMW precedes its
    /// `parked` load, the dispatcher's `parked` store precedes its
    /// emptiness re-check, so one side always observes the other.
    parked: AtomicBool,
    /// True while the adaptive controller has taken this shard out of
    /// the routing prefix.
    ///
    /// Under [`ShardQueueKind::Mutex`]: set and cleared under `queue`'s
    /// lock (the same discipline as `parked`, and by the controller
    /// thread only), so a racing enqueuer can never observe the old
    /// routing prefix *and* miss the flag: the dispatcher
    /// drain-forwards everything in its queue to active siblings before
    /// the park commits, and forwards any straggler that slips in
    /// afterwards.
    ///
    /// Under [`ShardQueueKind::Ring`]: written SeqCst after the routing
    /// prefix shrinks (park) / before it grows (wake); an enqueuer that
    /// raced the park and landed here wakes this shard's forwarding
    /// loop through the ordinary parked-flag notify, so stragglers are
    /// still forwarded promptly.
    deactivated: AtomicBool,
}

/// The shared state of the sharded event-driven runtime.
struct ShardSet<P> {
    shards: Vec<Shard<P>>,
    /// Length of the *routing prefix*: shards `0..active` receive new
    /// events, shards `active..shards.len()` are parked by the adaptive
    /// controller. Always the full count under
    /// [`AdaptivePolicy::Static`]. Written only by the controller
    /// thread, inside the affected shard's queue lock (see
    /// [`ShardSet::park_one`]); read lock-free by routers — a stale
    /// read can at worst route one event to a freshly-parked shard,
    /// whose dispatcher forwards it back before committing its park.
    active: AtomicUsize,
    /// This run's per-shard counters (also published into the server's
    /// [`crate::stats::ServerStats`] for observers).
    stats: Arc<[ShardStat]>,
    /// Source loops still running; shards may not exit while a source
    /// could still produce events.
    active_sources: AtomicUsize,
    /// Events alive anywhere in the system — queued on any shard, being
    /// executed, or parked in the I/O pool. Incremented at submission,
    /// decremented at `Step::Done`.
    live: AtomicUsize,
    /// Fairness budget: node executions one event may spend per queue
    /// turn before the dispatcher requeues it (`FLUX_FUSE_BUDGET`,
    /// default = the server's longest fused segment). A budget of 1
    /// with fusion off reproduces the old one-exec-per-turn latch.
    step_budget: usize,
    /// Per-shard queue depth at which *source* submissions shed
    /// (`usize::MAX` under [`OverloadPolicy::Unbounded`]). Only
    /// [`ShardSet::route_home_batch`] consults it: requeues, steals and
    /// drain-forwards move events that were already admitted, and
    /// dropping those would strand flows mid-graph.
    max_depth: usize,
    /// Sink for shed payloads (the registry's `on_shed`): invoked on
    /// the source thread, before the payload enters any queue. `None`
    /// means shed payloads are counted and dropped at the same
    /// boundary.
    shed_handler: Option<Arc<dyn Fn(P) + Send + Sync>>,
}

impl<P> ShardSet<P> {
    fn new(
        n: usize,
        sources: usize,
        kind: ShardQueueKind,
        ring_cap: usize,
        step_budget: usize,
        max_depth: usize,
        shed_handler: Option<Arc<dyn Fn(P) + Send + Sync>>,
    ) -> Self {
        ShardSet {
            shards: (0..n)
                .map(|_| Shard {
                    queue: match kind {
                        ShardQueueKind::Mutex => ShardQueue::Mutex(Mutex::new(VecDeque::new())),
                        ShardQueueKind::Ring => {
                            ShardQueue::Ring(EventRing::with_capacity(ring_cap))
                        }
                    },
                    cond: Condvar::new(),
                    sleep: Mutex::new(()),
                    parked: AtomicBool::new(false),
                    deactivated: AtomicBool::new(false),
                })
                .collect(),
            active: AtomicUsize::new(n),
            stats: (0..n).map(|_| ShardStat::default()).collect(),
            active_sources: AtomicUsize::new(sources),
            live: AtomicUsize::new(0),
            step_budget: step_budget.max(1),
            max_depth,
            shed_handler,
        }
    }

    /// The home shard for a cursor: session id when the source declares
    /// one (affinity keeps session-scoped locks core-local), otherwise
    /// the flow id (spreads sessionless flows evenly). Hashed over the
    /// *active* routing prefix, never over parked shards — when the
    /// adaptive controller resizes the prefix, sessions simply remap
    /// (affinity is a locality heuristic; the lock manager is global,
    /// so correctness never depends on placement).
    fn home_of(&self, cursor: &FlowCursor) -> usize {
        let active = self.active.load(Ordering::SeqCst);
        shard_index(cursor.session.unwrap_or(cursor.flow_id), active)
    }

    /// Enqueues an event on its home shard (affinity routing: new
    /// flows, I/O completions, `WouldBlock` retries) and wakes the
    /// dispatcher. Session-carrying events count toward the home
    /// shard's `affine` counter.
    fn route_home(&self, ev: Event<P>) {
        let home = self.home_of(&ev.cursor);
        if ev.cursor.session.is_some() {
            self.stats[home].affine.fetch_add(1, Ordering::Relaxed);
        }
        self.enqueue(home, ev);
    }

    /// [`ShardSet::route_home`] without the affinity accounting: a
    /// parked shard handing its backlog to the active prefix is moving
    /// an event that was already counted when it was first routed, so
    /// counting it again would make `affine` exceed the number of
    /// session events actually submitted.
    fn forward_home(&self, ev: Event<P>) {
        let home = self.home_of(&ev.cursor);
        self.enqueue(home, ev);
    }

    /// Routes a whole source batch by home shard: each shard's group is
    /// appended under one queue lock with at most one wake-up, instead
    /// of a lock+notify per event. `scratch` is the caller's reusable
    /// partition buffer (one vector per shard), so the steady state
    /// allocates nothing.
    fn route_home_batch(&self, batch: &mut Vec<(FlowCursor, P)>, scratch: &mut Vec<Vec<Event<P>>>) {
        let n = self.shards.len();
        if scratch.len() < n {
            scratch.resize_with(n, Vec::new);
        }
        for (cursor, payload) in batch.drain(..) {
            let home = self.home_of(&cursor);
            if cursor.session.is_some() {
                self.stats[home].affine.fetch_add(1, Ordering::Relaxed);
            }
            scratch[home].push(Event { cursor, payload });
        }
        for (si, group) in scratch.iter_mut().enumerate().take(n) {
            if group.is_empty() {
                continue;
            }
            if self.max_depth != usize::MAX {
                self.shed_overflow(si, group);
            }
            if !group.is_empty() {
                self.enqueue_batch(si, group);
            }
        }
    }

    /// The one shed point of the runtime: truncates a source group to
    /// the room left under shard `si`'s depth cap, counting every
    /// refused event in [`ShardStat::shed`] and handing its payload to
    /// the shed handler on this (source) thread. The depth read races
    /// concurrent producers, so the cap is approximate by at most one
    /// in-flight batch per producer — acceptable for a load-shedding
    /// threshold, and the dispatcher side only ever *shrinks* depth.
    fn shed_overflow(&self, si: usize, group: &mut Vec<Event<P>>) {
        let depth = match &self.shards[si].queue {
            ShardQueue::Mutex(m) => m.lock().len(),
            ShardQueue::Ring(r) => r.len(),
        };
        let room = self.max_depth.saturating_sub(depth);
        if group.len() <= room {
            return;
        }
        let shed = group.split_off(room);
        let count = shed.len();
        self.stats[si]
            .shed
            .fetch_add(count as u64, Ordering::Relaxed);
        for ev in shed {
            if let Some(handler) = &self.shed_handler {
                handler(ev.payload);
            }
        }
        // The source loop counted these into `live` at submission;
        // retire them here so shutdown drains cleanly.
        if self.live.fetch_sub(count, Ordering::SeqCst) == count {
            self.wake_all();
        }
    }

    /// Appends `group` to shard `si`'s queue in one lock acquisition
    /// (Mutex kind) or one slot-claim CAS per contiguous free run (Ring
    /// kind), waking the dispatcher only if it is parked (a running
    /// shard re-examines its queue anyway — the notify would be a
    /// wasted syscall). Counted in
    /// [`ShardStat::batches`]/`batch_events`.
    fn enqueue_batch(&self, si: usize, group: &mut Vec<Event<P>>) {
        let count = group.len() as u64;
        let shard = &self.shards[si];
        let st = &self.stats[si];
        let depth = match &shard.queue {
            ShardQueue::Mutex(m) => {
                let mut q = m.lock();
                q.extend(group.drain(..));
                let depth = q.len() as u64;
                // Gauge store inside the lock: serialized with the
                // dispatcher's stores, so the final store after a drain
                // is the dispatcher's 0, never a stale producer value.
                st.enqueue(depth);
                let parked = shard.parked.load(Ordering::SeqCst);
                drop(q);
                if parked {
                    shard.cond.notify_one();
                }
                depth
            }
            ShardQueue::Ring(r) => {
                // The push's tail CAS (or the sidecar's length RMW) is
                // the producer-side SeqCst operation of the Dekker
                // handshake; the parked load must come after it.
                let pushed = r.push_batch(group);
                st.ring_claims.fetch_add(pushed.claims, Ordering::Relaxed);
                if pushed.overflowed > 0 {
                    st.overflowed
                        .fetch_add(pushed.overflowed, Ordering::Relaxed);
                }
                let depth = r.len() as u64;
                // High-water only: the depth gauge of a ring shard is
                // single-writer (the owning dispatcher).
                st.observe_depth(depth);
                if shard.parked.load(Ordering::SeqCst) {
                    self.notify_sleeper(si);
                }
                depth
            }
        };
        st.batches.fetch_add(1, Ordering::Relaxed);
        st.batch_events.fetch_add(count, Ordering::Relaxed);
        self.nudge_sibling(si, depth);
    }

    /// Enqueues an event on shard `si` without affinity accounting
    /// (fairness re-queues stay wherever the event is running).
    fn enqueue(&self, si: usize, ev: Event<P>) {
        let shard = &self.shards[si];
        let st = &self.stats[si];
        let depth = match &shard.queue {
            ShardQueue::Mutex(m) => {
                let mut q = m.lock();
                q.push_back(ev);
                let depth = q.len() as u64;
                // In-lock gauge store — see `enqueue_batch`.
                st.enqueue(depth);
                let parked = shard.parked.load(Ordering::SeqCst);
                drop(q);
                if parked {
                    shard.cond.notify_one();
                }
                depth
            }
            ShardQueue::Ring(r) => {
                let pushed = r.push(ev);
                st.ring_claims.fetch_add(pushed.claims, Ordering::Relaxed);
                if pushed.overflowed > 0 {
                    st.overflowed
                        .fetch_add(pushed.overflowed, Ordering::Relaxed);
                }
                let depth = r.len() as u64;
                st.observe_depth(depth);
                if shard.parked.load(Ordering::SeqCst) {
                    self.notify_sleeper(si);
                }
                depth
            }
        };
        self.nudge_sibling(si, depth);
    }

    /// Wakes a ring dispatcher that published `parked == true`:
    /// acquiring (and immediately releasing) the sleep mutex first
    /// means the dispatcher is either before its emptiness re-check
    /// (it will observe our claim — SeqCst Dekker) or already inside
    /// `wait`, where the notify lands; the notify can never fall into
    /// the gap between the two.
    fn notify_sleeper(&self, si: usize) {
        let shard = &self.shards[si];
        drop(shard.sleep.lock());
        shard.cond.notify_one();
    }

    /// Backlog building on one shard: nudge a sibling so an idle thief
    /// notices without waiting out its idle timeout. Unconditional —
    /// unlike the own-shard notify, a sibling's `parked` flag is not
    /// read under that sibling's queue lock here, so gating on it could
    /// miss a shard that is between its empty-check and its park. The
    /// target comes from the *active* routing prefix so the nudge
    /// reaches a dispatcher that will actually steal, not one the
    /// controller parked (`si` itself may be outside the prefix when a
    /// straggler lands on a freshly-parked shard).
    fn nudge_sibling(&self, si: usize, depth: u64) {
        let active = self.active.load(Ordering::SeqCst);
        if depth > 1 && active > 1 {
            let t = (si + 1) % active;
            if t != si {
                self.shards[t].cond.notify_one();
            }
        } else if depth > 0 && si >= active && active >= 1 {
            // A straggler on a parked shard with no thief traffic: make
            // sure at least one active dispatcher (or the parked
            // shard's own forwarding loop, already notified by the
            // enqueue) can pick it up promptly.
            self.shards[si % active].cond.notify_one();
        }
    }

    /// Parks the highest-indexed active shard: shrinks the routing
    /// prefix and flags the shard, both inside that shard's queue lock,
    /// then wakes its dispatcher so it drain-forwards its backlog and
    /// commits the park. Returns the parked index, or `None` at the
    /// `min` floor. Called only from the controller thread (single
    /// writer of `active` and `deactivated`).
    fn park_one(&self, min: usize) -> Option<usize> {
        let active = self.active.load(Ordering::SeqCst);
        if active <= min.max(1) {
            return None;
        }
        let si = active - 1;
        let shard = &self.shards[si];
        match &shard.queue {
            ShardQueue::Mutex(m) => {
                let q = m.lock();
                // Both writes inside the queue lock: an enqueuer that
                // already routed here is either holding the lock now
                // (its event will be drain-forwarded) or will take it
                // later and notify the parked dispatcher's forwarding
                // loop.
                self.active.store(si, Ordering::SeqCst);
                shard.deactivated.store(true, Ordering::SeqCst);
                drop(q);
            }
            ShardQueue::Ring(_) => {
                // No queue lock to serialize under; order alone
                // suffices: shrink the prefix first, then flag. A
                // racing enqueuer either routes by the new prefix (to
                // an active sibling) or lands here — where the
                // dispatcher's forwarding loop (notified below, or via
                // the enqueuer's own parked-flag notify) drains it.
                self.active.store(si, Ordering::SeqCst);
                shard.deactivated.store(true, Ordering::SeqCst);
                drop(shard.sleep.lock());
            }
        }
        shard.cond.notify_one();
        Some(si)
    }

    /// Wakes the lowest-indexed parked shard: clears its flag and grows
    /// the routing prefix (inside the queue lock, mirroring
    /// [`ShardSet::park_one`]), then notifies the dispatcher. Returns
    /// the woken index, or `None` when every shard is already active.
    fn wake_one(&self) -> Option<usize> {
        let active = self.active.load(Ordering::SeqCst);
        if active >= self.shards.len() {
            return None;
        }
        let si = active;
        let shard = &self.shards[si];
        match &shard.queue {
            ShardQueue::Mutex(m) => {
                let q = m.lock();
                shard.deactivated.store(false, Ordering::SeqCst);
                self.active.store(active + 1, Ordering::SeqCst);
                drop(q);
            }
            ShardQueue::Ring(_) => {
                // Mirror of park_one: clear the flag before growing the
                // prefix, so an enqueuer that routes here by the new
                // prefix finds a shard that executes rather than
                // forwards.
                shard.deactivated.store(false, Ordering::SeqCst);
                self.active.store(active + 1, Ordering::SeqCst);
                drop(shard.sleep.lock());
            }
        }
        shard.cond.notify_one();
        Some(si)
    }

    /// Wakes every shard so it can re-check the exit condition.
    fn wake_all(&self) {
        for s in &self.shards {
            s.cond.notify_all();
        }
    }

    /// True when no event exists anywhere and none can be created.
    fn drained(&self) -> bool {
        self.active_sources.load(Ordering::SeqCst) == 0 && self.live.load(Ordering::SeqCst) == 0
    }
}

/// The sharded event-driven runtime. With `shards == 1` this is the
/// paper's single-dispatcher configuration; with more shards, flow
/// execution spreads over cores with session-affine routing and work
/// stealing (see the module docs for the full design).
fn start_event_driven<P: Send + 'static>(
    server: &Arc<FluxServer<P>>,
    shards: usize,
    io_workers: usize,
    adaptive: AdaptivePolicy,
    queue: ShardQueueKind,
    overload: OverloadPolicy,
) -> Vec<JoinHandle<()>> {
    // Operator overrides, mirroring FLUX_PIN/FLUX_POLLER: the env wins
    // over whatever the builder configured.
    let queue = ShardQueueKind::from_env().unwrap_or(queue);
    let ring_cap = std::env::var("FLUX_SHARD_RING_CAP")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(1024);
    let step_budget = std::env::var("FLUX_FUSE_BUDGET")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&b| b > 0)
        .unwrap_or_else(|| server.max_segment_execs().max(1));
    let max_depth = match overload {
        OverloadPolicy::Unbounded => usize::MAX,
        OverloadPolicy::Bounded(cfg) => cfg.max_shard_depth.max(1),
    };
    let (io_tx, io_rx): (Sender<Event<P>>, Receiver<Event<P>>) = channel::unbounded();
    let set = Arc::new(ShardSet::<P>::new(
        shards,
        server.flow_count(),
        queue,
        ring_cap,
        step_budget,
        max_depth,
        server.shed_handler(),
    ));
    server.stats.install_shards(set.stats.clone());

    // Publish this run's overload-control state (reset: a server can be
    // restarted under a different policy).
    let ost = &server.stats.overload;
    ost.enabled
        .store(max_depth != usize::MAX, Ordering::Relaxed);
    ost.depth_cap.store(
        if max_depth == usize::MAX {
            0
        } else {
            max_depth as u64
        },
        Ordering::Relaxed,
    );
    ost.offered.store(0, Ordering::Relaxed);

    // Publish this run's controller state (reset: a server can be
    // restarted under a different policy or shard count).
    let controller = match adaptive {
        AdaptivePolicy::Adaptive(cfg) if shards > 1 => Some(cfg),
        _ => None,
    };
    let ast = &server.stats.adaptive;
    ast.enabled.store(controller.is_some(), Ordering::Relaxed);
    ast.configured_shards
        .store(shards as u64, Ordering::Relaxed);
    ast.active_shards.store(shards as u64, Ordering::Relaxed);
    ast.parks.store(0, Ordering::Relaxed);
    ast.wakes.store(0, Ordering::Relaxed);

    // Core pinning (opt out with FLUX_PIN=0): shard N takes core
    // N mod host_cores, so session-affine queues stay cache-local. The
    // state lands in ServerStats so bench artifacts can record whether
    // a measurement ran pinned.
    let pin = crate::affinity::should_pin();
    server.stats.pinning.enabled.store(pin, Ordering::Relaxed);
    server
        .stats
        .pinning
        .host_cores
        .store(crate::affinity::host_cores() as u64, Ordering::Relaxed);
    server
        .stats
        .pinning
        .pinned_threads
        .store(0, Ordering::Relaxed);

    let mut threads = Vec::new();

    // I/O helper pool: runs exactly one (blocking) node execution, then
    // posts the flow back to its home shard — the paper's asynchronous
    // completion signal, now with core affinity.
    for i in 0..io_workers {
        let srv = server.clone();
        let io_rx = io_rx.clone();
        let set = set.clone();
        threads.push(
            thread::Builder::new()
                .name(format!("flux-io-{i}"))
                .spawn(move || {
                    while let Ok(mut ev) = io_rx.recv() {
                        match srv.step(&mut ev.cursor, &mut ev.payload, LockWait::Block) {
                            Step::Done(_) => {
                                if set.live.fetch_sub(1, Ordering::SeqCst) == 1 {
                                    set.wake_all();
                                }
                            }
                            Step::Continue => set.route_home(ev),
                            Step::WouldBlock => unreachable!("Block mode"),
                        }
                    }
                })
                .expect("spawn io worker"),
        );
    }
    drop(io_rx);

    // Dispatcher shards: each handles events from its own queue in turn.
    // A "unit" is everything up to and including the next node
    // execution, matching the paper's one-event-per-node-input model
    // while keeping bookkeeping vertices (locks, dispatch) out of the
    // queues.
    for si in 0..shards {
        let srv = server.clone();
        let set = set.clone();
        let io_tx = io_tx.clone();
        threads.push(
            thread::Builder::new()
                .name(format!("flux-shard-{si}"))
                .spawn(move || {
                    if pin && crate::affinity::pin_current_thread(si) {
                        srv.stats
                            .pinning
                            .pinned_threads
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    run_shard(&srv, &set, si, &io_tx)
                })
                .expect("spawn dispatcher shard"),
        );
    }
    drop(io_tx);

    for fi in 0..server.flow_count() {
        let submit_set = set.clone();
        let exit_set = set.clone();
        let offered_srv = server.clone();
        // Reusable per-shard partition buffer: a whole source batch is
        // routed with one queue lock per destination shard.
        let mut scratch: Vec<Vec<Event<P>>> = Vec::new();
        threads.push(source_loop_on_exit(
            server,
            fi,
            move |batch: &mut Vec<(FlowCursor, P)>| {
                offered_srv
                    .stats
                    .overload
                    .offered
                    .fetch_add(batch.len() as u64, Ordering::Relaxed);
                submit_set.live.fetch_add(batch.len(), Ordering::SeqCst);
                submit_set.route_home_batch(batch, &mut scratch);
            },
            move || {
                if exit_set.active_sources.fetch_sub(1, Ordering::SeqCst) == 1 {
                    exit_set.wake_all();
                }
            },
        ));
    }

    // The adaptive shard controller (see the module docs): one thread
    // sampling the shard counters into a ShardLoadWindow and issuing
    // park/wake decisions. Exits with the rest of the runtime once the
    // system is drained.
    if let Some(cfg) = controller {
        let srv = server.clone();
        let set = set.clone();
        threads.push(
            thread::Builder::new()
                .name("flux-adaptive".into())
                .spawn(move || run_controller(&srv, &set, cfg))
                .expect("spawn adaptive controller"),
        );
    }
    threads
}

/// The adaptive controller loop: every `cfg.sample_every` it samples
/// per-shard depth/steal/batch counters into a [`ShardLoadWindow`],
/// wakes a parked shard the first tick it observes standing queue depth
/// of at least `cfg.wake_depth`, and parks the highest active shard
/// after `cfg.park_after` consecutive idle ticks (down to
/// `cfg.min_shards`). Park/wake totals and the current active count are
/// published in [`crate::stats::ServerStats::adaptive`].
fn run_controller<P: Send + 'static>(srv: &FluxServer<P>, set: &ShardSet<P>, cfg: AdaptiveConfig) {
    let min = cfg.min_shards.clamp(1, set.shards.len());
    let mut window = ShardLoadWindow::new(
        set.shards.len(),
        (cfg.park_after.max(1) as usize).saturating_mul(2).max(8),
    );
    let ast = &srv.stats.adaptive;
    while !set.drained() {
        thread::sleep(cfg.sample_every.max(Duration::from_micros(50)));
        window.sample(&set.stats);
        if window.queued_now() >= cfg.wake_depth {
            // Burst: events are standing in queues faster than the
            // active dispatchers drain them. Wake one parked shard per
            // tick (a sustained burst ramps the whole set back up).
            if set.wake_one().is_some() {
                ast.wakes.fetch_add(1, Ordering::Relaxed);
                ast.active_shards
                    .store(set.active.load(Ordering::SeqCst) as u64, Ordering::Relaxed);
            }
        } else if window.idle_streak(cfg.park_below) >= cfg.park_after as usize
            && set.park_one(min).is_some()
        {
            ast.parks.fetch_add(1, Ordering::Relaxed);
            ast.active_shards
                .store(set.active.load(Ordering::SeqCst) as u64, Ordering::Relaxed);
            // Demand a fresh full idle window before the next park so a
            // long lull ramps down gradually, not instantly.
            window.reset();
        }
    }
}

/// One dispatcher shard's main loop: dispatches on the queue kind
/// every shard of this run was built with.
fn run_shard<P: Send + 'static>(
    srv: &FluxServer<P>,
    set: &ShardSet<P>,
    si: usize,
    io_tx: &Sender<Event<P>>,
) {
    match &set.shards[si].queue {
        ShardQueue::Mutex(_) => run_shard_mutex(srv, set, si, io_tx),
        ShardQueue::Ring(_) => run_shard_ring(srv, set, si, io_tx),
    }
}

/// The dispatcher loop over the classic mutexed deque
/// ([`ShardQueueKind::Mutex`]).
fn run_shard_mutex<P: Send + 'static>(
    srv: &FluxServer<P>,
    set: &ShardSet<P>,
    si: usize,
    io_tx: &Sender<Event<P>>,
) {
    let stats = &set.stats;
    let n = set.shards.len();
    let mut blocked_streak = 0usize;
    loop {
        // A shard the controller deactivated stops executing: it
        // forwards its backlog to the active prefix, commits the park,
        // and sleeps until woken (or the system drains).
        if set.shards[si].deactivated.load(Ordering::SeqCst) {
            park_dispatcher(set, si);
            if set.drained() {
                return;
            }
            continue;
        }
        // Own queue first, then steal from a sibling's queue, then
        // wait. A steal takes the oldest *half* of the victim's queue
        // (front-stealing shares the victim's one lock and preserves
        // FIFO latency ordering under skew): the oldest event executes
        // immediately and the rest move to the thief's own queue, so a
        // saturated shard sheds backlog in one lock acquisition instead
        // of one per event.
        let mut next = {
            let mut q = set.shards[si].queue.as_mutex().lock();
            let ev = q.pop_front();
            if ev.is_some() {
                stats[si].depth.store(q.len() as u64, Ordering::Relaxed);
                stats[si].executed.fetch_add(1, Ordering::Relaxed);
            }
            ev
        };
        if next.is_none() && n > 1 {
            for k in 1..n {
                let j = (si + k) % n;
                let mut qj = set.shards[j].queue.as_mutex().lock();
                if let Some(ev) = qj.pop_front() {
                    // Half the victim's queue, rounded up to include
                    // the event executing now.
                    let extra = (qj.len() + 1).div_ceil(2).saturating_sub(1);
                    let batch: Vec<Event<P>> = qj.drain(..extra).collect();
                    stats[j].depth.store(qj.len() as u64, Ordering::Relaxed);
                    drop(qj);
                    stats[si].stolen.fetch_add(1, Ordering::Relaxed);
                    if !batch.is_empty() {
                        stats[si]
                            .stolen_batch
                            .fetch_add(batch.len() as u64, Ordering::Relaxed);
                        let mut q = set.shards[si].queue.as_mutex().lock();
                        // Prepend: events routed here between the two
                        // lock acquisitions are younger than the stolen
                        // batch, so the batch goes in front to preserve
                        // FIFO latency ordering.
                        for ev in batch.into_iter().rev() {
                            q.push_front(ev);
                        }
                        let depth = q.len() as u64;
                        stats[si].enqueue(depth);
                        drop(q);
                        // The thief is busy with `ev`: nudge a sibling
                        // so another idle shard notices the transferred
                        // backlog without waiting out its idle timeout
                        // (same rationale as ShardSet::enqueue's nudge,
                        // and unconditional for the same reason as
                        // `nudge_sibling` — the sibling's parked flag
                        // is not readable race-free from here). Pick
                        // from the active routing prefix (a parked
                        // dispatcher would just forward, not steal) and
                        // skip the victim `j` — it is saturated, not
                        // idle — which with 2 active shards leaves no
                        // one to nudge.
                        let active = set.active.load(Ordering::SeqCst).max(1);
                        let t = (si + 1) % active;
                        let t = if t == j { (si + 2) % active } else { t };
                        if t != si && t != j {
                            set.shards[t].cond.notify_one();
                        }
                    }
                    next = Some(ev);
                    break;
                }
            }
        }
        let Some(mut ev) = next else {
            if set.drained() {
                return;
            }
            let mut q = set.shards[si].queue.as_mutex().lock();
            if q.is_empty() && !set.drained() {
                // Wake-ups come from submissions to this shard, backlog
                // nudges from busy siblings, and drain/shutdown
                // broadcasts; the timeout is only a backstop, so idle
                // shards cost ~100 wakeups/s, not a hot poll. The
                // parked flag (set and cleared under the queue lock)
                // tells enqueuers the notify is actually needed —
                // while it is false the shard is provably awake and
                // will re-examine its queue, so they skip the syscall.
                set.shards[si].parked.store(true, Ordering::SeqCst);
                set.shards[si]
                    .cond
                    .wait_for(&mut q, Duration::from_millis(10));
                set.shards[si].parked.store(false, Ordering::SeqCst);
            }
            continue;
        };
        // Topic-keyed pinning: a pinned event executes only on its
        // session's current home shard. Stealing or an adaptive prefix
        // resize may surface it here instead — forward it home rather
        // than running session-keyed state off its shard.
        if ev.cursor.pinned && set.home_of(&ev.cursor) != si {
            stats[si].pinned_rerouted.fetch_add(1, Ordering::Relaxed);
            set.forward_home(ev);
            continue;
        }
        let budget = set.step_budget;
        let mut spent = 0usize;
        loop {
            if srv.at_blocking_exec(&ev.cursor) {
                // The event stays live while parked in the I/O pool.
                let _ = io_tx.send(ev);
                blocked_streak = 0;
                break;
            }
            // Fairness: each queue turn may spend `budget` node
            // executions (a fused segment spends its whole length at
            // once). An event that has spent anything and whose next
            // step would overdraw is re-queued locally — local, not
            // affinity routing, so a stolen event keeps running on the
            // thief. The first execution is always allowed, even when
            // a single segment exceeds the budget.
            let cost = srv.exec_cost(&ev.cursor);
            if cost > 0 && spent > 0 && spent + cost > budget {
                set.enqueue(si, ev);
                break;
            }
            match srv.step(&mut ev.cursor, &mut ev.payload, LockWait::Try) {
                Step::Continue => {
                    blocked_streak = 0;
                    let fused = ev.cursor.take_fused_execs();
                    if fused > 0 {
                        set.stats[si]
                            .fused_execs
                            .fetch_add(fused, Ordering::Relaxed);
                        spent += fused as usize;
                    } else {
                        spent += cost;
                    }
                }
                Step::Done(_) => {
                    blocked_streak = 0;
                    if set.live.fetch_sub(1, Ordering::SeqCst) == 1 {
                        set.wake_all();
                    }
                    break;
                }
                Step::WouldBlock => {
                    blocked_streak += 1;
                    // Every queued event may be waiting on a lock held
                    // by an off-loaded flow; back off instead of
                    // spinning.
                    let depth = set.shards[si].queue.as_mutex().lock().len();
                    if blocked_streak > depth.max(4) {
                        thread::sleep(Duration::from_micros(100));
                    }
                    // Retry on the cursor's home shard: a blocked
                    // session flow waits where its lock holder runs
                    // instead of ping-ponging between thieves.
                    set.route_home(ev);
                    break;
                }
            }
        }
    }
}

/// The dispatcher loop over the lock-free ring
/// ([`ShardQueueKind::Ring`]).
///
/// Events are batch-consumed from the shard's own ring (then the
/// overflow sidecar, then a sibling steal) into a thread-local *run
/// buffer* and executed from there. The buffer is what preserves PR 3's
/// FIFO steal discipline without a deque to prepend into: a steal
/// happens only when the local buffer, own ring and sidecar are all
/// empty, so a stolen (older) run always finishes executing before any
/// younger own-ring arrival is popped.
fn run_shard_ring<P: Send + 'static>(
    srv: &FluxServer<P>,
    set: &ShardSet<P>,
    si: usize,
    io_tx: &Sender<Event<P>>,
) {
    /// Events batch-consumed per refill: bounds how long a sibling's
    /// published run is held in one claim (steal granularity) without
    /// giving up batching.
    const RUN: usize = 64;
    let stats = &set.stats;
    let n = set.shards.len();
    let shard = &set.shards[si];
    let ring = shard.queue.as_ring();
    let mut local: VecDeque<Event<P>> = VecDeque::new();
    let mut blocked_streak = 0usize;
    loop {
        if shard.deactivated.load(Ordering::SeqCst) {
            park_dispatcher_ring(set, si, &mut local);
            if set.drained() {
                return;
            }
            continue;
        }
        if local.is_empty() {
            // Refill order is the FIFO discipline: own published run,
            // then the sidecar (swapped only when the ring is empty —
            // EventRing::take_overflow enforces that), then steal.
            let mut got = ring.pop_run(&mut local, RUN);
            if got == 0 {
                got = ring.take_overflow(&mut local);
            }
            if got == 0 && n > 1 {
                for k in 1..n {
                    let j = (si + k) % n;
                    let rj = set.shards[j].queue.as_ring();
                    // Scan up to half the ring: steal_run halves the
                    // scanned run again, so a deep victim sheds up to a
                    // quarter of its capacity per steal — bulk transfer
                    // comparable to the mutex thief's take-half, not
                    // RUN-sized nibbles (which made steal-heavy shard
                    // counts measurably slower than the mutex path).
                    let stolen = rj.steal_run(&mut local, (rj.capacity() / 2).max(RUN));
                    if stolen > 0 {
                        // No store of the victim's depth gauge: it is
                        // single-writer (shard j's dispatcher refreshes
                        // it on its next refill) — a thief's store here
                        // could land after the victim's final 0 and
                        // leave a stale non-zero gauge behind.
                        stats[si].stolen.fetch_add(1, Ordering::Relaxed);
                        if stolen > 1 {
                            stats[si]
                                .stolen_batch
                                .fetch_add(stolen as u64 - 1, Ordering::Relaxed);
                        }
                        // The thief is busy with the stolen run: nudge
                        // another active sibling at the transferred
                        // backlog, as the mutex steal path does.
                        let active = set.active.load(Ordering::SeqCst).max(1);
                        let t = (si + 1) % active;
                        let t = if t == j { (si + 2) % active } else { t };
                        if t != si && t != j {
                            set.shards[t].cond.notify_one();
                        }
                        break;
                    }
                }
            }
            stats[si]
                .depth
                .store((ring.len() + local.len()) as u64, Ordering::Relaxed);
        }
        let Some(mut ev) = local.pop_front() else {
            if set.drained() {
                return;
            }
            // Park protocol (SeqCst Dekker, see crate::ring docs):
            // publish parked under the sleep mutex, then re-check for
            // claims; a producer's claim RMW precedes its parked load,
            // so one side always sees the other, and notify_sleeper's
            // lock acquisition means a notify can't fall between this
            // re-check and the wait.
            let mut g = shard.sleep.lock();
            shard.parked.store(true, Ordering::SeqCst);
            if !ring.is_empty() || set.drained() {
                shard.parked.store(false, Ordering::SeqCst);
                drop(g);
                // A claimed-but-unpublished slot shows up as non-empty
                // with nothing consumable yet; yield while the producer
                // finishes publishing.
                thread::yield_now();
                continue;
            }
            shard.cond.wait_for(&mut g, Duration::from_millis(10));
            shard.parked.store(false, Ordering::SeqCst);
            drop(g);
            continue;
        };
        // Topic-keyed pinning (see run_shard_mutex): the ring's
        // steal_run claims contiguous runs and cannot skip individual
        // events, so the execute-time forward is the uniform
        // enforcement point for both queue kinds.
        if ev.cursor.pinned && set.home_of(&ev.cursor) != si {
            stats[si].pinned_rerouted.fetch_add(1, Ordering::Relaxed);
            set.forward_home(ev);
            continue;
        }
        // "Events this dispatcher ran" — includes stolen and sidecar
        // events (see ShardStat::executed docs).
        stats[si].executed.fetch_add(1, Ordering::Relaxed);
        let budget = set.step_budget;
        let mut spent = 0usize;
        loop {
            if srv.at_blocking_exec(&ev.cursor) {
                let _ = io_tx.send(ev);
                blocked_streak = 0;
                break;
            }
            // Fairness budget per queue turn (see run_shard_mutex):
            // re-queue onto this shard's own ring, not affinity
            // routing — a stolen event keeps running on the thief.
            let cost = srv.exec_cost(&ev.cursor);
            if cost > 0 && spent > 0 && spent + cost > budget {
                set.enqueue(si, ev);
                break;
            }
            match srv.step(&mut ev.cursor, &mut ev.payload, LockWait::Try) {
                Step::Continue => {
                    blocked_streak = 0;
                    let fused = ev.cursor.take_fused_execs();
                    if fused > 0 {
                        stats[si].fused_execs.fetch_add(fused, Ordering::Relaxed);
                        spent += fused as usize;
                    } else {
                        spent += cost;
                    }
                }
                Step::Done(_) => {
                    blocked_streak = 0;
                    if set.live.fetch_sub(1, Ordering::SeqCst) == 1 {
                        set.wake_all();
                    }
                    break;
                }
                Step::WouldBlock => {
                    blocked_streak += 1;
                    let depth = ring.len() + local.len();
                    if blocked_streak > depth.max(4) {
                        thread::sleep(Duration::from_micros(100));
                    }
                    set.route_home(ev);
                    break;
                }
            }
        }
    }
}

/// One controller-parked dispatcher: the park protocol's shard side.
///
/// Before the park commits (i.e. before this thread first blocks), the
/// whole queue is *drain-forwarded*: every event re-routes through
/// [`ShardSet::route_home`], whose routing prefix no longer includes
/// this shard, so it lands on an active sibling and wakes it. While
/// parked, the dispatcher keeps acting as a forwarder — an enqueuer
/// that raced the park (it computed its home shard from the old prefix)
/// notifies this shard's condvar like any other enqueue, and the
/// straggler is forwarded the same way. Events are therefore never
/// *executed* on a deactivated shard, and never stranded on one either.
/// Returns when the controller reactivates the shard or the system
/// drains.
fn park_dispatcher<P: Send + 'static>(set: &ShardSet<P>, si: usize) {
    let shard = &set.shards[si];
    loop {
        // Drain-forward: pop one event at a time so the queue lock is
        // never held across route_home (which takes sibling locks).
        // Re-check the flag before every pop — once the controller
        // re-activates this shard, its index is back in the routing
        // prefix and a forward could land right back here, so
        // forwarding must stop (the remaining queue simply executes
        // normally).
        while shard.deactivated.load(Ordering::SeqCst) {
            let ev = {
                let mut q = shard.queue.as_mutex().lock();
                let ev = q.pop_front();
                set.stats[si].depth.store(q.len() as u64, Ordering::Relaxed);
                ev
            };
            let Some(ev) = ev else { break };
            set.stats[si].forwarded.fetch_add(1, Ordering::Relaxed);
            set.forward_home(ev);
        }
        if !shard.deactivated.load(Ordering::SeqCst) || set.drained() {
            return;
        }
        let mut q = shard.queue.as_mutex().lock();
        if q.is_empty() && shard.deactivated.load(Ordering::SeqCst) && !set.drained() {
            // Same parked-flag discipline as the idle wait in
            // `run_shard_mutex`: enqueuers and the controller notify
            // through the condvar; the timeout is a drain/shutdown
            // backstop.
            shard.parked.store(true, Ordering::SeqCst);
            shard.cond.wait_for(&mut q, Duration::from_millis(50));
            shard.parked.store(false, Ordering::SeqCst);
        }
    }
}

/// [`park_dispatcher`] for the ring queue kind: forward-drains the
/// local run buffer, the ring and the overflow sidecar through
/// [`ShardSet::forward_home`], re-checking the `deactivated` flag per
/// event (once the controller reactivates this shard a forward could
/// land right back here, so forwarding must stop — any remainder in
/// `local` simply executes normally on return). Waits parked on the
/// sleep mutex between stragglers, with the same SeqCst Dekker re-check
/// as the idle wait in [`run_shard_ring`].
fn park_dispatcher_ring<P: Send + 'static>(
    set: &ShardSet<P>,
    si: usize,
    local: &mut VecDeque<Event<P>>,
) {
    let shard = &set.shards[si];
    let ring = shard.queue.as_ring();
    loop {
        while shard.deactivated.load(Ordering::SeqCst) {
            if local.is_empty() && ring.pop_run(local, 64) == 0 && ring.take_overflow(local) == 0 {
                break; // nothing forwardable right now
            }
            if let Some(ev) = local.pop_front() {
                set.stats[si].forwarded.fetch_add(1, Ordering::Relaxed);
                set.forward_home(ev);
            }
            set.stats[si]
                .depth
                .store((ring.len() + local.len()) as u64, Ordering::Relaxed);
        }
        if !shard.deactivated.load(Ordering::SeqCst) || set.drained() {
            // Refresh the gauge before handing back (or exiting): the
            // dispatch loop stores it only on refills, so it may still
            // show the size of a local run that has since executed.
            set.stats[si]
                .depth
                .store((ring.len() + local.len()) as u64, Ordering::Relaxed);
            return;
        }
        let mut g = shard.sleep.lock();
        shard.parked.store(true, Ordering::SeqCst);
        if !ring.is_empty() || !shard.deactivated.load(Ordering::SeqCst) || set.drained() {
            // A straggler claimed a slot (or the controller already
            // reactivated us): don't sleep on it. The claim may not be
            // published yet — yield and retry the forward loop.
            shard.parked.store(false, Ordering::SeqCst);
            drop(g);
            thread::yield_now();
            continue;
        }
        shard.cond.wait_for(&mut g, Duration::from_millis(50));
        shard.parked.store(false, Ordering::SeqCst);
    }
}

/// The SEDA-style staged runtime: one queue and worker pool per concrete
/// node. A flow is routed (through lock and dispatch vertices) to the
/// queue of the next node it must execute; a stage worker runs exactly
/// that node, then routes the flow onward.
fn start_staged<P: Send + 'static>(
    server: &Arc<FluxServer<P>>,
    stage_workers: usize,
) -> Vec<JoinHandle<()>> {
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicUsize, Ordering};

    // One stage per concrete node reachable from any flow.
    let mut senders: HashMap<usize, Sender<(FlowCursor, P)>> = HashMap::new();
    let mut receivers: Vec<(usize, Receiver<(FlowCursor, P)>)> = Vec::new();
    for flow in &server.program().flows {
        for (_, node) in flow.flat.execs() {
            senders.entry(node).or_insert_with(|| {
                let (tx, rx) = channel::unbounded();
                receivers.push((node, rx));
                tx
            });
        }
    }
    let senders = Arc::new(senders);
    let active_sources = Arc::new(AtomicUsize::new(server.flow_count()));
    let in_flight = Arc::new(AtomicUsize::new(0));

    // Routes a flow to its next stage, running lock/dispatch vertices
    // inline; accounts for completion when the flow ends between stages.
    fn route<P: Send + 'static>(
        srv: &FluxServer<P>,
        senders: &HashMap<usize, Sender<(FlowCursor, P)>>,
        in_flight: &std::sync::atomic::AtomicUsize,
        mut cursor: FlowCursor,
        mut payload: P,
    ) {
        loop {
            if let Some(node) = srv.exec_node(&cursor) {
                let _ = senders[&node].send((cursor, payload));
                return;
            }
            match srv.step(&mut cursor, &mut payload, LockWait::Block) {
                Step::Continue => {}
                Step::Done(_) => {
                    in_flight.fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
                    return;
                }
                Step::WouldBlock => unreachable!("Block mode"),
            }
        }
    }

    let mut threads = Vec::new();
    for (node, rx) in receivers {
        for w in 0..stage_workers {
            let srv = server.clone();
            let rx = rx.clone();
            let senders = senders.clone();
            let active_sources = active_sources.clone();
            let in_flight = in_flight.clone();
            let name = format!("flux-stage-{}-{w}", srv.program().graph.name(node));
            threads.push(
                thread::Builder::new()
                    .name(name)
                    .spawn(move || loop {
                        match rx.recv_timeout(Duration::from_millis(5)) {
                            Ok((mut cursor, mut payload)) => {
                                // Exactly one node execution, then onward.
                                match srv.step(&mut cursor, &mut payload, LockWait::Block) {
                                    Step::Done(_) => {
                                        in_flight.fetch_sub(1, Ordering::SeqCst);
                                    }
                                    Step::Continue => {
                                        route(&srv, &senders, &in_flight, cursor, payload);
                                    }
                                    Step::WouldBlock => unreachable!("Block mode"),
                                }
                            }
                            Err(channel::RecvTimeoutError::Timeout) => {
                                if active_sources.load(Ordering::SeqCst) == 0
                                    && in_flight.load(Ordering::SeqCst) == 0
                                {
                                    return;
                                }
                            }
                            Err(channel::RecvTimeoutError::Disconnected) => return,
                        }
                    })
                    .expect("spawn stage worker"),
            );
        }
    }

    for fi in 0..server.flow_count() {
        let srv = server.clone();
        let senders = senders.clone();
        let in_flight = in_flight.clone();
        threads.push(source_loop_counted(
            server,
            fi,
            move |batch: &mut Vec<(FlowCursor, P)>| {
                for (cursor, payload) in batch.drain(..) {
                    in_flight.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                    route(&srv, &senders, &in_flight, cursor, payload);
                }
            },
            Some(active_sources.clone()),
        ));
    }
    threads
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{NodeOutcome, NodeRegistry, SourceOutcome};
    use parking_lot::Mutex;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[derive(Default)]
    struct P {
        n: u64,
        valid: bool,
    }

    /// A source that produces `total` flows, then shuts down.
    fn counting_registry(total: u64, sum: Arc<AtomicU64>) -> NodeRegistry<P> {
        let mut r = NodeRegistry::new();
        let produced = AtomicU64::new(0);
        r.source("Listen", move || {
            let i = produced.fetch_add(1, Ordering::SeqCst);
            if i >= total {
                SourceOutcome::Shutdown
            } else {
                SourceOutcome::New(P {
                    n: i,
                    valid: i.is_multiple_of(2),
                })
            }
        });
        r.node("Parse", |_| NodeOutcome::Ok);
        let s1 = sum.clone();
        r.node("Respond", move |p: &mut P| {
            s1.fetch_add(p.n, Ordering::SeqCst);
            NodeOutcome::Ok
        });
        r.node("Retry", |_| NodeOutcome::Ok);
        r.node("Close", |_| NodeOutcome::Ok);
        r.node("Oops", |_| NodeOutcome::Ok);
        r.predicate("IsValid", |p: &P| p.valid);
        r
    }

    fn run_on(kind: RuntimeKind, total: u64) -> (u64, u64) {
        let program = flux_core::compile(flux_core::fixtures::MINI_PIPELINE).unwrap();
        let sum = Arc::new(AtomicU64::new(0));
        let server = Arc::new(
            crate::server::FluxServer::new(program, counting_registry(total, sum.clone())).unwrap(),
        );
        let handle = start(server.clone(), kind);
        handle.join();
        // Event runtime: the dispatcher drains after sources exit; wait
        // for completion counts.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while server.stats.finished() < total && std::time::Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
        (server.stats.finished(), sum.load(Ordering::SeqCst))
    }

    #[test]
    fn thread_per_flow_completes_all() {
        let (done, sum) = run_on(RuntimeKind::ThreadPerFlow, 100);
        assert_eq!(done, 100);
        assert_eq!(sum, (0..100).sum::<u64>());
    }

    #[test]
    fn thread_pool_completes_all() {
        let (done, sum) = run_on(RuntimeKind::ThreadPool { workers: 4 }, 500);
        assert_eq!(done, 500);
        assert_eq!(sum, (0..500).sum::<u64>());
    }

    #[test]
    fn event_driven_completes_all() {
        let (done, sum) = run_on(RuntimeKind::event_driven_sharded(1, 2), 500);
        assert_eq!(done, 500);
        assert_eq!(sum, (0..500).sum::<u64>());
    }

    #[test]
    fn event_driven_sharded_completes_all() {
        for shards in [2, 4, 8] {
            let (done, sum) = run_on(RuntimeKind::event_driven_sharded(shards, 2), 500);
            assert_eq!(done, 500, "shards={shards}");
            assert_eq!(sum, (0..500).sum::<u64>(), "shards={shards}");
        }
    }

    #[test]
    fn event_driven_ring_completes_all() {
        for shards in [1, 2, 4] {
            let kind =
                RuntimeKind::event_driven_sharded(shards, 2).shard_queue(ShardQueueKind::Ring);
            let (done, sum) = run_on(kind, 500);
            assert_eq!(done, 500, "ring shards={shards}");
            assert_eq!(sum, (0..500).sum::<u64>(), "ring shards={shards}");
        }
    }

    #[test]
    fn event_driven_ring_adaptive_completes_all() {
        let kind = RuntimeKind::event_driven_adaptive(4, 2).shard_queue(ShardQueueKind::Ring);
        let (done, sum) = run_on(kind, 500);
        assert_eq!(done, 500);
        assert_eq!(sum, (0..500).sum::<u64>());
    }

    #[test]
    fn staged_completes_all() {
        let (done, sum) = run_on(RuntimeKind::Staged { stage_workers: 2 }, 500);
        assert_eq!(done, 500);
        assert_eq!(sum, (0..500).sum::<u64>());
    }

    /// The staged runtime actually stages: with fusion off, consecutive
    /// nodes of one flow run on different stage threads. (With fusion on,
    /// a fused segment deliberately runs whole on its head's stage.)
    #[test]
    fn staged_runs_nodes_on_stage_threads() {
        const SRC: &str = "
            Gen () => (int v);
            A (int v) => (int v);
            B (int v) => ();
            Flow = A -> B;
            source Gen => Flow;
        ";
        let program = flux_core::compile(SRC).unwrap();
        let mut r: NodeRegistry<()> = NodeRegistry::new();
        let produced = AtomicU64::new(0);
        r.source("Gen", move || {
            if produced.fetch_add(1, Ordering::SeqCst) >= 50 {
                SourceOutcome::Shutdown
            } else {
                SourceOutcome::New(())
            }
        });
        let names: Arc<Mutex<std::collections::HashSet<String>>> =
            Arc::new(Mutex::new(std::collections::HashSet::new()));
        for node in ["A", "B"] {
            let names = names.clone();
            r.node(node, move |_| {
                names
                    .lock()
                    .insert(thread::current().name().unwrap_or("?").to_string());
                NodeOutcome::Ok
            });
        }
        let server = Arc::new(
            crate::server::FluxServer::with_options(
                program,
                r,
                false,
                crate::server::FusionMode::Off,
            )
            .unwrap(),
        );
        let handle = start(server.clone(), RuntimeKind::Staged { stage_workers: 1 });
        handle.join();
        assert_eq!(server.stats.finished(), 50);
        let names = names.lock();
        assert!(
            names.iter().any(|n| n.starts_with("flux-stage-A")),
            "{names:?}"
        );
        assert!(
            names.iter().any(|n| n.starts_with("flux-stage-B")),
            "{names:?}"
        );
    }

    /// Atomicity constraints must hold on every runtime: concurrent
    /// increments of an unsynchronized counter stay exact because the
    /// node is constrained.
    #[test]
    fn constraints_serialize_on_all_runtimes() {
        const SRC: &str = "
            Gen () => (int v);
            Bump (int v) => (int v);
            Done (int v) => ();
            Flow = Bump -> Done;
            source Gen => Flow;
            atomic Bump: {counter};
        ";
        for kind in [
            RuntimeKind::ThreadPerFlow,
            RuntimeKind::ThreadPool { workers: 8 },
            RuntimeKind::event_driven_sharded(1, 4),
            RuntimeKind::event_driven_sharded(4, 4),
            RuntimeKind::event_driven_adaptive(4, 4),
            RuntimeKind::event_driven_sharded(4, 4).shard_queue(ShardQueueKind::Ring),
            RuntimeKind::event_driven_adaptive(4, 4).shard_queue(ShardQueueKind::Ring),
            RuntimeKind::Staged { stage_workers: 4 },
        ] {
            let program = flux_core::compile(SRC).unwrap();
            let total = 150u64;
            // A deliberately racy counter: read, yield, write.
            let racy = Arc::new(Mutex::new(0u64));
            let mut r: NodeRegistry<()> = NodeRegistry::new();
            let produced = AtomicU64::new(0);
            r.source("Gen", move || {
                if produced.fetch_add(1, Ordering::SeqCst) >= total {
                    SourceOutcome::Shutdown
                } else {
                    SourceOutcome::New(())
                }
            });
            let racy2 = racy.clone();
            // Mark blocking so the event runtime runs these concurrently
            // on the I/O pool — the constraint must still serialize them.
            r.node_blocking("Bump", move |_| {
                let v = *racy2.lock();
                thread::yield_now();
                *racy2.lock() = v + 1;
                NodeOutcome::Ok
            });
            r.node("Done", |_| NodeOutcome::Ok);
            let server = Arc::new(crate::server::FluxServer::new(program, r).unwrap());
            let handle = start(server.clone(), kind);
            handle.join();
            let deadline = std::time::Instant::now() + Duration::from_secs(10);
            while server.stats.finished() < total && std::time::Instant::now() < deadline {
                thread::sleep(Duration::from_millis(5));
            }
            assert_eq!(server.stats.finished(), total, "{kind:?}");
            assert_eq!(*racy.lock(), total, "{kind:?} must serialize Bump");
        }
    }

    /// The §3.1.1 program must not deadlock even with flows hammering
    /// both lock orders concurrently (the compiler hoisted `x` onto `C`).
    #[test]
    fn deadlock_example_does_not_deadlock() {
        let program = flux_core::compile(flux_core::fixtures::DEADLOCK_EXAMPLE).unwrap();
        let total = 200u64;
        let mut r: NodeRegistry<()> = NodeRegistry::new();
        for src in ["SrcA", "SrcC"] {
            let produced = AtomicU64::new(0);
            r.source(src, move || {
                if produced.fetch_add(1, Ordering::SeqCst) >= total {
                    SourceOutcome::Shutdown
                } else {
                    SourceOutcome::New(())
                }
            });
        }
        for n in ["B", "D"] {
            r.node(n, |_| {
                thread::yield_now();
                NodeOutcome::Ok
            });
        }
        let server = Arc::new(crate::server::FluxServer::new(program, r).unwrap());
        let handle = start(server.clone(), RuntimeKind::ThreadPool { workers: 8 });
        // If lock ordering were wrong this join would hang; the harness
        // timeout is the failure signal.
        handle.join();
        assert_eq!(server.stats.finished(), total * 2);
    }
}
