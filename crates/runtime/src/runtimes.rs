//! The three runtime systems of paper §3.2.
//!
//! * **Thread-per-flow** — "a thread is created for every different data
//!   flow"; high overhead under load, included as the paper's naïve
//!   baseline.
//! * **Thread-pool** — "a fixed number of threads are allocated to
//!   service data flows. If all threads are occupied when a new data
//!   flow is created, the data flow is queued and handled in first-in
//!   first-out order."
//! * **Event-driven** — "every input to a functional node is treated as
//!   an event ... handled in turn by a single thread." Nodes flagged as
//!   blocking are off-loaded to an I/O helper pool that posts a
//!   completion event back to the queue — the moral equivalent of the
//!   paper's LD_PRELOAD shim plus its select-based callback-simulation
//!   thread.
//! * **Staged** — a SEDA-style runtime (paper §3.2.3 reports a prototype
//!   "that targets Java, using both SEDA and a custom runtime
//!   implementation"): every concrete node is a stage with its own FIFO
//!   queue and worker pool; flows hop from stage to stage, giving
//!   cohort-style batching of each node's executions.
//!
//! Because Flux programs are runtime-independent, the same
//! [`FluxServer`] value runs unchanged on any of the four.

use crate::server::{FlowCursor, FluxServer, LockWait, Step};
use crossbeam::channel::{self, Receiver, Sender};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Which runtime to launch (paper §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimeKind {
    /// One OS thread per flow.
    ThreadPerFlow,
    /// Fixed worker pool with a FIFO queue.
    ThreadPool { workers: usize },
    /// Single dispatcher thread; blocking nodes off-loaded to `io_workers`
    /// helpers.
    EventDriven { io_workers: usize },
    /// SEDA-style: one FIFO queue + `stage_workers` threads per concrete
    /// node (paper §3.2.3's SEDA target).
    Staged { stage_workers: usize },
}

/// A running server: join it or stop it.
pub struct ServerHandle<P: Send + 'static> {
    server: Arc<FluxServer<P>>,
    threads: Vec<JoinHandle<()>>,
}

impl<P: Send + 'static> ServerHandle<P> {
    /// The underlying server (stats, profiler, shutdown).
    pub fn server(&self) -> &Arc<FluxServer<P>> {
        &self.server
    }

    /// Requests shutdown and joins every runtime thread. Source
    /// implementations must return periodically (`SourceOutcome::Skip`
    /// on a timeout) for this to complete.
    pub fn stop(self) {
        self.server.request_shutdown();
        for t in self.threads {
            let _ = t.join();
        }
    }

    /// Blocks until all runtime threads exit on their own (sources
    /// returned `Shutdown`).
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }
}

/// Starts `server` on the chosen runtime.
pub fn start<P: Send + 'static>(
    server: Arc<FluxServer<P>>,
    kind: RuntimeKind,
) -> ServerHandle<P> {
    let threads = match kind {
        RuntimeKind::ThreadPerFlow => start_thread_per_flow(&server),
        RuntimeKind::ThreadPool { workers } => start_thread_pool(&server, workers.max(1)),
        RuntimeKind::EventDriven { io_workers } => start_event_driven(&server, io_workers.max(1)),
        RuntimeKind::Staged { stage_workers } => start_staged(&server, stage_workers.max(1)),
    };
    ServerHandle { server, threads }
}

fn source_loop<P: Send + 'static>(
    server: &Arc<FluxServer<P>>,
    fi: usize,
    submit: impl Fn(FlowCursor, P) + Send + 'static,
) -> JoinHandle<()> {
    source_loop_counted(server, fi, submit, None)
}

fn source_loop_counted<P: Send + 'static>(
    server: &Arc<FluxServer<P>>,
    fi: usize,
    submit: impl Fn(FlowCursor, P) + Send + 'static,
    active: Option<Arc<std::sync::atomic::AtomicUsize>>,
) -> JoinHandle<()> {
    let server = server.clone();
    thread::Builder::new()
        .name(format!("flux-source-{}", server.source_name(fi)))
        .spawn(move || {
            loop {
                match server.poll_source(fi) {
                    None => break,
                    Some(None) => continue,
                    Some(Some((cursor, payload))) => submit(cursor, payload),
                }
            }
            if let Some(active) = active {
                active.fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
            }
        })
        .expect("spawn source thread")
}

fn start_thread_per_flow<P: Send + 'static>(server: &Arc<FluxServer<P>>) -> Vec<JoinHandle<()>> {
    (0..server.flow_count())
        .map(|fi| {
            let srv = server.clone();
            source_loop(server, fi, move |cursor, payload| {
                let srv = srv.clone();
                // One thread per flow, as in the paper's naive runtime.
                let _ = thread::Builder::new()
                    .name("flux-flow".into())
                    .spawn(move || {
                        srv.run_flow(cursor, payload);
                    });
            })
        })
        .collect()
}

fn start_thread_pool<P: Send + 'static>(
    server: &Arc<FluxServer<P>>,
    workers: usize,
) -> Vec<JoinHandle<()>> {
    let (tx, rx): (Sender<(FlowCursor, P)>, Receiver<(FlowCursor, P)>) = channel::unbounded();
    let mut threads: Vec<JoinHandle<()>> = (0..workers)
        .map(|i| {
            let srv = server.clone();
            let rx = rx.clone();
            thread::Builder::new()
                .name(format!("flux-worker-{i}"))
                .spawn(move || {
                    // FIFO: a single shared channel preserves submission
                    // order across workers.
                    while let Ok((cursor, payload)) = rx.recv() {
                        srv.run_flow(cursor, payload);
                    }
                })
                .expect("spawn pool worker")
        })
        .collect();
    for fi in 0..server.flow_count() {
        let tx = tx.clone();
        threads.push(source_loop(server, fi, move |cursor, payload| {
            let _ = tx.send((cursor, payload));
        }));
    }
    // Dropping the original sender here means workers exit when all
    // source loops have exited and the queue drains.
    drop(tx);
    threads
}

struct Event<P> {
    cursor: FlowCursor,
    payload: P,
}

fn start_event_driven<P: Send + 'static>(
    server: &Arc<FluxServer<P>>,
    io_workers: usize,
) -> Vec<JoinHandle<()>> {
    use std::sync::atomic::{AtomicUsize, Ordering};

    let (main_tx, main_rx): (Sender<Event<P>>, Receiver<Event<P>>) = channel::unbounded();
    let (io_tx, io_rx): (Sender<Event<P>>, Receiver<Event<P>>) = channel::unbounded();
    // Sources still running, and flows currently off-loaded to the I/O
    // pool: the dispatcher may only exit when both reach zero and its
    // queues are drained.
    let active_sources = Arc::new(AtomicUsize::new(server.flow_count()));
    let offloaded = Arc::new(AtomicUsize::new(0));

    let mut threads = Vec::new();

    // I/O helper pool: runs exactly one (blocking) node execution, then
    // posts the flow back to the main queue — the paper's asynchronous
    // completion signal.
    for i in 0..io_workers {
        let srv = server.clone();
        let io_rx = io_rx.clone();
        let main_tx = main_tx.clone();
        let offloaded = offloaded.clone();
        threads.push(
            thread::Builder::new()
                .name(format!("flux-io-{i}"))
                .spawn(move || {
                    while let Ok(mut ev) = io_rx.recv() {
                        match srv.step(&mut ev.cursor, &mut ev.payload, LockWait::Block) {
                            Step::Done(_) => {}
                            Step::Continue => {
                                let _ = main_tx.send(ev);
                            }
                            Step::WouldBlock => unreachable!("Block mode"),
                        }
                        offloaded.fetch_sub(1, Ordering::SeqCst);
                    }
                })
                .expect("spawn io worker"),
        );
    }
    drop(io_rx);

    // The single dispatcher: handles each event in turn. A "unit" is
    // everything up to and including the next node execution, matching
    // the paper's one-event-per-node-input model while keeping
    // bookkeeping vertices (locks, dispatch) out of the queue. Events
    // that must wait (lock contention, fairness re-queues) go to a local
    // deque so the channel disconnect semantics stay clean.
    {
        let srv = server.clone();
        let active_sources = active_sources.clone();
        let offloaded = offloaded.clone();
        threads.push(
            thread::Builder::new()
                .name("flux-dispatcher".into())
                .spawn(move || {
                    let mut local: std::collections::VecDeque<Event<P>> =
                        std::collections::VecDeque::new();
                    let mut blocked_streak = 0usize;
                    let offload = |ev: Event<P>| {
                        offloaded.fetch_add(1, Ordering::SeqCst);
                        let _ = io_tx.send(ev);
                    };
                    loop {
                        // Drain the channel into the local deque, then
                        // take the oldest event.
                        while let Ok(ev) = main_rx.try_recv() {
                            local.push_back(ev);
                        }
                        let Some(mut ev) = local.pop_front() else {
                            if active_sources.load(Ordering::SeqCst) == 0
                                && offloaded.load(Ordering::SeqCst) == 0
                                && main_rx.is_empty()
                            {
                                return;
                            }
                            match main_rx.recv_timeout(Duration::from_millis(5)) {
                                Ok(ev) => local.push_back(ev),
                                Err(channel::RecvTimeoutError::Timeout) => {}
                                Err(channel::RecvTimeoutError::Disconnected) => return,
                            }
                            continue;
                        };
                        let mut executed_node = false;
                        loop {
                            if srv.at_blocking_exec(&ev.cursor) {
                                offload(ev);
                                blocked_streak = 0;
                                break;
                            }
                            let at_exec = srv.at_exec(&ev.cursor);
                            if at_exec && executed_node {
                                // One node execution per queue turn:
                                // re-queue for fairness.
                                local.push_back(ev);
                                break;
                            }
                            match srv.step(&mut ev.cursor, &mut ev.payload, LockWait::Try) {
                                Step::Continue => {
                                    blocked_streak = 0;
                                    if at_exec {
                                        executed_node = true;
                                    }
                                }
                                Step::Done(_) => {
                                    blocked_streak = 0;
                                    break;
                                }
                                Step::WouldBlock => {
                                    blocked_streak += 1;
                                    // Every queued event may be waiting on
                                    // a lock held by an off-loaded flow;
                                    // back off instead of spinning.
                                    if blocked_streak > local.len().max(4) {
                                        thread::sleep(Duration::from_micros(100));
                                    }
                                    local.push_back(ev);
                                    break;
                                }
                            }
                        }
                    }
                })
                .expect("spawn dispatcher"),
        );
    }

    for fi in 0..server.flow_count() {
        let main_tx = main_tx.clone();
        threads.push(source_loop_counted(
            server,
            fi,
            move |cursor, payload| {
                let _ = main_tx.send(Event { cursor, payload });
            },
            Some(active_sources.clone()),
        ));
    }
    drop(main_tx);
    threads
}

/// The SEDA-style staged runtime: one queue and worker pool per concrete
/// node. A flow is routed (through lock and dispatch vertices) to the
/// queue of the next node it must execute; a stage worker runs exactly
/// that node, then routes the flow onward.
fn start_staged<P: Send + 'static>(
    server: &Arc<FluxServer<P>>,
    stage_workers: usize,
) -> Vec<JoinHandle<()>> {
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicUsize, Ordering};

    // One stage per concrete node reachable from any flow.
    let mut senders: HashMap<usize, Sender<(FlowCursor, P)>> = HashMap::new();
    let mut receivers: Vec<(usize, Receiver<(FlowCursor, P)>)> = Vec::new();
    for flow in &server.program().flows {
        for (_, node) in flow.flat.execs() {
            senders.entry(node).or_insert_with(|| {
                let (tx, rx) = channel::unbounded();
                receivers.push((node, rx));
                tx
            });
        }
    }
    let senders = Arc::new(senders);
    let active_sources = Arc::new(AtomicUsize::new(server.flow_count()));
    let in_flight = Arc::new(AtomicUsize::new(0));

    // Routes a flow to its next stage, running lock/dispatch vertices
    // inline; accounts for completion when the flow ends between stages.
    fn route<P: Send + 'static>(
        srv: &FluxServer<P>,
        senders: &HashMap<usize, Sender<(FlowCursor, P)>>,
        in_flight: &std::sync::atomic::AtomicUsize,
        mut cursor: FlowCursor,
        mut payload: P,
    ) {
        loop {
            if let Some(node) = srv.exec_node(&cursor) {
                let _ = senders[&node].send((cursor, payload));
                return;
            }
            match srv.step(&mut cursor, &mut payload, LockWait::Block) {
                Step::Continue => {}
                Step::Done(_) => {
                    in_flight.fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
                    return;
                }
                Step::WouldBlock => unreachable!("Block mode"),
            }
        }
    }

    let mut threads = Vec::new();
    for (node, rx) in receivers {
        for w in 0..stage_workers {
            let srv = server.clone();
            let rx = rx.clone();
            let senders = senders.clone();
            let active_sources = active_sources.clone();
            let in_flight = in_flight.clone();
            let name = format!("flux-stage-{}-{w}", srv.program().graph.name(node));
            threads.push(
                thread::Builder::new()
                    .name(name)
                    .spawn(move || loop {
                        match rx.recv_timeout(Duration::from_millis(5)) {
                            Ok((mut cursor, mut payload)) => {
                                // Exactly one node execution, then onward.
                                match srv.step(&mut cursor, &mut payload, LockWait::Block) {
                                    Step::Done(_) => {
                                        in_flight.fetch_sub(1, Ordering::SeqCst);
                                    }
                                    Step::Continue => {
                                        route(&srv, &senders, &in_flight, cursor, payload);
                                    }
                                    Step::WouldBlock => unreachable!("Block mode"),
                                }
                            }
                            Err(channel::RecvTimeoutError::Timeout) => {
                                if active_sources.load(Ordering::SeqCst) == 0
                                    && in_flight.load(Ordering::SeqCst) == 0
                                {
                                    return;
                                }
                            }
                            Err(channel::RecvTimeoutError::Disconnected) => return,
                        }
                    })
                    .expect("spawn stage worker"),
            );
        }
    }

    for fi in 0..server.flow_count() {
        let srv = server.clone();
        let senders = senders.clone();
        let in_flight = in_flight.clone();
        threads.push(source_loop_counted(
            server,
            fi,
            move |cursor, payload| {
                in_flight.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                route(&srv, &senders, &in_flight, cursor, payload);
            },
            Some(active_sources.clone()),
        ));
    }
    threads
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{NodeOutcome, NodeRegistry, SourceOutcome};
    use parking_lot::Mutex;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[derive(Default)]
    struct P {
        n: u64,
        valid: bool,
    }

    /// A source that produces `total` flows, then shuts down.
    fn counting_registry(total: u64, sum: Arc<AtomicU64>) -> NodeRegistry<P> {
        let mut r = NodeRegistry::new();
        let produced = AtomicU64::new(0);
        r.source("Listen", move || {
            let i = produced.fetch_add(1, Ordering::SeqCst);
            if i >= total {
                SourceOutcome::Shutdown
            } else {
                SourceOutcome::New(P {
                    n: i,
                    valid: i % 2 == 0,
                })
            }
        });
        r.node("Parse", |_| NodeOutcome::Ok);
        let s1 = sum.clone();
        r.node("Respond", move |p: &mut P| {
            s1.fetch_add(p.n, Ordering::SeqCst);
            NodeOutcome::Ok
        });
        r.node("Retry", |_| NodeOutcome::Ok);
        r.node("Close", |_| NodeOutcome::Ok);
        r.node("Oops", |_| NodeOutcome::Ok);
        r.predicate("IsValid", |p: &P| p.valid);
        r
    }

    fn run_on(kind: RuntimeKind, total: u64) -> (u64, u64) {
        let program = flux_core::compile(flux_core::fixtures::MINI_PIPELINE).unwrap();
        let sum = Arc::new(AtomicU64::new(0));
        let server = Arc::new(
            crate::server::FluxServer::new(program, counting_registry(total, sum.clone()))
                .unwrap(),
        );
        let handle = start(server.clone(), kind);
        handle.join();
        // Event runtime: the dispatcher drains after sources exit; wait
        // for completion counts.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while server.stats.finished() < total && std::time::Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
        (server.stats.finished(), sum.load(Ordering::SeqCst))
    }

    #[test]
    fn thread_per_flow_completes_all() {
        let (done, sum) = run_on(RuntimeKind::ThreadPerFlow, 100);
        assert_eq!(done, 100);
        assert_eq!(sum, (0..100).sum::<u64>());
    }

    #[test]
    fn thread_pool_completes_all() {
        let (done, sum) = run_on(RuntimeKind::ThreadPool { workers: 4 }, 500);
        assert_eq!(done, 500);
        assert_eq!(sum, (0..500).sum::<u64>());
    }

    #[test]
    fn event_driven_completes_all() {
        let (done, sum) = run_on(RuntimeKind::EventDriven { io_workers: 2 }, 500);
        assert_eq!(done, 500);
        assert_eq!(sum, (0..500).sum::<u64>());
    }

    #[test]
    fn staged_completes_all() {
        let (done, sum) = run_on(RuntimeKind::Staged { stage_workers: 2 }, 500);
        assert_eq!(done, 500);
        assert_eq!(sum, (0..500).sum::<u64>());
    }

    /// The staged runtime actually stages: consecutive nodes of one flow
    /// run on different stage threads.
    #[test]
    fn staged_runs_nodes_on_stage_threads() {
        const SRC: &str = "
            Gen () => (int v);
            A (int v) => (int v);
            B (int v) => ();
            Flow = A -> B;
            source Gen => Flow;
        ";
        let program = flux_core::compile(SRC).unwrap();
        let mut r: NodeRegistry<()> = NodeRegistry::new();
        let produced = AtomicU64::new(0);
        r.source("Gen", move || {
            if produced.fetch_add(1, Ordering::SeqCst) >= 50 {
                SourceOutcome::Shutdown
            } else {
                SourceOutcome::New(())
            }
        });
        let names: Arc<Mutex<std::collections::HashSet<String>>> =
            Arc::new(Mutex::new(std::collections::HashSet::new()));
        for node in ["A", "B"] {
            let names = names.clone();
            r.node(node, move |_| {
                names
                    .lock()
                    .insert(thread::current().name().unwrap_or("?").to_string());
                NodeOutcome::Ok
            });
        }
        let server = Arc::new(crate::server::FluxServer::new(program, r).unwrap());
        let handle = start(server.clone(), RuntimeKind::Staged { stage_workers: 1 });
        handle.join();
        assert_eq!(server.stats.finished(), 50);
        let names = names.lock();
        assert!(
            names.iter().any(|n| n.starts_with("flux-stage-A")),
            "{names:?}"
        );
        assert!(
            names.iter().any(|n| n.starts_with("flux-stage-B")),
            "{names:?}"
        );
    }

    /// Atomicity constraints must hold on every runtime: concurrent
    /// increments of an unsynchronized counter stay exact because the
    /// node is constrained.
    #[test]
    fn constraints_serialize_on_all_runtimes() {
        const SRC: &str = "
            Gen () => (int v);
            Bump (int v) => (int v);
            Done (int v) => ();
            Flow = Bump -> Done;
            source Gen => Flow;
            atomic Bump: {counter};
        ";
        for kind in [
            RuntimeKind::ThreadPerFlow,
            RuntimeKind::ThreadPool { workers: 8 },
            RuntimeKind::EventDriven { io_workers: 4 },
            RuntimeKind::Staged { stage_workers: 4 },
        ] {
            let program = flux_core::compile(SRC).unwrap();
            let total = 150u64;
            // A deliberately racy counter: read, yield, write.
            let racy = Arc::new(Mutex::new(0u64));
            let mut r: NodeRegistry<()> = NodeRegistry::new();
            let produced = AtomicU64::new(0);
            r.source("Gen", move || {
                if produced.fetch_add(1, Ordering::SeqCst) >= total {
                    SourceOutcome::Shutdown
                } else {
                    SourceOutcome::New(())
                }
            });
            let racy2 = racy.clone();
            // Mark blocking so the event runtime runs these concurrently
            // on the I/O pool — the constraint must still serialize them.
            r.node_blocking("Bump", move |_| {
                let v = *racy2.lock();
                thread::yield_now();
                *racy2.lock() = v + 1;
                NodeOutcome::Ok
            });
            r.node("Done", |_| NodeOutcome::Ok);
            let server =
                Arc::new(crate::server::FluxServer::new(program, r).unwrap());
            let handle = start(server.clone(), kind);
            handle.join();
            let deadline = std::time::Instant::now() + Duration::from_secs(10);
            while server.stats.finished() < total
                && std::time::Instant::now() < deadline
            {
                thread::sleep(Duration::from_millis(5));
            }
            assert_eq!(server.stats.finished(), total, "{kind:?}");
            assert_eq!(*racy.lock(), total, "{kind:?} must serialize Bump");
        }
    }

    /// The §3.1.1 program must not deadlock even with flows hammering
    /// both lock orders concurrently (the compiler hoisted `x` onto `C`).
    #[test]
    fn deadlock_example_does_not_deadlock() {
        let program = flux_core::compile(flux_core::fixtures::DEADLOCK_EXAMPLE).unwrap();
        let total = 200u64;
        let mut r: NodeRegistry<()> = NodeRegistry::new();
        for src in ["SrcA", "SrcC"] {
            let produced = AtomicU64::new(0);
            r.source(src, move || {
                if produced.fetch_add(1, Ordering::SeqCst) >= total {
                    SourceOutcome::Shutdown
                } else {
                    SourceOutcome::New(())
                }
            });
        }
        for n in ["B", "D"] {
            r.node(n, |_| {
                thread::yield_now();
                NodeOutcome::Ok
            });
        }
        let server = Arc::new(crate::server::FluxServer::new(program, r).unwrap());
        let handle = start(server.clone(), RuntimeKind::ThreadPool { workers: 8 });
        // If lock ordering were wrong this join would hang; the harness
        // timeout is the failure signal.
        handle.join();
        assert_eq!(server.stats.finished(), total * 2);
    }
}
