//! The atomicity-constraint lock manager (paper §2.5).
//!
//! Constraints are named reader-writer locks acquired under two-phase
//! locking in canonical order (the compiler guarantees the order; this
//! module provides the locks). Three properties distinguish them from
//! ordinary locks:
//!
//! * **Flow-keyed reentrancy.** Ownership belongs to a *flow*, not a
//!   thread. In the event-driven runtime, consecutive steps of one flow
//!   may run on different threads while an abstract-node constraint is
//!   held across them; in the thread runtimes, nested scopes re-acquire
//!   the same lock. Both work because identity is the flow id.
//! * **Reader/writer modes.** Multiple readers share; writers exclude.
//!   Re-acquiring as a reader while holding the writer keeps the writer
//!   (paper §3.1.1).
//! * **Session scoping.** A `(session)` constraint maps to one lock per
//!   session id; program-scoped constraints map to a single lock.

use flux_core::{ConstraintMode, ConstraintScope};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::Arc;

/// Identifies a flow for lock-ownership purposes.
pub type FlowId = u64;

#[derive(Debug, Default)]
struct LockState {
    writer: Option<FlowId>,
    writer_depth: usize,
    /// Reader flow id -> re-entrancy depth.
    readers: HashMap<FlowId, usize>,
}

impl LockState {
    fn can_write(&self, flow: FlowId) -> bool {
        (self.writer.is_none() || self.writer == Some(flow))
            && self.readers.keys().all(|&r| r == flow)
    }

    fn can_read(&self, flow: FlowId) -> bool {
        self.writer.is_none() || self.writer == Some(flow)
    }
}

/// A reentrant reader-writer lock keyed by flow id.
#[derive(Debug, Default)]
pub struct ReentrantRwLock {
    state: Mutex<LockState>,
    cond: Condvar,
}

impl ReentrantRwLock {
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquires the lock in `mode` for `flow`, blocking until available.
    ///
    /// # Panics
    ///
    /// Panics on read-to-write upgrade by the same flow: the compiler's
    /// promotion pass makes the first acquisition a writer whenever a
    /// flow acquires both ways, so an upgrade is a compiler bug, and
    /// waiting for it would deadlock.
    pub fn acquire(&self, flow: FlowId, mode: ConstraintMode) {
        let mut s = self.state.lock();
        match mode {
            ConstraintMode::Writer => {
                assert!(
                    !(s.readers.contains_key(&flow) && s.writer != Some(flow)),
                    "read-to-write upgrade (flow {flow}): compiler promotion should prevent this"
                );
                while !s.can_write(flow) {
                    self.cond.wait(&mut s);
                }
                s.writer = Some(flow);
                s.writer_depth += 1;
            }
            ConstraintMode::Reader => {
                if s.writer == Some(flow) {
                    // Re-acquire as reader while holding writer: keep the
                    // writer lock (paper §3.1.1).
                    s.writer_depth += 1;
                    return;
                }
                while !s.can_read(flow) {
                    self.cond.wait(&mut s);
                }
                *s.readers.entry(flow).or_insert(0) += 1;
            }
        }
    }

    /// Non-blocking acquire; returns whether the lock was taken.
    pub fn try_acquire(&self, flow: FlowId, mode: ConstraintMode) -> bool {
        let mut s = self.state.lock();
        match mode {
            ConstraintMode::Writer => {
                if s.readers.contains_key(&flow) && s.writer != Some(flow) {
                    panic!(
                        "read-to-write upgrade (flow {flow}): compiler promotion should prevent this"
                    );
                }
                if s.can_write(flow) {
                    s.writer = Some(flow);
                    s.writer_depth += 1;
                    true
                } else {
                    false
                }
            }
            ConstraintMode::Reader => {
                if s.writer == Some(flow) {
                    s.writer_depth += 1;
                    true
                } else if s.can_read(flow) {
                    *s.readers.entry(flow).or_insert(0) += 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Releases one acquisition made by `flow` in `mode`.
    pub fn release(&self, flow: FlowId, mode: ConstraintMode) {
        let mut s = self.state.lock();
        let wake = match mode {
            _ if s.writer == Some(flow) => {
                // Both writer releases and reader releases made while the
                // writer was held decrement the writer depth.
                s.writer_depth -= 1;
                if s.writer_depth == 0 {
                    s.writer = None;
                    true
                } else {
                    false
                }
            }
            ConstraintMode::Reader => {
                let depth = s
                    .readers
                    .get_mut(&flow)
                    .expect("releasing a reader lock the flow does not hold");
                *depth -= 1;
                if *depth == 0 {
                    s.readers.remove(&flow);
                    true
                } else {
                    false
                }
            }
            ConstraintMode::Writer => {
                panic!("releasing a writer lock the flow does not hold (flow {flow})")
            }
        };
        if wake {
            drop(s);
            self.cond.notify_all();
        }
    }

    /// Observability hook for tests: (has writer, reader count).
    pub fn snapshot(&self) -> (bool, usize) {
        let s = self.state.lock();
        (s.writer.is_some(), s.readers.len())
    }
}

/// Identity of a lock instance: constraint name plus session (None for
/// program scope).
pub type LockKey = (String, Option<u64>);

/// Lazily materializes one [`ReentrantRwLock`] per lock key.
#[derive(Debug, Default)]
pub struct LockManager {
    locks: Mutex<HashMap<LockKey, Arc<ReentrantRwLock>>>,
}

impl LockManager {
    pub fn new() -> Self {
        Self::default()
    }

    /// The lock instance for `name` under `scope`, given the flow's
    /// session id. A session-scoped constraint without a session id falls
    /// back to the program-wide instance (conservative, like the
    /// simulator's treatment in §5.1).
    pub fn lock_for(
        &self,
        name: &str,
        scope: ConstraintScope,
        session: Option<u64>,
    ) -> Arc<ReentrantRwLock> {
        let key: LockKey = match (scope, session) {
            (ConstraintScope::Session, Some(sid)) => (name.to_string(), Some(sid)),
            _ => (name.to_string(), None),
        };
        let mut map = self.locks.lock();
        map.entry(key).or_default().clone()
    }

    /// Number of distinct lock instances materialized so far.
    pub fn len(&self) -> usize {
        self.locks.lock().len()
    }

    /// True when no lock instance has been created.
    pub fn is_empty(&self) -> bool {
        self.locks.lock().is_empty()
    }
}

/// A held lock, recorded so error exits can release everything in
/// reverse order (two-phase locking's shrink phase).
#[derive(Clone)]
pub struct HeldLock {
    pub lock: Arc<ReentrantRwLock>,
    pub mode: ConstraintMode,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread;
    use std::time::Duration;

    #[test]
    fn writer_excludes_writer() {
        let l = Arc::new(ReentrantRwLock::new());
        l.acquire(1, ConstraintMode::Writer);
        assert!(!l.try_acquire(2, ConstraintMode::Writer));
        l.release(1, ConstraintMode::Writer);
        assert!(l.try_acquire(2, ConstraintMode::Writer));
    }

    #[test]
    fn readers_share() {
        let l = ReentrantRwLock::new();
        assert!(l.try_acquire(1, ConstraintMode::Reader));
        assert!(l.try_acquire(2, ConstraintMode::Reader));
        assert!(!l.try_acquire(3, ConstraintMode::Writer));
        l.release(1, ConstraintMode::Reader);
        l.release(2, ConstraintMode::Reader);
        assert!(l.try_acquire(3, ConstraintMode::Writer));
    }

    #[test]
    fn writer_reentrant_same_flow() {
        let l = ReentrantRwLock::new();
        l.acquire(7, ConstraintMode::Writer);
        l.acquire(7, ConstraintMode::Writer);
        l.release(7, ConstraintMode::Writer);
        assert!(!l.try_acquire(8, ConstraintMode::Writer), "still held once");
        l.release(7, ConstraintMode::Writer);
        assert!(l.try_acquire(8, ConstraintMode::Writer));
    }

    #[test]
    fn reader_reacquire_under_writer_keeps_writer() {
        let l = ReentrantRwLock::new();
        l.acquire(7, ConstraintMode::Writer);
        l.acquire(7, ConstraintMode::Reader);
        // Another reader must still be excluded: the writer is kept.
        assert!(!l.try_acquire(8, ConstraintMode::Reader));
        l.release(7, ConstraintMode::Reader);
        assert!(!l.try_acquire(8, ConstraintMode::Reader));
        l.release(7, ConstraintMode::Writer);
        assert!(l.try_acquire(8, ConstraintMode::Reader));
    }

    #[test]
    fn reader_reentrant_same_flow() {
        let l = ReentrantRwLock::new();
        l.acquire(1, ConstraintMode::Reader);
        l.acquire(1, ConstraintMode::Reader);
        l.release(1, ConstraintMode::Reader);
        assert!(!l.try_acquire(2, ConstraintMode::Writer));
        l.release(1, ConstraintMode::Reader);
        assert!(l.try_acquire(2, ConstraintMode::Writer));
    }

    #[test]
    #[should_panic(expected = "upgrade")]
    fn upgrade_panics() {
        let l = ReentrantRwLock::new();
        l.acquire(1, ConstraintMode::Reader);
        l.acquire(1, ConstraintMode::Writer);
    }

    #[test]
    fn blocking_acquire_wakes_up() {
        let l = Arc::new(ReentrantRwLock::new());
        l.acquire(1, ConstraintMode::Writer);
        let l2 = l.clone();
        let done = Arc::new(AtomicUsize::new(0));
        let d2 = done.clone();
        let h = thread::spawn(move || {
            l2.acquire(2, ConstraintMode::Writer);
            d2.store(1, Ordering::SeqCst);
            l2.release(2, ConstraintMode::Writer);
        });
        thread::sleep(Duration::from_millis(20));
        assert_eq!(done.load(Ordering::SeqCst), 0, "must wait for flow 1");
        l.release(1, ConstraintMode::Writer);
        h.join().unwrap();
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn cross_thread_flow_ownership() {
        // The same flow id can release on a different thread than it
        // acquired on — required by the event-driven runtime.
        let l = Arc::new(ReentrantRwLock::new());
        l.acquire(42, ConstraintMode::Writer);
        let l2 = l.clone();
        thread::spawn(move || {
            l2.release(42, ConstraintMode::Writer);
        })
        .join()
        .unwrap();
        assert!(l.try_acquire(43, ConstraintMode::Writer));
    }

    #[test]
    fn manager_scopes_sessions() {
        let m = LockManager::new();
        let a = m.lock_for("cache", ConstraintScope::Program, Some(1));
        let b = m.lock_for("cache", ConstraintScope::Program, Some(2));
        assert!(Arc::ptr_eq(&a, &b), "program scope ignores sessions");
        let c = m.lock_for("state", ConstraintScope::Session, Some(1));
        let d = m.lock_for("state", ConstraintScope::Session, Some(2));
        assert!(!Arc::ptr_eq(&c, &d), "session scope separates sessions");
        let e = m.lock_for("state", ConstraintScope::Session, None);
        let f = m.lock_for("state", ConstraintScope::Session, None);
        assert!(Arc::ptr_eq(&e, &f), "missing session falls back to global");
        assert_eq!(m.len(), 4);
    }

    #[test]
    fn contended_counter_is_consistent() {
        // N flows increment a plain counter under the writer lock; the
        // final value proves mutual exclusion.
        let l = Arc::new(ReentrantRwLock::new());
        let counter = Arc::new(Mutex::new(0u64));
        let mut joins = Vec::new();
        for flow in 0..8u64 {
            let l = l.clone();
            let counter = counter.clone();
            joins.push(thread::spawn(move || {
                for _ in 0..200 {
                    l.acquire(flow, ConstraintMode::Writer);
                    let mut c = counter.lock();
                    let v = *c;
                    thread::yield_now();
                    *c = v + 1;
                    drop(c);
                    l.release(flow, ConstraintMode::Writer);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(*counter.lock(), 8 * 200);
    }
}
