//! The Flux server core: resolved programs and stepwise flow execution.
//!
//! A [`FluxServer`] binds a compiled program to a [`NodeRegistry`] and
//! executes flows by interpreting the flattened vertex graph. Execution
//! is *stepwise*: [`FluxServer::step`] advances a [`FlowCursor`] by one
//! vertex, so the thread runtimes can drive a flow to completion on one
//! stack while the event runtime interleaves thousands of cursors on a
//! single dispatcher thread.

use crate::locks::{FlowId, HeldLock, LockManager};
use crate::profile::PathProfiler;
use crate::registry::{NodeEntry, NodeOutcome, NodeRegistry, SourceOutcome};
use crate::stats::ServerStats;
use flux_core::{CompiledProgram, ConstraintRef, EndKind, FlatVertex, PatElem, VertexId};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A vertex with every name resolved to callables — no hash lookups on
/// the hot path.
enum ResolvedVertex<P> {
    Acquire {
        cs: Arc<[ConstraintRef]>,
        next: VertexId,
    },
    Release {
        count: usize,
        next: VertexId,
    },
    Exec {
        entry: NodeEntry<P>,
        may_block: bool,
        on_ok: VertexId,
        on_err: VertexId,
    },
    Dispatch {
        /// For each arm: the predicates that must all hold, and the entry.
        arms: Vec<(Vec<Arc<dyn Fn(&P) -> bool + Send + Sync>>, VertexId)>,
        on_nomatch: VertexId,
    },
    End {
        outcome: EndKind,
    },
}

struct ResolvedFlow<P> {
    verts: Vec<ResolvedVertex<P>>,
    entry: VertexId,
    source_fn: Arc<dyn Fn() -> SourceOutcome<P> + Send + Sync>,
    session_fn: Option<Arc<dyn Fn(&P) -> u64 + Send + Sync>>,
    source_name: String,
}

/// The position and bookkeeping of one in-flight flow.
pub struct FlowCursor {
    /// Index into the program's flows (which `source` this came from).
    pub flow_idx: usize,
    /// Current vertex.
    pub vertex: VertexId,
    /// Ball–Larus path sum accumulated so far.
    pub path_sum: u64,
    /// Lock-ownership identity.
    pub flow_id: FlowId,
    /// Session id, if the source has a session function.
    pub session: Option<u64>,
    /// Flow start time (latency measurement, path timing).
    pub started: Instant,
    held: Vec<HeldLock>,
    acquire_progress: usize,
}

/// Result of advancing a cursor one step.
pub enum Step {
    /// The cursor moved; call `step` again.
    Continue,
    /// A `try` lock acquisition failed; the cursor is unchanged and the
    /// caller should retry later (event runtime re-queues).
    WouldBlock,
    /// The flow finished.
    Done(EndKind),
}

/// How `step` should wait for constraint locks.
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum LockWait {
    /// Block the calling thread (thread runtimes).
    Block,
    /// Fail with [`Step::WouldBlock`] (event runtime).
    Try,
}

/// A compiled Flux program bound to its node implementations.
pub struct FluxServer<P> {
    program: Arc<CompiledProgram>,
    flows: Vec<ResolvedFlow<P>>,
    locks: LockManager,
    profiler: Option<PathProfiler>,
    pub stats: ServerStats,
    next_flow_id: AtomicU64,
    pub(crate) shutdown: AtomicBool,
}

impl<P: Send + 'static> FluxServer<P> {
    /// Binds `program` to `registry`, resolving every node, predicate and
    /// session function. Fails with the list of missing implementations.
    pub fn new(program: CompiledProgram, registry: NodeRegistry<P>) -> Result<Self, Vec<String>> {
        Self::build(program, registry, false)
    }

    /// Like [`FluxServer::new`] but with Ball–Larus path profiling
    /// enabled (the paper's `-profile` compiler switch).
    pub fn with_profiling(
        program: CompiledProgram,
        registry: NodeRegistry<P>,
    ) -> Result<Self, Vec<String>> {
        Self::build(program, registry, true)
    }

    fn build(
        program: CompiledProgram,
        registry: NodeRegistry<P>,
        profile: bool,
    ) -> Result<Self, Vec<String>> {
        registry.validate(&program)?;
        let program = Arc::new(program);
        let graph = &program.graph;
        let mut flows = Vec::with_capacity(program.flows.len());
        for flow in &program.flows {
            let mut verts = Vec::with_capacity(flow.flat.verts.len());
            for v in &flow.flat.verts {
                verts.push(match v {
                    FlatVertex::Acquire { node, next } => ResolvedVertex::Acquire {
                        cs: graph.nodes[*node].constraints.clone().into(),
                        next: *next,
                    },
                    FlatVertex::Release { node, next } => ResolvedVertex::Release {
                        count: graph.nodes[*node].constraints.len(),
                        next: *next,
                    },
                    FlatVertex::Exec {
                        node,
                        on_ok,
                        on_err,
                    } => {
                        let name = graph.name(*node);
                        let entry = registry.node_entry(name).expect("validated above").clone();
                        let may_block = entry.may_block || graph.nodes[*node].blocking;
                        ResolvedVertex::Exec {
                            entry,
                            may_block,
                            on_ok: *on_ok,
                            on_err: *on_err,
                        }
                    }
                    FlatVertex::Dispatch {
                        node,
                        arms,
                        on_nomatch,
                    } => {
                        let variants = graph.variants(*node);
                        let arms = arms
                            .iter()
                            .map(|arm| {
                                let preds = match &variants[arm.variant].pattern {
                                    None => Vec::new(),
                                    Some(pat) => pat
                                        .iter()
                                        .filter_map(|el| match el {
                                            PatElem::Wildcard => None,
                                            PatElem::Pred(ty) => {
                                                let func = &graph.predicates[ty];
                                                Some(registry.predicates[func].clone())
                                            }
                                        })
                                        .collect(),
                                };
                                (preds, arm.entry)
                            })
                            .collect();
                        ResolvedVertex::Dispatch {
                            arms,
                            on_nomatch: *on_nomatch,
                        }
                    }
                    FlatVertex::End { outcome } => ResolvedVertex::End { outcome: *outcome },
                });
            }
            let source_name = graph.name(flow.flat.source).to_string();
            flows.push(ResolvedFlow {
                verts,
                entry: flow.flat.entry,
                source_fn: registry.sources[&source_name].clone(),
                session_fn: registry.session_fns.get(&source_name).cloned(),
                source_name,
            });
        }
        let profiler = profile.then(|| PathProfiler::new(&program));
        Ok(FluxServer {
            program,
            flows,
            locks: LockManager::new(),
            profiler,
            stats: ServerStats::new(),
            next_flow_id: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
        })
    }

    /// The compiled program this server runs.
    pub fn program(&self) -> &CompiledProgram {
        &self.program
    }

    /// The profiler, when profiling is enabled.
    pub fn profiler(&self) -> Option<&PathProfiler> {
        self.profiler.as_ref()
    }

    /// Number of source flows.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// The source node's name for flow `fi`.
    pub fn source_name(&self, fi: usize) -> &str {
        &self.flows[fi].source_name
    }

    /// Requests cooperative shutdown: source loops stop after their next
    /// return and runtimes drain.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// True once shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Pulls one unit of work from source `fi`. Returns `None` to stop
    /// the source loop. Only valid for sources that never return
    /// [`SourceOutcome::Batch`] (a batch cannot be squeezed into one
    /// pair without losing events); runtimes use
    /// [`FluxServer::poll_source_batch`], which handles both.
    pub fn poll_source(&self, fi: usize) -> Option<Option<(FlowCursor, P)>> {
        let mut out = Vec::with_capacity(1);
        if !self.poll_source_batch(fi, &mut out) {
            return None;
        }
        match out.len() {
            0 => Some(None),
            1 => Some(out.pop()),
            n => panic!(
                "poll_source cannot carry a batch of {n}; use poll_source_batch \
                 for sources that return SourceOutcome::Batch"
            ),
        }
    }

    /// Pulls the next unit(s) of work from source `fi`, appending a
    /// cursor/payload pair per new flow to `out` (zero pairs on a
    /// skip). Returns `false` when the source loop should stop. This is
    /// the batch-aware source protocol: a [`SourceOutcome::Batch`] of N
    /// flows costs one poll, and the caller hands the whole vector to
    /// the runtime's batched submission path.
    pub fn poll_source_batch(&self, fi: usize, out: &mut Vec<(FlowCursor, P)>) -> bool {
        if self.is_shutting_down() {
            return false;
        }
        match (self.flows[fi].source_fn)() {
            SourceOutcome::Shutdown => false,
            SourceOutcome::Skip => true,
            SourceOutcome::New(payload) => {
                let cursor = self.new_cursor(fi, &payload);
                out.push((cursor, payload));
                true
            }
            SourceOutcome::Batch(payloads) => {
                out.reserve(payloads.len());
                for payload in payloads {
                    let cursor = self.new_cursor(fi, &payload);
                    out.push((cursor, payload));
                }
                true
            }
        }
    }

    /// Creates the cursor for a new flow carrying `payload`.
    pub fn new_cursor(&self, fi: usize, payload: &P) -> FlowCursor {
        let now = Instant::now();
        self.stats.started.fetch_add(1, Ordering::Relaxed);
        if let Some(prof) = &self.profiler {
            prof.record_arrival(fi, now);
        }
        let session = self.flows[fi].session_fn.as_ref().map(|f| f(payload));
        FlowCursor {
            flow_idx: fi,
            vertex: self.flows[fi].entry,
            path_sum: 0,
            flow_id: self.next_flow_id.fetch_add(1, Ordering::Relaxed),
            session,
            started: now,
            held: Vec::new(),
            acquire_progress: 0,
        }
    }

    /// True when the cursor's current vertex is a node execution that may
    /// block (the event runtime off-loads these to its I/O pool).
    pub fn at_blocking_exec(&self, cur: &FlowCursor) -> bool {
        matches!(
            self.flows[cur.flow_idx].verts[cur.vertex],
            ResolvedVertex::Exec {
                may_block: true,
                ..
            }
        )
    }

    /// True when the cursor's current vertex is any node execution.
    pub fn at_exec(&self, cur: &FlowCursor) -> bool {
        matches!(
            self.flows[cur.flow_idx].verts[cur.vertex],
            ResolvedVertex::Exec { .. }
        )
    }

    /// The concrete node the cursor is about to execute, if it stands at
    /// an `Exec` vertex (used by the staged runtime to pick a stage).
    pub fn exec_node(&self, cur: &FlowCursor) -> Option<flux_core::NodeId> {
        match self.program.flows[cur.flow_idx].flat.verts[cur.vertex] {
            flux_core::FlatVertex::Exec { node, .. } => Some(node),
            _ => None,
        }
    }

    #[inline]
    fn take_edge(&self, cur: &mut FlowCursor, k: usize, to: VertexId) {
        let inc = self.program.flows[cur.flow_idx].paths.inc[cur.vertex][k];
        if let Some(prof) = &self.profiler {
            prof.record_edge(cur.flow_idx, cur.vertex, k);
        }
        cur.path_sum += inc;
        cur.vertex = to;
    }

    fn release_all(&self, cur: &mut FlowCursor) {
        while let Some(h) = cur.held.pop() {
            h.lock.release(cur.flow_id, h.mode);
        }
    }

    /// Advances the flow one vertex.
    pub fn step(&self, cur: &mut FlowCursor, payload: &mut P, wait: LockWait) -> Step {
        let rf = &self.flows[cur.flow_idx];
        match &rf.verts[cur.vertex] {
            ResolvedVertex::Acquire { cs, next } => {
                while cur.acquire_progress < cs.len() {
                    let c = &cs[cur.acquire_progress];
                    let lock = self.locks.lock_for(&c.name, c.scope, cur.session);
                    let acquired = match wait {
                        LockWait::Block => {
                            lock.acquire(cur.flow_id, c.mode);
                            true
                        }
                        LockWait::Try => lock.try_acquire(cur.flow_id, c.mode),
                    };
                    if !acquired {
                        return Step::WouldBlock;
                    }
                    cur.held.push(HeldLock { lock, mode: c.mode });
                    cur.acquire_progress += 1;
                }
                cur.acquire_progress = 0;
                self.take_edge(cur, 0, *next);
                Step::Continue
            }
            ResolvedVertex::Release { count, next } => {
                for _ in 0..*count {
                    let h = cur
                        .held
                        .pop()
                        .expect("release vertex with empty held stack");
                    h.lock.release(cur.flow_id, h.mode);
                }
                self.take_edge(cur, 0, *next);
                Step::Continue
            }
            ResolvedVertex::Exec {
                entry,
                on_ok,
                on_err,
                ..
            } => {
                let profiling = self.profiler.is_some();
                let t0 = profiling.then(Instant::now);
                let outcome = (entry.f)(payload);
                if let (Some(prof), Some(t0)) = (&self.profiler, t0) {
                    prof.record_exec(cur.flow_idx, cur.vertex, t0.elapsed().as_nanos() as u64);
                }
                match outcome {
                    NodeOutcome::Ok => self.take_edge(cur, 0, *on_ok),
                    NodeOutcome::Err(_) => {
                        // The flow is terminating (possibly via a
                        // handler): two-phase locking's shrink phase
                        // happens now, before any handler runs.
                        self.release_all(cur);
                        self.take_edge(cur, 1, *on_err);
                    }
                }
                Step::Continue
            }
            ResolvedVertex::Dispatch { arms, on_nomatch } => {
                for (k, (preds, entry)) in arms.iter().enumerate() {
                    if preds.iter().all(|p| p(payload)) {
                        self.take_edge(cur, k, *entry);
                        return Step::Continue;
                    }
                }
                self.take_edge(cur, arms.len(), *on_nomatch);
                Step::Continue
            }
            ResolvedVertex::End { outcome } => {
                self.release_all(cur);
                let elapsed = cur.started.elapsed();
                self.stats.record_end(*outcome, elapsed);
                if let Some(prof) = &self.profiler {
                    prof.record_path(cur.flow_idx, cur.path_sum, elapsed.as_nanos() as u64);
                }
                Step::Done(*outcome)
            }
        }
    }

    /// Drives a flow to completion on the current thread (thread
    /// runtimes), blocking on locks as needed.
    pub fn run_flow(&self, mut cursor: FlowCursor, mut payload: P) -> EndKind {
        loop {
            match self.step(&mut cursor, &mut payload, LockWait::Block) {
                Step::Continue => {}
                Step::Done(end) => return end,
                Step::WouldBlock => unreachable!("LockWait::Block never yields WouldBlock"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::SourceOutcome;
    use parking_lot::Mutex;

    #[derive(Default)]
    struct P {
        valid: bool,
        trace: Vec<&'static str>,
        fail_parse: bool,
    }

    fn registry(events: Arc<Mutex<Vec<String>>>) -> NodeRegistry<P> {
        let mut r = NodeRegistry::new();
        r.source("Listen", || SourceOutcome::Shutdown);
        let ev = events.clone();
        r.node("Parse", move |p: &mut P| {
            ev.lock().push("Parse".into());
            p.trace.push("Parse");
            if p.fail_parse {
                NodeOutcome::Err(1)
            } else {
                NodeOutcome::Ok
            }
        });
        for n in ["Respond", "Retry", "Close", "Oops"] {
            let ev = events.clone();
            r.node(n, move |p: &mut P| {
                ev.lock().push(n.into());
                p.trace.push(n);
                NodeOutcome::Ok
            });
        }
        r.predicate("IsValid", |p: &P| p.valid);
        r
    }

    fn server(events: Arc<Mutex<Vec<String>>>) -> FluxServer<P> {
        let program = flux_core::compile(flux_core::fixtures::MINI_PIPELINE).unwrap();
        FluxServer::with_profiling(program, registry(events)).unwrap()
    }

    #[test]
    fn valid_path_takes_first_arm() {
        let events = Arc::new(Mutex::new(Vec::new()));
        let s = server(events.clone());
        let payload = P {
            valid: true,
            ..P::default()
        };
        let cursor = s.new_cursor(0, &payload);
        let end = s.run_flow(cursor, payload);
        assert_eq!(end, EndKind::Completed);
        assert_eq!(*events.lock(), vec!["Parse", "Respond", "Close"]);
    }

    #[test]
    fn invalid_path_takes_catch_all() {
        let events = Arc::new(Mutex::new(Vec::new()));
        let s = server(events.clone());
        let payload = P::default();
        let cursor = s.new_cursor(0, &payload);
        let end = s.run_flow(cursor, payload);
        assert_eq!(end, EndKind::Completed);
        assert_eq!(*events.lock(), vec!["Parse", "Respond", "Retry", "Close"]);
    }

    #[test]
    fn error_routes_to_handler() {
        let events = Arc::new(Mutex::new(Vec::new()));
        let s = server(events.clone());
        let payload = P {
            fail_parse: true,
            ..P::default()
        };
        let cursor = s.new_cursor(0, &payload);
        let end = s.run_flow(cursor, payload);
        assert!(matches!(end, EndKind::Handled { .. }));
        assert_eq!(*events.lock(), vec!["Parse", "Oops"]);
        assert_eq!(s.stats.handled.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn profiler_distinguishes_paths() {
        let events = Arc::new(Mutex::new(Vec::new()));
        let s = server(events);
        for (valid, fail) in [(true, false), (true, false), (false, false), (false, true)] {
            let payload = P {
                valid,
                fail_parse: fail,
                ..P::default()
            };
            let cursor = s.new_cursor(0, &payload);
            s.run_flow(cursor, payload);
        }
        let report =
            s.profiler()
                .unwrap()
                .report(s.program(), 0, crate::profile::HotOrder::ByCount);
        assert_eq!(report.len(), 3, "three distinct paths executed");
        assert_eq!(report[0].count, 2);
        let display = report[0]
            .info
            .display(&s.program().graph, &s.program().flows[0].flat);
        assert!(display.starts_with("Listen -> Parse -> Respond"));
    }

    #[test]
    fn missing_impl_rejected() {
        let program = flux_core::compile(flux_core::fixtures::MINI_PIPELINE).unwrap();
        let r: NodeRegistry<P> = NodeRegistry::new();
        let missing = FluxServer::new(program, r).err().unwrap();
        assert!(!missing.is_empty());
    }
}
