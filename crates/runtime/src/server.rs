//! The Flux server core: resolved programs and stepwise flow execution.
//!
//! A [`FluxServer`] binds a compiled program to a [`NodeRegistry`] and
//! executes flows by interpreting the flattened vertex graph. Execution
//! is *stepwise*: [`FluxServer::step`] advances a [`FlowCursor`] by one
//! vertex, so the thread runtimes can drive a flow to completion on one
//! stack while the event runtime interleaves thousands of cursors on a
//! single dispatcher thread.
//!
//! Under [`FusionMode::On`] (the default), straight-line chains of
//! `Exec`/`Release` vertices are compiled into [`ResolvedVertex::FusedExec`]
//! segments that one `step` call executes end to end — one queue turn per
//! segment instead of one per node. Fusion is re-derived here (not taken
//! verbatim from the compiler) because the registry knows about
//! `node_blocking` nodes the program text doesn't declare; see
//! `flux_core::fuse` for the boundary rules. Fused execution is
//! observation-equivalent to the unfused walk: the same nodes run in the
//! same order, a mid-segment `NodeOutcome::Err` releases locks and lands
//! on the same `on_err` vertex, and the same Ball–Larus edges are
//! recorded, so `path_sum` is bit-identical.

use crate::locks::{FlowId, HeldLock, LockManager};
use crate::profile::PathProfiler;
use crate::registry::{NodeEntry, NodeOutcome, NodeRegistry, SourceOutcome};
use crate::stats::ServerStats;
use flux_core::fuse::FusedFlow;
use flux_core::{CompiledProgram, ConstraintRef, EndKind, FlatVertex, PatElem, VertexId};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Whether the server fuses straight-line vertex chains into single-step
/// segments. `Off` keeps the per-node interpreter — the semantic oracle
/// differential tests and ablations compare against. The `FLUX_FUSE`
/// env var (`0`/`off` or `1`/`on`) overrides whatever the builder chose,
/// mirroring `FLUX_SHARD_QUEUE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FusionMode {
    /// Fuse chains; one queue turn executes a whole segment.
    #[default]
    On,
    /// Interpret vertex by vertex (paper-faithful baseline).
    Off,
}

impl FusionMode {
    /// The `FLUX_FUSE` operator override, if set to something
    /// recognizable.
    pub fn from_env() -> Option<FusionMode> {
        match std::env::var("FLUX_FUSE").ok()?.trim() {
            "0" | "off" | "false" => Some(FusionMode::Off),
            "1" | "on" | "true" => Some(FusionMode::On),
            _ => None,
        }
    }
}

/// One member of a fused segment, carrying its original vertex id so
/// edge bookkeeping (Ball–Larus increments, profiler edge counters) is
/// identical to the unfused walk.
enum FusedOp<P> {
    Exec {
        vertex: VertexId,
        entry: NodeEntry<P>,
        on_ok: VertexId,
        on_err: VertexId,
    },
    Release {
        vertex: VertexId,
        count: usize,
        next: VertexId,
    },
}

/// A vertex with every name resolved to callables — no hash lookups on
/// the hot path.
enum ResolvedVertex<P> {
    Acquire {
        cs: Arc<[ConstraintRef]>,
        next: VertexId,
    },
    Release {
        count: usize,
        next: VertexId,
    },
    Exec {
        entry: NodeEntry<P>,
        may_block: bool,
        on_ok: VertexId,
        on_err: VertexId,
    },
    Dispatch {
        /// For each arm: the predicates that must all hold, and the entry.
        arms: Vec<(Vec<Arc<dyn Fn(&P) -> bool + Send + Sync>>, VertexId)>,
        on_nomatch: VertexId,
    },
    End {
        outcome: EndKind,
    },
    /// A fused straight-line segment: `ops[0]`'s vertex is this vertex,
    /// and each op's ok/next edge leads to the next op. One `step`
    /// executes the whole chain (a mid-chain error exits early through
    /// its own `on_err` edge).
    FusedExec {
        ops: Box<[FusedOp<P>]>,
        /// Number of `Exec` ops (the segment's node-execution cost,
        /// pre-computed for the dispatcher's step budget).
        execs: usize,
    },
}

struct ResolvedFlow<P> {
    verts: Vec<ResolvedVertex<P>>,
    entry: VertexId,
    source_fn: Arc<dyn Fn() -> SourceOutcome<P> + Send + Sync>,
    session_fn: Option<Arc<dyn Fn(&P) -> u64 + Send + Sync>>,
    /// Flows from this source are pinned to their session's home shard
    /// (see `NodeRegistry::session_pinned`).
    session_pinned: bool,
    source_name: String,
}

/// The position and bookkeeping of one in-flight flow.
pub struct FlowCursor {
    /// Index into the program's flows (which `source` this came from).
    pub flow_idx: usize,
    /// Current vertex.
    pub vertex: VertexId,
    /// Ball–Larus path sum accumulated so far.
    pub path_sum: u64,
    /// Lock-ownership identity.
    pub flow_id: FlowId,
    /// Session id, if the source has a session function.
    pub session: Option<u64>,
    /// Pinned flows execute only on their session's home shard: the
    /// sharded event dispatchers forward a pinned event home instead of
    /// running it where stealing or an adaptive remap surfaced it.
    pub pinned: bool,
    /// Flow start time (latency measurement, path timing).
    pub started: Instant,
    held: Vec<HeldLock>,
    acquire_progress: usize,
    /// Node executions the most recent `step` performed inside a fused
    /// segment (0 for every other vertex kind). The event dispatcher
    /// drains this via [`FlowCursor::take_fused_execs`] for its step
    /// budget and the per-shard `fused_execs` counter.
    fused_step_execs: u32,
}

impl FlowCursor {
    /// Returns and resets the fused-execution count of the most recent
    /// `step` (see `fused_step_execs`).
    pub fn take_fused_execs(&mut self) -> u64 {
        std::mem::replace(&mut self.fused_step_execs, 0) as u64
    }
}

/// Result of advancing a cursor one step.
pub enum Step {
    /// The cursor moved; call `step` again.
    Continue,
    /// A `try` lock acquisition failed; the cursor is unchanged and the
    /// caller should retry later (event runtime re-queues).
    WouldBlock,
    /// The flow finished.
    Done(EndKind),
}

/// How `step` should wait for constraint locks.
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum LockWait {
    /// Block the calling thread (thread runtimes).
    Block,
    /// Fail with [`Step::WouldBlock`] (event runtime).
    Try,
}

/// A compiled Flux program bound to its node implementations.
pub struct FluxServer<P> {
    program: Arc<CompiledProgram>,
    flows: Vec<ResolvedFlow<P>>,
    locks: LockManager,
    profiler: Option<PathProfiler>,
    pub stats: ServerStats,
    next_flow_id: AtomicU64,
    pub(crate) shutdown: AtomicBool,
    fusion: FusionMode,
    /// Largest node-execution count of any fused segment (1 when fusion
    /// is off or every segment is a singleton): the default dispatcher
    /// step budget.
    max_fused_execs: usize,
    /// The registry's shed handler (see `NodeRegistry::on_shed`),
    /// invoked by the sharded runtime for every payload shed at the
    /// source under a bounded overload policy.
    shed_handler: Option<Arc<dyn Fn(P) + Send + Sync>>,
}

impl<P: Send + 'static> FluxServer<P> {
    /// Binds `program` to `registry`, resolving every node, predicate and
    /// session function. Fails with the list of missing implementations.
    pub fn new(program: CompiledProgram, registry: NodeRegistry<P>) -> Result<Self, Vec<String>> {
        Self::build(program, registry, false, FusionMode::default())
    }

    /// Like [`FluxServer::new`] but with Ball–Larus path profiling
    /// enabled (the paper's `-profile` compiler switch).
    pub fn with_profiling(
        program: CompiledProgram,
        registry: NodeRegistry<P>,
    ) -> Result<Self, Vec<String>> {
        Self::build(program, registry, true, FusionMode::default())
    }

    /// [`FluxServer::new`]/[`FluxServer::with_profiling`] with an
    /// explicit [`FusionMode`] (the builder's fusion knob; `FLUX_FUSE`
    /// still wins when set).
    pub fn with_options(
        program: CompiledProgram,
        registry: NodeRegistry<P>,
        profile: bool,
        fusion: FusionMode,
    ) -> Result<Self, Vec<String>> {
        Self::build(program, registry, profile, fusion)
    }

    fn build(
        program: CompiledProgram,
        registry: NodeRegistry<P>,
        profile: bool,
        fusion: FusionMode,
    ) -> Result<Self, Vec<String>> {
        let fusion = FusionMode::from_env().unwrap_or(fusion);
        registry.validate(&program)?;
        let program = Arc::new(program);
        let graph = &program.graph;
        let mut flows = Vec::with_capacity(program.flows.len());
        let mut max_fused_execs = 1usize;
        for flow in &program.flows {
            let mut verts = Vec::with_capacity(flow.flat.verts.len());
            for v in &flow.flat.verts {
                verts.push(match v {
                    FlatVertex::Acquire { node, next } => ResolvedVertex::Acquire {
                        cs: graph.nodes[*node].constraints.clone().into(),
                        next: *next,
                    },
                    FlatVertex::Release { node, next } => ResolvedVertex::Release {
                        count: graph.nodes[*node].constraints.len(),
                        next: *next,
                    },
                    FlatVertex::Exec {
                        node,
                        on_ok,
                        on_err,
                    } => {
                        let name = graph.name(*node);
                        let entry = registry.node_entry(name).expect("validated above").clone();
                        let may_block = entry.may_block || graph.nodes[*node].blocking;
                        ResolvedVertex::Exec {
                            entry,
                            may_block,
                            on_ok: *on_ok,
                            on_err: *on_err,
                        }
                    }
                    FlatVertex::Dispatch {
                        node,
                        arms,
                        on_nomatch,
                    } => {
                        let variants = graph.variants(*node);
                        let arms = arms
                            .iter()
                            .map(|arm| {
                                let preds = match &variants[arm.variant].pattern {
                                    None => Vec::new(),
                                    Some(pat) => pat
                                        .iter()
                                        .filter_map(|el| match el {
                                            PatElem::Wildcard => None,
                                            PatElem::Pred(ty) => {
                                                let func = &graph.predicates[ty];
                                                Some(registry.predicates[func].clone())
                                            }
                                        })
                                        .collect(),
                                };
                                (preds, arm.entry)
                            })
                            .collect();
                        ResolvedVertex::Dispatch {
                            arms,
                            on_nomatch: *on_nomatch,
                        }
                    }
                    FlatVertex::End { outcome } => ResolvedVertex::End { outcome: *outcome },
                });
            }
            if fusion == FusionMode::On {
                // Re-fuse with registry knowledge on top of the compiler's
                // pass: `node_blocking` registrations break chains the
                // program text alone would fuse (the `blocking` keyword is
                // already a compile-time boundary).
                let fused = FusedFlow::build_with(&flow.flat, graph, |node| {
                    registry
                        .node_entry(graph.name(node))
                        .is_some_and(|e| e.may_block)
                });
                for seg in &fused.segments {
                    if seg.verts.len() < 2 {
                        continue; // a singleton gains nothing from fusing
                    }
                    let ops: Box<[FusedOp<P>]> = seg
                        .verts
                        .iter()
                        .map(|&vid| match &flow.flat.verts[vid] {
                            FlatVertex::Exec {
                                node,
                                on_ok,
                                on_err,
                            } => FusedOp::Exec {
                                vertex: vid,
                                entry: registry
                                    .node_entry(graph.name(*node))
                                    .expect("validated above")
                                    .clone(),
                                on_ok: *on_ok,
                                on_err: *on_err,
                            },
                            FlatVertex::Release { node, next } => FusedOp::Release {
                                vertex: vid,
                                count: graph.nodes[*node].constraints.len(),
                                next: *next,
                            },
                            other => unreachable!("non-fusable segment member {other:?}"),
                        })
                        .collect();
                    max_fused_execs = max_fused_execs.max(seg.execs);
                    verts[seg.verts[0]] = ResolvedVertex::FusedExec {
                        ops,
                        execs: seg.execs,
                    };
                }
            }
            let source_name = graph.name(flow.flat.source).to_string();
            flows.push(ResolvedFlow {
                verts,
                entry: flow.flat.entry,
                source_fn: registry.sources[&source_name].clone(),
                session_fn: registry.session_fns.get(&source_name).cloned(),
                session_pinned: registry.pinned_sources.contains(&source_name),
                source_name,
            });
        }
        let profiler = profile.then(|| PathProfiler::new(&program));
        Ok(FluxServer {
            program,
            flows,
            locks: LockManager::new(),
            profiler,
            stats: ServerStats::new(),
            next_flow_id: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
            fusion,
            max_fused_execs,
            shed_handler: registry.shed_handler.clone(),
        })
    }

    /// The shed handler registered on the node registry, if any.
    pub(crate) fn shed_handler(&self) -> Option<Arc<dyn Fn(P) + Send + Sync>> {
        self.shed_handler.clone()
    }

    /// The effective fusion mode this server was built with (builder
    /// choice after the `FLUX_FUSE` override).
    pub fn fusion_mode(&self) -> FusionMode {
        self.fusion
    }

    /// Largest node-execution count of any fused segment (1 under
    /// [`FusionMode::Off`]): the event dispatcher's default step budget,
    /// so the longest segment still fits in one queue turn.
    pub fn max_segment_execs(&self) -> usize {
        self.max_fused_execs
    }

    /// The compiled program this server runs.
    pub fn program(&self) -> &CompiledProgram {
        &self.program
    }

    /// The profiler, when profiling is enabled.
    pub fn profiler(&self) -> Option<&PathProfiler> {
        self.profiler.as_ref()
    }

    /// Number of source flows.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// The source node's name for flow `fi`.
    pub fn source_name(&self, fi: usize) -> &str {
        &self.flows[fi].source_name
    }

    /// Requests cooperative shutdown: source loops stop after their next
    /// return and runtimes drain.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// True once shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Pulls one unit of work from source `fi`. Returns `None` to stop
    /// the source loop. Only valid for sources that never return
    /// [`SourceOutcome::Batch`] (a batch cannot be squeezed into one
    /// pair without losing events); runtimes use
    /// [`FluxServer::poll_source_batch`], which handles both.
    pub fn poll_source(&self, fi: usize) -> Option<Option<(FlowCursor, P)>> {
        let mut out = Vec::with_capacity(1);
        if !self.poll_source_batch(fi, &mut out) {
            return None;
        }
        match out.len() {
            0 => Some(None),
            1 => Some(out.pop()),
            n => panic!(
                "poll_source cannot carry a batch of {n}; use poll_source_batch \
                 for sources that return SourceOutcome::Batch"
            ),
        }
    }

    /// Pulls the next unit(s) of work from source `fi`, appending a
    /// cursor/payload pair per new flow to `out` (zero pairs on a
    /// skip). Returns `false` when the source loop should stop. This is
    /// the batch-aware source protocol: a [`SourceOutcome::Batch`] of N
    /// flows costs one poll, and the caller hands the whole vector to
    /// the runtime's batched submission path.
    pub fn poll_source_batch(&self, fi: usize, out: &mut Vec<(FlowCursor, P)>) -> bool {
        if self.is_shutting_down() {
            return false;
        }
        match (self.flows[fi].source_fn)() {
            SourceOutcome::Shutdown => false,
            SourceOutcome::Skip => true,
            SourceOutcome::New(payload) => {
                let cursor = self.new_cursor(fi, &payload);
                out.push((cursor, payload));
                true
            }
            SourceOutcome::Batch(payloads) => {
                out.reserve(payloads.len());
                for payload in payloads {
                    let cursor = self.new_cursor(fi, &payload);
                    out.push((cursor, payload));
                }
                true
            }
        }
    }

    /// Creates the cursor for a new flow carrying `payload`.
    pub fn new_cursor(&self, fi: usize, payload: &P) -> FlowCursor {
        let now = Instant::now();
        self.stats.started.fetch_add(1, Ordering::Relaxed);
        if let Some(prof) = &self.profiler {
            prof.record_arrival(fi, now);
        }
        let session = self.flows[fi].session_fn.as_ref().map(|f| f(payload));
        FlowCursor {
            flow_idx: fi,
            vertex: self.flows[fi].entry,
            path_sum: 0,
            flow_id: self.next_flow_id.fetch_add(1, Ordering::Relaxed),
            pinned: session.is_some() && self.flows[fi].session_pinned,
            session,
            started: now,
            held: Vec::new(),
            acquire_progress: 0,
            fused_step_execs: 0,
        }
    }

    /// True when the cursor's current vertex is a node execution that may
    /// block (the event runtime off-loads these to its I/O pool).
    pub fn at_blocking_exec(&self, cur: &FlowCursor) -> bool {
        matches!(
            self.flows[cur.flow_idx].verts[cur.vertex],
            ResolvedVertex::Exec {
                may_block: true,
                ..
            }
        )
    }

    /// True when the cursor's current vertex is any node execution
    /// (plain or fused).
    pub fn at_exec(&self, cur: &FlowCursor) -> bool {
        matches!(
            self.flows[cur.flow_idx].verts[cur.vertex],
            ResolvedVertex::Exec { .. } | ResolvedVertex::FusedExec { .. }
        )
    }

    /// Node executions the next `step` at this cursor intends to perform:
    /// 0 for bookkeeping vertices, 1 for a plain `Exec`, the member count
    /// for a fused segment (an upper bound — a mid-segment error exits
    /// early). The event dispatcher budgets queue turns with this.
    pub fn exec_cost(&self, cur: &FlowCursor) -> usize {
        match &self.flows[cur.flow_idx].verts[cur.vertex] {
            ResolvedVertex::Exec { .. } => 1,
            ResolvedVertex::FusedExec { execs, .. } => *execs,
            _ => 0,
        }
    }

    /// The concrete node the cursor is about to execute, if it stands at
    /// an `Exec` vertex (used by the staged runtime to pick a stage).
    pub fn exec_node(&self, cur: &FlowCursor) -> Option<flux_core::NodeId> {
        match self.program.flows[cur.flow_idx].flat.verts[cur.vertex] {
            flux_core::FlatVertex::Exec { node, .. } => Some(node),
            _ => None,
        }
    }

    #[inline]
    fn take_edge(&self, cur: &mut FlowCursor, k: usize, to: VertexId) {
        let inc = self.program.flows[cur.flow_idx].paths.inc[cur.vertex][k];
        if let Some(prof) = &self.profiler {
            prof.record_edge(cur.flow_idx, cur.vertex, k);
        }
        cur.path_sum += inc;
        cur.vertex = to;
    }

    fn release_all(&self, cur: &mut FlowCursor) {
        while let Some(h) = cur.held.pop() {
            h.lock.release(cur.flow_id, h.mode);
        }
    }

    /// Advances the flow one vertex.
    pub fn step(&self, cur: &mut FlowCursor, payload: &mut P, wait: LockWait) -> Step {
        let rf = &self.flows[cur.flow_idx];
        match &rf.verts[cur.vertex] {
            ResolvedVertex::Acquire { cs, next } => {
                while cur.acquire_progress < cs.len() {
                    let c = &cs[cur.acquire_progress];
                    let lock = self.locks.lock_for(&c.name, c.scope, cur.session);
                    let acquired = match wait {
                        LockWait::Block => {
                            lock.acquire(cur.flow_id, c.mode);
                            true
                        }
                        LockWait::Try => lock.try_acquire(cur.flow_id, c.mode),
                    };
                    if !acquired {
                        return Step::WouldBlock;
                    }
                    cur.held.push(HeldLock { lock, mode: c.mode });
                    cur.acquire_progress += 1;
                }
                cur.acquire_progress = 0;
                self.take_edge(cur, 0, *next);
                Step::Continue
            }
            ResolvedVertex::Release { count, next } => {
                for _ in 0..*count {
                    let h = cur
                        .held
                        .pop()
                        .expect("release vertex with empty held stack");
                    h.lock.release(cur.flow_id, h.mode);
                }
                self.take_edge(cur, 0, *next);
                Step::Continue
            }
            ResolvedVertex::Exec {
                entry,
                on_ok,
                on_err,
                ..
            } => {
                let profiling = self.profiler.is_some();
                let t0 = profiling.then(Instant::now);
                let outcome = (entry.f)(payload);
                if let (Some(prof), Some(t0)) = (&self.profiler, t0) {
                    prof.record_exec(cur.flow_idx, cur.vertex, t0.elapsed().as_nanos() as u64);
                }
                match outcome {
                    NodeOutcome::Ok => self.take_edge(cur, 0, *on_ok),
                    NodeOutcome::Err(_) => {
                        // The flow is terminating (possibly via a
                        // handler): two-phase locking's shrink phase
                        // happens now, before any handler runs.
                        self.release_all(cur);
                        self.take_edge(cur, 1, *on_err);
                    }
                }
                Step::Continue
            }
            ResolvedVertex::FusedExec { ops, .. } => {
                debug_assert!(matches!(
                    ops[0],
                    FusedOp::Exec { vertex, .. } | FusedOp::Release { vertex, .. }
                        if vertex == cur.vertex
                ));
                let mut ran = 0u32;
                for op in ops.iter() {
                    match op {
                        FusedOp::Exec {
                            entry,
                            on_ok,
                            on_err,
                            ..
                        } => {
                            let t0 = self.profiler.is_some().then(Instant::now);
                            let outcome = (entry.f)(payload);
                            if let (Some(prof), Some(t0)) = (&self.profiler, t0) {
                                prof.record_exec(
                                    cur.flow_idx,
                                    cur.vertex,
                                    t0.elapsed().as_nanos() as u64,
                                );
                            }
                            ran += 1;
                            match outcome {
                                NodeOutcome::Ok => self.take_edge(cur, 0, *on_ok),
                                NodeOutcome::Err(_) => {
                                    // Identical to the unfused Exec arm:
                                    // shrink-phase release, then the error
                                    // edge — the cursor leaves the segment
                                    // and rests on the handler chain (or
                                    // error end), itself a segment head.
                                    self.release_all(cur);
                                    self.take_edge(cur, 1, *on_err);
                                    cur.fused_step_execs = ran;
                                    return Step::Continue;
                                }
                            }
                        }
                        FusedOp::Release { count, next, .. } => {
                            for _ in 0..*count {
                                let h = cur.held.pop().expect("release op with empty held stack");
                                h.lock.release(cur.flow_id, h.mode);
                            }
                            self.take_edge(cur, 0, *next);
                        }
                    }
                }
                cur.fused_step_execs = ran;
                Step::Continue
            }
            ResolvedVertex::Dispatch { arms, on_nomatch } => {
                for (k, (preds, entry)) in arms.iter().enumerate() {
                    if preds.iter().all(|p| p(payload)) {
                        self.take_edge(cur, k, *entry);
                        return Step::Continue;
                    }
                }
                self.take_edge(cur, arms.len(), *on_nomatch);
                Step::Continue
            }
            ResolvedVertex::End { outcome } => {
                self.release_all(cur);
                let elapsed = cur.started.elapsed();
                self.stats.record_end(*outcome, elapsed);
                if let Some(prof) = &self.profiler {
                    prof.record_path(cur.flow_idx, cur.path_sum, elapsed.as_nanos() as u64);
                }
                Step::Done(*outcome)
            }
        }
    }

    /// Drives a flow to completion on the current thread (thread
    /// runtimes), blocking on locks as needed.
    pub fn run_flow(&self, mut cursor: FlowCursor, mut payload: P) -> EndKind {
        loop {
            match self.step(&mut cursor, &mut payload, LockWait::Block) {
                Step::Continue => {}
                Step::Done(end) => return end,
                Step::WouldBlock => unreachable!("LockWait::Block never yields WouldBlock"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::SourceOutcome;
    use parking_lot::Mutex;

    #[derive(Default)]
    struct P {
        valid: bool,
        trace: Vec<&'static str>,
        fail_parse: bool,
    }

    fn registry(events: Arc<Mutex<Vec<String>>>) -> NodeRegistry<P> {
        let mut r = NodeRegistry::new();
        r.source("Listen", || SourceOutcome::Shutdown);
        let ev = events.clone();
        r.node("Parse", move |p: &mut P| {
            ev.lock().push("Parse".into());
            p.trace.push("Parse");
            if p.fail_parse {
                NodeOutcome::Err(1)
            } else {
                NodeOutcome::Ok
            }
        });
        for n in ["Respond", "Retry", "Close", "Oops"] {
            let ev = events.clone();
            r.node(n, move |p: &mut P| {
                ev.lock().push(n.into());
                p.trace.push(n);
                NodeOutcome::Ok
            });
        }
        r.predicate("IsValid", |p: &P| p.valid);
        r
    }

    fn server(events: Arc<Mutex<Vec<String>>>) -> FluxServer<P> {
        let program = flux_core::compile(flux_core::fixtures::MINI_PIPELINE).unwrap();
        FluxServer::with_profiling(program, registry(events)).unwrap()
    }

    #[test]
    fn valid_path_takes_first_arm() {
        let events = Arc::new(Mutex::new(Vec::new()));
        let s = server(events.clone());
        let payload = P {
            valid: true,
            ..P::default()
        };
        let cursor = s.new_cursor(0, &payload);
        let end = s.run_flow(cursor, payload);
        assert_eq!(end, EndKind::Completed);
        assert_eq!(*events.lock(), vec!["Parse", "Respond", "Close"]);
    }

    #[test]
    fn invalid_path_takes_catch_all() {
        let events = Arc::new(Mutex::new(Vec::new()));
        let s = server(events.clone());
        let payload = P::default();
        let cursor = s.new_cursor(0, &payload);
        let end = s.run_flow(cursor, payload);
        assert_eq!(end, EndKind::Completed);
        assert_eq!(*events.lock(), vec!["Parse", "Respond", "Retry", "Close"]);
    }

    #[test]
    fn error_routes_to_handler() {
        let events = Arc::new(Mutex::new(Vec::new()));
        let s = server(events.clone());
        let payload = P {
            fail_parse: true,
            ..P::default()
        };
        let cursor = s.new_cursor(0, &payload);
        let end = s.run_flow(cursor, payload);
        assert!(matches!(end, EndKind::Handled { .. }));
        assert_eq!(*events.lock(), vec!["Parse", "Oops"]);
        assert_eq!(s.stats.handled.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn profiler_distinguishes_paths() {
        let events = Arc::new(Mutex::new(Vec::new()));
        let s = server(events);
        for (valid, fail) in [(true, false), (true, false), (false, false), (false, true)] {
            let payload = P {
                valid,
                fail_parse: fail,
                ..P::default()
            };
            let cursor = s.new_cursor(0, &payload);
            s.run_flow(cursor, payload);
        }
        let report =
            s.profiler()
                .unwrap()
                .report(s.program(), 0, crate::profile::HotOrder::ByCount);
        assert_eq!(report.len(), 3, "three distinct paths executed");
        assert_eq!(report[0].count, 2);
        let display = report[0]
            .info
            .display(&s.program().graph, &s.program().flows[0].flat);
        assert!(display.starts_with("Listen -> Parse -> Respond"));
    }

    fn server_with(events: Arc<Mutex<Vec<String>>>, fusion: FusionMode) -> FluxServer<P> {
        let program = flux_core::compile(flux_core::fixtures::MINI_PIPELINE).unwrap();
        FluxServer::with_options(program, registry(events), true, fusion).unwrap()
    }

    /// The fused interpreter is observation-equivalent to the unfused
    /// oracle on every MINI_PIPELINE path — including the mid-segment
    /// error path — with bit-identical Ball–Larus path sums.
    #[test]
    fn fused_matches_unfused_oracle() {
        let cases = [(true, false), (false, false), (true, true), (false, true)];
        let mut reports = Vec::new();
        for fusion in [FusionMode::On, FusionMode::Off] {
            let events = Arc::new(Mutex::new(Vec::new()));
            let s = server_with(events.clone(), fusion);
            assert_eq!(s.fusion_mode(), fusion);
            let mut ends = Vec::new();
            for (valid, fail_parse) in cases {
                let payload = P {
                    valid,
                    fail_parse,
                    ..P::default()
                };
                let cursor = s.new_cursor(0, &payload);
                ends.push(s.run_flow(cursor, payload));
            }
            let report =
                s.profiler()
                    .unwrap()
                    .report(s.program(), 0, crate::profile::HotOrder::ByCount);
            let paths: Vec<(u64, u64)> = report.iter().map(|p| (p.info.id, p.count)).collect();
            reports.push((events.lock().clone(), ends, paths));
        }
        let (fused, unfused) = (&reports[0], &reports[1]);
        assert_eq!(fused.0, unfused.0, "identical node execution order");
        assert_eq!(fused.1, unfused.1, "identical end kinds");
        assert_eq!(fused.2, unfused.2, "identical path ids and counts");
    }

    #[test]
    fn fusion_budget_hint_reflects_segments() {
        let events = Arc::new(Mutex::new(Vec::new()));
        // MINI_PIPELINE's longest chain is Respond -> Retry (2 execs).
        assert_eq!(
            server_with(events.clone(), FusionMode::On).max_segment_execs(),
            2
        );
        assert_eq!(server_with(events, FusionMode::Off).max_segment_execs(), 1);
    }

    #[test]
    fn missing_impl_rejected() {
        let program = flux_core::compile(flux_core::fixtures::MINI_PIPELINE).unwrap();
        let r: NodeRegistry<P> = NodeRegistry::new();
        let missing = FluxServer::new(program, r).err().unwrap();
        assert!(!missing.is_empty());
    }
}
